"""Simulator clock and event-loop behaviour."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.kernel import SimulationError, Simulator


def test_clock_advances_to_event_time():
    sim = Simulator()
    fired = []
    sim.schedule(2.5, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [2.5]
    assert sim.now == 2.5


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-1.0, lambda: None)


@pytest.mark.parametrize("bad", [float("nan"), float("inf"),
                                 float("-inf")])
def test_non_finite_delay_rejected(bad):
    """NaN passes ``< 0`` checks (every NaN comparison is false) and
    would silently corrupt heap ordering; the kernel must refuse it."""
    sim = Simulator()
    with pytest.raises(SimulationError, match="finite"):
        sim.schedule(bad, lambda: None)
    assert sim.pending_events == 0


@pytest.mark.parametrize("bad", [float("nan"), float("inf"),
                                 float("-inf")])
def test_non_finite_schedule_at_rejected(bad):
    sim = Simulator(start_time=10.0)
    with pytest.raises(SimulationError, match="finite"):
        sim.schedule_at(bad, lambda: None)
    assert sim.pending_events == 0


def test_nan_never_corrupts_event_order():
    """Even after a rejected NaN, later events still fire in order."""
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(float("nan"), lambda: None)
    observed = []
    for delay in (3.0, 1.0, 2.0):
        sim.schedule(delay, lambda: observed.append(sim.now))
    sim.run()
    assert observed == [1.0, 2.0, 3.0]


def test_schedule_at_in_the_past_rejected():
    sim = Simulator(start_time=10.0)
    with pytest.raises(SimulationError):
        sim.schedule_at(5.0, lambda: None)


def test_run_until_leaves_future_events_queued():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(10.0, lambda: fired.append(10))
    sim.run(until=5.0)
    assert fired == [1]
    assert sim.now == 5.0
    assert sim.pending_events == 1
    sim.run()
    assert fired == [1, 10]


def test_run_until_advances_clock_even_when_idle():
    sim = Simulator()
    sim.run(until=42.0)
    assert sim.now == 42.0


def test_run_until_before_now_is_noop():
    sim = Simulator()
    sim.schedule(3.0, lambda: None)
    sim.run()
    assert sim.now == 3.0
    sim.run(until=1.0)
    assert sim.now == 3.0


def test_callbacks_can_schedule_more_events():
    sim = Simulator()
    order = []

    def first():
        order.append("first")
        sim.schedule(1.0, lambda: order.append("second"))

    sim.schedule(1.0, first)
    sim.run()
    assert order == ["first", "second"]
    assert sim.now == 2.0


def test_cancel_prevents_callback():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, lambda: fired.append(1))
    sim.cancel(event)
    sim.run()
    assert fired == []


def test_cancel_none_is_noop():
    sim = Simulator()
    sim.cancel(None)


def test_double_cancel_does_not_corrupt_count():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    sim.cancel(event)
    sim.cancel(event)
    assert sim.pending_events == 0


def test_max_events_guard():
    sim = Simulator()

    def rescheduling():
        sim.schedule(0.1, rescheduling)

    sim.schedule(0.1, rescheduling)
    with pytest.raises(SimulationError, match="max_events"):
        sim.run(max_events=50)


def test_reentrant_run_rejected():
    sim = Simulator()

    def inner():
        sim.run()

    sim.schedule(1.0, inner)
    with pytest.raises(SimulationError, match="re-entered"):
        sim.run()


def test_step_returns_false_when_idle():
    sim = Simulator()
    assert sim.step() is False


def test_events_processed_counter():
    sim = Simulator()
    for delay in (1.0, 2.0, 3.0):
        sim.schedule(delay, lambda: None)
    sim.run()
    assert sim.events_processed == 3


def test_observability_counters():
    sim = Simulator()
    events = [sim.schedule(delay, lambda: None)
              for delay in (1.0, 2.0, 3.0, 4.0)]
    assert sim.peak_queue_depth == 4
    sim.cancel(events[1])
    sim.cancel(events[1])  # double-cancel counts once
    sim.run()
    stats = sim.stats()
    assert stats.events_processed == 3
    assert stats.cancellations == 1
    assert stats.peak_queue_depth == 4
    assert stats.sim_time == 4.0
    assert stats.wall_time > 0.0
    assert stats.sim_time_ratio > 0.0


def test_stats_sim_time_relative_to_start():
    sim = Simulator(start_time=100.0)
    sim.schedule(2.5, lambda: None)
    sim.run()
    assert sim.stats().sim_time == 2.5


@given(st.lists(st.floats(min_value=0.001, max_value=100), min_size=1,
                max_size=50))
def test_callbacks_fire_in_time_order(delays):
    """Property: the clock never goes backwards across callbacks."""
    sim = Simulator()
    observed = []
    for delay in delays:
        sim.schedule(delay, lambda: observed.append(sim.now))
    sim.run()
    assert observed == sorted(observed)
    assert len(observed) == len(delays)


def test_midrun_mass_cancellation_bounds_heap_and_keeps_order():
    """Cancelling >50% of the queued events from a callback triggers
    compaction *while the drain loop is running*; the loop must keep
    draining the (rebuilt, in-place) heap in time order and the physical
    heap must shrink to a small multiple of the live count."""
    sim = Simulator()
    fired = []
    doomed = [sim.schedule(50.0 + step, lambda: fired.append("doomed"))
              for step in range(150)]
    for delay in range(1, 50):
        sim.schedule(float(delay), lambda: fired.append(sim.now))

    heap_sizes = []

    def cancel_most():
        fired.append(sim.now)
        for event in doomed:
            sim.cancel(event)
        heap_sizes.append(sim._queue.heap_size)

    sim.schedule(0.5, cancel_most)
    sim.run()

    assert fired == [0.5] + [float(d) for d in range(1, 50)]
    # Compaction ran inside the callback: 150 stale entries vanished from
    # the physical heap even though the run loop held a heap reference.
    assert heap_sizes[0] < 100
    assert sim.pending_events == 0


def test_run_stats_report_per_run_peak_depth():
    """Each run's record carries *that run's* peak queue depth, not the
    simulator-lifetime peak (which stays available as a property)."""
    from repro.runtime.observability import collecting

    sim = Simulator()
    for delay in range(1, 9):
        sim.schedule(float(delay), lambda: None)
    sim.run()

    with collecting() as stats:
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run()
    assert stats.snapshot().peak_queue_depth == 2
    assert sim.peak_queue_depth == 8  # lifetime high-water mark


def test_schedule_many_matches_sequential_schedules():
    requests = [(3.0, "a"), (1.0, "b"), (3.0, "c"), (0.0, "d"), (1.0, "e")]

    sequential = Simulator()
    seq_order = []
    for delay, tag in requests:
        sequential.schedule(delay, seq_order.append, tag)
    sequential.run()

    bulk = Simulator()
    bulk_order = []
    events = bulk.schedule_many(
        [(delay, bulk_order.append, (tag,)) for delay, tag in requests])
    assert len(events) == len(requests)
    bulk.run()

    assert bulk_order == seq_order == ["d", "b", "e", "a", "c"]
    assert bulk.now == sequential.now


def test_schedule_many_validates_before_enqueuing():
    sim = Simulator()
    with pytest.raises(SimulationError, match="finite"):
        sim.schedule_many([(1.0, lambda: None, ()),
                           (float("nan"), lambda: None, ())])
    assert sim.pending_events == 0

    with pytest.raises(ValueError):
        sim.schedule_many([(1.0, lambda: None, ()),
                           (-2.0, lambda: None, ())])
    assert sim.pending_events == 0


def test_schedule_many_events_are_cancellable():
    sim = Simulator()
    fired = []
    events = sim.schedule_many(
        [(float(d), fired.append, (d,)) for d in (1, 2, 3)])
    sim.cancel(events[1])
    sim.run()
    assert fired == [1, 3]
