"""Simulator clock and event-loop behaviour."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.kernel import SimulationError, Simulator


def test_clock_advances_to_event_time():
    sim = Simulator()
    fired = []
    sim.schedule(2.5, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [2.5]
    assert sim.now == 2.5


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-1.0, lambda: None)


@pytest.mark.parametrize("bad", [float("nan"), float("inf"),
                                 float("-inf")])
def test_non_finite_delay_rejected(bad):
    """NaN passes ``< 0`` checks (every NaN comparison is false) and
    would silently corrupt heap ordering; the kernel must refuse it."""
    sim = Simulator()
    with pytest.raises(SimulationError, match="finite"):
        sim.schedule(bad, lambda: None)
    assert sim.pending_events == 0


@pytest.mark.parametrize("bad", [float("nan"), float("inf"),
                                 float("-inf")])
def test_non_finite_schedule_at_rejected(bad):
    sim = Simulator(start_time=10.0)
    with pytest.raises(SimulationError, match="finite"):
        sim.schedule_at(bad, lambda: None)
    assert sim.pending_events == 0


def test_nan_never_corrupts_event_order():
    """Even after a rejected NaN, later events still fire in order."""
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(float("nan"), lambda: None)
    observed = []
    for delay in (3.0, 1.0, 2.0):
        sim.schedule(delay, lambda: observed.append(sim.now))
    sim.run()
    assert observed == [1.0, 2.0, 3.0]


def test_schedule_at_in_the_past_rejected():
    sim = Simulator(start_time=10.0)
    with pytest.raises(SimulationError):
        sim.schedule_at(5.0, lambda: None)


def test_run_until_leaves_future_events_queued():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(10.0, lambda: fired.append(10))
    sim.run(until=5.0)
    assert fired == [1]
    assert sim.now == 5.0
    assert sim.pending_events == 1
    sim.run()
    assert fired == [1, 10]


def test_run_until_advances_clock_even_when_idle():
    sim = Simulator()
    sim.run(until=42.0)
    assert sim.now == 42.0


def test_run_until_before_now_is_noop():
    sim = Simulator()
    sim.schedule(3.0, lambda: None)
    sim.run()
    assert sim.now == 3.0
    sim.run(until=1.0)
    assert sim.now == 3.0


def test_callbacks_can_schedule_more_events():
    sim = Simulator()
    order = []

    def first():
        order.append("first")
        sim.schedule(1.0, lambda: order.append("second"))

    sim.schedule(1.0, first)
    sim.run()
    assert order == ["first", "second"]
    assert sim.now == 2.0


def test_cancel_prevents_callback():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, lambda: fired.append(1))
    sim.cancel(event)
    sim.run()
    assert fired == []


def test_cancel_none_is_noop():
    sim = Simulator()
    sim.cancel(None)


def test_double_cancel_does_not_corrupt_count():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    sim.cancel(event)
    sim.cancel(event)
    assert sim.pending_events == 0


def test_max_events_guard():
    sim = Simulator()

    def rescheduling():
        sim.schedule(0.1, rescheduling)

    sim.schedule(0.1, rescheduling)
    with pytest.raises(SimulationError, match="max_events"):
        sim.run(max_events=50)


def test_reentrant_run_rejected():
    sim = Simulator()

    def inner():
        sim.run()

    sim.schedule(1.0, inner)
    with pytest.raises(SimulationError, match="re-entered"):
        sim.run()


def test_step_returns_false_when_idle():
    sim = Simulator()
    assert sim.step() is False


def test_events_processed_counter():
    sim = Simulator()
    for delay in (1.0, 2.0, 3.0):
        sim.schedule(delay, lambda: None)
    sim.run()
    assert sim.events_processed == 3


def test_observability_counters():
    sim = Simulator()
    events = [sim.schedule(delay, lambda: None)
              for delay in (1.0, 2.0, 3.0, 4.0)]
    assert sim.peak_queue_depth == 4
    sim.cancel(events[1])
    sim.cancel(events[1])  # double-cancel counts once
    sim.run()
    stats = sim.stats()
    assert stats.events_processed == 3
    assert stats.cancellations == 1
    assert stats.peak_queue_depth == 4
    assert stats.sim_time == 4.0
    assert stats.wall_time > 0.0
    assert stats.sim_time_ratio > 0.0


def test_stats_sim_time_relative_to_start():
    sim = Simulator(start_time=100.0)
    sim.schedule(2.5, lambda: None)
    sim.run()
    assert sim.stats().sim_time == 2.5


@given(st.lists(st.floats(min_value=0.001, max_value=100), min_size=1,
                max_size=50))
def test_callbacks_fire_in_time_order(delays):
    """Property: the clock never goes backwards across callbacks."""
    sim = Simulator()
    observed = []
    for delay in delays:
        sim.schedule(delay, lambda: observed.append(sim.now))
    sim.run()
    assert observed == sorted(observed)
    assert len(observed) == len(delays)
