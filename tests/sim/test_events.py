"""Event queue ordering and cancellation."""

from hypothesis import given
from hypothesis import strategies as st

from repro.sim.events import EventQueue


def test_pop_returns_earliest():
    queue = EventQueue()
    queue.push(5.0, lambda: None)
    queue.push(1.0, lambda: None)
    queue.push(3.0, lambda: None)
    assert queue.pop().time == 1.0
    assert queue.pop().time == 3.0
    assert queue.pop().time == 5.0
    assert queue.pop() is None


def test_fifo_among_equal_times():
    queue = EventQueue()
    first = queue.push(2.0, lambda: "a")
    second = queue.push(2.0, lambda: "b")
    assert queue.pop() is first
    assert queue.pop() is second


def test_cancelled_events_are_skipped():
    queue = EventQueue()
    keep = queue.push(1.0, lambda: None)
    cancel = queue.push(0.5, lambda: None)
    cancel.cancel()
    queue.note_cancelled()
    assert queue.pop() is keep


def test_len_tracks_live_events():
    queue = EventQueue()
    assert len(queue) == 0
    event = queue.push(1.0, lambda: None)
    assert len(queue) == 1
    event.cancel()
    queue.note_cancelled()
    assert len(queue) == 0


def test_peek_time_skips_cancelled_head():
    queue = EventQueue()
    head = queue.push(0.1, lambda: None)
    queue.push(0.2, lambda: None)
    head.cancel()
    queue.note_cancelled()
    assert queue.peek_time() == 0.2


def test_bool_reflects_live_content():
    queue = EventQueue()
    assert not queue
    event = queue.push(1.0, lambda: None)
    assert queue
    event.cancel()
    queue.note_cancelled()
    assert not queue


def test_compaction_bounds_heap_growth():
    """Re-armed timers (cancel + reschedule, the RRC tail pattern) must
    not grow the heap without bound."""
    queue = EventQueue()
    sentinel = queue.push(1e9, lambda: None)  # one long-lived event
    for step in range(10_000):
        event = queue.push(float(step), lambda: None)
        event.cancel()
        queue.note_cancelled()
    assert len(queue) == 1
    # Physical heap stays a small multiple of the live count, not 10k.
    assert queue.heap_size < 64
    assert queue.pop() is sentinel


def test_compaction_preserves_order_and_len():
    queue = EventQueue()
    live = [queue.push(float(t), lambda: None) for t in range(40)]
    doomed = [queue.push(t + 0.5, lambda: None) for t in range(60)]
    for event in doomed:
        event.cancel()
        queue.note_cancelled()
    assert len(queue) == 40
    assert queue.heap_size < 100  # compaction ran
    popped = []
    while True:
        event = queue.pop()
        if event is None:
            break
        popped.append(event)
    assert popped == live  # same objects, ascending time order


def test_explicit_compact_noop_on_clean_heap():
    queue = EventQueue()
    events = [queue.push(float(t), lambda: None) for t in (3, 1, 2)]
    queue.compact()
    assert len(queue) == 3
    assert [queue.pop() for _ in range(3)] == [events[1], events[2],
                                               events[0]]


def test_fifo_ties_survive_compaction():
    queue = EventQueue()
    first = queue.push(5.0, lambda: "a")
    doomed = [queue.push(1.0, lambda: None) for _ in range(40)]
    second = queue.push(5.0, lambda: "b")
    for event in doomed:
        event.cancel()
        queue.note_cancelled()
    assert queue.pop() is first
    assert queue.pop() is second


@given(st.lists(st.tuples(st.floats(min_value=0, max_value=1e6),
                          st.booleans()), min_size=1, max_size=200))
def test_cancellation_pattern_matches_reference(entries):
    """Property: any push/cancel pattern pops exactly the live events in
    (time, sequence) order, and the heap never holds more than
    ``2 * live + compaction-floor`` entries."""
    queue = EventQueue()
    live = []
    for time, keep in entries:
        event = queue.push(time, lambda: None)
        if keep:
            live.append(event)
        else:
            event.cancel()
            queue.note_cancelled()
    assert len(queue) == len(live)
    assert queue.heap_size <= 2 * len(live) + 17
    popped = []
    while True:
        event = queue.pop()
        if event is None:
            break
        popped.append(event)
    assert popped == sorted(live,
                            key=lambda e: (e.time, e.sequence))


@given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1,
                max_size=200))
def test_pop_order_is_sorted_and_stable(times):
    """Property: popping yields times in sorted order, and events with
    equal times come out in insertion order."""
    queue = EventQueue()
    events = [queue.push(t, lambda: None) for t in times]
    popped = []
    while True:
        event = queue.pop()
        if event is None:
            break
        popped.append(event)
    assert [e.time for e in popped] == sorted(times)
    # stability: same-time events keep their relative sequence numbers
    for earlier, later in zip(popped, popped[1:]):
        if earlier.time == later.time:
            assert earlier.sequence < later.sequence
    assert len(popped) == len(events)


def test_push_many_matches_push_sequence():
    """A bulk insert is indistinguishable from the same pushes one by
    one: identical pop order, FIFO ties included."""
    times = [5.0, 1.0, 5.0, 0.0, 1.0, 5.0]

    one_by_one = EventQueue()
    singles = [one_by_one.push(t, lambda: None) for t in times]

    bulk = EventQueue()
    batch = bulk.push_many([(t, (lambda: None), ()) for t in times])
    assert len(batch) == len(times)
    assert len(bulk) == len(one_by_one)

    single_order = [singles.index(one_by_one.pop())
                    for _ in range(len(times))]
    bulk_order = [batch.index(bulk.pop()) for _ in range(len(times))]
    assert bulk_order == single_order == [3, 1, 4, 0, 2, 5]


def test_push_many_interleaves_with_push():
    """Sequence numbers keep advancing across bulk and single inserts,
    so ties between the two paths stay FIFO."""
    queue = EventQueue()
    first = queue.push(1.0, lambda: None)
    middle = queue.push_many([(1.0, (lambda: None), ()),
                              (1.0, (lambda: None), ())])
    last = queue.push(1.0, lambda: None)
    assert [queue.pop() for _ in range(4)] == [first, *middle, last]
