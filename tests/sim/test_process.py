"""Single-core CPU process semantics."""

import pytest

from repro.sim.kernel import Simulator
from repro.sim.process import CpuProcess, CpuTask


def test_tasks_run_sequentially():
    sim = Simulator()
    cpu = CpuProcess(sim)
    finished = []
    cpu.submit(CpuTask("a", 1.0, on_done=lambda: finished.append(sim.now)))
    cpu.submit(CpuTask("b", 2.0, on_done=lambda: finished.append(sim.now)))
    sim.run()
    assert finished == [1.0, 3.0]


def test_zero_duration_task_completes():
    sim = Simulator()
    cpu = CpuProcess(sim)
    done = []
    cpu.submit(CpuTask("instant", 0.0, on_done=lambda: done.append(True)))
    sim.run()
    assert done == [True]


def test_negative_duration_rejected():
    with pytest.raises(ValueError):
        CpuTask("bad", -0.1)


def test_busy_time_by_category():
    sim = Simulator()
    cpu = CpuProcess(sim)
    cpu.submit(CpuTask("t1", 1.0, category="tx"))
    cpu.submit(CpuTask("t2", 2.0, category="layout"))
    cpu.submit(CpuTask("t3", 0.5, category="tx"))
    sim.run()
    assert cpu.busy_time("tx") == pytest.approx(1.5)
    assert cpu.busy_time("layout") == pytest.approx(2.0)
    assert cpu.busy_time() == pytest.approx(3.5)


def test_on_done_may_submit_followup_without_false_idle():
    """A follow-up submitted from on_done keeps the CPU marked busy —
    the busy/idle listener must not see a spurious idle transition."""
    sim = Simulator()
    transitions = []
    cpu = CpuProcess(sim, on_busy_change=transitions.append)

    def chain():
        cpu.submit(CpuTask("second", 1.0))

    cpu.submit(CpuTask("first", 1.0, on_done=chain))
    sim.run()
    assert transitions == [True, False]
    assert cpu.busy_time() == pytest.approx(2.0)


def test_busy_change_fires_per_busy_period():
    sim = Simulator()
    transitions = []
    cpu = CpuProcess(sim, on_busy_change=transitions.append)
    cpu.submit(CpuTask("a", 1.0))
    sim.run()
    sim.schedule(5.0, lambda: cpu.submit(CpuTask("b", 1.0)))
    sim.run()
    assert transitions == [True, False, True, False]


def test_intervals_record_start_end_and_category():
    sim = Simulator()
    cpu = CpuProcess(sim)
    cpu.submit(CpuTask("a", 1.5, category="tx"))
    sim.run()
    (interval,) = cpu.intervals
    assert interval.start == 0.0
    assert interval.end == 1.5
    assert interval.category == "tx"
    assert interval.name == "a"


def test_queued_count():
    sim = Simulator()
    cpu = CpuProcess(sim)
    cpu.submit(CpuTask("a", 1.0))
    cpu.submit(CpuTask("b", 1.0))
    cpu.submit(CpuTask("c", 1.0))
    assert cpu.busy
    assert cpu.queued == 2
    sim.run()
    assert not cpu.busy
    assert cpu.queued == 0
