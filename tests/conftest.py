"""Shared fixtures.

Expensive artefacts (benchmark comparisons, the synthetic trace, trained
predictors) are session-scoped: they are deterministic, so computing
them once keeps the suite fast without coupling tests.
"""

from __future__ import annotations

import pytest

from repro.core.comparison import benchmark_comparison
from repro.core.session import Handset
from repro.prediction.predictor import ReadingTimePredictor
from repro.traces.generator import TraceConfig, generate_trace
from repro.webpages.generator import PageSpec, generate_page


@pytest.fixture
def handset() -> Handset:
    """A fresh simulated handset with default (paper) configuration."""
    return Handset()


@pytest.fixture(scope="session")
def small_page():
    """A small deterministic page: 1 CSS, 1 JS (with a dynamic image),
    4 images."""
    spec = PageSpec(name="tiny", url="http://tiny.example", mobile=True,
                    seed=5, html_kb=20, css_count=1, css_kb=8, js_count=1,
                    js_kb=10, image_count=4, image_kb=6,
                    js_dynamic_image_fraction=0.25)
    return generate_page(spec)


@pytest.fixture(scope="session")
def full_page():
    """A full-version page with flash, iframe and chained scripts."""
    spec = PageSpec(name="big", url="http://big.example", mobile=False,
                    seed=9, html_kb=80, css_count=2, css_kb=20, js_count=4,
                    js_kb=20, js_complexity=1.2, image_count=18,
                    image_kb=10, flash_count=1, flash_kb=40,
                    iframe_count=1, iframe_kb=8, js_chain=True,
                    page_height=5000, page_width=1024)
    return generate_page(spec)


@pytest.fixture(scope="session")
def small_trace_config() -> TraceConfig:
    """A reduced trace: quick to generate, same statistical machinery."""
    return TraceConfig(n_users=12, mean_views_per_user=90, catalog_size=40,
                       seed=99)


@pytest.fixture(scope="session")
def small_trace(small_trace_config):
    return generate_trace(small_trace_config).filter_reading_time()


@pytest.fixture(scope="session")
def default_trace():
    """The full default 40-user trace (used by statistical tests)."""
    return generate_trace().filter_reading_time()


@pytest.fixture(scope="session")
def trained_predictor(small_trace) -> ReadingTimePredictor:
    """A predictor trained on the reduced trace (fewer trees for speed)."""
    predictor = ReadingTimePredictor(n_estimators=60, interest_threshold=2.0)
    return predictor.fit(small_trace)


@pytest.fixture(scope="session")
def mobile_comparisons():
    """Engine comparisons over the mobile benchmark (computed once)."""
    return benchmark_comparison(mobile=True, reading_time=20.0)


@pytest.fixture(scope="session")
def full_comparisons():
    """Engine comparisons over the full-version benchmark."""
    return benchmark_comparison(mobile=False, reading_time=20.0)
