"""Golden gates for the batched trial evaluator.

``REPRO_ABLATE_SLOW=1`` routes evaluation through the scalar per-unit
reference — one discrete-event load per page per call, no projection
memo, no grid scoring, a ``CapacitySimulator`` per population cell.
Every comparison here proves the batched default produces exactly the
same bytes: matrix reports, tune JSONL traces and reports (including a
population scenario), and the raw metrics dicts.  The Hypothesis
properties pin the load-cache-key contract: the key is exactly the
load-relevant projection, so setups differing only in α/Tp/Td/mode or
the predictor level share one cached load.
"""

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ablation.components import VariantSetup
from repro.ablation.engine import run_matrix
from repro.ablation.objective import (
    _REFERENCE_MEMO,
    PopulationSpec,
    Scenario,
    evaluate_setup,
    evaluate_setups,
    load_cache_key,
    load_cache_stats,
    load_projection,
    reset_load_cache,
)
from repro.ablation.search import Parameter, SearchSpace, halving_search
from repro.runtime.cache import ResultCache

TINY = Scenario(profile="ideal", pages=("www.motors.ebay.com",),
                reading_times=(2.0, 9.0, 30.0))
EDGE = replace(TINY, profile="cell_edge")
POP = replace(TINY, population=PopulationSpec(
    n_users=400, n_channels=20, horizon=600.0, mean_interval=10.0))

#: The acceptance-criteria search: α/Tp only — every trial shares one
#: load projection, which is what makes the warm sweep cheap.
THRESHOLD_SPACE = SearchSpace((Parameter("alpha", 0.5, 4.0),
                               Parameter("tp", 2.0, 18.0)))


def _clear_process_state() -> None:
    _REFERENCE_MEMO.clear()
    reset_load_cache()


@pytest.fixture(autouse=True)
def fresh_state():
    _clear_process_state()
    yield
    _clear_process_state()


def _slow(monkeypatch) -> None:
    """Flip to the scalar reference with all memoised state dropped, so
    the slow pass recomputes everything from scratch."""
    monkeypatch.setenv("REPRO_ABLATE_SLOW", "1")
    _clear_process_state()


SETUPS = (
    VariantSetup(reorganisation=True, fast_dormancy=True,
                 predictor="gbrt-like"),
    VariantSetup(reorganisation=False, intermediate_display=False,
                 fast_dormancy=True, predictor="oracle", alpha=3.0,
                 tp=12.0, mode="power"),
    VariantSetup(reorganisation=True, fast_dormancy=False,
                 predictor="never-switch", t1=2.0, t2=10.0),
    VariantSetup(reorganisation=True, fast_dormancy=True,
                 predictor="always-switch"),
)


def test_batched_equals_per_trial():
    pairs = [(setup, 1000 + i) for i, setup in enumerate(SETUPS)]
    batched = evaluate_setups(pairs, TINY)
    singles = [evaluate_setup(setup, TINY, seed) for setup, seed in pairs]
    assert batched == singles


def test_matrix_report_byte_identical_slow_vs_fast(monkeypatch):
    fast = run_matrix("loo", TINY)
    _slow(monkeypatch)
    slow = run_matrix("loo", TINY)
    assert fast.report() == slow.report()
    assert [run.metrics for run in fast.runs] == \
        [run.metrics for run in slow.runs]
    assert [run.seed for run in fast.runs] == \
        [run.seed for run in slow.runs]


def test_tune_trace_byte_identical_slow_vs_fast(tmp_path, monkeypatch):
    kwargs = dict(space=THRESHOLD_SPACE, n_trials=5, objective="energy",
                  seed=123)
    fast = halving_search(EDGE, trace_path=tmp_path / "fast.jsonl",
                          **kwargs)
    _slow(monkeypatch)
    slow = halving_search(EDGE, trace_path=tmp_path / "slow.jsonl",
                          **kwargs)
    assert (tmp_path / "fast.jsonl").read_bytes() == \
        (tmp_path / "slow.jsonl").read_bytes()
    assert fast.report() == slow.report()
    assert fast.to_dict() == slow.to_dict()


def test_population_metrics_byte_identical(monkeypatch):
    fast = [evaluate_setup(setup, POP, 42 + i)
            for i, setup in enumerate(SETUPS)]
    _slow(monkeypatch)
    slow = [evaluate_setup(setup, POP, 42 + i)
            for i, setup in enumerate(SETUPS)]
    assert fast == slow
    assert all("drop_probability" in metrics for metrics in fast)


def test_population_tune_trace_byte_identical(tmp_path, monkeypatch):
    kwargs = dict(space=THRESHOLD_SPACE, n_trials=4,
                  objective="drop_probability", seed=7)
    fast = halving_search(POP, trace_path=tmp_path / "fast.jsonl",
                          **kwargs)
    _slow(monkeypatch)
    slow = halving_search(POP, trace_path=tmp_path / "slow.jsonl",
                          **kwargs)
    assert (tmp_path / "fast.jsonl").read_bytes() == \
        (tmp_path / "slow.jsonl").read_bytes()
    assert fast.report() == slow.report()
    assert fast.to_dict() == slow.to_dict()


def test_threshold_sweep_shares_one_load():
    base = VariantSetup(reorganisation=True, fast_dormancy=True,
                        predictor="oracle")
    variants = [replace(base, alpha=alpha, tp=tp, predictor=predictor)
                for alpha, tp, predictor in
                ((0.5, 4.0, "oracle"), (2.0, 9.0, "gbrt-like"),
                 (3.5, 15.0, "always-switch"), (1.0, 6.0, "oracle"))]
    for i, variant in enumerate(variants):
        evaluate_setup(variant, TINY, 50 + i)
    stats = load_cache_stats()
    # One load for the shared projection, one for the stock reference;
    # every later trial is a memo hit.
    assert stats["loads"] == 2
    assert stats["memo_hits"] == len(variants) - 1


def test_disk_cache_roundtrip_byte_identical(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    setup = VariantSetup(reorganisation=True, fast_dormancy=True,
                         predictor="gbrt-like")
    first = evaluate_setup(setup, TINY, 9, load_cache=cache)
    _clear_process_state()
    second = evaluate_setup(setup, TINY, 9, load_cache=cache)
    stats = load_cache_stats()
    assert stats["loads"] == 0
    assert stats["disk_hits"] == 2  # the variant's load + the stock ref
    assert first == second


# ----------------------------------------------------------------------
# The projection contract, property-tested.
# ----------------------------------------------------------------------

#: Scoring-only knobs: consulted strictly after the load.  Td stays
#: >= Tp per PolicyConfig's validation.
_SCORING_ONLY = st.fixed_dictionaries({
    "alpha": st.floats(0.5, 4.0),
    "tp": st.floats(2.0, 18.0),
    "td": st.floats(18.0, 40.0),
    "mode": st.sampled_from(["power", "delay"]),
    "predictor": st.sampled_from(["oracle", "gbrt-like",
                                  "always-switch", "never-switch"]),
})

#: Load-relevant knobs: anything here must change the cache key.
_LOAD_RELEVANT = st.fixed_dictionaries({}, optional={
    "reorganisation": st.booleans(),
    "intermediate_display": st.booleans(),
    "fast_dormancy": st.booleans(),
    "t1": st.floats(1.0, 8.0),
    "t2": st.floats(4.0, 20.0),
})

_BASE = VariantSetup(reorganisation=True, fast_dormancy=True,
                     predictor="oracle")


@settings(max_examples=50, deadline=None)
@given(overrides=_SCORING_ONLY)
def test_scoring_only_knobs_share_the_load_key(overrides):
    variant = replace(_BASE, **overrides)
    assert load_projection(variant) == load_projection(_BASE)
    assert load_cache_key("p", "ideal", 1, variant) == \
        load_cache_key("p", "ideal", 1, _BASE)


@settings(max_examples=100, deadline=None)
@given(load_overrides=_LOAD_RELEVANT, scoring_overrides=_SCORING_ONLY)
def test_key_changes_exactly_with_the_projection(load_overrides,
                                                 scoring_overrides):
    variant = replace(_BASE, **{**load_overrides, **scoring_overrides})
    same_projection = load_projection(variant) == load_projection(_BASE)
    same_key = (load_cache_key("p", "ideal", 1, variant)
                == load_cache_key("p", "ideal", 1, _BASE))
    assert same_key == same_projection
    moved = {name for name, value in load_overrides.items()
             if getattr(_BASE, name) != value}
    assert same_projection == (not moved)
