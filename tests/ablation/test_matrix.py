"""Matrix generation: content-addressed IDs, canonical order, generators.

The Hypothesis properties pin the subsystem's central invariant: run IDs
and matrix contents are pure functions of *what* is declared, never of
declaration order, dict insertion order, or which process computes them.
"""

import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ablation.components import Component, ComponentRegistry
from repro.ablation.matrix import (MAX_FACTORIAL_CELLS, RunSpec,
                                   baseline_specs, fractional_factorial,
                                   full_factorial, generate,
                                   leave_one_out, one_factor_at_a_time,
                                   pairwise_factorial, spec_run_id)


def toy_components():
    return [
        Component("alpha", "", baseline="on",
                  levels=(("on", {}), ("off", {"alpha": 4.0}))),
        Component("beta", "", baseline="b0",
                  levels=(("b0", {}), ("b1", {"t1": 2.0}),
                          ("b2", {"t1": 6.0})), ablated="b2"),
        Component("gamma", "", baseline="on",
                  levels=(("on", {}), ("off", {"tp": 4.0}))),
    ]


def toy_registry():
    return ComponentRegistry(toy_components())


# ----------------------------------------------------------------------
# Run-ID stability
# ----------------------------------------------------------------------

@given(st.permutations(list({"alpha": "off", "beta": "b1",
                             "gamma": "on"}.items())))
def test_run_id_independent_of_assignment_insertion_order(items):
    reference = spec_run_id({"alpha": "off", "beta": "b1",
                             "gamma": "on"})
    assert spec_run_id(dict(items)) == reference


def test_run_id_depends_on_every_part():
    base = spec_run_id({"a": "on"}, {"profile": "ideal"}, {"t1": 2.0})
    assert spec_run_id({"a": "off"}, {"profile": "ideal"},
                       {"t1": 2.0}) != base
    assert spec_run_id({"a": "on"}, {"profile": "cell_edge"},
                       {"t1": 2.0}) != base
    assert spec_run_id({"a": "on"}, {"profile": "ideal"},
                       {"t1": 3.0}) != base


def test_run_id_stable_across_process_restarts():
    """The ID survives a fresh interpreter (fresh PYTHONHASHSEED)."""
    expected = spec_run_id({"beta": "b1", "alpha": "off"},
                           {"profile": "ideal"}, {"tp": 4.0})
    code = ("import sys; sys.path.insert(0, 'src'); "
            "from repro.ablation.matrix import spec_run_id; "
            "print(spec_run_id({'alpha': 'off', 'beta': 'b1'}, "
            "{'profile': 'ideal'}, {'tp': 4.0}))")
    out = subprocess.run([sys.executable, "-c", code], cwd="/root/repo",
                        capture_output=True, text=True, check=True,
                        env={"PYTHONHASHSEED": "12345", "PATH": "/usr/bin:/bin"})
    assert out.stdout.strip() == expected


def test_run_id_pinned_literal():
    """Content addressing is part of the cache contract: changing the
    canonicalisation silently invalidates every stored result, so the
    scheme is pinned to a literal digest."""
    assert spec_run_id({"a": "on"}) == (
        "a223c4b3a33b69b0546027382ca7e14e5fc40aafb7ab8f0157cad95c3d4512c7")


def test_runspec_sorts_and_freezes():
    spec = RunSpec.make({"beta": "b1", "alpha": "off"},
                        context={"profile": "ideal"})
    assert spec.assignment == (("alpha", "off"), ("beta", "b1"))
    assert spec.run_id == spec_run_id(
        {"alpha": "off", "beta": "b1"}, {"profile": "ideal"})
    assert spec.short_id == spec.run_id[:12]


# ----------------------------------------------------------------------
# Generator properties
# ----------------------------------------------------------------------

@given(st.permutations(toy_components()))
@settings(max_examples=25)
def test_matrices_independent_of_declaration_order(components):
    """Every generator emits the same cells in the same order whatever
    order the components were registered in."""
    reference = ComponentRegistry(toy_components())
    shuffled = ComponentRegistry(list(components))
    context = {"profile": "ideal"}
    for generator in (baseline_specs, leave_one_out,
                      one_factor_at_a_time, pairwise_factorial,
                      full_factorial):
        assert ([spec.run_id for spec in generator(reference, context)]
                == [spec.run_id for spec in generator(shuffled,
                                                      context)])


def test_leave_one_out_shape():
    registry = toy_registry()
    specs = leave_one_out(registry, {"profile": "ideal"})
    assert len(specs) == 1 + len(registry)
    # Baseline first, the rest sorted by run ID.
    assert specs[0].deviations(registry) == {}
    tail = [spec.run_id for spec in specs[1:]]
    assert tail == sorted(tail)
    # Each non-baseline cell deviates in exactly one component, at its
    # declared ablated level.
    for spec in specs[1:]:
        deviations = spec.deviations(registry)
        assert len(deviations) == 1
        (name, level), = deviations.items()
        assert level == registry.get(name).ablated


def test_ofat_covers_every_non_baseline_level():
    registry = toy_registry()
    specs = one_factor_at_a_time(registry)
    levels = {tuple(spec.deviations(registry).items())
              for spec in specs if spec.deviations(registry)}
    assert (("beta", "b1"),) in levels
    assert (("beta", "b2"),) in levels
    assert len(specs) == 1 + sum(
        len(component.level_names) - 1 for component in registry)


def test_pairwise_adds_interaction_cells():
    registry = toy_registry()
    loo = {spec.run_id for spec in leave_one_out(registry)}
    pairs = pairwise_factorial(registry)
    extra = [spec for spec in pairs if spec.run_id not in loo]
    n = len(registry)
    assert len(extra) == n * (n - 1) // 2
    for spec in extra:
        assert len(spec.deviations(registry)) == 2


def test_full_factorial_counts_and_guard():
    registry = toy_registry()
    specs = full_factorial(registry)
    assert len(specs) == 2 * 3 * 2
    assert len({spec.run_id for spec in specs}) == len(specs)
    with pytest.raises(ValueError):
        full_factorial(registry, max_cells=5)
    assert MAX_FACTORIAL_CELLS >= 1024


def test_fractional_factorial_is_a_stable_subset():
    registry = toy_registry()
    full = {spec.run_id for spec in full_factorial(registry)}
    frac_a = fractional_factorial(registry, 3)
    frac_b = fractional_factorial(registry, 3)
    assert [s.run_id for s in frac_a] == [s.run_id for s in frac_b]
    assert {spec.run_id for spec in frac_a} <= full
    assert len(frac_a) < len(full)
    # The baseline always survives the subsample.
    assert frac_a[0].deviations(registry) == {}
    with pytest.raises(ValueError):
        fractional_factorial(registry, 0)


def test_generate_dispatch():
    registry = toy_registry()
    assert [s.run_id for s in generate("loo", registry)] \
        == [s.run_id for s in leave_one_out(registry)]
    with pytest.raises(KeyError):
        generate("warp", registry)
    # fraction implies factorial whatever kind says
    frac = generate("loo", registry, fraction=2)
    assert {s.run_id for s in frac} \
        <= {s.run_id for s in full_factorial(registry)}
