"""Matrix engine: caching, run-ID seeding, parallel equivalence."""

import pytest

from repro.ablation.engine import (KIND_ABLATE, STANDARD_STUDIES,
                                   registry_by_name, run_matrix,
                                   run_specs, spec_seed)
from repro.ablation.matrix import RunSpec, leave_one_out
from repro.ablation.objective import Scenario
from repro.runtime.cache import ResultCache

TINY = Scenario(profile="ideal", pages=("www.motors.ebay.com",),
                reading_times=(2.0, 9.0, 30.0))


def tiny_specs():
    registry = registry_by_name("default").subset(
        ["fast_dormancy", "timers"])
    return leave_one_out(registry, context=TINY.fingerprint())


def test_spec_seed_is_a_pure_function_of_the_run_id():
    specs = tiny_specs()
    assert spec_seed(specs[0].run_id) == spec_seed(specs[0].run_id)
    assert spec_seed(specs[0].run_id) != spec_seed(specs[1].run_id)
    # Pinned: the seed derivation is part of the cache contract.
    assert spec_seed("deadbeef") == 375362716


def test_run_specs_rejects_duplicates():
    spec = tiny_specs()[0]
    with pytest.raises(ValueError):
        run_specs([spec, spec], TINY)


def test_results_in_input_order_and_reports_deterministic():
    specs = tiny_specs()
    one = run_specs(specs, TINY)
    two = run_specs(specs, TINY)
    assert [run.spec.run_id for run in one.runs] \
        == [spec.run_id for spec in specs]
    assert one.report() == two.report()


def test_cache_round_trip_is_report_identical(tmp_path):
    specs = tiny_specs()
    cache = ResultCache(tmp_path / "cache")
    cold = run_specs(specs, TINY, cache=cache)
    warm = run_specs(specs, TINY, cache=cache)
    assert cold.n_cached == 0
    assert warm.n_cached == len(specs)
    assert warm.cache_hit_rate == 1.0
    assert cold.report() == warm.report()
    for run in warm.runs:
        assert run.cached


def test_partial_cache_reruns_only_the_missing_cells(tmp_path):
    specs = tiny_specs()
    cache = ResultCache(tmp_path / "cache")
    run_specs(specs[:2], TINY, cache=cache)
    mixed = run_specs(specs, TINY, cache=cache)
    assert mixed.n_cached == 2


def test_parallel_report_matches_serial():
    specs = tiny_specs()
    serial = run_specs(specs, TINY, processes=1)
    fanned = run_specs(specs, TINY, processes=2)
    assert serial.report() == fanned.report()


def test_run_matrix_with_component_subset():
    result = run_matrix("loo", TINY,
                        components=["fast_dormancy", "timers"])
    assert len(result.runs) == 3
    assert "fast_dormancy=off" in result.report()


def test_overrides_flow_through_to_the_objective():
    registry = registry_by_name("default")
    base = registry.baseline_assignment()
    plain = RunSpec.make(base, context=TINY.fingerprint())
    tuned = RunSpec.make(base, context=TINY.fingerprint(),
                         overrides={"t1": 2.0, "t2": 8.0,
                                    "fast_dormancy": False})
    result = run_specs([plain, tuned], TINY)
    assert plain.run_id != tuned.run_id
    assert result.runs[0].metrics["energy"] \
        != result.runs[1].metrics["energy"]


def test_kind_ablate_registered_with_the_runtime():
    from repro.runtime.parallel import registry_for

    registry = registry_for(KIND_ABLATE)
    assert set(registry) == set(STANDARD_STUDIES)
    title, runner = registry["loo-ideal"]
    assert "loo" in title
    assert callable(runner)
