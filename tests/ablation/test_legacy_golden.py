"""Golden equivalence: the registry-backed legacy port must reproduce
the original study implementations bit-for-bit.

Each public ablation in ``repro.experiments.ablations`` now delegates to
:mod:`repro.ablation.legacy`; the pre-port bodies were kept as
``_reference_*``.  These tests run both paths and compare the full
result objects and their rendered reports.
"""

import pytest

from repro.core.config import ExperimentConfig, RrcConfig
from repro.experiments.ablations import (
    ALL_ABLATIONS,
    _reference_carrier_ablation,
    _reference_interest_threshold_ablation,
    _reference_predictor_ablation,
    _reference_reorganisation_ablation,
    _reference_timer_ablation,
    carrier_ablation,
    interest_threshold_ablation,
    predictor_ablation,
    reorganisation_ablation,
    timer_ablation,
)
from repro.ablation.legacy import LEGACY_STUDIES, legacy_registry
from repro.traces.generator import TraceConfig

#: Small synthetic trace: enough structure for stable model metrics.
SMALL = TraceConfig(n_users=14, mean_views_per_user=110,
                    catalog_size=40, seed=31)


def test_reorganisation_matches_reference():
    ported = reorganisation_ablation()
    reference = _reference_reorganisation_ablation()
    assert ported == reference
    assert ported.report() == reference.report()


def test_reorganisation_matches_reference_with_custom_config():
    config = ExperimentConfig(rrc=RrcConfig(t1=6.0, t2=12.0))
    assert reorganisation_ablation(config) \
        == _reference_reorganisation_ablation(config)


def test_timer_matches_reference():
    ported = timer_ablation(reading_time=8.0)
    reference = _reference_timer_ablation(reading_time=8.0)
    assert ported == reference
    assert ported.report() == reference.report()


def test_predictor_matches_reference():
    ported = predictor_ablation(SMALL)
    reference = _reference_predictor_ablation(SMALL)
    assert ported == reference
    assert ported.report() == reference.report()


def test_alpha_matches_reference():
    ported = interest_threshold_ablation(SMALL)
    reference = _reference_interest_threshold_ablation(SMALL)
    assert ported == reference
    assert ported.report() == reference.report()


def test_carrier_matches_reference():
    ported = carrier_ablation(reading_time=15.0)
    reference = _reference_carrier_ablation(reading_time=15.0)
    assert ported == reference
    assert ported.report() == reference.report()


def test_every_legacy_study_is_ported():
    assert set(LEGACY_STUDIES) == set(ALL_ABLATIONS)


def test_legacy_registry_declares_the_five_components():
    registry = legacy_registry()
    assert registry.names() == [
        "carrier_timers", "interest_threshold", "predictor_model",
        "reorganisation_variant", "timer_preset"]
    # Level order inside each component mirrors the legacy row order.
    assert registry.get("reorganisation_variant").level_names[-1] \
        == "energy-aware (full)"


def test_unknown_legacy_study_raises():
    from repro.ablation.legacy import run_legacy

    with pytest.raises(KeyError):
        run_legacy("nonexistent")
