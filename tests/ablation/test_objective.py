"""Scenario evaluation: determinism, knob coupling, population metrics."""

import pytest

from repro.ablation.components import STOCK_SETUP, VariantSetup
from repro.ablation.objective import (PopulationSpec, Scenario,
                                      evaluate_setup, reference_metrics)

#: One cheap page, three readings spanning the Tp break-even.
TINY = Scenario(profile="ideal", pages=("www.motors.ebay.com",),
                reading_times=(2.0, 9.0, 30.0))


def test_scenario_validation():
    with pytest.raises(KeyError):
        Scenario(profile="moonbase")
    with pytest.raises(ValueError):
        Scenario(pages=())
    with pytest.raises(ValueError):
        Scenario(reading_times=())
    with pytest.raises(ValueError):
        Scenario(reading_times=(-1.0,))


def test_fingerprint_is_json_stable():
    import json

    fp = TINY.fingerprint()
    assert json.loads(json.dumps(fp)) == fp
    with_pop = Scenario(profile="ideal",
                        population=PopulationSpec(n_users=50))
    assert "population" in with_pop.fingerprint()
    assert "population" not in TINY.fingerprint()


def test_at_fidelity_takes_a_prefix():
    cheap = TINY.at_fidelity(2)
    assert cheap.reading_times == (2.0, 9.0)
    assert cheap.fingerprint() != TINY.fingerprint()
    with pytest.raises(ValueError):
        TINY.at_fidelity(0)


def test_evaluation_is_deterministic():
    a = evaluate_setup(VariantSetup(), TINY, eval_seed=123)
    b = evaluate_setup(VariantSetup(), TINY, eval_seed=123)
    assert a == b


def test_gbrt_like_noise_depends_on_the_seed():
    noisy = VariantSetup(predictor="gbrt-like")
    a = evaluate_setup(noisy, TINY, eval_seed=1)
    b = evaluate_setup(noisy, TINY, eval_seed=2)
    assert a != b  # prediction noise differs
    # while the oracle is seed-free
    assert evaluate_setup(VariantSetup(), TINY, eval_seed=1) \
        == evaluate_setup(VariantSetup(), TINY, eval_seed=2)


def test_predictor_levels_move_the_switch_rate():
    never = evaluate_setup(VariantSetup(predictor="never-switch"),
                           TINY, 7)
    always = evaluate_setup(VariantSetup(predictor="always-switch"),
                            TINY, 7)
    oracle = evaluate_setup(VariantSetup(), TINY, 7)
    assert never["switch_rate"] == 0.0
    # always-switch switches every unit the user stays past alpha
    assert always["switch_rate"] >= oracle["switch_rate"]
    # eager switching pays the promotion penalty at the next click
    assert always["delay"] >= oracle["delay"]


def test_baseline_beats_the_stock_browser():
    metrics = evaluate_setup(VariantSetup(), TINY, 7)
    assert metrics["energy_saving"] > 0.10
    stock = evaluate_setup(STOCK_SETUP, TINY, 7)
    assert stock["energy"] > metrics["energy"]
    assert stock["energy_saving"] == pytest.approx(0.0)


def test_timers_couple_into_energy_without_fast_dormancy():
    """With the radio left to its timers, longer T1/T2 burn more tail
    energy — the knob the search layer exploits."""
    slow = evaluate_setup(VariantSetup(fast_dormancy=False,
                                       t1=6.0, t2=20.0), TINY, 7)
    fast = evaluate_setup(VariantSetup(fast_dormancy=False,
                                       t1=2.0, t2=8.0), TINY, 7)
    assert fast["energy"] < slow["energy"]
    # ...but short timers raise the next-click promotion delay.
    assert fast["delay"] >= slow["delay"]


def test_reference_metrics_memoised():
    first = reference_metrics(TINY)
    assert reference_metrics(TINY) is first


def test_population_adds_drop_probability():
    scenario = Scenario(profile="ideal",
                        pages=("www.motors.ebay.com",),
                        reading_times=(2.0, 9.0),
                        population=PopulationSpec(
                            n_users=400, n_channels=20,
                            horizon=600.0, mean_interval=10.0))
    metrics = evaluate_setup(VariantSetup(), scenario, 7)
    assert 0.0 <= metrics["drop_probability"] <= 1.0
    bare = evaluate_setup(VariantSetup(), TINY, 7)
    assert "drop_probability" not in bare


def test_population_validation():
    with pytest.raises(ValueError):
        PopulationSpec(n_users=0)
    with pytest.raises(ValueError):
        PopulationSpec(horizon=-1.0)
