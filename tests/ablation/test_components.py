"""Component registry: declarations, validation, canonical resolution."""

import pytest

from repro.ablation.components import (Component, ComponentRegistry,
                                       STOCK_SETUP, VariantSetup,
                                       default_registry)


def test_variant_setup_defaults_are_the_paper_baseline():
    setup = VariantSetup()
    config = setup.to_config()
    assert config.rrc.t1 == 4.0 and config.rrc.t2 == 15.0
    assert config.policy.interest_threshold == 2.0
    assert config.policy.power_threshold == 9.0
    assert config.browser.intermediate_display
    assert config.browser.dormancy_after_tx


def test_variant_setup_rejects_unknown_predictor():
    with pytest.raises(ValueError):
        VariantSetup(predictor="psychic")


def test_variant_setup_delegates_threshold_validation():
    # PolicyConfig enforces Tp <= Td; the setup must surface that.
    with pytest.raises(ValueError):
        VariantSetup(tp=25.0, td=20.0)


def test_apply_rejects_unknown_fields():
    with pytest.raises(KeyError):
        VariantSetup().apply({"warp_factor": 9})


def test_stock_setup_disables_everything():
    assert not STOCK_SETUP.reorganisation
    assert not STOCK_SETUP.fast_dormancy
    assert STOCK_SETUP.predictor == "never-switch"


def test_component_validation():
    with pytest.raises(ValueError):
        Component("x", "", levels=(("only", {}),), baseline="only")
    with pytest.raises(ValueError):
        Component("x", "", levels=(("a", {}), ("a", {})), baseline="a")
    with pytest.raises(ValueError):
        Component("x", "", levels=(("a", {}), ("b", {})), baseline="c")
    with pytest.raises(ValueError):
        Component("x", "", levels=(("a", {}), ("b", {})), baseline="a",
                  ablated="z")


def test_ablated_defaults_to_first_non_baseline_level():
    component = Component("x", "", levels=(("a", {}), ("b", {})),
                          baseline="a")
    assert component.ablated == "b"


def test_registry_rejects_duplicate_registration():
    registry = ComponentRegistry()
    component = Component("x", "", levels=(("a", {}), ("b", {})),
                          baseline="a")
    registry.register(component)
    with pytest.raises(ValueError):
        registry.register(component)


def test_setup_resolution_is_declaration_order_independent():
    """Overlapping fields resolve by component *name*, not registration
    order, so reordering declarations never changes the setup."""
    first = Component("a_timers", "", baseline="x",
                      levels=(("x", {"t1": 2.0}), ("y", {"t1": 3.0})))
    second = Component("b_timers", "", baseline="x",
                       levels=(("x", {"t1": 5.0}), ("y", {"t1": 6.0})))
    one = ComponentRegistry([first, second])
    other = ComponentRegistry([second, first])
    assignment = {"a_timers": "y", "b_timers": "y"}
    assert one.setup_for(assignment) == other.setup_for(assignment)
    # canonical order applies a_timers before b_timers: b_timers wins.
    assert one.setup_for(assignment).t1 == 6.0


def test_setup_for_rejects_unknown_components():
    with pytest.raises(KeyError):
        default_registry().setup_for({"flux_capacitor": "on"})


def test_default_registry_covers_the_paper_knobs():
    names = default_registry().names()
    assert names == sorted(names)
    for expected in ("reorganisation", "intermediate_display",
                     "fast_dormancy", "predictor", "timers",
                     "thresholds"):
        assert expected in names


def test_subset_keeps_canonical_order():
    registry = default_registry()
    subset = registry.subset(["timers", "fast_dormancy"])
    assert subset.names() == ["fast_dormancy", "timers"]


def test_baseline_assignment_resolves_to_default_setup():
    registry = default_registry()
    setup = registry.setup_for(registry.baseline_assignment())
    assert setup == VariantSetup()
