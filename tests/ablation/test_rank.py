"""Importance ranking: effects, interactions, harmful flags, exports."""

import json

import pytest

from repro.ablation.engine import MatrixResult, MatrixRun, registry_by_name
from repro.ablation.matrix import RunSpec, pairwise_factorial
from repro.ablation.objective import Scenario
from repro.ablation.rank import rank_components, write_ranking

TINY = Scenario(profile="ideal", pages=("www.motors.ebay.com",),
                reading_times=(2.0,))


def synthetic_matrix():
    """Hand-assigned energies over a two-component pairs matrix."""
    registry = registry_by_name("default").subset(
        ["fast_dormancy", "reorganisation"])
    specs = pairwise_factorial(registry, context=TINY.fingerprint())
    energies = {}
    for spec in specs:
        deviations = spec.deviations(registry)
        if not deviations:
            energies[spec.run_id] = 100.0          # baseline
        elif deviations == {"fast_dormancy": "off"}:
            energies[spec.run_id] = 104.0          # +4 main effect
        elif deviations == {"reorganisation": "off"}:
            energies[spec.run_id] = 98.0           # -2: harmful!
        else:
            energies[spec.run_id] = 105.0          # joint cell
    runs = [MatrixRun(spec=spec, seed=0,
                      metrics={"energy": energies[spec.run_id]})
            for spec in specs]
    return MatrixResult(registry_name="default", scenario=TINY,
                        runs=runs)


def test_ranking_orders_by_magnitude_and_flags_harmful():
    ranking = rank_components(synthetic_matrix())
    assert [e.component for e in ranking.ranked] \
        == ["fast_dormancy", "reorganisation"]
    fd, reorg = ranking.ranked
    assert fd.delta == pytest.approx(4.0)
    assert not fd.harmful
    assert reorg.delta == pytest.approx(-2.0)
    assert reorg.harmful
    assert "[harmful]" in ranking.report()


def test_pairwise_interaction_is_the_unexplained_part():
    ranking = rank_components(synthetic_matrix())
    assert len(ranking.interactions) == 1
    entry = ranking.interactions[0]
    # expected = 100 + 4 - 2 = 102; observed 105 → interaction +3
    assert entry.expected == pytest.approx(102.0)
    assert entry.interaction == pytest.approx(3.0)


def test_rank_requires_a_baseline_cell():
    matrix = synthetic_matrix()
    no_baseline = MatrixResult(
        registry_name="default", scenario=TINY,
        runs=[run for run in matrix.runs
              if run.spec.deviations(matrix.registry())])
    with pytest.raises(ValueError):
        rank_components(no_baseline)


def test_rank_rejects_unknown_metric():
    with pytest.raises(KeyError):
        rank_components(synthetic_matrix(), metric="charisma")


def test_search_points_are_ignored():
    matrix = synthetic_matrix()
    registry = matrix.registry()
    stray = RunSpec.make(registry.baseline_assignment(),
                         context=TINY.fingerprint(),
                         overrides={"t1": 1.0})
    matrix.runs.append(MatrixRun(spec=stray, seed=0,
                                 metrics={"energy": 1.0}))
    ranking = rank_components(matrix)
    assert all(e.run_id != stray.run_id for e in ranking.effects)
    assert ranking.baseline_value == pytest.approx(100.0)


def test_write_ranking_json_and_csv(tmp_path):
    ranking = rank_components(synthetic_matrix())
    json_path = tmp_path / "rank.json"
    csv_path = tmp_path / "rank.csv"
    write_ranking(ranking, json_path)
    write_ranking(ranking, csv_path)
    payload = json.loads(json_path.read_text())
    assert payload["ranking"]["metric"] == "energy"
    assert len(payload["importance"]) == 2
    assert payload["interactions"][0]["interaction"] == pytest.approx(3.0)
    lines = csv_path.read_text().splitlines()
    assert lines[0].startswith("rank,component,level,metric")
    assert len(lines) == 3
    assert lines[1].split(",")[1] == "fast_dormancy"
