"""Search layer: promotion logic, constraints, determinism, resume."""

import pytest

from repro.ablation.objective import Scenario
from repro.ablation.search import (Constraint, Parameter, SearchSpace,
                                   SearchTrace, default_space, feasible,
                                   grid_search, halving_rungs,
                                   halving_search, promote,
                                   random_search)

TINY = Scenario(profile="ideal", pages=("www.motors.ebay.com",),
                reading_times=(2.0, 9.0, 30.0))

#: Two knobs keep grid/halving runs cheap while exercising the ladder.
SMALL_SPACE = SearchSpace((
    Parameter("alpha", 0.5, 4.0),
    Parameter("tp", 2.0, 18.0),
))

#: Draws from this space can violate PolicyConfig's Tp <= Td (Td=20):
#: the invalid-by-construction path must record, not redraw.
SPIKY_SPACE = SearchSpace((
    Parameter("tp", 15.0, 25.0),
))


# ----------------------------------------------------------------------
# Pure pieces: space, constraints, promotion, rungs
# ----------------------------------------------------------------------

def test_space_validation_and_canonical_order():
    space = SearchSpace((Parameter("tp", 2.0, 18.0),
                         Parameter("alpha", 0.5, 4.0)))
    assert [p.name for p in space.parameters] == ["alpha", "tp"]
    with pytest.raises(ValueError):
        SearchSpace(())
    with pytest.raises(ValueError):
        SearchSpace((Parameter("a", 0, 1), Parameter("a", 0, 1)))
    with pytest.raises(ValueError):
        Parameter("bad", 5.0, 1.0)
    with pytest.raises(ValueError):
        Parameter("bad", 0.0, 1.0, grid=(2.0,))


def test_grid_values_explicit_and_linspace():
    explicit = Parameter("t1", 1.0, 8.0, grid=(2.0, 4.0))
    assert explicit.grid_values(5) == [2.0, 4.0]
    spread = Parameter("t1", 1.0, 8.0)
    assert spread.grid_values(3) == [1.0, 4.5, 8.0]
    assert spread.grid_values(1) == [4.5]


def test_constraint_filtering():
    budget = Constraint("delay", 1.2)
    assert budget.satisfied({"delay": 1.2})
    assert not budget.satisfied({"delay": 1.21})
    assert not budget.satisfied({"energy": 5.0})  # metric missing
    constraints = (budget, Constraint("drop_probability", 0.05))
    assert feasible({"delay": 1.0, "drop_probability": 0.01},
                    constraints)
    assert not feasible({"delay": 1.0, "drop_probability": 0.99},
                        constraints)
    assert feasible({"anything": 1.0}, ())  # vacuous


def test_promote_feasible_first_then_objective():
    candidates = [
        ("a", 5.0, True),
        ("b", 1.0, False),   # best objective but infeasible
        ("c", 7.0, True),
        ("d", None, True),   # invalid: never promoted
    ]
    assert promote(candidates, eta=2) == ["a", "c"]
    # keep = max(1, 4 // 4) = 1
    assert promote(candidates, eta=4) == ["a"]
    # all infeasible -> still promote by objective
    worst = [("a", 5.0, False), ("b", 1.0, False)]
    assert promote(worst, eta=2) == ["b"]
    # ties broken by key
    tied = [("b", 3.0, True), ("a", 3.0, True)]
    assert promote(tied, eta=2) == ["a"]
    assert promote([("a", None, True)], eta=2) == []
    with pytest.raises(ValueError):
        promote(candidates, eta=1)


def test_halving_rungs_ladder():
    # 6 readings, 16 trials, eta=2 -> 5 rungs, geometric prefix.
    assert halving_rungs(6, 16, 2) == [1, 3, 6]
    assert halving_rungs(3, 8, 2) == [1, 3]
    # final rung always full fidelity, duplicates collapsed
    assert halving_rungs(1, 16, 2) == [1]
    assert halving_rungs(6, 1, 2) == [6]
    with pytest.raises(ValueError):
        halving_rungs(6, 16, 1)


# ----------------------------------------------------------------------
# End-to-end determinism
# ----------------------------------------------------------------------

def test_grid_search_deterministic_report():
    one = grid_search(TINY, SMALL_SPACE, points=2)
    two = grid_search(TINY, SMALL_SPACE, points=2)
    assert len(one.trials) == 4
    assert one.report() == two.report()
    assert [t.record() for t in one.trials] \
        == [t.record() for t in two.trials]
    assert one.best is not None


def test_random_search_same_seed_same_trace(tmp_path):
    kwargs = dict(space=SMALL_SPACE, n_trials=4, seed=99)
    one = random_search(TINY, trace_path=tmp_path / "a.jsonl", **kwargs)
    two = random_search(TINY, trace_path=tmp_path / "b.jsonl", **kwargs)
    assert (tmp_path / "a.jsonl").read_bytes() \
        == (tmp_path / "b.jsonl").read_bytes()
    assert one.report() == two.report()
    # a different seed draws a different sequence
    other = random_search(TINY, space=SMALL_SPACE, n_trials=4, seed=100)
    assert [t.overrides for t in other.trials] \
        != [t.overrides for t in one.trials]


def test_constraint_excludes_the_unconstrained_winner():
    free = grid_search(TINY, SMALL_SPACE, points=2)
    budget = free.best.metrics["delay"] - 1e-6  # exclude the winner
    bound = grid_search(TINY, SMALL_SPACE, points=2,
                        constraints=(Constraint("delay", budget),))
    # Grid points don't depend on constraints: same cells evaluated...
    assert [t.overrides for t in bound.trials] \
        == [t.overrides for t in free.trials]
    # ...but the previous winner is now infeasible.
    assert bound.best is None \
        or bound.best.run_id != free.best.run_id
    for trial in bound.trials:
        assert trial.feasible == (trial.valid and
                                  trial.metrics["delay"] <= budget)


def test_invalid_draws_recorded_not_redrawn():
    result = random_search(TINY, SPIKY_SPACE, n_trials=8, seed=3)
    assert len(result.trials) == 8
    invalid = [t for t in result.trials if not t.valid]
    assert invalid, "space straddles Tp<=Td; some draws must be invalid"
    for trial in invalid:
        assert trial.run_id == ""
        assert trial.metrics == {}
        assert not trial.feasible
    if result.best is not None:
        assert result.best.valid


def test_halving_promotes_and_finishes_at_full_fidelity():
    result = halving_search(TINY, SMALL_SPACE, n_trials=4, eta=2,
                            seed=11)
    rungs = sorted({t.rung for t in result.trials})
    assert rungs == [0, 1]          # halving_rungs(3, 4, 2) == [1, 3]
    first = [t for t in result.trials if t.rung == 0]
    final = [t for t in result.trials if t.rung == 1]
    assert len(first) == 4
    assert len(final) == 2          # max(1, 4 // 2) promoted
    assert {t.index for t in final} <= {t.index for t in first}
    assert result.final_rung == 1
    assert result.best is None or result.best.rung == 1


def test_halving_kill_resume_is_byte_identical(tmp_path):
    """The satellite: kill a search mid-flight, resume, and the
    completed trace and report match an uninterrupted run exactly."""
    trace = tmp_path / "trace.jsonl"
    kwargs = dict(space=SMALL_SPACE,
                  constraints=(Constraint("delay", 5.0),),
                  n_trials=4, eta=2, seed=11)
    full = halving_search(TINY, trace_path=trace, **kwargs)
    finished = trace.read_bytes()

    # Simulate a kill after the header + two trial records.
    lines = finished.decode().splitlines()
    trace.write_text("\n".join(lines[:3]) + "\n")
    resumed = halving_search(TINY, trace_path=trace, **kwargs)

    assert trace.read_bytes() == finished
    assert resumed.report() == full.report()
    assert [t.record() for t in resumed.trials] \
        == [t.record() for t in full.trials]


def test_trace_header_mismatch_raises(tmp_path):
    trace = tmp_path / "trace.jsonl"
    random_search(TINY, SMALL_SPACE, n_trials=2, seed=1,
                  trace_path=trace)
    with pytest.raises(ValueError):
        random_search(TINY, SMALL_SPACE, n_trials=2, seed=2,
                      trace_path=trace)


def test_trace_out_of_step_detected(tmp_path):
    trace_path = tmp_path / "trace.jsonl"
    result = random_search(TINY, SMALL_SPACE, n_trials=3, seed=1,
                           trace_path=trace_path)
    # Corrupt the order: swap the two first trial records.
    lines = trace_path.read_text().splitlines()
    lines[1], lines[2] = lines[2], lines[1]
    trace_path.write_text("\n".join(lines) + "\n")
    with pytest.raises(ValueError):
        random_search(TINY, SMALL_SPACE, n_trials=3, seed=1,
                      trace_path=trace_path)
    del result


def test_search_caches_across_invocations(tmp_path):
    from repro.runtime.cache import ResultCache

    cache = ResultCache(tmp_path / "cache")
    cold = random_search(TINY, SMALL_SPACE, n_trials=3, seed=5,
                         cache=cache)
    warm = random_search(TINY, SMALL_SPACE, n_trials=3, seed=5,
                         cache=cache)
    assert cold.n_cached == 0
    assert warm.n_cached == len([t for t in warm.trials if t.valid])
    assert warm.report() == cold.report()


def test_default_space_covers_the_paper_knobs():
    names = [p.name for p in default_space().parameters]
    assert names == ["alpha", "t1", "t2", "tp"]


def test_trace_replay_cursor():
    trace = SearchTrace(None, {"kind": "x"})
    assert trace.replay() is None
    trace.append({"trial": 0})
    assert trace.replay() is None  # cursor already at the tip
