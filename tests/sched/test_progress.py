"""work_dir_progress and the WorkDirIncomplete merge contract
(satellite #2: a spec-with-zero-progress dir is 'pending', not a
crash)."""

import os

import numpy as np
import pytest

from repro.capacity.simulator import CapacityConfig
from repro.sched import (WorkDirIncomplete, ensure_spec,
                         execute_work_dir, merge_work_dir, spec_payload,
                         work_dir_progress)
from repro.stream.sweep import lognormal_pool


def _payload(users=(5, 9)):
    pool = lognormal_pool(size=16, seed=7)
    config = CapacityConfig(n_channels=8, mean_interval=2.0,
                            horizon=50.0, seed=11)
    return spec_payload(pool, list(users), config, seed=3)


def _snapshot(path):
    return sorted(os.path.join(root, name)
                  for root, dirs, files in os.walk(path)
                  for name in files)


def test_spec_only_dir_is_pending_and_read_only(tmp_path):
    """Progress on an untouched spec reports pending and — crucially —
    writes nothing: polling a job must never advance or perturb it."""
    work_dir = tmp_path / "wd"
    ensure_spec(work_dir, _payload())
    before = _snapshot(work_dir)

    progress = work_dir_progress(work_dir)
    assert progress["state"] == "pending"
    assert progress["points_total"] == 2
    assert progress["points_complete"] == 0
    assert [p["state"] for p in progress["points"]] == \
        ["pending", "pending"]
    assert _snapshot(work_dir) == before


def test_merge_on_pending_dir_raises_incomplete(tmp_path):
    work_dir = tmp_path / "wd"
    ensure_spec(work_dir, _payload())
    with pytest.raises(WorkDirIncomplete) as caught:
        merge_work_dir(work_dir)
    assert "pending" in str(caught.value)
    assert caught.value.progress["state"] == "pending"


def test_progress_tracks_execution_to_complete(tmp_path):
    work_dir = tmp_path / "wd"
    payload = _payload()
    ensure_spec(work_dir, payload)
    execute_work_dir(work_dir, worker_id="t0", worker_index=0,
                     poll=0.01, heartbeat_interval=0.2,
                     stale_after=2.0)
    progress = work_dir_progress(work_dir)
    assert progress["state"] == "complete"
    assert progress["points_complete"] == progress["points_total"] == 2
    assert all(p["state"] == "complete" for p in progress["points"])
    assert progress["fingerprint"] == payload["fingerprint"]

    result = merge_work_dir(work_dir)
    assert [p.n_users for p in result.points] == [5, 9]


def test_progress_is_pure_after_completion_too(tmp_path):
    work_dir = tmp_path / "wd"
    ensure_spec(work_dir, _payload())
    execute_work_dir(work_dir, worker_id="t0", worker_index=0,
                     poll=0.01, heartbeat_interval=0.2,
                     stale_after=2.0)
    before = _snapshot(work_dir)
    work_dir_progress(work_dir)
    assert _snapshot(work_dir) == before
