"""Golden gate for the distributed executor: any worker count, any
partition, any crash pattern — byte-identical to the serial sweep."""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.capacity.simulator import CapacityConfig
from repro.sched import (WorkDirMismatch, ensure_spec, execute_work_dir,
                         merge_work_dir, run_distributed_sweep,
                         spec_payload)
from repro.stream.sweep import lognormal_pool, run_stream_sweep

SRC = str(Path(__file__).resolve().parents[2] / "src")

POOL = lognormal_pool(seed=7)
CONFIG = CapacityConfig(n_channels=100, horizon=400.0, seed=7)
COUNTS = [1500, 3000]
KW = dict(seed=7, block_arrivals=512)


def _serial():
    return run_stream_sweep(POOL, COUNTS, CONFIG, stream=True, **KW)


WORKER = """
import sys
import numpy as np
from repro.capacity.simulator import CapacityConfig
from repro.sched import run_distributed_sweep
from repro.stream.sweep import lognormal_pool

idx, work_dir = int(sys.argv[1]), sys.argv[2]
pool = lognormal_pool(seed=7)
config = CapacityConfig(n_channels=100, horizon=400.0, seed=7)
result = run_distributed_sweep(pool, [1500, 3000], config, seed=7,
                               work_dir=work_dir, block_arrivals=512,
                               unit_blocks=2, worker_index=idx,
                               stale_after=2.0, poll=0.02)
payload = result.to_dict()
payload["report"] = result.report()
sys.stdout.write(__import__("json").dumps(payload, sort_keys=True))
"""


def _spawn_worker(index: int, work_dir: Path) -> subprocess.Popen:
    env = dict(os.environ, PYTHONPATH=SRC)
    return subprocess.Popen(
        [sys.executable, "-c", WORKER, str(index), str(work_dir)],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env)


def _finish(proc: subprocess.Popen) -> str:
    out, err = proc.communicate(timeout=600)
    assert proc.returncode == 0, err.decode()
    return out.decode()


def test_single_worker_matches_serial_bytes(tmp_path):
    serial = _serial()
    result = run_distributed_sweep(POOL, COUNTS, CONFIG,
                                   work_dir=tmp_path, unit_blocks=2,
                                   **KW)
    assert result.report() == serial.report()
    assert json.dumps(result.to_dict(), sort_keys=True) \
        == json.dumps(serial.to_dict(), sort_keys=True)


def test_any_unit_partition_matches_serial_bytes(tmp_path):
    serial = _serial()
    for unit_blocks in (1, 3, 64):
        result = run_distributed_sweep(
            POOL, COUNTS, CONFIG, work_dir=tmp_path / f"u{unit_blocks}",
            unit_blocks=unit_blocks, **KW)
        assert result.report() == serial.report()


def test_rejoining_a_finished_dir_is_pure_read(tmp_path):
    run_distributed_sweep(POOL, COUNTS, CONFIG, work_dir=tmp_path,
                          unit_blocks=2, **KW)
    stats = execute_work_dir(tmp_path)
    assert stats["tasks"] == {}  # nothing left to run
    assert merge_work_dir(tmp_path).report() == _serial().report()


def test_mismatched_parameters_refuse_to_join(tmp_path):
    payload = spec_payload(POOL, COUNTS, CONFIG, **KW)
    ensure_spec(tmp_path, payload)
    other = spec_payload(POOL, COUNTS, CONFIG, seed=8,
                         block_arrivals=512)
    with pytest.raises(WorkDirMismatch):
        ensure_spec(tmp_path, other)


def test_two_workers_both_produce_serial_bytes(tmp_path):
    serial = _serial()
    expected = serial.report()
    first = _spawn_worker(0, tmp_path)
    second = _spawn_worker(1, tmp_path)
    for proc in (first, second):
        payload = json.loads(_finish(proc))
        assert payload["report"] == expected
        assert payload["points"] == serial.to_dict()["points"]


def test_killed_worker_is_stolen_and_bytes_still_match(tmp_path):
    """SIGKILL one worker mid-run: its stale claims are stolen, its
    units re-execute from the checksummed shards, and the survivor's
    report is still byte-identical to the serial sweep."""
    serial = _serial()
    victim = _spawn_worker(0, tmp_path)
    deadline = time.monotonic() + 30.0
    tasks = tmp_path / "tasks"
    # let the victim claim real work before killing it
    while time.monotonic() < deadline:
        if tasks.is_dir() and any(tasks.iterdir()):
            break
        time.sleep(0.05)
    time.sleep(0.5)
    victim.send_signal(signal.SIGKILL)
    victim.wait()
    victim.stdout.close()
    victim.stderr.close()
    survivor = _spawn_worker(1, tmp_path)
    payload = json.loads(_finish(survivor))
    assert payload["report"] == serial.report()
