"""Partitioner invariants: plans tile the stream exactly."""

import json

import pytest

from repro.capacity.simulator import CapacityConfig
from repro.sched.units import PointPlan, plan_point
from repro.stream.source import ArrivalBlockSource
from repro.stream.sweep import lognormal_pool

POOL = lognormal_pool(seed=7)
CONFIG = CapacityConfig(n_channels=100, horizon=600.0, seed=3)


def test_plan_tiles_the_stream():
    plan = plan_point(POOL, 3000, 11, config=CONFIG,
                      block_arrivals=512, unit_blocks=3)
    source = ArrivalBlockSource(POOL, 3000, config=CONFIG, seed=11,
                                block_arrivals=512)
    assert plan.n_sessions == source.scan()
    assert plan.n_blocks == -(-plan.n_sessions // 512)
    assert sum(u.n_blocks for u in plan.units) == plan.n_blocks
    starts = [u.start_block for u in plan.units]
    assert starts == list(range(0, plan.n_blocks, 3))
    # unit offsets are the emitted counts at each boundary
    assert [u.start_offset for u in plan.units] \
        == [min(s * 512, plan.n_sessions) for s in starts]


def test_plan_units_regenerate_their_exact_blocks():
    plan = plan_point(POOL, 2000, 5, config=CONFIG,
                      block_arrivals=512, unit_blocks=2)
    serial = ArrivalBlockSource(POOL, 2000, config=CONFIG, seed=5,
                                block_arrivals=512)
    serial_blocks = list(serial.blocks())
    cursor = 0
    for unit in plan.units:
        source = ArrivalBlockSource(POOL, 2000, config=CONFIG, seed=5,
                                    block_arrivals=512)
        source.restore(unit.source_state)
        for _ in range(unit.n_blocks):
            arrivals, services = next(source.blocks())
            ref_arrivals, ref_services = serial_blocks[cursor]
            assert (arrivals == ref_arrivals).all()
            assert (services == ref_services).all()
            cursor += 1
    assert cursor == len(serial_blocks)


def test_plan_roundtrips_through_json():
    plan = plan_point(POOL, 1500, 9, config=CONFIG,
                      block_arrivals=1024, unit_blocks=4)
    state = json.loads(json.dumps(plan.to_state()))
    assert PointPlan.from_state(state) == plan


def test_unit_blocks_one_is_valid():
    plan = plan_point(POOL, 1000, 2, config=CONFIG,
                      block_arrivals=1024, unit_blocks=1)
    assert all(u.n_blocks == 1 for u in plan.units)
    assert len(plan.units) == plan.n_blocks


def test_unit_blocks_must_be_positive():
    with pytest.raises(ValueError, match="unit_blocks"):
        plan_point(POOL, 1000, 2, config=CONFIG, unit_blocks=0)
