"""The carry-chain stitch is exact: speculative units + frontier
replay reproduce the serial drop chain on arbitrary fuzzed streams.

The hypothesis harness here drives :func:`resolve_drops_block`
directly (no arrival source in the way): generate a raw stream, cut it
into blocks and blocks into units, resolve every unit speculatively
from an empty carry, then stitch with replay-until-coincidence exactly
as :mod:`repro.sched.stitch` does — the dropped count and the final
frontier multiset must equal the serial carry-threaded chain, whatever
the stream, the cuts, or whether coincidence ever happens.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.capacity.simulator import CapacityConfig
from repro.fleet.capacity import DropCarry, resolve_drops_block
from repro.sched import stitch_point
from repro.sched.units import plan_point
from repro.sched.worker import frontier_digest, run_unit
from repro.stream.sweep import lognormal_pool, sweep_point
from repro.capacity.simulator import CapacitySimulator


def _cut(seq, sizes):
    out, i = [], 0
    for size in sizes:
        out.append(seq[i:i + size])
        i += size
    if i < len(seq):
        out.append(seq[i:])
    return [c for c in out if len(c)]


@st.composite
def stream_case(draw):
    n = draw(st.integers(min_value=1, max_value=60))
    gaps = draw(st.lists(st.floats(0.0, 5.0, allow_nan=False),
                         min_size=n, max_size=n))
    services = draw(st.lists(st.floats(0.1, 40.0, allow_nan=False),
                             min_size=n, max_size=n))
    n_channels = draw(st.integers(min_value=1, max_value=4))
    block_sizes = draw(st.lists(st.integers(1, 7), min_size=1,
                                max_size=n))
    unit_blocks = draw(st.integers(min_value=1, max_value=4))
    arrivals = np.cumsum(np.asarray(gaps, dtype=float))
    return (arrivals, np.asarray(services, dtype=float), n_channels,
            block_sizes, unit_blocks)


def _serial_chain(blocks, n_channels):
    carry = DropCarry.empty()
    dropped = 0
    for arrivals, services in blocks:
        mask, carry = resolve_drops_block(arrivals, services,
                                          n_channels, carry)
        dropped += int(mask.sum())
    return dropped, carry


def _speculative_units(blocks, n_channels, unit_blocks):
    units = []
    for start in range(0, len(blocks), unit_blocks):
        chunk = blocks[start:start + unit_blocks]
        carry = DropCarry.empty()
        per_block, digests = [], []
        for arrivals, services in chunk:
            mask, carry = resolve_drops_block(arrivals, services,
                                              n_channels, carry)
            per_block.append(int(mask.sum()))
            digests.append(frontier_digest(carry))
        units.append((chunk, per_block, digests, carry))
    return units


def _stitched(units, n_channels):
    carry = DropCarry.empty()
    dropped = 0
    for chunk, per_block, digests, final in units:
        if np.asarray(carry.busy).size == 0:
            dropped += sum(per_block)
            carry = final
            continue
        matched_at = None
        for j, (arrivals, services) in enumerate(chunk):
            mask, carry = resolve_drops_block(arrivals, services,
                                              n_channels, carry)
            dropped += int(mask.sum())
            if frontier_digest(carry) == digests[j]:
                matched_at = j
                break
        if matched_at is not None and matched_at + 1 < len(chunk):
            dropped += sum(per_block[matched_at + 1:])
            carry = final
    return dropped, carry


@settings(max_examples=120, deadline=None)
@given(stream_case())
def test_stitch_equals_serial_chain_on_fuzzed_streams(case):
    arrivals, services, n_channels, block_sizes, unit_blocks = case
    blocks = list(zip(_cut(arrivals, block_sizes),
                      _cut(services, block_sizes)))
    serial_dropped, serial_carry = _serial_chain(blocks, n_channels)
    units = _speculative_units(blocks, n_channels, unit_blocks)
    stitched_dropped, stitched_carry = _stitched(units, n_channels)
    assert stitched_dropped == serial_dropped
    assert frontier_digest(stitched_carry) \
        == frontier_digest(serial_carry)


def test_stitch_is_exact_when_frontiers_never_coincide():
    """Services much longer than a block: the frontier never forgets
    its past inside a unit, coincidence never fires, and the stitch
    degenerates to the full serial replay — still exact."""
    arrivals = np.arange(1.0, 25.0)
    services = np.full(arrivals.size, 1000.0)
    blocks = [(arrivals[i:i + 2], services[i:i + 2])
              for i in range(0, arrivals.size, 2)]
    serial_dropped, serial_carry = _serial_chain(blocks, 3)
    units = _speculative_units(blocks, 3, 2)
    stitched_dropped, stitched_carry = _stitched(units, 3)
    assert stitched_dropped == serial_dropped
    assert frontier_digest(stitched_carry) \
        == frontier_digest(serial_carry)


def test_stitch_point_matches_serial_sweep_point():
    """End to end through the real source: plan, run every unit
    speculatively, stitch — dataclass-equal to the serial point."""
    pool = lognormal_pool(seed=7)
    config = CapacityConfig(n_channels=100, horizon=400.0, seed=3)
    simulator = CapacitySimulator(pool, config)
    for unit_blocks in (1, 2, 5):
        plan = plan_point(pool, 2500, 13, config=config,
                          block_arrivals=512,
                          unit_blocks=unit_blocks)
        results = [run_unit(pool, plan, unit, config=config)
                   for unit in plan.units]
        stitched = stitch_point(pool, plan, results, config=config)
        serial = sweep_point(simulator, 2500, 13, stream=True,
                             block_arrivals=512)
        assert stitched == serial


def test_stitch_point_rejects_out_of_order_results():
    pool = lognormal_pool(seed=7)
    config = CapacityConfig(n_channels=100, horizon=300.0, seed=3)
    plan = plan_point(pool, 2000, 13, config=config,
                      block_arrivals=512, unit_blocks=1)
    results = [run_unit(pool, plan, unit, config=config)
               for unit in plan.units]
    assert len(results) >= 2
    results[0], results[1] = results[1], results[0]
    try:
        stitch_point(pool, plan, results, config=config)
    except ValueError as err:
        assert "out of order" in str(err)
    else:
        raise AssertionError("out-of-order results must be rejected")
