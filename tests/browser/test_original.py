"""Original (stock) engine behaviour."""

import pytest

from repro.browser.original import OriginalEngine
from repro.webpages.objects import ObjectKind

from tests.browser.engine_helpers import run_engine


def test_downloads_every_object(small_page):
    _, _, result = run_engine(small_page, OriginalEngine)
    assert result.object_count == small_page.object_count
    assert result.bytes_downloaded == pytest.approx(small_page.total_bytes)


def test_tx_time_equals_loading_time(small_page):
    """Paper Section 5.2: the original browser's data transmission time
    is defined as its loading time."""
    _, _, result = run_engine(small_page, OriginalEngine)
    assert result.data_transmission_time == result.load_complete_time
    assert result.layout_phase_time == 0.0


def test_builds_full_dom(full_page):
    _, engine, result = run_engine(full_page, OriginalEngine)
    assert result.dom_nodes == full_page.total_dom_nodes + 1  # + document


def test_reflows_and_redraws_happen(full_page):
    _, _, result = run_engine(full_page, OriginalEngine)
    assert result.reflow_count > 0
    assert result.redraw_count > 0
    assert result.reflow_time > 0
    assert result.redraw_time > 0


def test_layout_share_in_papers_band(full_comparisons):
    """[7] via the paper: layout computation is 40-70 % of the original
    browser's processing time on full-version pages."""
    shares = [c.original.load.layout_compute_share
              for c in full_comparisons]
    assert all(0.25 <= share <= 0.80 for share in shares)
    assert 0.35 <= sum(shares) / len(shares) <= 0.70


def test_final_display_is_last_event(small_page):
    _, _, result = run_engine(small_page, OriginalEngine)
    assert result.display_events[-1].kind == "final"
    assert result.final_display_time == pytest.approx(
        result.load_complete_time)


def test_first_display_waits_for_css_and_content(full_page):
    _, engine, result = run_engine(full_page, OriginalEngine)
    assert result.first_display_time is not None
    # Cannot paint before the first stylesheet has arrived and parsed.
    css_arrival = min(t.completed_at - result.started_at
                      for t in result.transfers
                      if full_page.objects[t.label].kind is ObjectKind.CSS)
    assert result.first_display_time > css_arrival
    # And not before a substantial share of objects was processed.
    fraction = OriginalEngine.FIRST_PAINT_FRACTION
    assert result.first_display_time >= fraction * 0.5 \
        * result.load_complete_time


def test_transmissions_spread_across_load(full_page):
    """The spread that keeps the radio lit: the last transfer completes
    in the final third of the load (Fig. 4 behaviour)."""
    _, _, result = run_engine(full_page, OriginalEngine)
    last_byte = max(t.completed_at - result.started_at
                    for t in result.transfers)
    assert last_byte > 0.60 * result.load_complete_time


def test_dynamic_refs_fetched_after_script_execution(small_page):
    _, _, result = run_engine(small_page, OriginalEngine)
    script = next(o for o in small_page.objects.values()
                  if o.kind is ObjectKind.JS)
    assert script.dynamic_references, "fixture needs a dynamic ref"
    transfers = {t.label: t for t in result.transfers}
    js_done = transfers[script.object_id].completed_at
    for ref in script.dynamic_references:
        assert transfers[ref].requested_at > js_done


def test_engine_is_single_use(small_page):
    handset, engine, _ = run_engine(small_page, OriginalEngine)
    with pytest.raises(RuntimeError, match="single-use"):
        engine.load(lambda result: None)


def test_no_duplicate_fetches(full_page):
    _, _, result = run_engine(full_page, OriginalEngine)
    labels = [t.label for t in result.transfers]
    assert len(labels) == len(set(labels))
