"""DOM tree construction."""

import pytest

from repro.browser.dom import DomTree
from repro.webpages.objects import ObjectKind


def test_empty_tree_has_document_root():
    tree = DomTree()
    assert tree.node_count == 1
    assert tree.root.parent is None


def test_add_subtree_counts_nodes():
    tree = DomTree()
    tree.add_subtree("page/index.html", ObjectKind.HTML, 12)
    assert tree.node_count == 13
    assert tree.nodes_from("page/index.html") == 12


def test_add_subtree_accumulates_per_object():
    tree = DomTree()
    tree.add_subtree("o", ObjectKind.HTML, 5)
    tree.add_subtree("o", ObjectKind.HTML, 3)
    assert tree.nodes_from("o") == 8


def test_zero_nodes_is_noop():
    tree = DomTree()
    tree.add_subtree("o", ObjectKind.JS, 0)
    assert tree.node_count == 1


def test_negative_count_rejected():
    tree = DomTree()
    with pytest.raises(ValueError):
        tree.add_subtree("o", ObjectKind.JS, -1)


def test_nesting_creates_depth():
    tree = DomTree()
    tree.add_subtree("o", ObjectKind.HTML, 20)
    assert tree.max_depth() >= 3  # every 4th node nests a level


def test_nodes_track_source_and_kind():
    tree = DomTree()
    added = tree.add_subtree("style.css", ObjectKind.CSS, 2)
    assert all(n.source_object_id == "style.css" for n in added)
    assert all(n.kind is ObjectKind.CSS for n in added)


def test_children_linked_to_parents():
    tree = DomTree()
    added = tree.add_subtree("o", ObjectKind.HTML, 6)
    for node in added:
        assert node in node.parent.children
