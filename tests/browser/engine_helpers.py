"""Shared helper for driving an engine over a page on a fresh handset."""

from repro.core.session import Handset


def run_engine(page, engine_cls, config=None):
    """Load ``page`` with ``engine_cls``; returns (handset, engine,
    PageLoadResult)."""
    handset = Handset(config)
    engine = handset.make_engine(engine_cls, page)
    results = []
    engine.load(results.append)
    handset.sim.run()
    assert results, "engine never completed"
    return handset, engine, results[0]
