"""Browser computation cost model."""

import pytest

from repro.browser.costs import BrowserCosts
from repro.webpages.objects import ObjectKind, WebObject


def make_obj(kind, size_kb, complexity=1.0):
    return WebObject("o", kind, size_kb * 1000.0, complexity=complexity)


def test_scan_cheaper_than_parse():
    costs = BrowserCosts()
    html = make_obj(ObjectKind.HTML, 50)
    css = make_obj(ObjectKind.CSS, 20)
    assert costs.scan_time(html) < costs.parse_time(html)
    assert costs.scan_time(css) < costs.parse_time(css)


def test_costs_scale_linearly_with_size():
    costs = BrowserCosts()
    small = make_obj(ObjectKind.HTML, 10)
    large = make_obj(ObjectKind.HTML, 40)
    assert costs.parse_time(large) == pytest.approx(
        4 * costs.parse_time(small))


def test_js_complexity_scales_exec_time():
    costs = BrowserCosts()
    plain = make_obj(ObjectKind.JS, 20, complexity=1.0)
    heavy = make_obj(ObjectKind.JS, 20, complexity=1.5)
    assert costs.exec_time(heavy) == pytest.approx(
        1.5 * costs.exec_time(plain))


def test_exec_requires_script():
    costs = BrowserCosts()
    with pytest.raises(ValueError):
        costs.exec_time(make_obj(ObjectKind.HTML, 10))


def test_decode_handles_both_media_kinds():
    costs = BrowserCosts()
    assert costs.decode_time(make_obj(ObjectKind.IMAGE, 10)) > 0
    assert costs.decode_time(make_obj(ObjectKind.FLASH, 10)) > 0


def test_churn_dirty_region_is_capped():
    costs = BrowserCosts()
    cap = costs.churn_node_cap
    assert costs.reflow_time(cap) == costs.reflow_time(cap * 10)
    assert costs.redraw_time(cap) == costs.redraw_time(cap * 10)
    assert costs.reflow_time(10) < costs.reflow_time(cap)


def test_min_task_time_floor():
    costs = BrowserCosts()
    tiny = make_obj(ObjectKind.CSS, 0.00001)
    assert costs.scan_time(tiny) == costs.min_task_time


def test_simple_display_much_cheaper_than_render():
    costs = BrowserCosts()
    assert costs.simple_display_time(500) < costs.render_time(500)


def test_style_and_layout_is_sum_of_components():
    costs = BrowserCosts()
    assert costs.style_and_layout_time(100) == pytest.approx(
        100 * (costs.style_format_per_node + costs.layout_per_node))


def test_validation():
    with pytest.raises(ValueError):
        BrowserCosts(parse_html_per_kb=-1)
    with pytest.raises(ValueError):
        BrowserCosts(churn_node_cap=0)
