"""Property tests: engine invariants over arbitrary generated pages.

Both engines must, for *any* page the generator can produce: download
exactly the page's bytes, keep the timeline causally ordered, agree with
each other on the final DOM, and (energy-aware only) keep the phase
separation and never return to DCH after the channel release.
"""

import pytest
from hypothesis import HealthCheck, example, given, settings
from hypothesis import strategies as st

from repro.browser.energy_aware import EnergyAwareEngine
from repro.browser.original import OriginalEngine
from repro.core.session import Handset
from repro.rrc.states import RrcState
from repro.webpages.generator import PageSpec, generate_page

page_specs = st.builds(
    PageSpec,
    name=st.just("prop"),
    url=st.just("http://prop.example"),
    mobile=st.booleans(),
    seed=st.integers(min_value=0, max_value=99_999),
    html_kb=st.floats(min_value=2, max_value=60),
    css_count=st.integers(min_value=0, max_value=2),
    css_kb=st.floats(min_value=1, max_value=15),
    js_count=st.integers(min_value=0, max_value=4),
    js_kb=st.floats(min_value=1, max_value=15),
    js_complexity=st.floats(min_value=0.5, max_value=1.5),
    js_dynamic_image_fraction=st.floats(min_value=0, max_value=0.5),
    js_chain=st.booleans(),
    image_count=st.integers(min_value=0, max_value=12),
    image_kb=st.floats(min_value=1, max_value=12),
    flash_count=st.integers(min_value=0, max_value=1),
    iframe_count=st.integers(min_value=0, max_value=2),
)


def load_with(engine_cls, page):
    handset = Handset()
    engine = handset.make_engine(engine_cls, page)
    results = []
    engine.load(results.append)
    handset.sim.run(max_events=200_000)
    assert results, "load never completed"
    return handset, results[0]


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(spec=page_specs)
def test_property_original_engine_invariants(spec):
    page = generate_page(spec)
    handset, result = load_with(OriginalEngine, page)
    # Everything downloaded, exactly once.
    labels = [t.label for t in result.transfers]
    assert sorted(labels) == sorted(page.objects)
    assert result.bytes_downloaded == pytest.approx(page.total_bytes)
    # Causal ordering: request <= start <= completion, inside the load.
    for transfer in result.transfers:
        assert transfer.requested_at <= transfer.started_at
        assert transfer.started_at <= transfer.completed_at
        assert transfer.completed_at <= (result.started_at
                                         + result.load_complete_time + 1e-9)
    # Accounting sanity.
    assert result.load_complete_time > 0
    assert result.tx_compute_time > 0
    assert result.final_display_time <= result.load_complete_time + 1e-9


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(spec=page_specs)
def test_property_energy_aware_engine_invariants(spec):
    page = generate_page(spec)
    handset, result = load_with(EnergyAwareEngine, page)
    # Phase separation: nothing arrives after the tx phase ends.
    tx_end = result.started_at + result.data_transmission_time
    for transfer in result.transfers:
        assert transfer.completed_at <= tx_end + 1e-9
    # Never back to DCH after the release.
    handset.machine.finalize()
    release = tx_end + handset.ril.total_latency
    for segment in handset.machine.segments:
        if segment.start >= release + 1e-9:
            assert segment.mode.state is not RrcState.DCH
    # No reflow/redraw churn, ever.
    assert result.reflow_count == 0
    assert result.redraw_count == 0


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
# Regression: a chained-script page whose late-discovered fetches hit a
# drained queue.  Before the link's ready-first dispatch, each paid a
# fresh RTT as downlink dead air while long-queued media sat ready
# behind it, pushing the energy-aware tx phase past the original
# browser's whole load.
@example(spec=PageSpec(
    name="prop", url="http://prop.example", mobile=False, seed=0,
    html_kb=2.0, css_count=0, css_kb=1.0, js_count=3, js_kb=2.0,
    js_complexity=1.0, js_dynamic_image_fraction=0.5, js_chain=True,
    image_count=8, image_kb=1.0, flash_count=1, iframe_count=0))
@given(spec=page_specs)
def test_property_engines_agree_on_page_content(spec):
    page = generate_page(spec)
    _, original = load_with(OriginalEngine, page)
    _, ours = load_with(EnergyAwareEngine, page)
    assert {t.label for t in original.transfers} \
        == {t.label for t in ours.transfers}
    assert original.dom_nodes == ours.dom_nodes
    assert ours.data_transmission_time \
        <= original.data_transmission_time + 1e-9
