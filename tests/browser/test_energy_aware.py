"""Energy-aware engine behaviour (Sections 4.1-4.2)."""

import pytest

from repro.browser.energy_aware import EnergyAwareEngine
from repro.browser.original import OriginalEngine
from repro.rrc.ril import RilMessageType
from repro.rrc.states import RrcState
from repro.webpages.objects import ObjectKind

from tests.browser.engine_helpers import run_engine


def test_downloads_every_object(full_page):
    _, _, result = run_engine(full_page, EnergyAwareEngine)
    assert result.object_count == full_page.object_count
    assert result.bytes_downloaded == pytest.approx(full_page.total_bytes)


def test_phases_are_strictly_separated(full_page):
    """No transmission may complete after the transmission phase ends —
    the whole point of the reorganisation."""
    _, _, result = run_engine(full_page, EnergyAwareEngine)
    last_byte = max(t.completed_at - result.started_at
                    for t in result.transfers)
    assert last_byte <= result.data_transmission_time + 1e-9
    assert result.load_complete_time > result.data_transmission_time


def test_no_reflow_or_redraw_ever(full_page):
    _, _, result = run_engine(full_page, EnergyAwareEngine)
    assert result.reflow_count == 0
    assert result.redraw_count == 0


def test_channel_released_at_tx_end(full_page):
    handset, _, result = run_engine(full_page, EnergyAwareEngine)
    releases = [m for m in handset.ril.log
                if m.message_type is RilMessageType.RELEASE_CHANNELS]
    assert len(releases) == 1
    assert releases[0].reply == "OK"
    assert releases[0].sent_at - result.started_at == pytest.approx(
        result.data_transmission_time)


def test_radio_in_low_power_during_layout(full_page):
    """After the channel release, the layout phase runs at FACH or
    below — the radio never returns to DCH."""
    handset, _, result = run_engine(full_page, EnergyAwareEngine)
    handset.machine.finalize()
    release_at = result.started_at + result.data_transmission_time + \
        handset.ril.total_latency
    for segment in handset.machine.segments:
        if segment.start >= release_at + 1e-9:
            assert segment.mode.state is not RrcState.DCH


def test_fetches_grouped_early(full_page):
    """Statically referenced objects are all requested right after the
    root scan — before the root is even fully parsed."""
    _, _, result = run_engine(full_page, EnergyAwareEngine)
    transfers = {t.label: t for t in result.transfers}
    root_arrival = transfers[full_page.root_id].completed_at
    scan_budget = 1.0  # scan is cheap; requests follow within ~a second
    for ref in full_page.root.static_references:
        assert transfers[ref].requested_at <= root_arrival + scan_budget


def test_tx_phase_shorter_than_original_load(full_page):
    _, _, ours = run_engine(full_page, EnergyAwareEngine)
    _, _, orig = run_engine(full_page, OriginalEngine)
    assert ours.data_transmission_time < orig.data_transmission_time


def test_intermediate_display_on_full_pages_only(full_page, small_page):
    _, _, full_result = run_engine(full_page, EnergyAwareEngine)
    assert full_result.first_display_time is not None
    _, _, mobile_result = run_engine(small_page, EnergyAwareEngine)
    assert mobile_result.first_display_time is None


def test_intermediate_display_is_early(full_page):
    """The simplified display needs no CSS — it appears well before the
    transmission phase ends (Fig. 12: 7 s vs a ~25 s tx phase)."""
    _, _, result = run_engine(full_page, EnergyAwareEngine)
    assert result.first_display_time < 0.5 * result.data_transmission_time


def test_media_decoded_only_in_layout_phase(full_page):
    handset, engine, result = run_engine(full_page, EnergyAwareEngine)
    decode_intervals = [iv for iv in handset.cpu.intervals
                        if iv.name.startswith("decode[")]
    n_media = (full_page.count_of_kind(ObjectKind.IMAGE)
               + full_page.count_of_kind(ObjectKind.FLASH))
    assert len(decode_intervals) == n_media
    tx_end = result.started_at + result.data_transmission_time
    for interval in decode_intervals:
        assert interval.start >= tx_end - 1e-9


def test_same_final_dom_as_original(full_page):
    _, _, ours = run_engine(full_page, EnergyAwareEngine)
    _, _, orig = run_engine(full_page, OriginalEngine)
    assert ours.dom_nodes == orig.dom_nodes


def test_css_never_parsed_during_tx_phase(full_page):
    handset, _, result = run_engine(full_page, EnergyAwareEngine)
    tx_end = result.started_at + result.data_transmission_time
    for interval in handset.cpu.intervals:
        if interval.name.startswith("parse_css"):
            assert interval.start >= tx_end - 1e-9


def test_dormancy_disabled_keeps_dch_tail(full_page):
    from dataclasses import replace
    from repro.browser.config import BrowserConfig
    from repro.core.config import ExperimentConfig
    config = replace(ExperimentConfig(),
                     browser=BrowserConfig(dormancy_after_tx=False))
    handset, _, result = run_engine(full_page, EnergyAwareEngine, config)
    assert not any(m.message_type is RilMessageType.RELEASE_CHANNELS
                   for m in handset.ril.log)
