"""Source bundles and graph re-derivation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.content.builder import derive_graph, synthesize_sources
from repro.webpages.corpus import find_page
from repro.webpages.generator import PageSpec, generate_page
from repro.webpages.objects import ObjectKind


def test_every_textual_object_gets_source(full_page):
    sources = synthesize_sources(full_page)
    for obj in full_page.objects.values():
        if obj.kind.is_multimedia:
            assert obj.object_id in sources.media_bytes
        else:
            assert obj.object_id in sources.text


def test_media_source_lookup_raises(full_page):
    sources = synthesize_sources(full_page)
    image = next(o for o in full_page.objects.values()
                 if o.kind is ObjectKind.IMAGE)
    with pytest.raises(KeyError):
        sources.source_of(image.object_id)


def test_derived_graph_matches_declared_graph(full_page):
    sources = synthesize_sources(full_page)
    graph = derive_graph(sources)
    assert set(graph) == set(full_page.objects)
    for object_id, refs in graph.items():
        assert set(refs) == set(full_page.objects[object_id].references)


def test_benchmark_page_roundtrip():
    page = find_page("espn.go.com/sports")
    graph = derive_graph(synthesize_sources(page, seed=11))
    assert set(graph) == set(page.objects)


def test_root_element_count_tracks_dom_nodes(full_page):
    from repro.content.html import parse_html
    sources = synthesize_sources(full_page)
    tree = parse_html(sources.source_of(full_page.root_id))
    assert tree.count_elements() == pytest.approx(
        full_page.root.dom_nodes, abs=2)


def test_sources_deterministic(full_page):
    a = synthesize_sources(full_page, seed=5)
    b = synthesize_sources(full_page, seed=5)
    assert a.text == b.text


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000),
       js=st.integers(min_value=0, max_value=5),
       images=st.integers(min_value=0, max_value=15),
       css=st.integers(min_value=0, max_value=3),
       chain=st.booleans())
def test_property_arbitrary_pages_roundtrip(seed, js, images, css, chain):
    """Property: for arbitrary generated pages, discovering the page
    from its sources alone reproduces the declared object graph."""
    spec = PageSpec(name=f"prop{seed}", url="http://prop", mobile=False,
                    seed=seed, html_kb=30, css_count=css, js_count=js,
                    image_count=images, js_chain=chain,
                    js_dynamic_image_fraction=0.4, iframe_count=1)
    page = generate_page(spec)
    graph = derive_graph(synthesize_sources(page, seed=seed))
    assert set(graph) == set(page.objects)
    for object_id, refs in graph.items():
        assert set(refs) == set(page.objects[object_id].references)
