"""The miniature script language."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.content.script import (
    ScriptError,
    execute_script,
    scan_script_urls,
    synthesize_script,
)


def test_execute_basic_program():
    result = execute_script('\n'.join([
        'let base = "img/photo"',
        'fetch concat(base, ".png")',
        'append 3',
        'compute 10',
    ]))
    assert result.fetched_urls == ["img/photo.png"]
    assert result.dom_nodes_appended == 3
    assert result.work_units == 10


def test_repeat_block():
    result = execute_script("repeat 4 {\n  append 2\n  compute 5\n}")
    assert result.dom_nodes_appended == 8
    assert result.work_units == 20


def test_nested_repeat():
    result = execute_script(
        "repeat 2 {\n  repeat 3 {\n    append 1\n  }\n}")
    assert result.dom_nodes_appended == 6


def test_concat_of_ints_and_strings():
    result = execute_script('\n'.join([
        'let n = 7',
        'fetch concat("img", n)',
    ]))
    assert result.fetched_urls == ["img7"]


def test_static_scan_cannot_see_constructed_urls():
    """The paper's point: scripts must be executed to learn their
    fetches."""
    program = synthesize_script(["site/img4", "site/data.json"], seed=3)
    assert scan_script_urls(program) == []
    executed = execute_script(program)
    assert executed.fetched_urls == ["site/img4", "site/data.json"]


def test_static_scan_sees_literal_fetches():
    assert scan_script_urls('fetch "plain.png"') == ["plain.png"]


def test_synthesized_budget_matches():
    program = synthesize_script(["u1"], dom_nodes=5, work_units=47, seed=0)
    result = execute_script(program)
    assert result.dom_nodes_appended == 5
    assert result.work_units == 47


def test_synthesize_without_nodes():
    program = synthesize_script([], dom_nodes=0, work_units=9, seed=0)
    result = execute_script(program)
    assert result.dom_nodes_appended == 0
    assert result.work_units == 9


@pytest.mark.parametrize("bad", [
    "fetch 5",                      # fetch needs a string
    "explode now",                  # unknown statement
    "append nope",                  # undefined name
    "let 9x = 1",                   # bad identifier
    'fetch "unterminated',          # bad literal
    "repeat 2 {\n  append 1",       # unclosed block
    "append -1",                    # negative count
])
def test_runtime_and_syntax_errors(bad):
    with pytest.raises(ScriptError):
        execute_script(bad)


def test_step_budget_guards_against_blowups():
    with pytest.raises(ScriptError, match="step budget"):
        execute_script(
            "repeat 1000 {\n  repeat 1000 {\n    compute 1\n  }\n}")


def test_comments_and_blank_lines_ignored():
    result = execute_script("# a comment\n\nappend 1\n")
    assert result.dom_nodes_appended == 1


@settings(max_examples=30, deadline=None)
@given(st.lists(st.text(alphabet="abcxyz/.0123456789", min_size=1,
                        max_size=30), min_size=0, max_size=6),
       st.integers(min_value=0, max_value=20),
       st.integers(min_value=0, max_value=200),
       st.integers(min_value=0, max_value=1000))
def test_property_synthesis_execution_roundtrip(urls, nodes, work, seed):
    """Property: whatever budget the synthesiser is given, execution
    reproduces it exactly, and the static scan stays blind."""
    program = synthesize_script(urls, dom_nodes=nodes, work_units=work,
                                seed=seed)
    result = execute_script(program)
    assert result.fetched_urls == list(urls)
    assert result.dom_nodes_appended == nodes
    assert result.work_units == work
    assert scan_script_urls(program) == []
