"""HTML synthesis, scanning, parsing."""

import pytest

from repro.content.html import (
    HtmlSyntaxError,
    parse_html,
    scan_html_urls,
    synthesize_html,
)


def sample_doc():
    return synthesize_html(
        stylesheets=["a.css"], scripts=["b.js"],
        images=["i1.png", "i2.png"], flash=["f.swf"],
        iframes=["frame.html"], links=["next.html"],
        target_elements=40, seed=1)


def test_scan_finds_all_resources():
    urls = scan_html_urls(sample_doc())
    assert set(urls) == {"a.css", "b.js", "i1.png", "i2.png", "f.swf",
                         "frame.html"}


def test_scan_ignores_plain_links():
    # <a href> is a navigation link, not a fetched resource.
    assert "next.html" not in scan_html_urls(sample_doc())


def test_parser_agrees_with_scanner():
    doc = sample_doc()
    assert set(parse_html(doc).resource_urls()) == set(scan_html_urls(doc))


def test_parser_builds_requested_element_count():
    for target in (10, 40, 120):
        doc = synthesize_html([], [], [], target_elements=target, seed=2)
        assert parse_html(doc).count_elements() == pytest.approx(
            target, abs=2)


def test_parser_tree_structure():
    tree = parse_html(sample_doc())
    assert tree.tag == "html"
    assert [child.tag for child in tree.children] == ["head", "body"]
    assert tree.find_all("img")
    assert len(tree.find_all("link")) == 1


def test_parse_attributes():
    tree = parse_html('<html><body><img src="x.png"></body></html>')
    (img,) = tree.find_all("img")
    assert img.attributes == {"src": "x.png"}


def test_text_content_collected():
    tree = parse_html("<html><body><p>hello world</p></body></html>")
    (paragraph,) = tree.find_all("p")
    assert paragraph.text == "hello world"


@pytest.mark.parametrize("bad", [
    "<html><body></html>",          # mismatched close
    "<html><body>",                 # unclosed
    "</div>",                       # stray close
    "<html></html><html></html>",   # two roots
    "",                             # empty
    "<html",                        # unclosed tag
])
def test_parser_rejects_malformed(bad):
    with pytest.raises(HtmlSyntaxError):
        parse_html(bad)


def test_void_tags_need_no_close():
    tree = parse_html('<html><body><br><img src="a"></body></html>')
    assert tree.count_elements() == 4


def test_synthesis_is_deterministic():
    assert sample_doc() == sample_doc()


def test_count_links():
    from repro.content.html import count_links
    doc = synthesize_html([], [], [], links=["a.html", "b.html"],
                          target_elements=20, seed=3)
    assert count_links(doc) == 2
    assert count_links("<html><body></body></html>") == 0
