"""CSS synthesis, scanning, parsing."""

import pytest

from repro.content.css import (
    CssSyntaxError,
    parse_css,
    scan_css_urls,
    synthesize_css,
)


def test_scan_extracts_backgrounds():
    sheet = synthesize_css(["img/a.png", "img/b.png"], target_rules=12,
                           seed=0)
    assert scan_css_urls(sheet) == ["img/a.png", "img/b.png"]


def test_scan_handles_quotes():
    assert scan_css_urls('x { background: url("a.png"); }') == ["a.png"]
    assert scan_css_urls("x { background: url('b.png'); }") == ["b.png"]


def test_parse_produces_requested_rule_count():
    sheet = synthesize_css(["a.png"], target_rules=25, seed=1)
    assert len(parse_css(sheet)) == 25


def test_parse_rule_contents():
    rules = parse_css("p { color: red; margin: 0 }")
    assert rules[0].selector == "p"
    assert rules[0].declarations == {"color": "red", "margin": "0"}


def test_parse_multiple_rules():
    rules = parse_css("a { color: red; }\nb { width: 2px; }")
    assert [rule.selector for rule in rules] == ["a", "b"]


@pytest.mark.parametrize("bad", [
    "p { color red }",     # missing colon
    "p { color: red;",     # unclosed
    "{ color: red; }",     # no selector
    "p color: red;",       # stray content
])
def test_parse_rejects_malformed(bad):
    with pytest.raises(CssSyntaxError):
        parse_css(bad)


def test_background_rules_carry_urls_in_declarations():
    sheet = synthesize_css(["a.png"], target_rules=5, seed=2)
    rules = parse_css(sheet)
    assert any("url(a.png)" in value
               for rule in rules
               for value in rule.declarations.values())


def test_empty_stylesheet():
    assert parse_css("") == []
    assert scan_css_urls("") == []
