"""Statistics helpers."""

import numpy as np
import pytest

from repro.analysis.stats import cdf_points, pearson, summarize


def test_pearson_perfect_correlation():
    x = np.arange(10.0)
    assert pearson(x, 2 * x + 1) == pytest.approx(1.0)
    assert pearson(x, -x) == pytest.approx(-1.0)


def test_pearson_constant_input_is_zero():
    assert pearson([1.0, 1.0, 1.0], [1.0, 2.0, 3.0]) == 0.0


def test_pearson_matches_numpy():
    rng = np.random.default_rng(0)
    x = rng.normal(size=200)
    y = 0.3 * x + rng.normal(size=200)
    assert pearson(x, y) == pytest.approx(np.corrcoef(x, y)[0, 1])


def test_pearson_validation():
    with pytest.raises(ValueError):
        pearson([1.0], [1.0])
    with pytest.raises(ValueError):
        pearson([1.0, 2.0], [1.0])


def test_cdf_points():
    points = cdf_points([1.0, 2.0, 3.0, 4.0], grid=[0.0, 2.0, 5.0])
    assert points == [(0.0, 0.0), (2.0, 0.5), (5.0, 1.0)]


def test_cdf_empty_rejected():
    with pytest.raises(ValueError):
        cdf_points([], grid=[1.0])


def test_summarize():
    summary = summarize([1.0, 2.0, 3.0, 4.0])
    assert summary.count == 4
    assert summary.mean == pytest.approx(2.5)
    assert summary.median == pytest.approx(2.5)
    assert summary.minimum == 1.0
    assert summary.maximum == 4.0
