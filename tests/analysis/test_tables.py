"""Table and chart rendering."""

import pytest

from repro.analysis.tables import ascii_chart, format_table


def test_table_alignment_and_title():
    text = format_table(("name", "value"), [("a", 1), ("bb", 22)],
                        title="demo")
    lines = text.splitlines()
    assert lines[0] == "demo"
    assert "name" in lines[1]
    assert set(lines[2]) <= {"-", "+"}
    assert len({len(line) for line in lines[1:]}) == 1  # equal widths


def test_table_float_formatting():
    text = format_table(("x",), [(1.23456,), (123.456,)])
    assert "1.235" in text
    assert "123.5" in text


def test_table_row_width_validated():
    with pytest.raises(ValueError):
        format_table(("a", "b"), [(1,)])
    with pytest.raises(ValueError):
        format_table((), [])


def test_ascii_chart_scales_bars():
    chart = ascii_chart([1.0, 2.0], width=10)
    lines = chart.splitlines()
    assert lines[0].count("#") == 5
    assert lines[1].count("#") == 10


def test_ascii_chart_empty_rejected():
    with pytest.raises(ValueError):
        ascii_chart([])
