"""Weibull dwell-time analysis."""

import numpy as np
import pytest
from scipy import stats

from repro.analysis.weibull import fit_weibull


def test_recovers_known_parameters():
    data = stats.weibull_min.rvs(0.8, scale=10.0, size=4000,
                                 random_state=7)
    fit = fit_weibull(data)
    assert fit.shape == pytest.approx(0.8, rel=0.05)
    assert fit.scale == pytest.approx(10.0, rel=0.05)


def test_exponential_special_case():
    data = np.random.default_rng(0).exponential(5.0, size=4000)
    fit = fit_weibull(data)
    assert fit.shape == pytest.approx(1.0, rel=0.05)
    assert fit.scale == pytest.approx(5.0, rel=0.1)


def test_derived_statistics():
    data = stats.weibull_min.rvs(1.5, scale=8.0, size=4000,
                                 random_state=3)
    fit = fit_weibull(data)
    assert fit.mean == pytest.approx(float(data.mean()), rel=0.05)
    assert fit.median == pytest.approx(float(np.median(data)), rel=0.05)
    assert not fit.negative_aging
    assert fit.cdf(fit.median) == pytest.approx(0.5, abs=0.01)
    assert fit.cdf(-1.0) == 0.0


def test_trace_dwell_times_show_negative_aging(default_trace):
    """The stylised fact from Liu et al. that the paper builds on:
    dwell-time Weibull shape < 1."""
    fit = fit_weibull(default_trace.reading_times())
    assert fit.negative_aging
    assert 0.3 < fit.shape < 0.9


def test_validation():
    with pytest.raises(ValueError):
        fit_weibull([1.0])
    with pytest.raises(ValueError):
        fit_weibull([1.0, -2.0])
