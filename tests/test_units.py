"""Unit-convention helpers."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units


def test_kb_is_thousand_bytes():
    assert units.kb(1) == 1000.0
    assert units.kb(760) == 760_000.0


def test_mb_is_million_bytes():
    assert units.mb(2) == 2_000_000.0


def test_as_kb_inverts_kb():
    assert units.as_kb(units.kb(123.4)) == pytest.approx(123.4)


def test_ms_minutes_hours():
    assert units.ms(250) == 0.25
    assert units.minutes(2) == 120.0
    assert units.hours(4) == 14400.0


@given(st.floats(min_value=0, max_value=1e12))
def test_require_non_negative_accepts_valid(value):
    assert units.require_non_negative("x", value) == value


@pytest.mark.parametrize("bad", [-1.0, -1e-9, float("nan"), float("inf")])
def test_require_non_negative_rejects(bad):
    with pytest.raises(ValueError):
        units.require_non_negative("x", bad)


@pytest.mark.parametrize("bad", [0.0, -3.0, float("nan"), float("inf")])
def test_require_positive_rejects(bad):
    with pytest.raises(ValueError):
        units.require_positive("x", bad)


def test_require_positive_accepts():
    assert units.require_positive("x", 1e-9) == 1e-9


@pytest.mark.parametrize("bad", [-0.001, 1.001, float("nan")])
def test_require_fraction_rejects(bad):
    with pytest.raises(ValueError):
        units.require_fraction("x", bad)


@given(st.floats(min_value=0.0, max_value=1.0))
def test_require_fraction_accepts_unit_interval(value):
    assert units.require_fraction("x", value) == value


def test_error_messages_name_the_parameter():
    with pytest.raises(ValueError, match="bandwidth"):
        units.require_positive("bandwidth", 0)
    assert not math.isnan(units.require_non_negative("t", 0.0))
