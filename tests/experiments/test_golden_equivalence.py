"""Golden equivalence: the fast paths must be byte-identical to the
slow reference paths.

The kernel keeps its original peek/pop/step loop behind
``REPRO_KERNEL_SLOW=1``, the GBRT keeps its per-feature split search
and per-row boosting update behind ``REPRO_GBRT_SLOW=1``, and the
fleet engine keeps the scalar heapq/per-record paths behind
``REPRO_FLEET_SLOW=1``.  Each test runs the same workload in two
subprocesses — one per path — and asserts the *entire* serialised
output matches, timestamps included.  The env vars are read at call
time inside library code, so subprocesses (not monkeypatching) are the
reliable way to flip whole runs.
"""

import os
import subprocess
import sys
from pathlib import Path

SRC = str(Path(__file__).resolve().parents[2] / "src")


def _run(script: str, slow_var: str = "", timeout: float = 600.0) -> str:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC
    env.pop("REPRO_KERNEL_SLOW", None)
    env.pop("REPRO_GBRT_SLOW", None)
    env.pop("REPRO_FLEET_SLOW", None)
    if slow_var:
        env[slow_var] = "1"
    proc = subprocess.run([sys.executable, "-c", script],
                          capture_output=True, text=True, env=env,
                          timeout=timeout)
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def _assert_identical(script: str, slow_var: str) -> None:
    fast = _run(script)
    slow = _run(script, slow_var=slow_var)
    assert fast == slow
    assert fast  # a trivially empty "report" would prove nothing


FIG08 = """
from repro.experiments.fig08_transmission_time import run
print(run().report())
"""

FIG11 = """
from repro.experiments.fig11_capacity import run
from repro.units import hours
print(run(horizon=hours(0.1)).report())
"""

FIG07 = """
from repro.experiments.fig07_reading_cdf import run
print(run().report())
"""

POLICY_EVAL = """
from repro.core.policy_eval import PolicyEvaluator
from repro.traces.generator import TraceConfig
evaluator = PolicyEvaluator(
    trace_config=TraceConfig(n_users=8, mean_views_per_user=40, seed=3))
for case in evaluator.evaluate():
    print(case)
"""

FAULTS_SWEEP = """
from repro.experiments.fig_sensitivity import run_profile
from repro.webpages.corpus import benchmark_pages
pages = benchmark_pages(mobile=True)[:2] + benchmark_pages(mobile=False)[:1]
print(run_profile("congested", seed=123, pages=pages).report())
"""

GBRT_FIG15 = """
import json
import numpy as np
from repro.ml.gbrt import GradientBoostedRegressor
from repro.ml.validation import train_test_split
from repro.traces.generator import generate_trace

dataset = generate_trace().filter_reading_time()
x, y = dataset.to_arrays()
x_train, x_test, y_train, _ = train_test_split(
    x, y, test_fraction=0.3, random_state=7)
# The fig15 predictor configuration, at reduced rounds for test speed.
model = GradientBoostedRegressor(
    n_estimators=40, max_leaves=8, learning_rate=0.08,
    min_samples_leaf=10, subsample=1.0, random_state=13)
model.fit(x_train, np.log1p(y_train))
print(json.dumps({
    "model": model.to_dict(),
    "train_losses": model.train_losses_,
    "predict": model.predict(x_test).tolist(),
    "apply": [t.apply(x_test).tolist() for t in model.trees_[:3]],
    "predict_one": model.predict_one(x_test[0]),
}))
"""

GBRT_SUBSAMPLE = """
import json
import numpy as np
from repro.ml.gbrt import GradientBoostedRegressor
from repro.ml.losses import AbsoluteLoss

rng = np.random.default_rng(99)
x = rng.normal(size=(300, 6))
y = x[:, 0] - 2.0 * x[:, 3] + rng.normal(scale=0.3, size=300)
model = GradientBoostedRegressor(
    n_estimators=25, max_leaves=6, subsample=0.7, min_samples_leaf=1,
    loss=AbsoluteLoss(), random_state=5)
model.fit(x, y)
print(json.dumps({
    "model": model.to_dict(),
    "train_losses": model.train_losses_,
    "predict": model.predict(x).tolist(),
}))
"""


def test_fig08_report_identical_on_slow_kernel():
    _assert_identical(FIG08, "REPRO_KERNEL_SLOW")


def test_fig11_report_identical_on_slow_kernel():
    _assert_identical(FIG11, "REPRO_KERNEL_SLOW")


def test_faults_sweep_report_identical_on_slow_kernel():
    _assert_identical(FAULTS_SWEEP, "REPRO_KERNEL_SLOW")


def test_fig11_report_identical_on_slow_fleet():
    """The batched drop resolver vs the per-session heapq loop —
    identical CapacityResults, so an identical fig11 report."""
    _assert_identical(FIG11, "REPRO_FLEET_SLOW")


def test_fig07_report_identical_on_slow_fleet():
    """Sorted-search CDF anchors vs the per-anchor boolean means."""
    _assert_identical(FIG07, "REPRO_FLEET_SLOW")


def test_policy_eval_identical_on_slow_fleet():
    """Whole-vector Algorithm 2 vs per-record ``decide`` — every
    Table-6 case's energy/delay/switch-rate must match exactly."""
    _assert_identical(POLICY_EVAL, "REPRO_FLEET_SLOW")


def test_faults_sweep_report_identical_on_slow_fleet():
    """The sensitivity sweep rides the same toggle; its report must not
    move when the fleet paths are disabled."""
    _assert_identical(FAULTS_SWEEP, "REPRO_FLEET_SLOW")


def test_gbrt_fig15_config_identical_on_slow_path():
    """Same trees (serialised node for node), same losses, same
    predictions — vectorised vs per-feature/per-row reference."""
    _assert_identical(GBRT_FIG15, "REPRO_GBRT_SLOW")


def test_gbrt_subsampled_lad_identical_on_slow_path():
    """The stochastic (subsample < 1) path re-sorts per round and uses
    a different loss; it must match the reference too."""
    _assert_identical(GBRT_SUBSAMPLE, "REPRO_GBRT_SLOW")
