"""Capacity, prediction accuracy, six cases, and the suite runner."""

import pytest

from repro.experiments import (
    fig11_capacity,
    fig15_prediction_accuracy,
    fig16_six_cases,
)
from repro.experiments.runner import ALL_EXPERIMENTS, run_all
from repro.traces.generator import TraceConfig
from repro.units import hours


@pytest.fixture(scope="module")
def fig11():
    # Shorter horizon than the default experiment for test speed; the
    # capacity ordering is robust to it.
    return fig11_capacity.run(horizon=hours(0.5))


def test_fig11_capacity_gains(fig11):
    for benchmark in fig11.benchmarks:
        assert benchmark.gain > 0.08
        assert benchmark.energy_aware.capacity_at_target \
            > benchmark.original.capacity_at_target


def test_fig11_full_benchmark_gains_more(fig11):
    by_label = {b.label: b for b in fig11.benchmarks}
    assert by_label["full"].gain > by_label["mobile"].gain


def test_fig11_drop_curves_monotone(fig11):
    for benchmark in fig11.benchmarks:
        for curve in (benchmark.original, benchmark.energy_aware):
            probabilities = curve.drop_probabilities
            assert probabilities == sorted(probabilities)


def test_fig15_interest_threshold_helps():
    result = fig15_prediction_accuracy.run()
    for threshold in (9.0, 20.0):
        assert result.improvement(threshold) > 0.03
        assert result.accuracy(threshold, True) > 0.72
    assert "Fig. 15" in result.report()


def test_fig16_small_trace_orderings():
    config = TraceConfig(n_users=10, mean_views_per_user=60,
                         catalog_size=16, seed=77)
    result = fig16_six_cases.run(trace_config=config)
    assert result.case("original-always-off").delay_saving < 0
    assert result.case("accurate-9").power_saving == max(
        case.power_saving for case in result.cases)
    assert "Fig. 16" in result.report()


def test_runner_registry_covers_every_table_and_figure():
    ids = [experiment_id for experiment_id, _, _ in ALL_EXPERIMENTS]
    assert ids == ["fig01", "fig03", "fig04", "fig07", "fig08", "fig09",
                   "fig10", "fig11", "fig12_13", "fig14", "fig15",
                   "fig16", "table04", "table05", "table07"]


def test_runner_selected_subset():
    suite = run_all(only=("fig03",))
    assert set(suite.reports) == {"fig03"}
    assert "break-even" in suite.render()
