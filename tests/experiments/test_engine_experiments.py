"""Engine-driven experiments (Figs. 8-10, 12-14): paper-shape checks."""

import pytest

from repro.experiments import (
    fig08_transmission_time,
    fig09_power_trace,
    fig10_power_consumption,
    fig12_13_display_snapshots,
    fig14_display_time,
)


@pytest.fixture(scope="module")
def fig08():
    return fig08_transmission_time.run()


@pytest.fixture(scope="module")
def fig10():
    return fig10_power_consumption.run()


def test_fig08_groups_cover_both_benchmarks_and_pages(fig08):
    labels = {group.label for group in fig08.groups}
    assert labels == {"mobile", "full", "cnn", "www.motors.ebay.com"}


def test_fig08_savings_in_band(fig08):
    by_label = {g.label: g for g in fig08.groups}
    assert 0.08 <= by_label["mobile"].tx_saving <= 0.30
    assert 0.18 <= by_label["full"].tx_saving <= 0.38
    assert by_label["full"].loading_saving >= 0.08
    assert by_label["www.motors.ebay.com"].tx_saving \
        > by_label["cnn"].tx_saving


def test_fig08_layout_phase_is_short(fig08):
    """Paper: the energy-aware layout phase is a small tail of the load,
    not another loading."""
    for group in fig08.groups:
        assert group.energy_aware_layout < 0.35 * group.energy_aware_tx


def test_fig09_energy_aware_finishes_tx_earlier():
    result = fig09_power_trace.run()
    assert result.energy_aware.tx_complete < result.original.tx_complete
    assert result.energy_aware.mean_power < result.original.mean_power


def test_fig09_energy_aware_trace_ends_at_idle_power():
    result = fig09_power_trace.run()
    tail = result.energy_aware.trace.samples[-8:]
    assert all(s.watts == pytest.approx(0.15) for s in tail)


def test_fig10_savings(fig10):
    by_label = {bar.label: bar for bar in fig10.bars}
    assert by_label["mobile"].saving > 0.30
    assert by_label["full"].saving > 0.18
    # espn saves more than the mobile cnn page in absolute joules
    espn = by_label["espn.go.com/sports"]
    cnn = by_label["cnn"]
    espn_delta = (espn.original_open + espn.original_read
                  - espn.energy_aware_open - espn.energy_aware_read)
    cnn_delta = (cnn.original_open + cnn.original_read
                 - cnn.energy_aware_open - cnn.energy_aware_read)
    assert espn_delta > cnn_delta


def test_fig10_reading_energy_is_idle_for_ours(fig10):
    for bar in fig10.bars:
        assert bar.energy_aware_read == pytest.approx(20 * 0.15, rel=0.05)
        assert bar.original_read > bar.energy_aware_read


def test_fig12_13_leads():
    result = fig12_13_display_snapshots.run()
    assert result.first_display_lead > 5.0   # paper: 10.6 s
    assert result.final_display_lead > 1.0   # paper: 5.9 s
    assert result.energy_aware_first < result.original_first
    assert result.energy_aware_final < result.original_final


def test_fig14_full_version_savings():
    result = fig14_display_time.run()
    rows = {row.label: row for row in result.rows}
    assert rows["full"].first_saving > 0.30
    assert 0.05 <= rows["full"].final_saving <= 0.30
    # Mobile: no intermediate display in our engine...
    assert rows["mobile"].ours_first is None
    # ...and its final display lands near the original's intermediate.
    assert rows["mobile"].ours_final == pytest.approx(
        rows["mobile"].original_first, rel=0.45)
