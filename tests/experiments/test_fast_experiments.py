"""Cheap experiments: exact calibration targets and report rendering."""

import pytest

from repro.experiments import (
    fig01_power_states,
    fig03_intuitive_switching,
    fig04_traffic_load,
    fig07_reading_cdf,
    table04_correlation,
    table05_state_power,
    table07_prediction_cost,
)


def test_fig01_state_powers_match_table5():
    result = fig01_power_states.run()
    assert result.mean_power_by_state["IDLE"] == pytest.approx(0.15)
    assert result.mean_power_by_state["FACH"] == pytest.approx(0.63)
    assert result.mean_power_by_state["DCH"] == pytest.approx(1.25,
                                                              abs=0.11)
    assert "Fig. 1" in result.report()


def test_fig01_timeline_walks_all_states():
    result = fig01_power_states.run()
    modes = " ".join(result.timeline)
    for token in ("idle", "promo_idle_dch", "dch_tx", "fach"):
        assert token in modes


def test_fig03_breakeven_at_nine_seconds():
    result = fig03_intuitive_switching.run()
    assert result.crossover == 9
    assert result.extra_delay == pytest.approx(1.75)


def test_fig03_savings_negative_below_and_positive_above():
    result = fig03_intuitive_switching.run()
    for point in result.points:
        if point.interval < 9:
            assert point.saving < 0.05
        if point.interval > 9:
            assert point.saving > 0


def test_fig03_saving_monotone_nondecreasing():
    result = fig03_intuitive_switching.run()
    savings = [p.saving for p in result.points]
    assert all(b >= a - 1e-9 for a, b in zip(savings, savings[1:]))


def test_fig04_browsing_much_slower_than_bulk():
    result = fig04_traffic_load.run()
    assert result.browsing_duration > 2.0 * result.bulk_duration
    assert result.total_kb == pytest.approx(760, rel=0.08)


def test_fig04_traffic_is_spread_not_compact():
    result = fig04_traffic_load.run()
    busy = [s.kilobytes for s in result.browsing_series
            if s.kilobytes > 0.5]
    bulk_busy = [s.kilobytes for s in result.bulk_series
                 if s.kilobytes > 0.5]
    # Browsing dribbles: its per-bucket rate sits well below the bulk
    # socket's line rate, and it occupies more buckets.
    assert len(busy) > len(bulk_busy)
    assert (sum(bulk_busy) / len(bulk_busy)
            > 1.4 * sum(busy) / len(busy))


def test_fig07_cdf_anchors():
    result = fig07_reading_cdf.run()
    for threshold, paper, ours in result.anchors:
        assert ours == pytest.approx(paper, abs=3.0)


def test_table04_no_notable_correlation():
    result = table04_correlation.run()
    assert result.max_abs < 0.12
    assert set(result.correlations) == {
        "transmission_time", "page_size_kb", "download_objects",
        "download_js_files", "download_figures", "figure_size_kb",
        "js_running_time", "second_urls", "page_height", "page_width"}


def test_table05_measured_matches_paper():
    result = table05_state_power.run()
    for label, paper_value in (
            ("IDLE state", 0.15), ("FACH state", 0.63),
            ("DCH state without transmission", 1.15),
            ("DCH state with transmission", 1.25),
            ("Fully running CPU (IDLE state)", 0.60)):
        assert result.measured[label] == pytest.approx(paper_value,
                                                       abs=0.02)


def test_table07_linear_scaling():
    result = table07_prediction_cost.run(repetitions=5)
    times = [row.execution_time for row in result.rows]
    assert times[0] < times[1] < times[2]
    # 20x the trees should cost roughly 20x the time (generous band:
    # host timers are noisy at sub-millisecond scales).
    assert 8 <= times[2] / times[0] <= 50
    for row in result.rows:
        assert 5 <= row.nodes_per_tree <= 9  # paper: 8 nodes per tree


def test_reports_render(capsys):
    for module in (fig03_intuitive_switching, fig07_reading_cdf,
                   table04_correlation):
        text = module.run().report()
        assert len(text.splitlines()) > 3
