"""Ablation studies: each must demonstrate its design argument."""

import pytest

from repro.experiments import ablations
from repro.traces.generator import TraceConfig


SMALL = TraceConfig(n_users=14, mean_views_per_user=110, catalog_size=40,
                    seed=31)


@pytest.fixture(scope="module")
def reorganisation():
    return ablations.reorganisation_ablation()


def test_reorganisation_alone_captures_most_of_the_saving(reorganisation):
    """Grouping transmissions is the big lever; the channel release adds
    a smaller layout-phase saving on top."""
    original = reorganisation.row("original")
    no_release = reorganisation.row("reorganised, no release")
    full = reorganisation.row("energy-aware (full)")
    saving_reorg = original.loading_energy - no_release.loading_energy
    saving_release = no_release.loading_energy - full.loading_energy
    assert saving_reorg > saving_release > 0


def test_reorganisation_shrinks_tx_time(reorganisation):
    assert reorganisation.row("energy-aware (full)").tx_time \
        < reorganisation.row("original").tx_time


def test_intermediate_display_costs_little(reorganisation):
    with_display = reorganisation.row("energy-aware (full)")
    without = reorganisation.row("reorganised, no intermediate display")
    assert abs(with_display.loading_energy - without.loading_energy) < 1.0
    assert with_display.load_time - without.load_time < 0.5


def test_timer_ablation_shows_the_tradeoff():
    result = ablations.timer_ablation()
    # Longest timers: most energy, no promotion penalty at the click.
    assert result.rows[-1].total_energy == max(r.total_energy
                                               for r in result.rows)
    assert result.rows[-1].next_click_delay < result.rows[0].next_click_delay
    # Shortest timers: the click promotes from IDLE.
    assert result.rows[0].next_click_delay == pytest.approx(2.0)


def test_predictor_ablation_trees_beat_linear():
    result = ablations.predictor_ablation(SMALL)
    linear_tp = result.accuracy("linear (ridge)", 9.0)
    for budget in (25, 100):
        assert result.accuracy(f"GBRT M={budget}", 9.0) > linear_tp
    assert "linear" in result.report()


def test_alpha_ablation_tradeoff():
    result = ablations.interest_threshold_ablation(SMALL)
    coverages = [row.coverage for row in result.rows]
    assert coverages[0] == 1.0
    assert coverages == sorted(coverages, reverse=True)
    # Accuracy at a generous alpha beats no-threshold accuracy.
    assert result.rows[-1].accuracy_tp > result.rows[0].accuracy_tp


def test_carrier_ablation_savings_persist():
    result = ablations.carrier_ablation(reading_time=20.0)
    assert len(result.rows) == 4
    for row in result.rows:
        assert row.energy_saving > 0.15
    named = {row.carrier: row for row in result.rows}
    # Aggressive timers shrink the saving (the original browser already
    # idles quickly); conservative timers grow it.
    assert named["aggressive"].energy_saving \
        < named["conservative"].energy_saving
