"""3G link: RRC gating, FIFO/priority scheduling, pipelining."""

import pytest

from repro.network.link import Link, NetworkConfig
from repro.rrc.machine import RrcMachine
from repro.rrc.states import RrcState
from repro.sim.kernel import Simulator
from repro.units import kb


def make_link(config=None):
    sim = Simulator()
    machine = RrcMachine(sim)
    return sim, machine, Link(sim, machine, config)


def test_single_transfer_pays_promotion_and_wire_time():
    config = NetworkConfig()
    sim, machine, link = make_link(config)
    done = []
    link.fetch(kb(70), done.append, label="one")
    sim.run()
    (transfer,) = done
    promo = machine.config.promo_idle_latency
    assert transfer.started_at == pytest.approx(promo)
    assert transfer.duration == pytest.approx(
        config.wire_time(kb(70)))


def test_wire_time_scales_with_size():
    config = NetworkConfig()
    assert (config.wire_time(kb(100)) - config.wire_time(kb(30))
            == pytest.approx(kb(70) / config.downlink_bandwidth))


def test_queued_request_rtt_is_pipelined_away():
    """A request that waited longer than one RTT behind other transfers
    starts streaming immediately when the link frees."""
    config = NetworkConfig()
    assert config.wire_time(kb(10), queue_delay=10.0) == pytest.approx(
        config.pipeline_overhead
        + config.request_bytes / config.uplink_bandwidth
        + kb(10) / config.downlink_bandwidth)


def test_partial_queue_delay_pays_partial_rtt():
    config = NetworkConfig(rtt=0.4)
    full = config.wire_time(kb(10), queue_delay=0.0)
    partial = config.wire_time(kb(10), queue_delay=0.1)
    assert full - partial == pytest.approx(0.1)


def test_transfers_are_serialized():
    sim, machine, link = make_link()
    done = []
    link.fetch(kb(50), done.append, label="a")
    link.fetch(kb(50), done.append, label="b")
    sim.run()
    first, second = done
    assert second.started_at == pytest.approx(first.completed_at)


def test_high_priority_jumps_ahead_of_images():
    sim, machine, link = make_link()
    order = []
    link.fetch(kb(20), lambda t: order.append(t.label), label="doc1")
    link.fetch(kb(20), lambda t: order.append(t.label), label="img",
               high_priority=False)
    link.fetch(kb(20), lambda t: order.append(t.label), label="doc2")
    sim.run()
    assert order == ["doc1", "doc2", "img"]


def test_ready_response_jumps_ahead_of_fresh_request():
    """A long-queued image whose RTT has elapsed streams before a
    just-issued document request that would stall the pipe for a fresh
    round trip (the serial model of parallel connections)."""
    config = NetworkConfig()
    sim, machine, link = make_link(config)
    order = []
    link.fetch(kb(40), lambda t: order.append(t.label), label="doc1")
    link.fetch(kb(5), lambda t: order.append(t.label), label="img",
               high_priority=False)

    def late_doc():
        link.fetch(kb(5), lambda t: order.append(t.label), label="doc2")

    # Issue doc2 moments before doc1's last byte: its RTT has not
    # elapsed, while img has been queued for the whole doc1 transfer.
    promo = machine.config.promo_idle_latency
    sim.schedule(promo + config.wire_time(kb(40)) - 0.01, late_doc)
    sim.run()
    assert order == ["doc1", "img", "doc2"]
    img, doc2 = link.transfers[1], link.transfers[2]
    # img streams with its RTT fully pipelined away...
    assert img.duration == pytest.approx(
        config.wire_time(kb(5), queue_delay=10.0))
    # ...and doc2's remaining RTT is partly hidden behind it.
    assert doc2.duration < config.wire_time(kb(5))


def test_fresh_requests_keep_priority_order_when_none_ready():
    """With no response ready to stream, the strict priority-FIFO order
    still applies (nothing to hide the RTT behind)."""
    sim, machine, link = make_link()
    order = []
    link.fetch(kb(20), lambda t: order.append(t.label), label="img",
               high_priority=False)
    link.fetch(kb(20), lambda t: order.append(t.label), label="doc")
    sim.run()
    assert order == ["doc", "img"]


def test_radio_transmits_exactly_during_wire_time():
    sim, machine, link = make_link()
    link.fetch(kb(70), lambda t: None)
    sim.run()
    machine.finalize()
    from repro.rrc.states import RadioMode
    tx_time = machine.time_in_mode(RadioMode.DCH_TX)
    transfer = link.transfers[0]
    assert tx_time == pytest.approx(transfer.duration)


def test_back_to_back_transfers_never_demote():
    """Continuous queued transfers must hold the radio at DCH (T1 is
    re-armed/cancelled at each boundary)."""
    sim, machine, link = make_link()
    for index in range(5):
        link.fetch(kb(30), lambda t: None, label=f"t{index}")
    sim.run()
    machine.finalize()
    from repro.rrc.states import RadioMode
    # Only one promotion; no FACH segment until after the last transfer.
    assert machine.promotions["IDLE"] == 1
    fach_segments = [s for s in machine.segments
                     if s.mode is RadioMode.FACH]
    last_tx_end = max(t.completed_at for t in link.transfers)
    assert all(s.start >= last_tx_end for s in fach_segments)


def test_radio_reaches_idle_after_all_transfers():
    sim, machine, link = make_link()
    link.fetch(kb(10), lambda t: None)
    sim.run()
    assert machine.state is RrcState.IDLE


def test_bytes_transferred_counts_completed_payloads():
    sim, machine, link = make_link()
    link.fetch(kb(10), lambda t: None)
    link.fetch(kb(20), lambda t: None)
    sim.run()
    assert link.bytes_transferred == pytest.approx(kb(30))


def test_busy_flag():
    sim, machine, link = make_link()
    assert not link.busy
    link.fetch(kb(10), lambda t: None)
    assert link.busy
    sim.run()
    assert not link.busy


def test_zero_byte_fetch_completes():
    sim, machine, link = make_link()
    done = []
    link.fetch(0.0, done.append, label="empty")
    sim.run()
    assert done[0].complete


def test_zero_byte_fetch_pays_only_request_overheads():
    """An empty payload still costs the RTT, the request upload and the
    per-request overhead — just no downlink time."""
    config = NetworkConfig()
    sim, machine, link = make_link(config)
    done = []
    link.fetch(0.0, done.append, label="empty")
    sim.run()
    assert done[0].duration == pytest.approx(
        config.rtt + config.pipeline_overhead
        + config.request_bytes / config.uplink_bandwidth)
    assert done[0].attempts == 1
    assert not done[0].failed


def test_negative_size_rejected():
    sim, machine, link = make_link()
    with pytest.raises(ValueError):
        link.fetch(-1.0, lambda t: None)


def test_fetch_from_completion_callback_reuses_dch():
    """A fetch issued from a completion callback (discovery chain) must
    not bounce the radio through FACH."""
    sim, machine, link = make_link()
    done = []

    def chain(transfer):
        done.append(transfer)
        if len(done) == 1:
            link.fetch(kb(10), chain, label="second")

    link.fetch(kb(10), chain, label="first")
    sim.run()
    assert len(done) == 2
    assert machine.promotions["IDLE"] == 1
    assert machine.promotions["FACH"] == 0


def test_network_config_validation():
    with pytest.raises(ValueError):
        NetworkConfig(downlink_bandwidth=0)
    with pytest.raises(ValueError):
        NetworkConfig(rtt=-0.1)


def _timeline(transfers):
    return [(t.label, t.high_priority, t.started_at, t.completed_at)
            for t in transfers]


def test_fetch_many_matches_sequential_fetches():
    """A mixed-priority batch produces the very same transfer timeline
    as back-to-back ``fetch`` calls (the dispatch the first sequential
    fetch would trigger happens at the same queue state)."""
    requests = [(kb(30), "doc", True), (kb(80), "img", False),
                (kb(10), "css", True), (kb(40), "media", False)]

    sim_a, _, link_a = make_link()
    done_a = []
    for size, label, high in requests:
        link_a.fetch(size, done_a.append, label=label, high_priority=high)
    sim_a.run()

    sim_b, _, link_b = make_link()
    done_b = []
    batch = link_b.fetch_many([(size, done_b.append, label, high)
                               for size, label, high in requests])
    assert [t.label for t in batch] == [label for _, label, _ in requests]
    sim_b.run()

    assert _timeline(link_b.transfers) == _timeline(link_a.transfers)
    assert [t.label for t in done_b] == [t.label for t in done_a]


def test_fetch_many_while_channel_held_matches_sequential():
    """Batches issued from a completion callback (channel already DCH,
    so dispatch is synchronous) must match the sequential path too."""
    follow_up = [(kb(20), "late-img", False), (kb(5), "late-css", True)]

    def drive(link, sink, use_batch):
        def first_done(transfer):
            sink.append(transfer)
            if use_batch:
                link.fetch_many([(size, sink.append, label, high)
                                 for size, label, high in follow_up])
            else:
                for size, label, high in follow_up:
                    link.fetch(size, sink.append, label=label,
                               high_priority=high)
        link.fetch(kb(50), first_done, label="root")

    sim_a, _, link_a = make_link()
    done_a = []
    drive(link_a, done_a, use_batch=False)
    sim_a.run()

    sim_b, _, link_b = make_link()
    done_b = []
    drive(link_b, done_b, use_batch=True)
    sim_b.run()

    assert _timeline(link_b.transfers) == _timeline(link_a.transfers)


def test_fetch_many_empty_batch_is_noop():
    sim, _, link = make_link()
    assert link.fetch_many([]) == []
    sim.run()
    assert link.transfers == []


def test_fetch_many_rejects_negative_size():
    _, _, link = make_link()
    with pytest.raises(ValueError):
        link.fetch_many([(kb(10), lambda t: None, "ok", True),
                         (-1.0, lambda t: None, "bad", True)])
