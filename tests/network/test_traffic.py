"""Traffic bucketing (Fig. 4 machinery)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.traffic import bucket_traffic
from repro.network.transfer import Transfer


def make_transfer(start, end, size, label="t"):
    transfer = Transfer(label=label, size_bytes=size, requested_at=start)
    transfer.started_at = start
    transfer.completed_at = end
    return transfer


def test_single_transfer_spread_uniformly():
    transfer = make_transfer(0.0, 1.0, 1000.0)
    samples = bucket_traffic([transfer], bucket_seconds=0.5)
    assert [round(s.kilobytes, 6) for s in samples] == [0.5, 0.5]


def test_partial_bucket_attribution():
    transfer = make_transfer(0.25, 0.75, 1000.0)
    samples = bucket_traffic([transfer], bucket_seconds=0.5)
    assert samples[0].kilobytes == pytest.approx(0.5)
    assert samples[1].kilobytes == pytest.approx(0.5)


def test_incomplete_transfers_ignored():
    pending = Transfer(label="p", size_bytes=100, requested_at=0.0)
    samples = bucket_traffic([pending])
    assert all(s.kilobytes == 0 for s in samples)


def test_zero_duration_transfer_lands_in_one_bucket():
    transfer = make_transfer(0.6, 0.6, 500.0)
    samples = bucket_traffic([transfer], bucket_seconds=0.5)
    assert samples[1].kilobytes == pytest.approx(0.5)
    assert samples[0].kilobytes == 0.0


def test_horizon_pads_with_empty_buckets():
    transfer = make_transfer(0.0, 0.5, 100.0)
    samples = bucket_traffic([transfer], bucket_seconds=0.5, horizon=3.0)
    assert len(samples) == 6
    assert samples[-1].kilobytes == 0.0


def test_bucket_size_validation():
    with pytest.raises(ValueError):
        bucket_traffic([], bucket_seconds=0.0)


@settings(max_examples=40, deadline=None)
@given(st.lists(
    st.tuples(st.floats(min_value=0, max_value=50),
              st.floats(min_value=0.01, max_value=10),
              st.floats(min_value=1, max_value=1e6)),
    min_size=1, max_size=20))
def test_property_buckets_conserve_bytes(spec):
    """Property: total KB across buckets equals total payload bytes."""
    transfers = [make_transfer(start, start + duration, size)
                 for start, duration, size in spec]
    samples = bucket_traffic(transfers, bucket_seconds=0.5)
    total_kb = sum(s.kilobytes for s in samples)
    expected = sum(size for _, _, size in spec) / 1000.0
    assert total_kb == pytest.approx(expected, rel=1e-6)
