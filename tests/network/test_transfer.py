"""Transfer record semantics."""

import pytest

from repro.network.transfer import Transfer


def test_lifecycle_properties():
    transfer = Transfer(label="x", size_bytes=1000, requested_at=1.0)
    assert not transfer.complete
    transfer.started_at = 2.0
    transfer.completed_at = 3.5
    assert transfer.complete
    assert transfer.queue_delay == pytest.approx(1.0)
    assert transfer.duration == pytest.approx(1.5)


def test_duration_before_completion_rejected():
    transfer = Transfer(label="x", size_bytes=10, requested_at=0.0)
    with pytest.raises(ValueError):
        _ = transfer.duration


def test_queue_delay_before_start_rejected():
    transfer = Transfer(label="x", size_bytes=10, requested_at=0.0)
    with pytest.raises(ValueError):
        _ = transfer.queue_delay


def test_negative_size_rejected():
    with pytest.raises(ValueError):
        Transfer(label="x", size_bytes=-1, requested_at=0.0)
