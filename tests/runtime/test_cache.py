"""Content-addressed result cache."""

from repro.runtime.cache import (
    ResultCache,
    cache_key,
    code_version_hash,
)


def test_roundtrip(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    key = cache_key("experiment", "fig01", {"seed": 1})
    assert cache.get(key) is None
    cache.put(key, {"report": "hello", "wall_time": 0.5})
    assert cache.get(key) == {"report": "hello", "wall_time": 0.5}
    assert key in cache
    assert len(cache) == 1


def test_key_sensitivity():
    base = cache_key("experiment", "fig01", {"seed": 1}, "code-v1")
    assert base == cache_key("experiment", "fig01", {"seed": 1},
                             "code-v1")
    assert base != cache_key("experiment", "fig02", {"seed": 1},
                             "code-v1")
    assert base != cache_key("experiment", "fig01", {"seed": 2},
                             "code-v1")
    assert base != cache_key("experiment", "fig01", {"seed": 1},
                             "code-v2")
    assert base != cache_key("ablation", "fig01", {"seed": 1}, "code-v1")


def test_code_version_hash_stable():
    assert code_version_hash() == code_version_hash()
    assert len(code_version_hash()) == 64


def test_corrupt_entry_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path)
    key = cache_key("experiment", "fig01", {"seed": 1}, "v")
    cache.put(key, {"ok": True})
    (tmp_path / f"{key}.json").write_text("{torn", encoding="utf-8")
    assert cache.get(key) is None
    assert key not in cache  # the torn entry was removed


def test_clear(tmp_path):
    cache = ResultCache(tmp_path)
    for task in ("a", "b"):
        cache.put(cache_key("experiment", task, {}, "v"), {"t": task})
    assert cache.clear() == 2
    assert len(cache) == 0
