"""Deterministic seed derivation."""

from repro.runtime.seeding import spawn_seeds, task_seed, task_seeds


def test_spawn_seeds_reproducible_and_distinct():
    a = spawn_seeds(42, 10)
    b = spawn_seeds(42, 10)
    assert a == b
    assert len(set(a)) == 10


def test_spawn_seeds_prefix_stable():
    """Point i's seed depends only on (root, i), not the sweep length."""
    assert spawn_seeds(42, 10)[:3] == spawn_seeds(42, 3)


def test_spawn_seeds_root_matters():
    assert spawn_seeds(1, 5) != spawn_seeds(2, 5)


def test_task_seed_independent_of_cohort():
    """A task keeps its seed whether it runs alone or with the full
    suite — the property that makes subset runs cache-compatible."""
    alone = task_seeds(2013, ["fig08"])
    together = task_seeds(2013, ["fig01", "fig08", "table05"])
    assert alone["fig08"] == together["fig08"]


def test_task_seed_distinct_per_key_and_root():
    seeds = task_seeds(2013, ["fig01", "fig08", "table05"])
    assert len(set(seeds.values())) == 3
    assert task_seed(2013, "fig01") != task_seed(2014, "fig01")


def test_task_seed_is_32_bit():
    assert 0 <= task_seed(2013, "experiment:fig01") < 2 ** 32
