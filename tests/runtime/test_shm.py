"""Shared-memory array handoff and the zero-copy fleet sweep."""

import numpy as np
import pytest

from repro.capacity.simulator import CapacityConfig, CapacitySimulator
from repro.runtime.parallel import parallel_fleet_sweep
from repro.runtime.shm import SharedArray
from repro.units import hours


def test_roundtrip_and_readonly_attach():
    source = np.arange(24, dtype=float).reshape(4, 6) * 1.5
    shared = SharedArray.create(source)
    try:
        spec = shared.spec
        view = SharedArray.attach(spec)
        try:
            np.testing.assert_array_equal(view.array, source)
            assert not view.array.flags.writeable
            with pytest.raises((ValueError, RuntimeError)):
                view.array[0, 0] = -1.0
            # The segment is shared, not copied: a write on the owning
            # side is visible through the attached mapping.
            shared.array[1, 2] = 99.0
            assert view.array[1, 2] == 99.0
        finally:
            view.close()
    finally:
        shared.close()
        shared.unlink()


def test_spec_is_plain_data():
    shared = SharedArray.create(np.ones(3))
    try:
        spec = shared.spec
        assert isinstance(spec.name, str)
        assert spec.shape == (3,)
        assert np.dtype(spec.dtype) == np.float64
    finally:
        shared.close()
        shared.unlink()


def test_context_manager_cleans_up():
    with SharedArray.create(np.zeros(5)) as shared:
        name = shared.spec.name
    from multiprocessing import shared_memory
    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=name)


def test_parallel_fleet_sweep_matches_sequential():
    rng = np.random.default_rng(6)
    pool = rng.lognormal(np.log(14.0), 0.5, size=250)
    simulator = CapacitySimulator(
        pool, CapacityConfig(horizon=hours(0.1), seed=12))
    counts = [120, 180, 240, 320]
    sequential = simulator.sweep(counts)
    zero_copy = parallel_fleet_sweep(simulator, counts, processes=2)
    assert zero_copy == sequential
