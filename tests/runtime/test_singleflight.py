"""SingleFlight semantics plus hammer tests on the process caches
that used to be bare dicts (satellite #1)."""

import threading
import time

import pytest

from repro.runtime.singleflight import (SingleFlight, locked_counter_add,
                                        snapshot_counters)


class TestSingleFlight:
    def test_computes_once_then_hits(self):
        cache = SingleFlight()
        calls = []
        assert cache.do("k", lambda: calls.append(1) or 41) == 41
        assert cache.do("k", lambda: calls.append(1) or 99) == 41
        assert calls == [1]
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_concurrent_callers_share_one_computation(self):
        cache = SingleFlight()
        calls = []
        barrier = threading.Barrier(8)
        results = []

        def compute():
            calls.append(1)
            time.sleep(0.05)
            return "value"

        def worker():
            barrier.wait()
            results.append(cache.do("k", compute))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert results == ["value"] * 8
        assert calls == [1]
        stats = cache.stats()
        assert stats["misses"] == 1
        assert stats["waits"] == 7

    def test_leader_failure_lets_a_waiter_retry(self):
        cache = SingleFlight()
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) == 1:
                time.sleep(0.02)
                raise RuntimeError("first leader dies")
            return "ok"

        caught = []
        results = []
        barrier = threading.Barrier(4)

        def worker():
            barrier.wait()
            try:
                results.append(cache.do("k", flaky))
            except RuntimeError as exc:
                caught.append(str(exc))

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert caught == ["first leader dies"]
        assert results == ["ok"] * 3

    def test_peek_does_not_compute(self):
        cache = SingleFlight()
        assert cache.peek("k") is None
        cache.do("k", lambda: 7)
        assert cache.peek("k") == 7

    def test_clear_refuses_mid_flight(self):
        cache = SingleFlight()
        started = threading.Event()
        release = threading.Event()

        def slow():
            started.set()
            release.wait(timeout=5.0)
            return 1

        thread = threading.Thread(target=cache.do, args=("k", slow))
        thread.start()
        started.wait(timeout=5.0)
        with pytest.raises(RuntimeError):
            cache.clear()
        release.set()
        thread.join(timeout=5.0)
        cache.clear()
        assert len(cache) == 0

    def test_counter_helpers(self):
        lock = threading.Lock()
        counters = {}
        locked_counter_add(lock, counters, "hits")
        locked_counter_add(lock, counters, "hits", 2)
        snap = snapshot_counters(lock, counters)
        assert snap == {"hits": 3}
        snap["hits"] = 99  # the snapshot is a copy
        assert snapshot_counters(lock, counters) == {"hits": 3}


class TestBenchmarkMemoUnderThreads:
    def test_hammer_benchmark_comparison(self):
        """8 threads, one cold key: exactly one computation and every
        thread sees the same object list."""
        from repro.core import comparison as comparison_module
        from repro.core.comparison import (benchmark_cache_stats,
                                           benchmark_comparison)

        memo = comparison_module._BENCHMARK_MEMO
        # A reading time nothing else in the suite uses → cold key.
        reading = 17.25
        key_count_before = len(memo)
        before = benchmark_cache_stats()

        barrier = threading.Barrier(8)
        results = []

        def worker():
            barrier.wait()
            results.append(benchmark_comparison(mobile=True,
                                                reading_time=reading))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        after = benchmark_cache_stats()
        assert after["misses"] == before["misses"] + 1
        assert len(memo) == key_count_before + 1
        first = results[0]
        assert all(r == first for r in results)


class TestLoadMemoUnderThreads:
    def test_hammer_load_page_cached(self):
        """8 threads racing one page/setup/seed: one simulated load."""
        from repro.ablation.components import VariantSetup
        from repro.ablation.objective import (_load_page_cached,
                                              load_cache_stats,
                                              reset_load_cache)

        reset_load_cache()
        setup = VariantSetup()
        before = load_cache_stats()
        barrier = threading.Barrier(8)
        results = []

        def worker():
            barrier.wait()
            results.append(_load_page_cached(
                "espn.go.com/sports", setup, "ideal", 12345, None))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        after = load_cache_stats()
        assert after.get("loads", 0) == before.get("loads", 0) + 1
        first = results[0]
        assert all(r == first for r in results)
