"""Kernel stats records and the process-wide collector."""

import pytest

from repro.runtime.observability import (
    KERNEL_STATS,
    KernelStatsCollector,
    SimRunStats,
    collecting,
)
from repro.sim.kernel import Simulator


def test_merged_sums_flows_and_maxes_peak():
    a = SimRunStats(events_processed=2, cancellations=1,
                    peak_queue_depth=5, sim_time=10.0, wall_time=0.1)
    b = SimRunStats(events_processed=3, cancellations=0,
                    peak_queue_depth=7, sim_time=5.0, wall_time=0.4)
    merged = a.merged(b)
    assert merged.events_processed == 5
    assert merged.cancellations == 1
    assert merged.peak_queue_depth == 7
    assert merged.sim_time == 15.0
    assert merged.wall_time == pytest.approx(0.5)


def test_sim_time_ratio():
    stats = SimRunStats(sim_time=100.0, wall_time=0.5)
    assert stats.sim_time_ratio == pytest.approx(200.0)
    assert SimRunStats().sim_time_ratio == 0.0


def test_to_dict_round_numbers():
    keys = set(SimRunStats().to_dict())
    assert keys == {"events_processed", "cancellations",
                    "peak_queue_depth", "sim_time", "wall_time",
                    "sim_time_ratio", "faults_injected",
                    "transfer_retries", "work_units",
                    "stream_blocks", "stream_merges", "stream_spills",
                    "stream_shard_bytes", "stream_peak_carried_bytes",
                    "sched_units", "sched_replay_blocks", "sched_steals",
                    "serve_requests", "serve_batches", "serve_coalesced"}


def test_accumulate_merges_without_counting_a_run():
    collector = KernelStatsCollector()
    collector.record(SimRunStats(events_processed=1))
    collector.accumulate(SimRunStats(faults_injected=3,
                                     transfer_retries=2))
    snapshot = collector.snapshot()
    assert snapshot.faults_injected == 3
    assert snapshot.transfer_retries == 2
    assert collector.runs_recorded == 1


def test_collector_aggregates_and_resets():
    collector = KernelStatsCollector()
    collector.record(SimRunStats(events_processed=1, sim_time=1.0,
                                 wall_time=0.1))
    collector.record(SimRunStats(events_processed=4, sim_time=3.0,
                                 wall_time=0.1))
    snapshot = collector.snapshot()
    assert snapshot.events_processed == 5
    assert snapshot.sim_time == 4.0
    assert collector.runs_recorded == 2
    collector.reset()
    assert collector.snapshot() == SimRunStats()
    assert collector.runs_recorded == 0


def test_simulator_reports_into_global_collector():
    with collecting() as collector:
        sim = Simulator()
        for delay in (1.0, 2.0):
            sim.schedule(delay, lambda: None)
        sim.run()
        other = Simulator()
        other.schedule(5.0, lambda: None)
        other.run()
    snapshot = collector.snapshot()
    assert collector is KERNEL_STATS
    assert snapshot.events_processed == 3
    assert snapshot.sim_time == 7.0
    assert snapshot.wall_time > 0.0
    assert KERNEL_STATS.runs_recorded == 2
