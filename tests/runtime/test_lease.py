"""Claim-file lease protocol: acquire, contend, heartbeat, steal."""

import os
import time

from repro.runtime import lease


def test_first_claim_wins(tmp_path):
    path = tmp_path / "task.claim"
    assert lease.try_claim(path, "a")
    assert path.exists()
    assert lease.claim_owner(path) == "a"
    # a live claim cannot be taken by anyone else
    assert not lease.try_claim(path, "b")
    assert lease.claim_owner(path) == "a"


def test_release_frees_the_claim(tmp_path):
    path = tmp_path / "task.claim"
    assert lease.try_claim(path, "a")
    lease.release(path)
    assert not path.exists()
    lease.release(path)  # idempotent
    assert lease.try_claim(path, "b")
    assert lease.claim_owner(path) == "b"


def test_stale_claim_is_stolen(tmp_path):
    path = tmp_path / "task.claim"
    assert lease.try_claim(path, "a")
    # back-date the holder's last heartbeat far past the horizon
    old = time.time() - 1000.0
    os.utime(path, (old, old))
    assert lease.try_claim(path, "b", stale_after=60.0)
    assert lease.claim_owner(path) == "b"
    # no tombstone litter
    assert list(tmp_path.glob("*.stale-*")) == []


def test_fresh_claim_is_not_stolen(tmp_path):
    path = tmp_path / "task.claim"
    assert lease.try_claim(path, "a")
    assert not lease.try_claim(path, "b", stale_after=60.0)
    assert lease.claim_owner(path) == "a"


def test_heartbeat_keeps_claim_fresh(tmp_path):
    path = tmp_path / "task.claim"
    assert lease.try_claim(path, "a")
    old = time.time() - 1000.0
    os.utime(path, (old, old))
    assert lease.heartbeat(path)
    assert time.time() - path.stat().st_mtime < 60.0
    assert not lease.try_claim(path, "b", stale_after=60.0)


def test_heartbeat_reports_lost_lease(tmp_path):
    path = tmp_path / "task.claim"
    assert not lease.heartbeat(path)  # never acquired
    assert lease.try_claim(path, "a")
    with lease.Heartbeat(path, interval=0.01) as beat:
        time.sleep(0.05)
        assert not beat.lost
        os.remove(path)  # stolen from under the holder
        deadline = time.monotonic() + 2.0
        while not beat.lost and time.monotonic() < deadline:
            time.sleep(0.01)
    assert beat.lost


def test_acquire_blocking_waits_for_release(tmp_path):
    path = tmp_path / "m.lock"
    assert lease.try_claim(path, "a")
    assert not lease.acquire_blocking(path, "b", timeout=0.05)
    lease.release(path)
    assert lease.acquire_blocking(path, "b", timeout=0.5)
    assert lease.claim_owner(path) == "b"
