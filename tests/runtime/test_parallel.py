"""Process-pool runner: determinism, caching, report export.

Uses the two cheapest experiments (fig01, table05) so the parallel
pipeline — including real worker processes — stays fast enough for the
tier-1 suite.
"""

import json

import pytest

from repro.capacity.simulator import CapacityConfig, CapacitySimulator
from repro.runtime.cache import ResultCache
from repro.runtime.parallel import (
    parallel_stream_points,
    parallel_sweep,
    run_ablations,
    run_experiments,
    run_tasks,
)
from repro.runtime.report import write_report

FAST_IDS = ("fig01", "table05")


def test_parallel_output_identical_to_sequential():
    """The acceptance bar: --parallel N is byte-identical to
    sequential execution for the same root seed."""
    sequential = run_experiments(FAST_IDS, processes=1, root_seed=99)
    parallel = run_experiments(FAST_IDS, processes=2, root_seed=99)
    assert sequential.render() == parallel.render()
    by_id = {r.task_id: r for r in parallel.results}
    for result in sequential.results:
        assert result.report == by_id[result.task_id].report
        assert result.seed == by_id[result.task_id].seed


def test_results_come_back_in_registry_order():
    suite = run_experiments(("table05", "fig01"), processes=2)
    assert [r.task_id for r in suite.results] == ["fig01", "table05"]


def test_unknown_id_raises_before_work():
    with pytest.raises(KeyError, match="fig99"):
        run_experiments(("fig99",))


def test_zero_processes_rejected():
    with pytest.raises(ValueError):
        run_experiments(FAST_IDS, processes=0)


def test_warm_cache_skips_completed_experiments(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    cold = run_experiments(FAST_IDS, processes=1, cache=cache)
    assert [r.cached for r in cold.results] == [False, False]
    assert len(cache) == 2

    warm = run_experiments(FAST_IDS, processes=1, cache=cache)
    assert [r.cached for r in warm.results] == [True, True]
    assert warm.n_cached == 2
    assert warm.render() == cold.render()
    # Cached results keep their recorded metrics.
    for result in warm.results:
        assert result.kernel.events_processed > 0
        assert result.wall_time > 0.0


def test_cache_respects_root_seed(tmp_path):
    cache = ResultCache(tmp_path)
    run_experiments(("fig01",), cache=cache, root_seed=1)
    other = run_experiments(("fig01",), cache=cache, root_seed=2)
    assert other.results[0].cached is False
    assert len(cache) == 2


def test_report_includes_runtime_metrics(tmp_path):
    suite = run_experiments(FAST_IDS, processes=1)
    payload = suite.to_dict()
    assert payload["suite"]["n_tasks"] == 2
    for task in payload["tasks"]:
        assert task["wall_time"] > 0.0
        assert task["events_processed"] > 0
        assert task["sim_time"] > 0.0
        assert task["sim_time_ratio"] > 0.0
        assert "report" in task

    json_path = tmp_path / "report.json"
    write_report(payload, json_path)
    reloaded = json.loads(json_path.read_text(encoding="utf-8"))
    assert reloaded == json.loads(json.dumps(payload))

    csv_path = tmp_path / "report.csv"
    write_report(payload, csv_path)
    lines = csv_path.read_text(encoding="utf-8").strip().splitlines()
    assert len(lines) == 3  # header + one row per task
    assert lines[0].startswith("task_id,")


def test_render_summary_mentions_cache_state():
    suite = run_experiments(("fig01",), processes=1)
    summary = suite.render_summary()
    assert "1 tasks" in summary
    assert "[run" in summary


def test_run_tasks_rejects_unknown_kind():
    with pytest.raises(KeyError):
        run_tasks("nonsense", ("x",))


def test_ablation_registry_is_wired():
    # Don't run one (they are slow); just check id resolution fails
    # cleanly for unknowns, which exercises the registry lookup.
    with pytest.raises(KeyError, match="nonsense"):
        run_ablations(("nonsense",))


def test_parallel_sweep_matches_sequential_sweep():
    simulator = CapacitySimulator(
        [10.0], CapacityConfig(n_channels=50, horizon=3600.0, seed=1))
    counts = [40, 80, 120, 160]
    sequential = simulator.sweep(counts, seed=7)
    fanned = parallel_sweep(simulator, counts, processes=2, seed=7)
    assert [(r.n_users, r.sessions, r.dropped) for r in sequential] \
        == [(r.n_users, r.sessions, r.dropped) for r in fanned]


def test_parallel_stream_points_restores_caller_order():
    """Points are submitted largest-n_users-first (the cheap fix for
    the skewed load balance: the expensive points used to sit at the
    tail of the pool queue), but the returned list must still be in
    caller order and identical to the serial points."""
    from repro.stream.sweep import sweep_point

    simulator = CapacitySimulator(
        [10.0], CapacityConfig(n_channels=50, horizon=1200.0, seed=1))
    # Deliberately not sorted by size, smallest first: the reordering
    # at submission has to be undone on the way out.
    counts = [40, 200, 120, 400]
    seeds = simulator.sweep_seeds(len(counts), seed=7)
    serial = [sweep_point(simulator, n, s, stream=True,
                          block_arrivals=512)
              for n, s in zip(counts, seeds)]
    fanned = parallel_stream_points(simulator, counts, seeds,
                                    processes=2, stream=True,
                                    block_arrivals=512)
    assert [p.n_users for p in fanned] == counts
    assert fanned == serial


def test_parallel_sweep_crn_mode():
    simulator = CapacitySimulator(
        [10.0], CapacityConfig(n_channels=50, horizon=3600.0, seed=1))
    fanned = parallel_sweep(simulator, [60, 60], processes=2, seed=3,
                            common_random_numbers=True)
    assert (fanned[0].sessions, fanned[0].dropped) \
        == (fanned[1].sessions, fanned[1].dropped)
