"""WebObject model invariants."""

import pytest

from repro.webpages.objects import ObjectKind, WebObject


def test_references_concatenates_static_then_dynamic():
    obj = WebObject("s", ObjectKind.JS, 100,
                    static_references=("a",), dynamic_references=("b",))
    assert obj.references == ("a", "b")


def test_only_scripts_discover_dynamically():
    with pytest.raises(ValueError, match="dynamic"):
        WebObject("h", ObjectKind.HTML, 100, dynamic_references=("x",))


def test_multimedia_cannot_reference():
    with pytest.raises(ValueError, match="multimedia"):
        WebObject("i", ObjectKind.IMAGE, 100, static_references=("x",))


def test_multimedia_kinds():
    assert ObjectKind.IMAGE.is_multimedia
    assert ObjectKind.FLASH.is_multimedia
    assert not ObjectKind.HTML.is_multimedia
    assert not ObjectKind.CSS.is_multimedia
    assert not ObjectKind.JS.is_multimedia


def test_size_kb():
    assert WebObject("x", ObjectKind.CSS, 2500).size_kb == 2.5


def test_validation():
    with pytest.raises(ValueError):
        WebObject("x", ObjectKind.CSS, -1)
    with pytest.raises(ValueError):
        WebObject("x", ObjectKind.JS, 10, complexity=0)
    with pytest.raises(ValueError):
        WebObject("x", ObjectKind.JS, 10, dom_nodes=-1)
