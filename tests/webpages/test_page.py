"""Webpage structural invariants."""

import pytest

from repro.webpages.objects import ObjectKind, WebObject
from repro.webpages.page import PageValidationError, Webpage


def make_objects():
    return {
        "root": WebObject("root", ObjectKind.HTML, 1000,
                          static_references=("a.css", "b.js"),
                          dom_nodes=10),
        "a.css": WebObject("a.css", ObjectKind.CSS, 500,
                           static_references=("img",)),
        "b.js": WebObject("b.js", ObjectKind.JS, 300,
                          dynamic_references=("img2",)),
        "img": WebObject("img", ObjectKind.IMAGE, 2000),
        "img2": WebObject("img2", ObjectKind.IMAGE, 800),
    }


def make_page(**overrides):
    objects = make_objects()
    objects.update(overrides)
    return Webpage(url="http://x", root_id="root", objects=objects)


def test_valid_page_builds():
    page = make_page()
    assert page.object_count == 5
    assert page.total_bytes == 4600
    assert page.total_kb == pytest.approx(4.6)


def test_missing_root_rejected():
    with pytest.raises(PageValidationError, match="root"):
        Webpage(url="http://x", root_id="nope", objects=make_objects())


def test_non_html_root_rejected():
    objects = make_objects()
    with pytest.raises(PageValidationError, match="HTML"):
        Webpage(url="http://x", root_id="a.css", objects=objects)


def test_dangling_reference_rejected():
    objects = make_objects()
    objects["root"] = WebObject("root", ObjectKind.HTML, 1000,
                                static_references=("ghost",))
    with pytest.raises(PageValidationError, match="unknown"):
        Webpage(url="http://x", root_id="root", objects=objects)


def test_cycle_rejected():
    objects = {
        "root": WebObject("root", ObjectKind.HTML, 100,
                          static_references=("a.js",)),
        "a.js": WebObject("a.js", ObjectKind.JS, 100,
                          dynamic_references=("b.js",)),
        "b.js": WebObject("b.js", ObjectKind.JS, 100,
                          dynamic_references=("a.js",)),
    }
    with pytest.raises(PageValidationError, match="cycle"):
        Webpage(url="http://x", root_id="root", objects=objects)


def test_unreachable_object_rejected():
    objects = make_objects()
    objects["orphan"] = WebObject("orphan", ObjectKind.IMAGE, 10)
    with pytest.raises(PageValidationError, match="unreachable"):
        Webpage(url="http://x", root_id="root", objects=objects)


def test_reachable_ids_bfs_order():
    page = make_page()
    order = page.reachable_ids()
    assert order[0] == "root"
    assert set(order) == set(page.objects)


def test_kind_accessors():
    page = make_page()
    assert page.count_of_kind(ObjectKind.IMAGE) == 2
    assert page.bytes_of_kind(ObjectKind.IMAGE) == 2800
    assert [o.object_id for o in page.objects_of_kind(ObjectKind.IMAGE)] \
        == ["img", "img2"]


def test_total_dom_nodes():
    page = make_page()
    expected = sum(o.dom_nodes for o in page.objects.values())
    assert page.total_dom_nodes == expected
