"""Synthetic page generation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.webpages.generator import PageSpec, generate_page
from repro.webpages.objects import ObjectKind


def base_spec(**overrides):
    kwargs = dict(name="p", url="http://p", mobile=False, seed=1,
                  html_kb=50, css_count=2, css_kb=10, js_count=3,
                  js_kb=15, image_count=10, image_kb=8, flash_count=1,
                  flash_kb=40, iframe_count=1, iframe_kb=8)
    kwargs.update(overrides)
    return PageSpec(**kwargs)


def test_generation_is_deterministic():
    a = generate_page(base_spec())
    b = generate_page(base_spec())
    assert a.objects.keys() == b.objects.keys()
    for oid in a.objects:
        assert a.objects[oid].size_bytes == b.objects[oid].size_bytes


def test_different_seeds_differ():
    a = generate_page(base_spec(seed=1))
    b = generate_page(base_spec(seed=2))
    sizes_a = sorted(o.size_bytes for o in a.objects.values())
    sizes_b = sorted(o.size_bytes for o in b.objects.values())
    assert sizes_a != sizes_b


def test_object_counts_match_spec():
    spec = base_spec()
    page = generate_page(spec)
    assert page.count_of_kind(ObjectKind.CSS) == spec.css_count
    assert page.count_of_kind(ObjectKind.JS) == spec.js_count
    assert page.count_of_kind(ObjectKind.IMAGE) == spec.image_count
    assert page.count_of_kind(ObjectKind.FLASH) == spec.flash_count
    # root + iframes
    assert page.count_of_kind(ObjectKind.HTML) == 1 + spec.iframe_count


def test_total_size_tracks_spec_estimate():
    spec = base_spec(seed=3)
    page = generate_page(spec)
    assert page.total_kb == pytest.approx(spec.approx_total_kb, rel=0.5)


def test_dynamic_images_only_via_scripts():
    spec = base_spec(js_dynamic_image_fraction=0.5)
    page = generate_page(spec)
    dynamic = {ref for obj in page.objects.values()
               for ref in obj.dynamic_references
               if page.objects[ref].kind is ObjectKind.IMAGE}
    static = {ref for obj in page.objects.values()
              for ref in obj.static_references}
    assert dynamic, "expected some dynamically discovered images"
    assert not dynamic & static


def test_no_dynamic_images_without_scripts():
    page = generate_page(base_spec(js_count=0,
                                   js_dynamic_image_fraction=0.9))
    for obj in page.objects.values():
        assert not obj.dynamic_references


def test_js_chain_hides_back_half_from_root():
    spec = base_spec(js_count=4, js_chain=True)
    page = generate_page(spec)
    root_js = [r for r in page.root.static_references
               if page.objects[r].kind is ObjectKind.JS]
    assert len(root_js) == 2
    # The chain is connected: every script is still reachable.
    kinds = [page.objects[oid].kind for oid in page.reachable_ids()]
    assert kinds.count(ObjectKind.JS) == 4


def test_js_chain_links_are_dynamic_js_references():
    page = generate_page(base_spec(js_count=4, js_chain=True))
    chained = [ref for obj in page.objects.values()
               if obj.kind is ObjectKind.JS
               for ref in obj.dynamic_references
               if page.objects[ref].kind is ObjectKind.JS]
    assert len(chained) == 2  # scripts 1→2 and 2→3


def test_spec_validation():
    with pytest.raises(ValueError):
        base_spec(html_kb=0)
    with pytest.raises(ValueError):
        base_spec(image_count=-1)
    with pytest.raises(ValueError):
        base_spec(js_dynamic_image_fraction=1.5)


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    html_kb=st.floats(min_value=1, max_value=200),
    css=st.integers(min_value=0, max_value=4),
    js=st.integers(min_value=0, max_value=8),
    images=st.integers(min_value=0, max_value=40),
    flash=st.integers(min_value=0, max_value=2),
    iframes=st.integers(min_value=0, max_value=3),
    chain=st.booleans(),
    dyn=st.floats(min_value=0, max_value=1),
)
def test_property_every_generated_page_is_valid(seed, html_kb, css, js,
                                                images, flash, iframes,
                                                chain, dyn):
    """Property: arbitrary specs always produce pages satisfying the
    Webpage invariants (validated in the constructor) with everything
    reachable from the root."""
    spec = PageSpec(name="prop", url="http://prop", mobile=False,
                    seed=seed, html_kb=html_kb, css_count=css,
                    js_count=js, image_count=images, flash_count=flash,
                    iframe_count=iframes, js_chain=chain,
                    js_dynamic_image_fraction=dyn)
    page = generate_page(spec)  # constructor validates
    assert len(page.reachable_ids()) == page.object_count
