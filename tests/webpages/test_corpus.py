"""Table 3 benchmark corpus."""

import pytest

from repro.webpages.corpus import (
    FULL_BENCHMARK,
    MOBILE_BENCHMARK,
    benchmark_pages,
    find_page,
    load_benchmark_page,
)


def test_ten_pages_per_half():
    assert len(MOBILE_BENCHMARK) == 10
    assert len(FULL_BENCHMARK) == 10


def test_mobile_pages_are_small_and_mobile():
    for page in benchmark_pages(mobile=True):
        assert page.mobile
        assert 30 <= page.total_kb <= 200
        assert page.page_width == 320


def test_full_pages_are_heavy():
    for page in benchmark_pages(mobile=False):
        assert not page.mobile
        assert 300 <= page.total_kb <= 1000
        assert page.object_count >= 25


def test_espn_pinned_near_760_kb():
    page = find_page("espn.go.com/sports")
    assert page.total_kb == pytest.approx(760, rel=0.08)


def test_find_page_unknown_raises():
    with pytest.raises(KeyError):
        find_page("gopher://nonexistent")


def test_pages_are_memoised():
    entry = MOBILE_BENCHMARK[0]
    assert load_benchmark_page(entry) is load_benchmark_page(entry)


def test_paper_names_match_table3():
    mobile_names = {e.paper_name for e in MOBILE_BENCHMARK}
    assert {"cnn", "ebay", "amazon", "msn", "myspace", "aol", "nytime",
            "youtube", "espn.go.com", "bbc.co.uk"} == mobile_names
    full_names = {e.paper_name for e in FULL_BENCHMARK}
    assert "espn.go.com/sports" in full_names
    assert "www.motors.ebay.com" in full_names
    assert "www.apple.com" in full_names
