"""FaultInjector: seeded determinism, stream independence, counters."""

import pytest

from repro.faults.injector import FaultInjector, FaultPlan, FaultStats
from repro.faults.profiles import CONGESTED, IDEAL, ChannelProfile
from repro.faults.recovery import RecoveryPolicy
from repro.runtime.observability import KERNEL_STATS, collecting


def test_same_seed_same_history():
    a = FaultInjector(CONGESTED, seed=123)
    b = FaultInjector(CONGESTED, seed=123)
    history_a = [(a.bandwidth_scale(t), a.attempt_rtt_jitter(),
                  a.attempt_lost(), a.promotion_spike(), a.ril_delay())
                 for t in range(0, 200, 7)]
    history_b = [(b.bandwidth_scale(t), b.attempt_rtt_jitter(),
                  b.attempt_lost(), b.promotion_spike(), b.ril_delay())
                 for t in range(0, 200, 7)]
    assert history_a == history_b


def test_different_seeds_differ():
    a = FaultInjector(CONGESTED, seed=1)
    b = FaultInjector(CONGESTED, seed=2)
    draws_a = [a.attempt_rtt_jitter() for _ in range(20)]
    draws_b = [b.attempt_rtt_jitter() for _ in range(20)]
    assert draws_a != draws_b


def test_streams_are_independent():
    """Consuming one stream must not perturb another: the loss history
    is the same whether or not jitter was drawn in between."""
    a = FaultInjector(CONGESTED, seed=5)
    b = FaultInjector(CONGESTED, seed=5)
    for _ in range(50):
        a.attempt_rtt_jitter()  # extra draws on the jitter stream only
    losses_a = [a.attempt_lost() for _ in range(50)]
    losses_b = [b.attempt_lost() for _ in range(50)]
    assert losses_a == losses_b


def test_ideal_profile_is_identity():
    injector = FaultInjector(IDEAL, seed=99)
    with collecting() as collector:
        for t in (0.0, 5.0, 500.0):
            assert injector.bandwidth_scale(t) == 1.0
        assert injector.attempt_rtt_jitter() == 0.0
        assert injector.attempt_lost() is False
        assert injector.promotion_spike() == 0.0
        assert injector.ril_dropped() is False
        assert injector.ril_delay() == 0.0
        assert injector.dormancy_fails() is False
    assert injector.stats == FaultStats()
    assert collector.snapshot().faults_injected == 0


def test_fade_timeline_is_piecewise_constant_and_query_order_free():
    a = FaultInjector(CONGESTED, seed=11)
    b = FaultInjector(CONGESTED, seed=11)
    times = [0.0, 3.0, 9.0, 27.0, 81.0]
    forward = [a.bandwidth_scale(t) for t in times]
    # b materialises the whole timeline first, then queries backwards.
    b.bandwidth_scale(times[-1])
    backward = [b.bandwidth_scale(t) for t in reversed(times)]
    assert forward == list(reversed(backward))
    floor, ceiling = CONGESTED.fade_floor, CONGESTED.fade_ceiling
    assert all(floor <= s <= ceiling for s in forward)


def test_impairments_feed_kernel_stats():
    lossy = ChannelProfile(name="drop-all", ril_drop_prob=1.0,
                           dormancy_failure_prob=1.0)
    injector = FaultInjector(lossy, seed=3)
    with collecting() as collector:
        assert injector.ril_dropped() is True
        assert injector.dormancy_fails() is True
        injector.note_retry()
    snapshot = collector.snapshot()
    assert snapshot.faults_injected == 2
    assert snapshot.transfer_retries == 1
    assert collector.runs_recorded == 0  # accumulate, not record
    assert injector.stats.ril_drops == 1
    assert injector.stats.dormancy_failures == 1


def test_fault_stats_merge_and_dict():
    a = FaultStats(transfers_lost=2, ril_drops=1)
    b = FaultStats(transfers_lost=1, promotion_spikes=3)
    merged = a.merged(b)
    assert merged.transfers_lost == 3
    assert merged.promotion_spikes == 3
    assert merged.faults_injected == 3 + 1 + 3
    assert merged.to_dict()["faults_injected"] == 7


def test_plan_builds_fresh_injectors():
    plan = FaultPlan.named("congested", seed=42,
                           recovery=RecoveryPolicy(timeout=9.0))
    assert plan.profile is CONGESTED
    assert plan.recovery.timeout == 9.0
    one, two = plan.injector(), plan.injector()
    assert one is not two
    assert [one.attempt_rtt_jitter() for _ in range(5)] == \
           [two.attempt_rtt_jitter() for _ in range(5)]


def test_plan_unknown_profile_raises():
    with pytest.raises(KeyError):
        FaultPlan.named("atlantis")
