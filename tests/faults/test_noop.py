"""The strict no-op guarantee: injection off (or ideal) changes nothing.

The acceptance bar for the whole subsystem: a handset built with no
fault plan must execute the *exact* baseline code path, and one built
under the ``ideal`` profile must be byte-identical to it — same floats,
same event schedule, same energies.
"""

import pytest

from repro.browser.energy_aware import EnergyAwareEngine
from repro.browser.original import OriginalEngine
from repro.core.comparison import compare_engines
from repro.core.session import browse_and_read
from repro.faults.injector import FaultPlan
from repro.webpages.corpus import benchmark_pages


def outcome_tuple(result):
    load = result.load
    return (load.data_transmission_time, load.load_complete_time,
            load.first_display_time, load.final_display_time,
            load.bytes_downloaded,
            result.loading_energy.total, result.reading_energy.total,
            tuple((t.label, t.started_at, t.completed_at, t.attempts)
                  for t in load.transfers))


@pytest.mark.parametrize("engine_cls", [OriginalEngine, EnergyAwareEngine])
def test_ideal_plan_is_byte_identical_to_no_plan(engine_cls):
    for page in benchmark_pages(mobile=True)[:3]:
        bare = browse_and_read(page, engine_cls, reading_time=12.0)
        ideal = browse_and_read(page, engine_cls, reading_time=12.0,
                                faults=FaultPlan.named("ideal", seed=2013))
        assert outcome_tuple(bare) == outcome_tuple(ideal)


def test_ideal_plan_comparison_matches_baseline():
    page = benchmark_pages(mobile=False)[0]
    bare = compare_engines(page, reading_time=30.0)
    ideal = compare_engines(page, reading_time=30.0,
                            faults=FaultPlan.named("ideal", seed=7))
    assert bare.energy_saving == ideal.energy_saving
    assert bare.original.total_energy == ideal.original.total_energy
    assert (bare.energy_aware.total_energy
            == ideal.energy_aware.total_energy)


def test_no_plan_means_no_injector():
    page = benchmark_pages(mobile=True)[0]
    result = browse_and_read(page, OriginalEngine, reading_time=0.0)
    assert result.handset.injector is None
    assert result.handset.faults is None


def test_ideal_plan_records_zero_faults():
    page = benchmark_pages(mobile=True)[0]
    result = browse_and_read(page, OriginalEngine, reading_time=0.0,
                             faults=FaultPlan.named("ideal"))
    assert result.handset.injector is not None
    assert result.handset.injector.stats.faults_injected == 0
    assert not result.load.degraded
    assert result.load.ril_errors == []
