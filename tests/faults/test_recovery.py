"""Recovery policy math and link-level retry behaviour."""

import pytest

from repro.faults.injector import FaultInjector, FaultPlan
from repro.faults.profiles import ChannelProfile
from repro.faults.recovery import RecoveryPolicy
from repro.network.link import Link, NetworkConfig
from repro.rrc.machine import RrcMachine
from repro.rrc.states import RrcState
from repro.sim.kernel import Simulator
from repro.units import kb

#: Loses every attempt: good-state loss probability one.
ALWAYS_LOSE = ChannelProfile(name="always-lose", loss_good=1.0)

#: Loses exactly the attempts an all-good GE chain draws below p; with
#: loss_good=0.5 roughly half the attempts fail — enough to force
#: retries without making completion impossible.
SOMETIMES_LOSE = ChannelProfile(name="sometimes-lose", loss_good=0.5)


def make_link(profile=None, recovery=None, config=None):
    sim = Simulator()
    machine = RrcMachine(sim)
    injector = (FaultInjector(profile, seed=7)
                if profile is not None else None)
    link = Link(sim, machine, config, injector=injector, recovery=recovery)
    return sim, machine, link, injector


def test_backoff_grows_exponentially():
    policy = RecoveryPolicy(backoff_base=0.5, backoff_factor=2.0)
    assert policy.backoff(1) == pytest.approx(0.5)
    assert policy.backoff(2) == pytest.approx(1.0)
    assert policy.backoff(3) == pytest.approx(2.0)
    with pytest.raises(ValueError):
        policy.backoff(0)


def test_worst_case_delay_bounds_timeouts_and_backoffs():
    policy = RecoveryPolicy(timeout=10.0, max_attempts=3,
                            backoff_base=1.0, backoff_factor=2.0)
    assert policy.worst_case_delay == pytest.approx(30.0 + 1.0 + 2.0)


def test_policy_validation():
    with pytest.raises(ValueError):
        RecoveryPolicy(timeout=0.0)
    with pytest.raises(ValueError):
        RecoveryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RecoveryPolicy(backoff_factor=0.0)


def test_lost_attempts_are_retried_until_success():
    """A 50 %-loss channel forces retries, but every transfer still
    completes (max_attempts is generous) and accounts its attempts."""
    policy = RecoveryPolicy(timeout=5.0, max_attempts=10,
                            backoff_base=0.1)
    sim, machine, link, injector = make_link(SOMETIMES_LOSE, policy)
    done = []
    for index in range(6):
        link.fetch(kb(20), done.append, label=f"t{index}")
    sim.run()
    assert len(done) == 6
    assert all(t.complete and not t.failed for t in done)
    total_attempts = sum(t.attempts for t in done)
    assert total_attempts > 6  # at least one retry happened
    assert injector.stats.transfers_lost == total_attempts - 6
    assert injector.stats.transfer_retries == total_attempts - 6


def test_exhausted_retries_fail_the_transfer_without_hanging():
    policy = RecoveryPolicy(timeout=2.0, max_attempts=3, backoff_base=0.1)
    sim, machine, link, injector = make_link(ALWAYS_LOSE, policy)
    done = []
    link.fetch(kb(20), done.append, label="doomed")
    sim.run()
    (transfer,) = done
    assert transfer.failed
    assert not transfer.complete
    assert transfer.attempts == 3
    assert transfer.lost_attempts == 3
    assert injector.stats.transfers_failed == 1
    # The kernel drained completely: the radio demoted back to IDLE.
    assert machine.state is RrcState.IDLE


def test_lost_attempt_burns_the_full_timeout_on_the_radio():
    """A lost attempt holds DCH for the whole recovery timeout — the
    energy waste the recovery layer exists to bound."""
    policy = RecoveryPolicy(timeout=3.0, max_attempts=1)
    sim, machine, link, injector = make_link(ALWAYS_LOSE, policy)
    done = []
    link.fetch(kb(20), done.append, label="doomed")
    sim.run()
    machine.finalize()
    from repro.rrc.states import RadioMode
    assert machine.time_in_mode(RadioMode.DCH_TX) == pytest.approx(3.0)


def test_deep_fade_trips_the_timeout():
    """A fade that stretches the wire time past the timeout is abandoned
    as a timeout, not a loss."""
    fade = ChannelProfile(name="deep-fade", fade_floor=0.01,
                          fade_ceiling=0.011, fade_interval=1e6)
    policy = RecoveryPolicy(timeout=4.0, max_attempts=2, backoff_base=0.1)
    sim, machine, link, injector = make_link(fade, policy)
    done = []
    link.fetch(kb(70), done.append, label="slow")  # ~100x wire stretch
    sim.run()
    (transfer,) = done
    assert transfer.failed
    assert transfer.timeout_attempts == 2
    assert injector.stats.transfer_timeouts == 2


def test_loss_without_recovery_policy_never_loses():
    """An injector without a recovery policy must not lose transfers —
    there would be no retry path, so the load would hang."""
    sim, machine, link, injector = make_link(ALWAYS_LOSE, recovery=None)
    done = []
    link.fetch(kb(20), done.append, label="safe")
    sim.run()
    assert done[0].complete
    assert done[0].attempts == 1
    assert injector.stats.transfers_lost == 0


def test_retry_pays_a_fresh_rtt():
    """A retried attempt must not inherit the original request time's
    RTT overlap: the re-issue is a fresh request."""
    policy = RecoveryPolicy(timeout=5.0, max_attempts=10, backoff_base=0.5)
    config = NetworkConfig()
    sim, machine, link, injector = make_link(SOMETIMES_LOSE, policy,
                                             config)
    done = []
    for index in range(6):
        link.fetch(kb(20), done.append, label=f"t{index}")
    sim.run()
    retried = [t for t in done if t.attempts > 1]
    assert retried, "seed 7 at 50% loss must retry at least once"
    healthy_wire = config.wire_time(kb(20))
    for transfer in retried:
        # duration spans first issue to completion: at least one full
        # timeout-free attempt plus the backoff and the lost time.
        assert transfer.duration > healthy_wire
