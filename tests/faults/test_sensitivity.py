"""Sensitivity sweep: determinism, parallel identity, dormancy failure."""

import pytest

from repro.browser.energy_aware import EnergyAwareEngine
from repro.core.session import browse_and_read
from repro.experiments.fig_sensitivity import SWEEP_TASKS, run_profile
from repro.faults.injector import FaultPlan
from repro.faults.profiles import PROFILE_ORDER, ChannelProfile
from repro.runtime.parallel import KIND_FAULTS, run_faults_sweep
from repro.runtime.report import CSV_COLUMNS
from repro.rrc.states import RrcState
from repro.webpages.corpus import benchmark_pages

#: Small grid for the parallel-identity test: one clean, one lossy.
FAST_PROFILES = ["ideal", "congested"]


def test_sweep_tasks_cover_all_presets_in_order():
    assert tuple(task_id for task_id, _, _ in SWEEP_TASKS) == PROFILE_ORDER
    for _, _, runner in SWEEP_TASKS:
        assert getattr(runner, "needs_seed", False)


def test_same_seed_same_report():
    first = run_profile("congested", seed=77)
    second = run_profile("congested", seed=77)
    assert first.report() == second.report()


def test_different_seed_different_impairments():
    a = run_profile("cell_edge", seed=1)
    b = run_profile("cell_edge", seed=2)
    assert a.total_faults.to_dict() != b.total_faults.to_dict()


def test_parallel_sweep_identical_to_sequential():
    sequential = run_faults_sweep(FAST_PROFILES, processes=1)
    parallel = run_faults_sweep(FAST_PROFILES, processes=2)
    assert [r.report for r in sequential.results] == \
           [r.report for r in parallel.results]
    assert [r.seed for r in sequential.results] == \
           [r.seed for r in parallel.results]
    assert [r.kernel.faults_injected for r in sequential.results] == \
           [r.kernel.faults_injected for r in parallel.results]


def test_savings_degrade_but_stay_positive():
    """The energy-aware win shrinks as the channel worsens but grouping
    transmissions keeps paying even at the cell edge."""
    ideal = run_profile("ideal", seed=5)
    edge = run_profile("cell_edge", seed=5)
    assert ideal.mean_energy_saving > edge.mean_energy_saving
    assert edge.mean_energy_saving > 0.0
    assert ideal.total_faults.faults_injected == 0
    assert edge.total_faults.faults_injected > 0


def test_task_report_folds_fault_counters():
    suite = run_faults_sweep(["congested"], processes=1)
    (result,) = suite.results
    assert result.kind == KIND_FAULTS
    assert result.kernel.faults_injected > 0
    row = result.to_dict()
    assert row["faults_injected"] == result.kernel.faults_injected
    assert "faults_injected" in CSV_COLUMNS
    assert "transfer_retries" in CSV_COLUMNS


def test_forced_dormancy_failure_keeps_ledger_consistent():
    """With every dormancy/release request ignored by the firmware, the
    energy-aware load must still complete, log the failures, and pay the
    tail energy: the timers demote the radio to IDLE on their own."""
    plan = FaultPlan(profile=ChannelProfile(name="no-dormancy",
                                            dormancy_failure_prob=1.0),
                     seed=13)
    page = benchmark_pages(mobile=True)[0]
    # Reading longer than T1+T2 (4+15 s): the timers can finish the job.
    failed = browse_and_read(page, EnergyAwareEngine, reading_time=25.0,
                             idle_at_open=True, faults=plan)
    honoured = browse_and_read(page, EnergyAwareEngine, reading_time=25.0,
                               idle_at_open=True)

    # The load completed and both failures (release at tx end, dormancy
    # at open) were logged, not raised.
    assert failed.load.load_complete_time > 0.0
    assert failed.handset.ril.errors
    assert any("ignored by firmware" in m.error
               for m in failed.handset.ril.errors)
    assert failed.load.ril_errors  # the engine logged its failed release

    # The inactivity timers demoted the radio anyway.
    assert failed.handset.machine.state is RrcState.IDLE

    # Ledger consistency: the two accounting windows tile the session.
    load_start = failed.load.started_at
    load_end = load_start + failed.load.load_complete_time
    read_end = load_end + failed.reading_time
    total = failed.handset.accountant.total_energy(load_start, read_end)
    assert failed.total_energy == pytest.approx(total)

    # And the failure costs real energy: the DCH/FACH tail is paid.
    assert failed.total_energy > honoured.total_energy
