"""Channel profile presets and validation."""

import pytest

from repro.faults.profiles import (
    CELL_EDGE,
    IDEAL,
    PROFILE_ORDER,
    PROFILES,
    ChannelProfile,
    get_profile,
)


def test_presets_registered_in_severity_order():
    assert PROFILE_ORDER == ("ideal", "suburban", "congested", "cell_edge")
    assert set(PROFILES) == set(PROFILE_ORDER)
    for name in PROFILE_ORDER:
        assert PROFILES[name].name == name


def test_ideal_is_null():
    assert IDEAL.is_null
    assert not IDEAL.fades
    assert not IDEAL.loses_transfers


def test_lossy_presets_are_not_null():
    for name in PROFILE_ORDER[1:]:
        profile = PROFILES[name]
        assert not profile.is_null
        assert profile.fades
        assert profile.loses_transfers


def test_default_profile_impairs_nothing():
    assert ChannelProfile(name="custom").is_null


def test_get_profile_unknown_name_lists_known():
    with pytest.raises(KeyError, match="cell_edge"):
        get_profile("marianas_trench")


def test_probability_validation():
    with pytest.raises(ValueError):
        ChannelProfile(name="bad", ril_drop_prob=1.5)
    with pytest.raises(ValueError):
        ChannelProfile(name="bad", loss_bad=-0.1)


def test_fade_bounds_validation():
    with pytest.raises(ValueError):
        ChannelProfile(name="bad", fade_floor=0.0, fade_ceiling=0.5)
    with pytest.raises(ValueError):
        ChannelProfile(name="bad", fade_floor=0.9, fade_ceiling=0.5)


def test_scaled_zero_is_null_and_one_is_identity():
    assert CELL_EDGE.scaled(0.0).is_null
    rescaled = CELL_EDGE.scaled(1.0)
    assert rescaled.fade_floor == pytest.approx(CELL_EDGE.fade_floor)
    assert rescaled.loss_bad == pytest.approx(CELL_EDGE.loss_bad)
    assert rescaled.dormancy_failure_prob == pytest.approx(
        CELL_EDGE.dormancy_failure_prob)


def test_scaled_overdrive_clamps_probabilities():
    overdriven = CELL_EDGE.scaled(10.0, name="worst")
    assert overdriven.name == "worst"
    assert overdriven.loss_bad == 1.0
    assert overdriven.dormancy_failure_prob == 1.0
    assert 0.0 < overdriven.fade_floor <= overdriven.fade_ceiling
