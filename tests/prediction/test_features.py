"""Feature extraction from live page loads."""

import pytest

from repro.browser.energy_aware import EnergyAwareEngine
from repro.core.session import load_page
from repro.prediction.features import FEATURE_NAMES, features_from_load
from repro.webpages.objects import ObjectKind


def test_schema_has_ten_features():
    assert len(FEATURE_NAMES) == 10


def test_extraction_matches_page_and_result(full_page):
    session = load_page(full_page, EnergyAwareEngine)
    vector = features_from_load(full_page, session.load, second_urls=42)
    named = dict(zip(FEATURE_NAMES, vector))
    assert named["transmission_time"] == \
        session.load.data_transmission_time
    figure_bytes = full_page.bytes_of_kind(ObjectKind.IMAGE)
    assert named["page_size_kb"] == pytest.approx(
        (full_page.total_bytes - figure_bytes) / 1000.0)
    assert named["download_objects"] == full_page.object_count
    assert named["download_js_files"] == \
        full_page.count_of_kind(ObjectKind.JS)
    assert named["download_figures"] == \
        full_page.count_of_kind(ObjectKind.IMAGE)
    assert named["js_running_time"] == pytest.approx(
        session.load.js_exec_time)
    assert named["second_urls"] == 42
    assert named["page_height"] == full_page.page_height
    assert named["page_width"] == full_page.page_width


def test_mismatched_result_rejected(full_page, small_page):
    session = load_page(small_page, EnergyAwareEngine)
    with pytest.raises(ValueError):
        features_from_load(full_page, session.load)


def test_extracted_features_feed_predictor(full_page, trained_predictor):
    session = load_page(full_page, EnergyAwareEngine)
    vector = features_from_load(full_page, session.load, second_urls=30)
    prediction = trained_predictor.predict_one(vector)
    assert prediction >= 0.0
