"""Algorithm 2 and baseline policies."""

import numpy as np
import pytest

from repro.core.config import PolicyConfig
from repro.prediction.policy import (
    AlwaysOffPolicy,
    NeverOffPolicy,
    OraclePolicy,
    PredictivePolicy,
)


FEATURES = np.zeros(10)


def test_oracle_thresholds_on_true_reading_time():
    policy = OraclePolicy(threshold=9.0)
    assert policy.decide(FEATURES, 10.0).switch_to_idle
    assert not policy.decide(FEATURES, 8.0).switch_to_idle


def test_oracle_boundary_is_strict():
    policy = OraclePolicy(threshold=9.0)
    assert not policy.decide(FEATURES, 9.0).switch_to_idle


def test_oracle_validation():
    with pytest.raises(ValueError):
        OraclePolicy(threshold=0.0)


def test_always_and_never_off():
    assert AlwaysOffPolicy().decide(FEATURES, 0.1).switch_to_idle
    assert not NeverOffPolicy().decide(FEATURES, 1e9).switch_to_idle


class FakePredictor:
    def __init__(self, value):
        self.value = value

    def predict_one(self, features):
        return self.value


def test_delay_mode_switches_only_above_td():
    config = PolicyConfig(mode="delay")
    below = PredictivePolicy(FakePredictor(15.0), config)
    above = PredictivePolicy(FakePredictor(25.0), config)
    # 15 s is above Tp but below Td: delay mode must NOT switch.
    assert not below.decide(FEATURES, 0.0).switch_to_idle
    assert above.decide(FEATURES, 0.0).switch_to_idle


def test_power_mode_switches_above_tp():
    config = PolicyConfig(mode="power")
    policy = PredictivePolicy(FakePredictor(15.0), config)
    assert policy.decide(FEATURES, 0.0).switch_to_idle
    low = PredictivePolicy(FakePredictor(5.0), config)
    assert not low.decide(FEATURES, 0.0).switch_to_idle


def test_decision_carries_prediction_and_reason():
    policy = PredictivePolicy(FakePredictor(30.0), PolicyConfig())
    decision = policy.decide(FEATURES, 0.0)
    assert decision.predicted_reading_time == pytest.approx(30.0)
    assert "Tr=30.0" in decision.reason


def test_policy_names_reflect_mode():
    assert PredictivePolicy(FakePredictor(1), PolicyConfig(mode="power")) \
        .name == "predict-9"
    assert PredictivePolicy(FakePredictor(1), PolicyConfig(mode="delay")) \
        .name == "predict-20"
    assert OraclePolicy(9.0).name == "accurate-9"


def test_policy_config_validation():
    with pytest.raises(ValueError):
        PolicyConfig(mode="other")
    with pytest.raises(ValueError):
        PolicyConfig(power_threshold=25.0, delay_threshold=20.0)
    with pytest.raises(ValueError):
        PolicyConfig(interest_threshold=-1.0)


def test_real_predictor_drives_policy(trained_predictor, small_trace):
    policy = PredictivePolicy(trained_predictor, PolicyConfig(mode="power"))
    switched = 0
    for record in small_trace.records[:100]:
        decision = policy.decide(record.feature_vector(),
                                 record.reading_time)
        switched += decision.switch_to_idle
    assert 0 < switched < 100  # the policy discriminates
