"""Reading-time predictor."""

import numpy as np
import pytest

from repro.prediction.predictor import ReadingTimePredictor


def test_predictions_are_positive(trained_predictor, small_trace):
    x, _ = small_trace.to_arrays()
    predictions = trained_predictor.predict(x[:50])
    assert (predictions >= 0).all()


def test_beats_base_rate_at_both_thresholds(trained_predictor,
                                            small_trace):
    """The predictor must beat always-say-short on the >α population."""
    interested = small_trace.exclude_quick_bounces(2.0)
    y = interested.reading_times()
    for threshold in (9.0, 20.0):
        base_rate = max(np.mean(y > threshold), np.mean(y <= threshold))
        accuracy = trained_predictor.accuracy(interested, threshold)
        assert accuracy > base_rate


def test_interest_threshold_filters_training_data(small_trace):
    with_alpha = ReadingTimePredictor(n_estimators=30,
                                      interest_threshold=2.0)
    without = ReadingTimePredictor(n_estimators=30,
                                   interest_threshold=None)
    with_alpha.fit(small_trace)
    without.fit(small_trace)
    x, _ = small_trace.to_arrays()
    # The α-trained model never saw bounce targets, so its predictions
    # sit higher on average.
    assert with_alpha.predict(x).mean() > without.predict(x).mean()


def test_predict_one_matches_batch(trained_predictor, small_trace):
    x, _ = small_trace.to_arrays()
    row = x[7]
    assert trained_predictor.predict_one(row) == pytest.approx(
        float(trained_predictor.predict(row.reshape(1, -1))[0]))


def test_untrained_predictor_rejects_use(small_trace):
    predictor = ReadingTimePredictor()
    x, _ = small_trace.to_arrays()
    with pytest.raises(RuntimeError):
        predictor.predict(x)
    with pytest.raises(RuntimeError):
        predictor.predict_one(x[0])
    with pytest.raises(RuntimeError):
        predictor.save_json("/tmp/never.json")


def test_json_roundtrip(trained_predictor, small_trace, tmp_path):
    path = tmp_path / "model.json"
    trained_predictor.save_json(str(path))
    restored = ReadingTimePredictor.load_json(str(path))
    x, _ = small_trace.to_arrays()
    assert np.allclose(trained_predictor.predict(x[:20]),
                       restored.predict(x[:20]))
    assert restored.interest_threshold == 2.0


def test_fit_arrays_path(small_trace):
    x, y = small_trace.to_arrays()
    predictor = ReadingTimePredictor(n_estimators=20).fit_arrays(x, y)
    assert predictor.predict(x[:3]).shape == (3,)
