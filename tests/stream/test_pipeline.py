"""stream_capacity_run vs CapacitySimulator.run: identical results,
durable checkpoints, honest counters."""

import numpy as np
import pytest

import repro.stream.pipeline as pipeline_module
from repro.capacity.simulator import CapacityConfig, CapacitySimulator
from repro.runtime.observability import collecting
from repro.stream.aggregate import ServiceAggregate
from repro.stream.pipeline import (StreamingCapacitySimulator,
                                   stream_capacity_run)
from repro.stream.shard import ShardStore, params_fingerprint


@pytest.fixture(scope="module")
def simulator():
    rng = np.random.default_rng(7)
    pool = rng.lognormal(np.log(14.0), 0.5, size=400)
    return CapacitySimulator(
        pool, CapacityConfig(n_channels=50, horizon=1800.0, seed=11))


@pytest.mark.parametrize("block_arrivals", [333, 1000, 65536])
@pytest.mark.parametrize("threaded", [True, False])
def test_matches_in_memory_run(simulator, block_arrivals, threaded):
    for n_users, seed in ((40, 5), (120, 99), (120, None)):
        reference = simulator.run(n_users, seed=seed)
        streamed = stream_capacity_run(simulator, n_users, seed,
                                       block_arrivals=block_arrivals,
                                       threaded=threaded)
        assert streamed == reference


def test_backend_run_matches_reference(simulator, tmp_path):
    """The block resolver on an array-API backend, end to end through
    the pipeline — results, aggregate and checkpoints (the carry spills
    to host and re-enters the namespace) all match the NumPy path."""
    reference = simulator.run(120, seed=99)
    aggregate = ServiceAggregate()
    fingerprint = params_fingerprint({"n_users": 120, "seed": 99,
                                      "backend": "restricted"})
    streamed = stream_capacity_run(
        simulator, 120, 99, block_arrivals=1000, backend="restricted",
        aggregate=aggregate,
        store=ShardStore(tmp_path / "pt", fingerprint),
        checkpoint_every=2)
    assert streamed == reference
    _, services = simulator.draw(120, np.random.default_rng(99))
    assert aggregate == ServiceAggregate().add_block(services)

    streaming = StreamingCapacitySimulator(simulator.service_times,
                                           simulator.config,
                                           block_arrivals=2048,
                                           backend="restricted")
    assert streaming.run(40, seed=5) == simulator.run(40, seed=5)


def test_unknown_backend_rejected_before_any_work(simulator):
    with pytest.raises(ValueError, match="unknown backend"):
        stream_capacity_run(simulator, 40, 5, backend="nonsense")


def test_aggregate_equals_materialised_fold(simulator):
    aggregate = ServiceAggregate()
    stream_capacity_run(simulator, 120, 99, block_arrivals=1000,
                        aggregate=aggregate)
    _, services = simulator.draw(120, np.random.default_rng(99))
    assert aggregate == ServiceAggregate().add_block(services)


def test_streaming_simulator_is_drop_in(simulator):
    streaming = StreamingCapacitySimulator(simulator.service_times,
                                           simulator.config,
                                           block_arrivals=2048)
    counts = [60, 100, 140]
    assert streaming.sweep(counts, seed=13) \
        == simulator.sweep(counts, seed=13)


def _interrupted_run(simulator, store, kill_at, with_aggregate=True,
                     monkeypatch=None):
    """Run with ``store`` but die (KeyboardInterrupt) at the
    ``kill_at``-th block — a simulated mid-run kill."""
    calls = {"n": 0}
    original = pipeline_module.resolve_drops_block

    def bomb(*args, **kwargs):
        calls["n"] += 1
        if calls["n"] == kill_at:
            raise KeyboardInterrupt
        return original(*args, **kwargs)

    monkeypatch.setattr(pipeline_module, "resolve_drops_block", bomb)
    try:
        with pytest.raises(KeyboardInterrupt):
            stream_capacity_run(
                simulator, 120, 99, block_arrivals=1000, store=store,
                checkpoint_every=2,
                aggregate=ServiceAggregate() if with_aggregate
                else None)
    finally:
        monkeypatch.setattr(pipeline_module, "resolve_drops_block",
                            original)


def test_kill_and_resume_is_bit_identical(simulator, tmp_path,
                                          monkeypatch):
    fingerprint = params_fingerprint({"n_users": 120, "seed": 99})
    store = ShardStore(tmp_path / "pt", fingerprint)
    _interrupted_run(simulator, store, kill_at=7,
                     monkeypatch=monkeypatch)

    reference = simulator.run(120, seed=99)
    _, services = simulator.draw(120, np.random.default_rng(99))
    aggregate = ServiceAggregate()
    with collecting() as stats:
        resumed = stream_capacity_run(
            simulator, 120, 99, block_arrivals=1000,
            store=ShardStore(tmp_path / "pt", fingerprint),
            checkpoint_every=2, aggregate=aggregate)
    assert resumed == reference
    assert aggregate == ServiceAggregate().add_block(services)
    # resume really skipped the first blocks (checkpoint at block 6)
    total_blocks = -(-resumed.sessions // 1000)
    assert 0 < stats.snapshot().stream_blocks < total_blocks

    # a third run hits the final shard and streams nothing at all
    with collecting() as stats:
        again = stream_capacity_run(
            simulator, 120, 99, block_arrivals=1000,
            store=ShardStore(tmp_path / "pt", fingerprint),
            aggregate=ServiceAggregate())
    assert again == reference
    assert stats.snapshot().stream_blocks == 0


def test_truncated_checkpoint_restarts_clean(simulator, tmp_path,
                                             monkeypatch):
    fingerprint = params_fingerprint({"n_users": 120, "seed": 99})
    store = ShardStore(tmp_path / "pt", fingerprint)
    _interrupted_run(simulator, store, kill_at=7,
                     monkeypatch=monkeypatch)
    path = tmp_path / "pt" / "checkpoint.npz"
    data = path.read_bytes()
    path.write_bytes(data[:len(data) // 2])

    resumed = stream_capacity_run(
        simulator, 120, 99, block_arrivals=1000,
        store=ShardStore(tmp_path / "pt", fingerprint),
        checkpoint_every=2)
    assert resumed == simulator.run(120, seed=99)


def test_aggregate_less_checkpoint_not_reused_with_aggregate(
        simulator, tmp_path, monkeypatch):
    """A checkpoint written without an aggregate must not serve a run
    that wants one — it would silently return a partial fold."""
    fingerprint = params_fingerprint({"n_users": 120, "seed": 99})
    store = ShardStore(tmp_path / "pt", fingerprint)
    _interrupted_run(simulator, store, kill_at=7, with_aggregate=False,
                     monkeypatch=monkeypatch)
    aggregate = ServiceAggregate()
    stream_capacity_run(simulator, 120, 99, block_arrivals=1000,
                        store=ShardStore(tmp_path / "pt", fingerprint),
                        checkpoint_every=2, aggregate=aggregate)
    _, services = simulator.draw(120, np.random.default_rng(99))
    assert aggregate == ServiceAggregate().add_block(services)


def test_counters_report_blocks_and_spills(simulator, tmp_path):
    fingerprint = params_fingerprint({"n_users": 80, "seed": 3})
    with collecting() as stats:
        result = stream_capacity_run(
            simulator, 80, 3, block_arrivals=1000,
            store=ShardStore(tmp_path / "pt", fingerprint),
            checkpoint_every=2, aggregate=ServiceAggregate())
    snapshot = stats.snapshot()
    expected_blocks = -(-result.sessions // 1000)
    assert snapshot.stream_blocks == expected_blocks
    # periodic checkpoints plus the final shard
    assert snapshot.stream_spills == expected_blocks // 2 + 1
    assert snapshot.stream_shard_bytes > 0
    assert snapshot.stream_peak_carried_bytes > 0
    # dict/merge plumbing carries the stream fields
    merged = snapshot.merged(snapshot)
    assert merged.stream_blocks == 2 * snapshot.stream_blocks
    assert merged.stream_peak_carried_bytes \
        == snapshot.stream_peak_carried_bytes
    assert "stream_blocks" in snapshot.to_dict()


def test_producer_exception_propagates(simulator, monkeypatch):
    from repro.stream import source as source_module

    def explode(self):
        raise RuntimeError("draw failed")
        yield  # pragma: no cover

    monkeypatch.setattr(source_module.ArrivalBlockSource, "blocks",
                        explode)
    with pytest.raises(RuntimeError, match="draw failed"):
        stream_capacity_run(simulator, 40, 5)


def test_validation(simulator):
    with pytest.raises(ValueError):
        stream_capacity_run(simulator, 0)
    with pytest.raises(ValueError):
        stream_capacity_run(simulator, 10, checkpoint_every=0)
