"""ShardStore durability: atomic writes, self-verifying reads,
fingerprint hygiene."""

import json

import numpy as np
import pytest

from repro.stream.shard import ShardStore, params_fingerprint


@pytest.fixture
def store(tmp_path):
    return ShardStore(tmp_path / "shards", params_fingerprint({"a": 1}))


def test_roundtrip(store):
    arrays = {"busy": np.array([1.5, 2.5, 3.5]),
              "empty": np.empty(0, dtype=np.float64)}
    meta = {"dropped": 7, "nested": {"x": [1, 2]}}
    nbytes = store.put("checkpoint", arrays, meta)
    assert nbytes > 0
    assert store.shard_bytes() == nbytes
    loaded, loaded_meta = store.get("checkpoint")
    np.testing.assert_array_equal(loaded["busy"], arrays["busy"])
    assert loaded["empty"].size == 0
    assert loaded_meta == meta


def test_missing_key(store):
    assert store.get("nope") is None


def test_truncated_shard_detected_and_invalidated(store, tmp_path):
    store.put("checkpoint", {"busy": np.arange(100.0)}, {"n": 1})
    path = tmp_path / "shards" / "checkpoint.npz"
    data = path.read_bytes()
    path.write_bytes(data[:len(data) // 2])
    assert store.get("checkpoint") is None
    # the entry is gone: a fresh put starts clean and reads back fine
    assert "checkpoint" not in store.keys()
    store.put("checkpoint", {"busy": np.arange(3.0)}, {"n": 2})
    arrays, meta = store.get("checkpoint")
    assert meta == {"n": 2}


def test_corrupted_bytes_detected(store, tmp_path):
    store.put("final", {}, {"sessions": 5})
    path = tmp_path / "shards" / "final.npz"
    payload = bytearray(path.read_bytes())
    payload[len(payload) // 2] ^= 0xFF
    path.write_bytes(bytes(payload))
    assert store.get("final") is None


def test_deleted_file_invalidates_entry(store, tmp_path):
    store.put("checkpoint", {"busy": np.arange(4.0)}, {})
    (tmp_path / "shards" / "checkpoint.npz").unlink()
    assert store.get("checkpoint") is None
    assert store.keys() == []


def test_fingerprint_mismatch_discards_manifest(tmp_path):
    first = ShardStore(tmp_path / "s", params_fingerprint({"seed": 1}))
    first.put("final", {}, {"sessions": 10})
    other = ShardStore(tmp_path / "s", params_fingerprint({"seed": 2}))
    assert other.get("final") is None
    # same fingerprint still sees the shard
    again = ShardStore(tmp_path / "s", params_fingerprint({"seed": 1}))
    assert again.get("final") is not None


def test_corrupt_manifest_treated_as_empty(tmp_path):
    store = ShardStore(tmp_path / "s", "fp")
    store.put("final", {}, {"n": 1})
    (tmp_path / "s" / "manifest.json").write_text("{not json")
    reopened = ShardStore(tmp_path / "s", "fp")
    assert reopened.get("final") is None
    reopened.put("final", {}, {"n": 2})
    assert reopened.get("final")[1] == {"n": 2}


def test_discard_removes_file_and_entry(store, tmp_path):
    store.put("checkpoint", {"busy": np.arange(2.0)}, {})
    store.discard("checkpoint")
    assert store.get("checkpoint") is None
    assert not (tmp_path / "shards" / "checkpoint.npz").exists()
    store.discard("checkpoint")  # idempotent


def test_overwrite_updates_manifest(store):
    store.put("checkpoint", {"busy": np.arange(10.0)}, {"n": 1})
    store.put("checkpoint", {"busy": np.arange(2.0)}, {"n": 2})
    arrays, meta = store.get("checkpoint")
    assert arrays["busy"].size == 2
    assert meta == {"n": 2}


def test_params_fingerprint_is_order_insensitive():
    assert params_fingerprint({"a": 1, "b": 2}) \
        == params_fingerprint({"b": 2, "a": 1})
    assert params_fingerprint({"a": 1}) != params_fingerprint({"a": 2})


def test_manifest_is_valid_json(store, tmp_path):
    store.put("checkpoint", {"busy": np.arange(3.0)}, {"n": 1})
    manifest = json.loads(
        (tmp_path / "shards" / "manifest.json").read_text())
    assert manifest["shards"]["checkpoint"]["bytes"] > 0


def test_two_writers_sharing_a_root_lose_no_keys(tmp_path):
    """Concurrent-writer hardening: each store's put() re-reads the
    manifest under the lock, so interleaved writes from two store
    instances (distinct keys, one directory) all survive."""
    fp = params_fingerprint({"a": 1})
    a = ShardStore(tmp_path / "shared", fp)
    b = ShardStore(tmp_path / "shared", fp)  # opened before a writes
    a.put("unit-0", {"x": np.arange(3.0)}, {"who": "a"})
    b.put("unit-1", {"x": np.arange(4.0)}, {"who": "b"})
    a.put("unit-2", {"x": np.arange(5.0)}, {"who": "a"})
    fresh = ShardStore(tmp_path / "shared", fp)
    assert fresh.keys() == ["unit-0", "unit-1", "unit-2"]
    for key in fresh.keys():
        arrays, _ = fresh.get(key)
        assert arrays["x"].size > 0


def test_two_writers_hammering_threads_lose_no_keys(tmp_path):
    import threading

    fp = params_fingerprint({"a": 2})
    errors = []

    def writer(name, count):
        try:
            store = ShardStore(tmp_path / "shared", fp)
            for i in range(count):
                store.put(f"{name}-{i}", {"x": np.arange(2.0)}, {})
        except Exception as exc:  # pragma: no cover - failure detail
            errors.append(exc)

    threads = [threading.Thread(target=writer, args=(n, 8))
               for n in ("a", "b")]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []
    fresh = ShardStore(tmp_path / "shared", fp)
    assert len(fresh.keys()) == 16


def test_live_lock_contention_raises(tmp_path):
    from repro.runtime import lease
    from repro.stream.shard import ShardContentionError

    store = ShardStore(tmp_path / "shards", params_fingerprint({"a": 3}),
                       lock_timeout=0.05, lock_stale_after=60.0)
    # simulate a live writer holding the manifest lock
    assert lease.try_claim(store._lock_path, "other-writer")
    with pytest.raises(ShardContentionError):
        store.put("k", {"x": np.arange(2.0)}, {})
    lease.release(store._lock_path)
    store.put("k", {"x": np.arange(2.0)}, {})
    assert store.keys() == ["k"]


def test_stale_lock_is_stolen(tmp_path):
    import os
    import time

    from repro.runtime import lease

    store = ShardStore(tmp_path / "shards", params_fingerprint({"a": 4}),
                       lock_timeout=1.0, lock_stale_after=5.0)
    assert lease.try_claim(store._lock_path, "dead-writer")
    old = time.time() - 1000.0
    os.utime(store._lock_path, (old, old))
    store.put("k", {"x": np.arange(2.0)}, {})  # steals, does not raise
    assert store.keys() == ["k"]
