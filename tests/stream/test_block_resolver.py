"""Chained block-wise drop resolution vs the heap reference.

:func:`repro.fleet.capacity.resolve_drops_block` threads a
:class:`DropCarry` between arbitrary consecutive chunks of one arrival
stream; the concatenated masks must equal both the scalar heap replay
and the whole-array :func:`resolve_drops`, and the carried frontier
must respect its invariants (bounded by ``n_channels``, strictly after
the boundary)."""

import heapq

import numpy as np
import pytest

from repro.fleet.capacity import DropCarry, resolve_drops, \
    resolve_drops_block


def _reference_drops(arrivals, services, n_channels):
    dropped = np.zeros(arrivals.size, dtype=bool)
    busy: list = []
    for i, (arrival, service) in enumerate(zip(arrivals.tolist(),
                                               services.tolist())):
        while busy and busy[0] <= arrival:
            heapq.heappop(busy)
        if len(busy) >= n_channels:
            dropped[i] = True
            continue
        heapq.heappush(busy, arrival + service)
    return dropped


def _random_case(rng):
    m = int(rng.integers(1, 500))
    gaps = rng.exponential(rng.uniform(0.2, 3.0), size=m)
    arrivals = np.cumsum(gaps)
    if rng.random() < 0.3:
        arrivals = np.sort(np.round(arrivals, 1))
    services = rng.uniform(0.5, 30.0, size=m)
    if rng.random() < 0.3:
        services = np.maximum(np.round(services, 1), 0.1)
    n_channels = int(rng.integers(1, 12))
    return arrivals, services, n_channels


def _chain(arrivals, services, n_channels, rng, force_budget):
    """Feed random-size chunks (including empty ones) through the block
    resolver, occasionally strangling the sweep budget to exercise the
    scalar fallback mid-chain."""
    carry = DropCarry.empty()
    masks = []
    i = 0
    m = arrivals.size
    while i < m:
        size = int(rng.integers(0, max(2, m // 3)))
        blk = slice(i, min(m, i + size))
        budget = 1 if (force_budget and rng.random() < 0.3) else 40
        mask, carry = resolve_drops_block(
            arrivals[blk], services[blk], n_channels, carry,
            max_sweeps=budget)
        masks.append(mask)
        assert carry.busy.size <= n_channels
        assert (carry.busy > carry.boundary).all()
        i = blk.stop
    return np.concatenate(masks) if masks else np.empty(0, dtype=bool)


@pytest.mark.parametrize("seed", range(10))
def test_chained_blocks_match_heap_and_whole_array(seed):
    rng = np.random.default_rng(seed)
    for trial in range(20):
        arrivals, services, n_channels = _random_case(rng)
        expected = _reference_drops(arrivals, services, n_channels)
        whole = resolve_drops(arrivals, services, n_channels)
        chained = _chain(arrivals, services, n_channels, rng,
                         force_budget=(trial % 2 == 0))
        np.testing.assert_array_equal(chained, expected)
        np.testing.assert_array_equal(whole, expected)


def test_empty_block_passes_carry_through():
    carry = DropCarry(busy=np.array([5.0, 7.0]), boundary=4.0)
    mask, after = resolve_drops_block(np.empty(0), np.empty(0), 3, carry)
    assert mask.size == 0
    np.testing.assert_array_equal(after.busy, carry.busy)
    assert after.boundary == carry.boundary


def test_single_session_blocks():
    """block size 1 is the fully-degenerate chaining: every session is
    its own block, so every drop decision flows through the carry."""
    rng = np.random.default_rng(42)
    arrivals = np.cumsum(rng.exponential(1.0, size=200))
    services = rng.uniform(0.5, 20.0, size=200)
    expected = _reference_drops(arrivals, services, 4)
    carry = DropCarry.empty()
    got = np.empty(200, dtype=bool)
    for i in range(200):
        mask, carry = resolve_drops_block(arrivals[i:i + 1],
                                          services[i:i + 1], 4, carry)
        got[i] = mask[0]
    np.testing.assert_array_equal(got, expected)


def test_carry_nbytes_bounded_by_channels():
    rng = np.random.default_rng(1)
    arrivals = np.cumsum(rng.exponential(0.05, size=5000))
    services = rng.uniform(5.0, 50.0, size=5000)
    carry = DropCarry.empty()
    for i in range(0, 5000, 250):
        _, carry = resolve_drops_block(arrivals[i:i + 250],
                                       services[i:i + 250], 8, carry)
        assert carry.nbytes <= 8 * 8 + 8
