"""Golden equivalence: streamed sweeps must be byte-identical to the
in-memory reference paths.

Same discipline as ``tests/experiments/test_golden_equivalence.py``:
each workload runs in two subprocesses — one with ``REPRO_STREAM=1``,
one without — and the *entire* printed output must match.  The
streaming toggle has opposite polarity to the slow-path vars (set =
take the new path), so the helper here flips the variant run on rather
than off.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.stream import STREAM_ENV

SRC = str(Path(__file__).resolve().parents[2] / "src")


def _run(script: str, streamed: bool, extra_env=None,
         timeout: float = 600.0) -> str:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC
    env.pop(STREAM_ENV, None)
    if streamed:
        env[STREAM_ENV] = "1"
    if extra_env:
        env.update(extra_env)
    proc = subprocess.run([sys.executable, "-c", script],
                          capture_output=True, text=True, env=env,
                          timeout=timeout)
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def _assert_identical(script: str) -> None:
    in_memory = _run(script, streamed=False)
    streamed = _run(script, streamed=True)
    assert streamed == in_memory
    assert in_memory  # an empty "report" would prove nothing


FIG11 = """
from repro.experiments.fig11_capacity import run
from repro.units import hours
print(run(horizon=hours(0.1)).report())
"""

FAULTS_SWEEP = """
from repro.experiments.fig_sensitivity import run_profile
from repro.webpages.corpus import benchmark_pages
pages = benchmark_pages(mobile=True)[:2] + benchmark_pages(mobile=False)[:1]
print(run_profile("congested", seed=123, pages=pages).report())
"""

STREAM_SWEEP_REPORT = """
import json
from repro.capacity.simulator import CapacityConfig
from repro.stream.sweep import lognormal_pool, run_stream_sweep
pool = lognormal_pool()
config = CapacityConfig(n_channels=60, horizon=1200.0, seed=5)
result = run_stream_sweep(pool, [80, 100, 120], config, seed=9,
                          stream=__import__("repro.stream",
                                            fromlist=["stream_enabled"]
                                            ).stream_enabled())
print(result.report())
print(json.dumps(result.to_dict(), sort_keys=True))
"""


def test_fig11_report_identical_streamed():
    """fig11 through StreamingCapacitySimulator vs CapacitySimulator."""
    _assert_identical(FIG11)


def test_faults_sweep_report_identical_streamed():
    """run_profile folding PageRows vs holding live comparisons."""
    _assert_identical(FAULTS_SWEEP)


def test_stream_sweep_report_and_json_identical():
    """The stream-sweep points — including the report JSON — match
    between the block pipeline and the materialised path."""
    _assert_identical(STREAM_SWEEP_REPORT)


def test_cli_stream_sweep_resumes_and_reports_identically(tmp_path):
    """End-to-end through the CLI: a sharded sweep rerun with the same
    --out serves every point from the final shards (zero blocks) and
    prints the identical report."""
    report_a = tmp_path / "a.json"
    report_b = tmp_path / "b.json"
    args = [sys.executable, "-m", "repro", "stream-sweep",
            "--scale", "1", "--horizon", "600", "--seed", "5",
            "--users", "250", "300", "--block", "4096",
            "--out", str(tmp_path / "shards"),
            "--checkpoint-every", "2"]
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC
    first = subprocess.run(args + ["--report", str(report_a)],
                           capture_output=True, text=True, env=env,
                           timeout=600.0)
    assert first.returncode == 0, first.stderr
    second = subprocess.run(args + ["--report", str(report_b)],
                            capture_output=True, text=True, env=env,
                            timeout=600.0)
    assert second.returncode == 0, second.stderr

    payload_a = json.loads(report_a.read_text())
    payload_b = json.loads(report_b.read_text())
    for key in ("config", "points"):
        assert payload_a[key] == payload_b[key]
    # the rerun touched no blocks: everything came from the shards
    assert payload_b["kernel"]["stream_blocks"] == 0
    assert payload_a["kernel"]["stream_blocks"] > 0
    # the rendered tables (everything above the runtime line) match
    table_a = first.stdout.split("-- streamed runtime")[0]
    table_b = second.stdout.split("-- streamed runtime")[0]
    assert table_a == table_b
    assert "users" in table_a
