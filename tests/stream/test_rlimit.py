"""Bounded-memory proof: under an address-space rlimit sized from the
streamed run's own peak, the streamed sweep completes while the
in-memory path dies allocating its materialised arrays.

This is the acceptance criterion for the streaming engine made
executable: a fig11-shaped point at 10x the default population (2000
channels, 8 h horizon) with ~100 MB of headroom over the streamed
peak."""

import json
import resource
import subprocess
import sys
from pathlib import Path

import pytest

pytestmark = pytest.mark.skipif(
    sys.platform != "linux",
    reason="RLIMIT_AS semantics are only reliable on Linux")

SRC = str(Path(__file__).resolve().parents[2] / "src")

_CHILD = r"""
import json
import sys

from repro.capacity.simulator import CapacityConfig
from repro.stream.sweep import (default_user_counts, lognormal_pool,
                                run_stream_sweep)

params = json.loads(sys.argv[1])
pool = lognormal_pool()
config = CapacityConfig(n_channels=params["n_channels"],
                        horizon=params["horizon"], seed=7)
counts = [default_user_counts(config, float(pool.mean()))[2]]
result = run_stream_sweep(pool, counts, config, seed=7,
                          stream=params["stream"])
peak_kb = 0
with open("/proc/self/status") as status:
    for line in status:
        if line.startswith("VmPeak:"):
            peak_kb = int(line.split()[1])
print(json.dumps({"sessions": result.points[0].sessions,
                  "dropped": result.points[0].dropped,
                  "vm_peak_kb": peak_kb}))
"""

PARAMS = {"n_channels": 2000, "horizon": 28800.0}


def _run_child(stream, limit_bytes=None, timeout=540.0):
    def set_limit():
        resource.setrlimit(resource.RLIMIT_AS,
                           (limit_bytes, limit_bytes))

    return subprocess.run(
        [sys.executable, "-c", _CHILD,
         json.dumps({**PARAMS, "stream": stream})],
        capture_output=True, text=True, timeout=timeout,
        env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
        preexec_fn=set_limit if limit_bytes else None)


def test_streamed_fits_where_in_memory_ooms():
    # 1. Unlimited streamed run: the reference answer and the peak
    #    address space the limit is derived from.
    free = _run_child(stream=True)
    assert free.returncode == 0, free.stderr
    reference = json.loads(free.stdout)
    assert reference["sessions"] > 0
    limit = (reference["vm_peak_kb"] + 100 * 1024) * 1024

    # 2. The in-memory path cannot materialise the sweep under that
    #    limit.
    in_memory = _run_child(stream=False, limit_bytes=limit)
    assert in_memory.returncode != 0, (
        "in-memory path unexpectedly fit under the rlimit; "
        "streamed peak no longer meaningfully lower?")
    assert ("MemoryError" in in_memory.stderr
            or "Unable to allocate" in in_memory.stderr
            or "Cannot allocate" in in_memory.stderr), in_memory.stderr

    # 3. The streamed path completes under the same limit with the
    #    identical answer.
    bounded = _run_child(stream=True, limit_bytes=limit)
    assert bounded.returncode == 0, bounded.stderr
    result = json.loads(bounded.stdout)
    assert result["sessions"] == reference["sessions"]
    assert result["dropped"] == reference["dropped"]
