"""Aggregator laws: exactness, associativity, chunking invariance.

The streaming engine's byte-identity claim rests on these properties,
so they are property-tested rather than example-tested: any chunking of
a sequence must produce the identical aggregate state, and any merge
tree over the chunks must produce the identical result.
"""

import json
import math
from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stream.aggregate import (ExactSum, MeanVariance, MinMax,
                                    QuantileSketch, ServiceAggregate,
                                    _UNIT_EXP)

finite_floats = st.floats(min_value=-1e12, max_value=1e12,
                          allow_nan=False, allow_infinity=False)
float_lists = st.lists(finite_floats, max_size=200)


def _split(values, cuts):
    points = sorted(c % (len(values) + 1) for c in cuts)
    pieces = []
    last = 0
    for p in points:
        pieces.append(values[last:p])
        last = p
    pieces.append(values[last:])
    return pieces


@settings(max_examples=100, deadline=None)
@given(float_lists)
def test_exact_sum_matches_fraction_oracle(values):
    total = ExactSum().add_block(np.array(values, dtype=np.float64))
    oracle = sum(Fraction(v) for v in map(float, values))
    assert Fraction(total.units, 1 << _UNIT_EXP) == oracle
    assert total.value == float(oracle)


@settings(max_examples=100, deadline=None)
@given(float_lists, st.lists(st.integers(min_value=0), min_size=2,
                             max_size=4))
def test_exact_sum_merge_is_exact_and_associative(values, cuts):
    x = np.array(values, dtype=np.float64)
    whole = ExactSum().add_block(x)
    parts = [ExactSum().add_block(np.array(p, dtype=np.float64))
             for p in _split(values, cuts)]
    left = ExactSum()
    for part in parts:
        left.merge(part)
    right = ExactSum()
    for part in reversed(
            [ExactSum.from_state(p.to_state()) for p in parts]):
        # re-hydrated copies merged in the opposite order
        right.merge(part)
    assert left == right == whole


def test_exact_sum_handles_subnormals_and_extremes():
    x = np.array([5e-324, 2.5e-310, 1e300, -1e300, 1e-300, math.pi])
    total = ExactSum().add_block(x)
    oracle = sum(Fraction(float(v)) for v in x)
    assert Fraction(total.units, 1 << _UNIT_EXP) == oracle


@settings(max_examples=60, deadline=None)
@given(float_lists, st.lists(st.integers(min_value=0), min_size=2,
                             max_size=4))
def test_mean_variance_split_invariant(values, cuts):
    x = np.array(values, dtype=np.float64)
    whole = MeanVariance().add_block(x)
    chunked = MeanVariance()
    for piece in _split(values, cuts):
        chunked.add_block(np.array(piece, dtype=np.float64))
    merged = MeanVariance()
    for piece in _split(values, cuts):
        merged.merge(MeanVariance().add_block(
            np.array(piece, dtype=np.float64)))
    assert whole == chunked == merged
    assert whole.count == len(values)
    if values:
        assert whole.variance >= 0.0
        assert whole.std == math.sqrt(whole.variance)


def test_mean_variance_matches_numpy():
    rng = np.random.default_rng(3)
    x = rng.lognormal(2.0, 0.7, size=5000)
    stats = MeanVariance().add_block(x)
    assert math.isclose(stats.mean, float(x.mean()), rel_tol=1e-12)
    assert math.isclose(stats.variance, float(x.var()), rel_tol=1e-9)


@settings(max_examples=60, deadline=None)
@given(float_lists, st.lists(st.integers(min_value=0), min_size=2,
                             max_size=4))
def test_minmax_split_invariant(values, cuts):
    x = np.array(values, dtype=np.float64)
    whole = MinMax().add_block(x)
    merged = MinMax()
    for piece in _split(values, cuts):
        merged.merge(MinMax().add_block(np.array(piece,
                                                 dtype=np.float64)))
    assert whole == merged
    if values:
        assert whole.minimum == float(x.min())
        assert whole.maximum == float(x.max())


def test_sketch_is_chunking_invariant():
    """Feeding a sequence in any chunking yields the identical sketch
    state — the property that keeps streamed reports byte-identical."""
    rng = np.random.default_rng(5)
    x = rng.exponential(10.0, size=40000)
    whole = QuantileSketch(k=256).add_block(x)
    for trial in range(5):
        chunked = QuantileSketch(k=256)
        i = 0
        while i < x.size:
            step = int(rng.integers(1, 4000))
            chunked.add_block(x[i:i + step])
            i += step
        assert chunked == whole


@pytest.mark.parametrize("n", [1, 255, 256, 257, 10000])
def test_sketch_rank_within_bound(n):
    rng = np.random.default_rng(n)
    x = rng.exponential(10.0, size=n)
    sketch = QuantileSketch(k=256).add_block(x)
    assert sketch.count == n
    xs = np.sort(x)
    for q in (0.01, 0.5, 0.9, 0.99, 1.0):
        value = sketch.quantile(q)
        true_rank = int(np.searchsorted(xs, value, side="right"))
        assert abs(sketch.rank(value) - true_rank) \
            <= sketch.rank_error_bound


def test_sketch_merge_conserves_weight_and_bound():
    rng = np.random.default_rng(9)
    a = QuantileSketch().add_block(rng.exponential(5.0, size=30000))
    b = QuantileSketch().add_block(rng.exponential(20.0, size=17001))
    bound_before = a.rank_error_bound + b.rank_error_bound
    a.merge(b)
    assert a.count == 47001
    total_weight = sum((1 << level) * len(buf)
                       for level, buf in enumerate(a._levels))
    assert total_weight == a.count
    assert a.rank_error_bound >= bound_before


def test_sketch_merge_rejects_mismatched_k():
    with pytest.raises(ValueError):
        QuantileSketch(k=256).merge(QuantileSketch(k=128))


def test_sketch_empty_and_validation():
    sketch = QuantileSketch()
    assert math.isnan(sketch.quantile(0.5))
    with pytest.raises(ValueError):
        sketch.quantile(1.5)
    with pytest.raises(ValueError):
        QuantileSketch(k=3)
    with pytest.raises(ValueError):
        QuantileSketch().add_block(np.array([np.nan]))


def test_service_aggregate_state_roundtrips_through_json():
    rng = np.random.default_rng(1)
    aggregate = ServiceAggregate().add_block(
        rng.exponential(10.0, size=12345))
    state = json.loads(json.dumps(aggregate.to_state()))
    restored = ServiceAggregate.from_state(state)
    assert restored == aggregate
    # and the restored copy keeps evolving identically
    more = rng.exponential(10.0, size=777)
    assert aggregate.add_block(more) == restored.add_block(more)


def test_service_aggregate_merge_matches_whole():
    """Moments and extrema merge exactly; the sketch merges within its
    self-reported rank bound (merge is a different compaction history
    than sequential feeding, so state equality is not promised)."""
    rng = np.random.default_rng(2)
    x = rng.exponential(10.0, size=20000)
    whole = ServiceAggregate().add_block(x)
    merged = ServiceAggregate().add_block(x[:333])
    merged.merge(ServiceAggregate().add_block(x[333:]))
    assert merged.moments == whole.moments
    assert merged.extrema == whole.extrema
    assert merged.sketch.count == whole.sketch.count
    xs = np.sort(x)
    for q in (0.5, 0.9, 0.99):
        value = merged.sketch.quantile(q)
        true_rank = int(np.searchsorted(xs, value, side="right"))
        assert abs(merged.sketch.rank(value) - true_rank) \
            <= merged.sketch.rank_error_bound


# ----------------------------------------------------------------------
# Distributed-sweep properties: merges over arbitrary partitions, and
# the partition-exact sketch stitch (repro.sched's aggregate layer).
# ----------------------------------------------------------------------

from repro.stream.aggregate import (PartialQuantileSketch,  # noqa: E402
                                    PartialServiceAggregate,
                                    stitch_quantile_sketch,
                                    stitch_service_aggregates)

service_floats = st.floats(min_value=1e-3, max_value=1e6,
                           allow_nan=False, allow_infinity=False)
service_lists = st.lists(service_floats, max_size=200)
cut_lists = st.lists(st.integers(min_value=0), min_size=2, max_size=5)


@settings(max_examples=100, deadline=None)
@given(float_lists, cut_lists, st.randoms(use_true_random=False))
def test_moment_merges_are_order_invariant_over_partitions(values, cuts,
                                                           rnd):
    """ExactSum / MeanVariance / MinMax: any partition of the stream,
    merged in any order, equals the whole — exactly, not approximately."""
    x = np.array(values, dtype=np.float64)
    whole = (ExactSum().add_block(x), MeanVariance().add_block(x),
             MinMax().add_block(x))
    pieces = _split(values, cuts)
    order = list(range(len(pieces)))
    rnd.shuffle(order)
    merged = (ExactSum(), MeanVariance(), MinMax())
    for i in order:
        arr = np.array(pieces[i], dtype=np.float64)
        merged[0].merge(ExactSum().add_block(arr))
        merged[1].merge(MeanVariance().add_block(arr))
        merged[2].merge(MinMax().add_block(arr))
    assert merged[0] == whole[0]
    assert merged[1] == whole[1]
    assert merged[2] == whole[2]


@settings(max_examples=100, deadline=None)
@given(service_lists, cut_lists, st.sampled_from([2, 4, 8, 16]))
def test_sketch_stitch_equals_sequential_over_partitions(values, cuts, k):
    """The dyadic-fragment stitch rebuilds the *sequential* sketch
    byte-for-byte from any partition of the stream into units."""
    serial = QuantileSketch(k=k).add_block(
        np.array(values, dtype=np.float64))
    offset = 0
    partials = []
    for piece in _split(values, cuts):
        partial = PartialQuantileSketch(offset, k=k)
        partial.add_block(np.array(piece, dtype=np.float64))
        offset += len(piece)
        partials.append(partial)
    assert stitch_quantile_sketch(partials) == serial


@settings(max_examples=60, deadline=None)
@given(service_lists, cut_lists)
def test_sketch_stitch_survives_json_roundtrip(values, cuts):
    """Fragments ride in shard manifests as JSON; repr round-trips
    floats exactly, so the stitched sketch stays byte-identical."""
    serial = QuantileSketch(k=4).add_block(
        np.array(values, dtype=np.float64))
    offset = 0
    parts = []
    for piece in _split(values, cuts):
        partial = PartialQuantileSketch(offset, k=4)
        partial.add_block(np.array(piece, dtype=np.float64))
        offset += len(piece)
        parts.append(json.loads(json.dumps(partial.to_parts())))
    assert stitch_quantile_sketch(parts) == serial


@settings(max_examples=60, deadline=None)
@given(service_lists, cut_lists, st.sampled_from([2, 8]))
def test_sketch_merge_stays_within_joint_rank_bound(values, cuts, k):
    """Plain ``merge`` (the rank-approximate path) over any grouping:
    weight is conserved and every rank estimate stays within the
    merged sketch's self-reported bound."""
    pieces = _split(values, cuts)
    merged = QuantileSketch(k=k)
    for piece in pieces:
        merged.merge(QuantileSketch(k=k).add_block(
            np.array(piece, dtype=np.float64)))
    assert merged.count == len(values)
    data = sorted(map(float, values))
    for probe in data[:: max(1, len(data) // 7)]:
        true_rank = sum(1 for v in data if v <= probe)
        assert abs(merged.rank(probe) - true_rank) \
            <= merged.rank_error_bound


@settings(max_examples=60, deadline=None)
@given(service_lists, cut_lists)
def test_service_aggregate_stitch_equals_sequential(values, cuts):
    """The composite fragment (exact moments + sketch parts) stitches
    to the exact sequential ServiceAggregate, JSON round-trip included."""
    serial = ServiceAggregate().add_block(
        np.array(values, dtype=np.float64))
    offset = 0
    states = []
    for piece in _split(values, cuts):
        partial = PartialServiceAggregate(offset)
        partial.add_block(np.array(piece, dtype=np.float64))
        offset += len(piece)
        states.append(json.loads(json.dumps(partial.to_state())))
    assert stitch_service_aggregates(states) == serial


def test_stitch_rejects_out_of_order_fragments():
    a = PartialQuantileSketch(0, k=4).add_block(np.arange(6.0))
    b = PartialQuantileSketch(6, k=4).add_block(np.arange(3.0))
    with pytest.raises(ValueError):
        stitch_quantile_sketch([b, a])
    with pytest.raises(ValueError):
        stitch_quantile_sketch([a, a])


def test_stitch_rejects_mismatched_k():
    a = PartialQuantileSketch(0, k=4).add_block(np.arange(4.0))
    b = PartialQuantileSketch(4, k=8).add_block(np.arange(3.0))
    with pytest.raises(ValueError):
        stitch_quantile_sketch([a, b])
