"""The chunked source must be draw-for-draw identical to the
materialised arrays — same values, same RNG consumption, any chunking."""

import json

import numpy as np
import pytest

from repro.capacity.simulator import CapacityConfig, CapacitySimulator
from repro.stream.source import ArrivalBlockSource


@pytest.fixture(scope="module")
def pool():
    rng = np.random.default_rng(7)
    return rng.lognormal(np.log(14.0), 0.5, size=400)


def _materialised(pool, n_users, config, seed):
    simulator = CapacitySimulator(pool, config)
    rng = np.random.default_rng(config.seed if seed is None else seed)
    return simulator.draw(n_users, rng)


@pytest.mark.parametrize("block_arrivals", [1, 7, 1000, 65536])
@pytest.mark.parametrize("n_users,seed", [(40, 3), (120, None)])
def test_blocks_concatenate_to_materialised_draw(pool, n_users, seed,
                                                 block_arrivals):
    config = CapacityConfig(n_channels=50, horizon=1800.0, seed=11)
    ref_arrivals, ref_services = _materialised(pool, n_users, config,
                                               seed)
    source = ArrivalBlockSource(pool, n_users, config=config, seed=seed,
                                block_arrivals=block_arrivals)
    chunks = list(source.blocks())
    arrivals = np.concatenate([a for a, _ in chunks])
    services = np.concatenate([s for _, s in chunks])
    np.testing.assert_array_equal(arrivals, ref_arrivals)
    np.testing.assert_array_equal(services, ref_services)
    assert source.n_sessions == ref_arrivals.size
    assert all(a.size == s.size for a, s in chunks)
    assert max(a.size for a, _ in chunks) <= block_arrivals


def test_state_roundtrips_through_json_and_resumes(pool):
    """Kill-and-resume: a snapshot taken mid-stream, serialised to JSON
    and restored into a fresh source, reproduces the remaining blocks
    bit for bit."""
    config = CapacityConfig(n_channels=50, horizon=1800.0, seed=11)
    source = ArrivalBlockSource(pool, 90, config=config, seed=5,
                                block_arrivals=500)
    blocks = source.blocks()
    consumed = [next(blocks) for _ in range(3)]
    assert len(consumed) == 3
    snapshot = json.loads(json.dumps(source.state()))

    resumed = ArrivalBlockSource(pool, 90, config=config, seed=5,
                                 block_arrivals=500)
    resumed.restore(snapshot)
    rest_resumed = list(resumed.blocks())
    rest_original = list(blocks)
    assert len(rest_resumed) == len(rest_original)
    for (a1, s1), (a2, s2) in zip(rest_resumed, rest_original):
        np.testing.assert_array_equal(a1, a2)
        np.testing.assert_array_equal(s1, s2)


def test_scan_is_idempotent(pool):
    config = CapacityConfig(horizon=600.0, seed=11)
    source = ArrivalBlockSource(pool, 50, config=config, seed=1)
    assert source.scan() == source.scan() == source.n_sessions


def test_state_before_scan_raises(pool):
    source = ArrivalBlockSource(pool, 50, seed=1)
    with pytest.raises(RuntimeError):
        source.state()


def test_validation(pool):
    with pytest.raises(ValueError):
        ArrivalBlockSource(pool, 0)
    with pytest.raises(ValueError):
        ArrivalBlockSource(pool, 10, block_arrivals=0)
