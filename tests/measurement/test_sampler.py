"""4 Hz power-trace sampler."""

import pytest

from repro.measurement.meter import PowerAccountant
from repro.measurement.sampler import PowerSampler
from repro.rrc.machine import RrcMachine
from repro.rrc.states import RadioMode
from repro.sim.kernel import Simulator
from repro.sim.process import CpuProcess, CpuTask


def tour_handset():
    """Drive a handset through IDLE → promo → tx → tail → IDLE."""
    sim = Simulator()
    machine = RrcMachine(sim)
    cpu = CpuProcess(sim)
    sim.schedule(2.0, lambda: machine.acquire_channel(
        lambda: (machine.tx_begin(),
                 sim.schedule(1.0, machine.tx_end))))
    sim.run()
    return sim, machine, cpu


def test_default_interval_matches_paper():
    assert PowerSampler.DEFAULT_INTERVAL == 0.25


def test_samples_cover_window_at_fixed_rate():
    sim, machine, cpu = tour_handset()
    trace = PowerSampler(machine, cpu).trace(start=0.0, end=10.0)
    assert len(trace.samples) == 41  # inclusive endpoints at 4 Hz
    assert trace.times[1] - trace.times[0] == pytest.approx(0.25)


def test_idle_samples_at_baseline():
    sim, machine, cpu = tour_handset()
    trace = PowerSampler(machine, cpu).trace(start=0.0, end=1.5)
    assert all(s.watts == pytest.approx(0.15) for s in trace.samples)
    assert all(s.mode is RadioMode.IDLE for s in trace.samples)


def test_tx_samples_at_dch_tx_power():
    sim, machine, cpu = tour_handset()
    promo = machine.config.promo_idle_latency
    trace = PowerSampler(machine, cpu).trace(start=2.0 + promo + 0.25,
                                             end=2.0 + promo + 0.75)
    assert all(s.watts == pytest.approx(1.25) for s in trace.samples)


def test_cpu_power_appears_in_samples():
    sim = Simulator()
    machine = RrcMachine(sim)
    cpu = CpuProcess(sim)
    cpu.submit(CpuTask("busy", 2.0))
    sim.run(until=4.0)
    trace = PowerSampler(machine, cpu).trace(start=0.0, end=4.0)
    busy = [s for s in trace.samples if s.time < 2.0]
    idle = [s for s in trace.samples if s.time > 2.0]
    assert all(s.watts == pytest.approx(0.60) for s in busy)
    assert all(s.watts == pytest.approx(0.15) for s in idle)


def test_promotion_burst_visible_as_spike():
    """Signalling energy must appear in the trace (spread over the
    promotion segment), like the current spike the paper's rig sees."""
    sim, machine, cpu = tour_handset()
    promo = machine.config.promo_idle_latency
    trace = PowerSampler(machine, cpu).trace(start=2.3, end=2.0 + promo - 0.3)
    burst = machine.config.promo_idle_signalling_energy / promo
    assert all(s.watts == pytest.approx(1.25 + burst) for s in trace.samples)


def test_trace_energy_close_to_accountant():
    sim, machine, cpu = tour_handset()
    sim.run(until=30.0)
    trace = PowerSampler(machine, cpu).trace(start=0.0, end=30.0,
                                             interval=0.05)
    exact = PowerAccountant(machine, cpu).total_energy(0.0, 30.0)
    assert trace.energy() == pytest.approx(exact, rel=0.05)


def test_invalid_interval_rejected():
    sim, machine, cpu = tour_handset()
    with pytest.raises(ValueError):
        PowerSampler(machine, cpu).trace(interval=0.0)


def test_mean_power_of_empty_trace_is_zero():
    from repro.measurement.sampler import PowerTrace
    assert PowerTrace(interval=0.25, samples=[]).mean_power() == 0.0
