"""Power accountant: windowed energy integration."""

import pytest

from repro.measurement.meter import PowerAccountant
from repro.rrc.machine import RrcMachine
from repro.sim.kernel import Simulator
from repro.sim.process import CpuProcess, CpuTask


def idle_handset(duration=10.0):
    sim = Simulator()
    machine = RrcMachine(sim)
    cpu = CpuProcess(sim)
    sim.run(until=duration)
    return sim, machine, cpu


def test_idle_energy_is_baseline_power_times_time():
    sim, machine, cpu = idle_handset(10.0)
    accountant = PowerAccountant(machine, cpu)
    breakdown = accountant.energy(0.0, 10.0)
    assert breakdown.radio == pytest.approx(10 * 0.15)
    assert breakdown.cpu == 0.0
    assert breakdown.signalling == 0.0


def test_cpu_energy_added_on_top():
    sim = Simulator()
    machine = RrcMachine(sim)
    cpu = CpuProcess(sim)
    cpu.submit(CpuTask("work", 4.0))
    sim.run(until=10.0)
    accountant = PowerAccountant(machine, cpu)
    breakdown = accountant.energy(0.0, 10.0)
    assert breakdown.cpu == pytest.approx(4.0 * 0.45)
    assert breakdown.total == pytest.approx(10 * 0.15 + 4 * 0.45)


def test_window_clipping_of_cpu_intervals():
    sim = Simulator()
    machine = RrcMachine(sim)
    cpu = CpuProcess(sim)
    cpu.submit(CpuTask("work", 6.0))
    sim.run(until=10.0)
    accountant = PowerAccountant(machine, cpu)
    # Window covers only half of the busy interval.
    assert accountant.energy(3.0, 10.0).cpu == pytest.approx(3.0 * 0.45)


def test_signalling_counted_in_window_only():
    sim = Simulator()
    machine = RrcMachine(sim)
    machine.acquire_channel(lambda: None)
    sim.run(until=10.0)
    accountant = PowerAccountant(machine)
    assert accountant.energy(0.0, 1.0).signalling == pytest.approx(
        machine.config.promo_idle_signalling_energy)
    assert accountant.energy(5.0, 10.0).signalling == 0.0


def test_windows_are_additive():
    sim = Simulator()
    machine = RrcMachine(sim)
    cpu = CpuProcess(sim)
    machine.acquire_channel(lambda: None)
    cpu.submit(CpuTask("work", 3.0))
    sim.run(until=12.0)
    accountant = PowerAccountant(machine, cpu)
    whole = accountant.total_energy(0.0, 12.0)
    parts = (accountant.total_energy(0.0, 4.0)
             + accountant.total_energy(4.0, 9.0)
             + accountant.total_energy(9.0, 12.0))
    assert whole == pytest.approx(parts)


def test_mean_power():
    sim, machine, cpu = idle_handset(8.0)
    accountant = PowerAccountant(machine, cpu)
    assert accountant.mean_power(0.0, 8.0) == pytest.approx(0.15)
    with pytest.raises(ValueError):
        accountant.mean_power(5.0, 5.0)


def test_reversed_window_rejected():
    sim, machine, cpu = idle_handset()
    accountant = PowerAccountant(machine, cpu)
    with pytest.raises(ValueError):
        accountant.energy(5.0, 1.0)
