"""Loss functions for boosting."""

import numpy as np
import pytest

from repro.ml.losses import AbsoluteLoss, SquaredLoss


def test_squared_gradient_is_residual():
    loss = SquaredLoss()
    y = np.array([1.0, 2.0, 3.0])
    f = np.array([0.5, 2.0, 4.0])
    assert np.allclose(loss.negative_gradient(y, f), [0.5, 0.0, -1.0])


def test_squared_leaf_value_is_residual_mean():
    loss = SquaredLoss()
    y = np.array([1.0, 3.0])
    f = np.array([0.0, 0.0])
    assert loss.leaf_value(y, f) == pytest.approx(2.0)


def test_absolute_gradient_is_sign():
    loss = AbsoluteLoss()
    y = np.array([1.0, 2.0, 3.0])
    f = np.array([0.0, 2.0, 4.0])
    assert np.allclose(loss.negative_gradient(y, f), [1.0, 0.0, -1.0])


def test_absolute_leaf_value_is_residual_median():
    loss = AbsoluteLoss()
    y = np.array([1.0, 2.0, 100.0])
    f = np.zeros(3)
    assert loss.leaf_value(y, f) == pytest.approx(2.0)


def test_init_estimates_minimise_their_loss():
    rng = np.random.default_rng(0)
    y = rng.lognormal(size=200)
    squared = SquaredLoss()
    absolute = AbsoluteLoss()
    # Perturbing the optimum constant can only increase the loss.
    for delta in (-0.5, 0.5):
        base = np.full_like(y, squared.init_estimate(y))
        assert squared.loss(y, base) <= squared.loss(y, base + delta)
        base = np.full_like(y, absolute.init_estimate(y))
        assert absolute.loss(y, base) <= absolute.loss(y, base + delta)


def test_loss_values():
    y = np.array([0.0, 2.0])
    f = np.array([1.0, 1.0])
    assert SquaredLoss().loss(y, f) == pytest.approx(1.0)
    assert AbsoluteLoss().loss(y, f) == pytest.approx(1.0)
