"""Metrics, including the paper's threshold accuracy."""

import numpy as np
import pytest

from repro.ml.metrics import (
    mean_absolute_error,
    mean_squared_error,
    r2_score,
    threshold_accuracy,
)


def test_mse_mae_basic():
    y = [0.0, 2.0]
    p = [1.0, 1.0]
    assert mean_squared_error(y, p) == pytest.approx(1.0)
    assert mean_absolute_error(y, p) == pytest.approx(1.0)


def test_perfect_prediction():
    y = np.array([1.0, 2.0, 3.0])
    assert mean_squared_error(y, y) == 0.0
    assert r2_score(y, y) == 1.0
    assert threshold_accuracy(y, y, threshold=2.5) == 1.0


def test_r2_of_mean_predictor_is_zero():
    y = np.array([1.0, 2.0, 3.0])
    p = np.full(3, 2.0)
    assert r2_score(y, p) == pytest.approx(0.0)


def test_r2_constant_target():
    y = np.ones(4)
    assert r2_score(y, y) == 1.0
    assert r2_score(y, y + 1) == 0.0


def test_threshold_accuracy_counts_same_side_agreement():
    y_true = np.array([1.0, 5.0, 15.0, 30.0])
    y_pred = np.array([2.0, 12.0, 14.0, 35.0])
    # predicted sides wrt 9: (<, >, >, >) vs truth (<, <, >, >): 3 agree
    assert threshold_accuracy(y_true, y_pred, 9.0) == pytest.approx(0.75)


def test_threshold_accuracy_is_threshold_sensitive():
    y_true = np.array([1.0, 30.0])
    y_pred = np.array([8.0, 25.0])
    assert threshold_accuracy(y_true, y_pred, 9.0) == 1.0
    assert threshold_accuracy(y_true, y_pred, 26.0) == 0.5


def test_shape_mismatch_rejected():
    with pytest.raises(ValueError):
        mean_squared_error([1.0], [1.0, 2.0])


def test_empty_rejected():
    with pytest.raises(ValueError):
        r2_score([], [])
