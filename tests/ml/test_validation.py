"""Dataset splitting."""

import numpy as np
import pytest

from repro.ml.validation import KFold, train_test_split


def test_split_sizes():
    x = np.arange(100).reshape(50, 2)
    y = np.arange(50)
    x_train, x_test, y_train, y_test = train_test_split(
        x, y, test_fraction=0.3, random_state=0)
    assert len(x_test) == 15
    assert len(x_train) == 35
    assert len(y_train) == 35


def test_split_partitions_without_overlap():
    x = np.arange(40).reshape(20, 2)
    y = np.arange(20)
    _, _, y_train, y_test = train_test_split(x, y, random_state=1)
    assert sorted(np.concatenate([y_train, y_test]).tolist()) \
        == list(range(20))


def test_split_is_seeded():
    x = np.arange(60).reshape(30, 2)
    y = np.arange(30)
    a = train_test_split(x, y, random_state=3)
    b = train_test_split(x, y, random_state=3)
    assert np.array_equal(a[1], b[1])


def test_split_validation():
    x = np.zeros((10, 2))
    y = np.zeros(10)
    with pytest.raises(ValueError):
        train_test_split(x, y, test_fraction=0.0)
    with pytest.raises(ValueError):
        train_test_split(x, y, test_fraction=1.0)
    with pytest.raises(ValueError):
        train_test_split(np.zeros((3, 1)), np.zeros(4))


def test_kfold_covers_every_sample_exactly_once_as_test():
    kfold = KFold(n_splits=5, random_state=0)
    seen = []
    for train_index, test_index in kfold.split(23):
        seen.extend(test_index.tolist())
        assert not set(train_index) & set(test_index)
        assert len(train_index) + len(test_index) == 23
    assert sorted(seen) == list(range(23))


def test_kfold_validation():
    with pytest.raises(ValueError):
        KFold(n_splits=1)
    with pytest.raises(ValueError):
        list(KFold(n_splits=10).split(5))
