"""Linear baseline."""

import numpy as np
import pytest

from repro.ml.linear import LinearRegressor
from repro.ml.metrics import r2_score


def test_recovers_linear_relationship():
    rng = np.random.default_rng(0)
    x = rng.uniform(size=(200, 3))
    y = 2.0 * x[:, 0] - 1.5 * x[:, 2] + 4.0
    model = LinearRegressor().fit(x, y)
    assert r2_score(y, model.predict(x)) > 0.999


def test_constant_feature_handled():
    rng = np.random.default_rng(1)
    x = rng.uniform(size=(50, 2))
    x[:, 1] = 3.0  # zero variance
    y = x[:, 0] * 2
    model = LinearRegressor().fit(x, y)
    assert r2_score(y, model.predict(x)) > 0.999


def test_single_row_prediction():
    rng = np.random.default_rng(2)
    x = rng.uniform(size=(30, 2))
    y = x[:, 0]
    model = LinearRegressor().fit(x, y)
    assert model.predict(x[0]).shape == (1,)


def test_fails_on_nonmonotone_structure():
    """The reason the paper needs trees: a bump is invisible to OLS."""
    rng = np.random.default_rng(3)
    x = rng.uniform(size=(500, 1))
    y = np.exp(-((x[:, 0] - 0.5) ** 2) / 0.01)  # symmetric bump
    model = LinearRegressor().fit(x, y)
    assert r2_score(y, model.predict(x)) < 0.05


def test_validation():
    with pytest.raises(ValueError):
        LinearRegressor(l2=-1.0)
    model = LinearRegressor()
    with pytest.raises(RuntimeError):
        model.predict(np.zeros((1, 2)))
    with pytest.raises(ValueError):
        model.fit(np.zeros((1, 2)), np.zeros(1))
