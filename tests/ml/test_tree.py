"""Regression trees: splits, growth limits, prediction, serialisation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.ml.tree import RegressionTree


def test_single_split_on_step_function():
    x = np.array([[0.0], [1.0], [2.0], [3.0]])
    y = np.array([0.0, 0.0, 10.0, 10.0])
    tree = RegressionTree(max_leaves=2).fit(x, y)
    assert tree.n_leaves == 2
    assert tree.predict(np.array([[0.5]]))[0] == pytest.approx(0.0)
    assert tree.predict(np.array([[2.5]]))[0] == pytest.approx(10.0)
    assert 1.0 < tree.root.threshold < 2.0


def test_constant_target_yields_stump():
    x = np.random.default_rng(0).uniform(size=(50, 3))
    y = np.full(50, 7.0)
    tree = RegressionTree(max_leaves=8).fit(x, y)
    assert tree.n_leaves == 1
    assert np.allclose(tree.predict(x), 7.0)


def test_max_leaves_respected():
    rng = np.random.default_rng(1)
    x = rng.uniform(size=(200, 4))
    y = rng.normal(size=200)
    for j in (2, 4, 8):
        tree = RegressionTree(max_leaves=j).fit(x, y)
        assert 2 <= tree.n_leaves <= j


def test_best_first_picks_highest_gain_split_first():
    """Feature 1 has 10x the signal of feature 0; with one split
    available, the tree must use feature 1."""
    rng = np.random.default_rng(2)
    x = rng.uniform(size=(300, 2))
    y = 1.0 * (x[:, 0] > 0.5) + 10.0 * (x[:, 1] > 0.5)
    tree = RegressionTree(max_leaves=2).fit(x, y)
    assert tree.root.feature == 1


def test_min_samples_leaf_enforced():
    rng = np.random.default_rng(3)
    x = rng.uniform(size=(40, 2))
    y = rng.normal(size=40)
    tree = RegressionTree(max_leaves=16, min_samples_leaf=10).fit(x, y)
    for leaf in tree.leaves():
        assert leaf.n_samples >= 10


def test_predict_one_matches_vectorised():
    rng = np.random.default_rng(4)
    x = rng.uniform(size=(100, 5))
    y = rng.normal(size=100)
    tree = RegressionTree(max_leaves=8).fit(x, y)
    batch = tree.predict(x[:10])
    single = [tree.predict_one(row) for row in x[:10]]
    assert np.allclose(batch, single)


def test_apply_matches_leaves_order():
    rng = np.random.default_rng(5)
    x = rng.uniform(size=(60, 3))
    y = rng.normal(size=60)
    tree = RegressionTree(max_leaves=6).fit(x, y)
    regions = tree.apply(x)
    leaves = tree.leaves()
    for row, region in zip(x, regions):
        assert tree.predict_one(row) == pytest.approx(leaves[region].value)


def test_node_counts():
    rng = np.random.default_rng(6)
    x = rng.uniform(size=(100, 3))
    y = x[:, 0] * 3 + rng.normal(size=100) * 0.1
    tree = RegressionTree(max_leaves=8).fit(x, y)
    assert tree.n_nodes == 2 * tree.n_leaves - 1  # binary tree identity


def test_serialisation_roundtrip():
    rng = np.random.default_rng(7)
    x = rng.uniform(size=(80, 4))
    y = rng.normal(size=80)
    tree = RegressionTree(max_leaves=8).fit(x, y)
    restored = RegressionTree.from_dict(tree.to_dict())
    assert np.allclose(tree.predict(x), restored.predict(x))
    assert restored.n_leaves == tree.n_leaves
    assert restored.split_gains == tree.split_gains


def test_unfitted_tree_rejects_predict():
    with pytest.raises(RuntimeError):
        RegressionTree().predict(np.zeros((1, 2)))


def test_input_validation():
    with pytest.raises(ValueError):
        RegressionTree(max_leaves=1)
    with pytest.raises(ValueError):
        RegressionTree(min_samples_leaf=0)
    tree = RegressionTree()
    with pytest.raises(ValueError):
        tree.fit(np.zeros((3,)), np.zeros(3))
    with pytest.raises(ValueError):
        tree.fit(np.zeros((3, 2)), np.zeros(4))
    with pytest.raises(ValueError):
        tree.fit(np.zeros((0, 2)), np.zeros(0))


@settings(max_examples=30, deadline=None)
@given(hnp.arrays(np.float64, (30, 3),
                  elements=st.floats(min_value=-100, max_value=100)),
       hnp.arrays(np.float64, (30,),
                  elements=st.floats(min_value=-100, max_value=100)))
def test_property_predictions_within_target_range(x, y):
    """Property: leaf values are means of training targets, so every
    prediction lies within [min(y), max(y)]."""
    tree = RegressionTree(max_leaves=8).fit(x, y)
    predictions = tree.predict(x)
    assert predictions.min() >= y.min() - 1e-9
    assert predictions.max() <= y.max() + 1e-9


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_property_training_sse_never_worse_than_stump(seed):
    """Property: a grown tree fits the training data at least as well as
    the constant (mean) predictor."""
    rng = np.random.default_rng(seed)
    x = rng.uniform(size=(50, 2))
    y = rng.normal(size=50)
    tree = RegressionTree(max_leaves=8).fit(x, y)
    sse_tree = float(np.sum((y - tree.predict(x)) ** 2))
    sse_mean = float(np.sum((y - y.mean()) ** 2))
    assert sse_tree <= sse_mean + 1e-9
