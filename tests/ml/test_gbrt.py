"""Gradient boosting: Algorithm 1 semantics."""

import numpy as np
import pytest

from repro.ml.gbrt import GradientBoostedRegressor
from repro.ml.losses import AbsoluteLoss, SquaredLoss
from repro.ml.metrics import r2_score


def make_data(n=600, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.uniform(size=(n, 6))
    y = (np.sin(4 * x[:, 0]) * 3
         + 2.0 * (x[:, 1] > 0.5) * x[:, 2]
         + 0.2 * rng.normal(size=n))
    return x, y


def test_fits_nonlinear_function_well():
    x, y = make_data()
    model = GradientBoostedRegressor(n_estimators=150, learning_rate=0.1,
                                     random_state=1).fit(x[:400], y[:400])
    assert r2_score(y[400:], model.predict(x[400:])) > 0.85


def test_training_loss_monotone_nonincreasing():
    x, y = make_data(n=300)
    model = GradientBoostedRegressor(n_estimators=60,
                                     random_state=1).fit(x, y)
    losses = np.array(model.train_losses_)
    assert (np.diff(losses) <= 1e-9).all()


def test_init_is_mean_for_squared_loss():
    x, y = make_data(n=100)
    model = GradientBoostedRegressor(n_estimators=2).fit(x, y)
    assert model.init_ == pytest.approx(float(y.mean()))


def test_init_is_median_for_absolute_loss():
    x, y = make_data(n=101)
    model = GradientBoostedRegressor(n_estimators=2,
                                     loss=AbsoluteLoss()).fit(x, y)
    assert model.init_ == pytest.approx(float(np.median(y)))


def test_absolute_loss_robust_to_outliers():
    x, y = make_data(n=400, seed=3)
    y_dirty = y.copy()
    y_dirty[:8] += 500.0  # gross outliers
    l2 = GradientBoostedRegressor(n_estimators=80, random_state=1)
    lad = GradientBoostedRegressor(n_estimators=80, loss=AbsoluteLoss(),
                                   random_state=1)
    l2.fit(x[:300], y_dirty[:300])
    lad.fit(x[:300], y_dirty[:300])
    clean_mae = lambda m: float(np.mean(np.abs(y[300:]
                                               - m.predict(x[300:]))))
    assert clean_mae(lad) < clean_mae(l2)


def test_staged_predict_converges_to_predict():
    x, y = make_data(n=200)
    model = GradientBoostedRegressor(n_estimators=20,
                                     random_state=1).fit(x, y)
    stages = list(model.staged_predict(x[:5]))
    assert len(stages) == 20
    assert np.allclose(stages[-1], model.predict(x[:5]))


def test_more_trees_fit_training_better():
    x, y = make_data(n=300)
    model = GradientBoostedRegressor(n_estimators=100,
                                     random_state=1).fit(x, y)
    assert model.train_losses_[99] < model.train_losses_[9]


def test_subsampling_is_reproducible():
    x, y = make_data(n=300)
    a = GradientBoostedRegressor(n_estimators=30, subsample=0.6,
                                 random_state=5).fit(x, y)
    b = GradientBoostedRegressor(n_estimators=30, subsample=0.6,
                                 random_state=5).fit(x, y)
    assert np.allclose(a.predict(x), b.predict(x))


def test_feature_importances_find_signal():
    rng = np.random.default_rng(9)
    x = rng.uniform(size=(500, 5))
    y = 5.0 * np.sin(6 * x[:, 2]) + 0.1 * rng.normal(size=500)
    model = GradientBoostedRegressor(n_estimators=40,
                                     random_state=1).fit(x, y)
    importances = model.feature_importances_
    assert importances.argmax() == 2
    assert importances.sum() == pytest.approx(1.0)


def test_predict_one_matches_vectorised():
    x, y = make_data(n=150)
    model = GradientBoostedRegressor(n_estimators=25,
                                     random_state=1).fit(x, y)
    for row in x[:5]:
        assert model.predict_one(row) == pytest.approx(
            float(model.predict(row.reshape(1, -1))[0]))


def test_serialisation_roundtrip():
    x, y = make_data(n=200)
    model = GradientBoostedRegressor(n_estimators=30,
                                     random_state=1).fit(x, y)
    restored = GradientBoostedRegressor.from_dict(model.to_dict())
    assert np.allclose(model.predict(x), restored.predict(x))
    assert restored.total_nodes == model.total_nodes


def test_total_nodes_counts_all_trees():
    x, y = make_data(n=100)
    model = GradientBoostedRegressor(n_estimators=10, max_leaves=4,
                                     random_state=1).fit(x, y)
    assert model.total_nodes == sum(t.n_nodes for t in model.trees_)
    assert model.total_nodes <= 10 * 7


def test_validation():
    with pytest.raises(ValueError):
        GradientBoostedRegressor(n_estimators=0)
    with pytest.raises(ValueError):
        GradientBoostedRegressor(learning_rate=0.0)
    with pytest.raises(ValueError):
        GradientBoostedRegressor(subsample=1.5)
    model = GradientBoostedRegressor()
    with pytest.raises(RuntimeError):
        model.predict(np.zeros((1, 3)))
    with pytest.raises(ValueError):
        model.fit(np.zeros((1, 2)), np.zeros(1))
