"""Handset sessions: load, read, account."""

import pytest

from repro.browser.energy_aware import EnergyAwareEngine
from repro.browser.original import OriginalEngine
from repro.core.session import Handset, browse_and_read, load_page
from repro.rrc.states import RrcState


def test_load_page_produces_result_and_energy(small_page):
    session = load_page(small_page, OriginalEngine)
    assert session.load.load_complete_time > 0
    assert session.loading_energy.total > 0
    assert session.reading_energy.total == 0.0
    assert session.reading_time == 0.0


def test_total_energy_is_sum_of_windows(small_page):
    session = browse_and_read(small_page, OriginalEngine,
                              reading_time=10.0)
    assert session.total_energy == pytest.approx(
        session.loading_energy.total + session.reading_energy.total)


def test_reading_energy_follows_radio_tail(small_page):
    """Original engine, 20 s reading: the tail spans the rest of T1 plus
    most of T2, so reading energy sits well above 20 s of IDLE."""
    session = browse_and_read(small_page, OriginalEngine,
                              reading_time=20.0)
    idle_floor = 20.0 * 0.15
    assert session.reading_energy.total > 2 * idle_floor


def test_idle_at_open_cuts_reading_energy(small_page):
    stay = browse_and_read(small_page, EnergyAwareEngine,
                           reading_time=20.0, idle_at_open=False)
    switch = browse_and_read(small_page, EnergyAwareEngine,
                             reading_time=20.0, idle_at_open=True)
    assert switch.reading_energy.total < stay.reading_energy.total
    # With the switch, the 20 s reading is essentially all IDLE.
    assert switch.reading_energy.total == pytest.approx(20 * 0.15,
                                                        rel=0.05)


def test_idle_at_open_switches_radio(small_page):
    session = browse_and_read(small_page, EnergyAwareEngine,
                              reading_time=5.0, idle_at_open=True)
    assert session.handset.machine.state is RrcState.IDLE
    assert session.handset.machine.fast_dormancy_count == 1


def test_negative_reading_time_rejected(small_page):
    with pytest.raises(ValueError):
        browse_and_read(small_page, OriginalEngine, reading_time=-1.0)


def test_handset_reuse_possible(small_page):
    handset = Handset()
    first = load_page(small_page, OriginalEngine, handset=handset)
    assert first.handset is handset


def test_energy_aware_loading_cheaper_on_full_pages(full_page):
    original = load_page(full_page, OriginalEngine)
    ours = load_page(full_page, EnergyAwareEngine)
    assert ours.loading_energy.total < original.loading_energy.total
