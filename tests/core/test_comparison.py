"""Engine comparisons and the headline paper claims.

These are the reproduction's acceptance tests: the *shape* of the
paper's Figs. 8 and 10 must hold on the default configuration — who
wins, in which direction, by roughly what factor.
"""

import pytest

from repro.core.comparison import compare_engines, mean


def test_comparison_runs_both_engines(small_page):
    comparison = compare_engines(small_page)
    assert comparison.original.load.engine_name == "original"
    assert comparison.energy_aware.load.engine_name == "energy-aware"


def test_savings_of_identical_runs_are_zero(small_page):
    comparison = compare_engines(small_page)
    # saving definitions sanity: comparing a run to itself gives zero
    from repro.core.comparison import _saving
    value = comparison.original.load.load_complete_time
    assert _saving(value, value) == 0.0
    assert _saving(0.0, 5.0) == 0.0


def test_fig8_mobile_shape(mobile_comparisons):
    """Mobile benchmark: ~15 % transmission-time saving, total loading
    time roughly unchanged (paper: 2.5 %)."""
    tx = mean([c.tx_time_saving for c in mobile_comparisons])
    load = mean([c.loading_time_saving for c in mobile_comparisons])
    assert 0.08 <= tx <= 0.30
    assert -0.05 <= load <= 0.15
    assert tx > load


def test_fig8_full_shape(full_comparisons):
    """Full benchmark: ~27 % transmission saving, ~17 % loading saving."""
    tx = mean([c.tx_time_saving for c in full_comparisons])
    load = mean([c.loading_time_saving for c in full_comparisons])
    assert 0.18 <= tx <= 0.38
    assert 0.08 <= load <= 0.25
    assert tx > load


def test_fig8_full_savings_exceed_mobile(mobile_comparisons,
                                         full_comparisons):
    assert (mean([c.tx_time_saving for c in full_comparisons])
            > mean([c.tx_time_saving for c in mobile_comparisons]))
    assert (mean([c.loading_time_saving for c in full_comparisons])
            > mean([c.loading_time_saving for c in mobile_comparisons]))


def test_fig10_energy_savings_over_30_percent(mobile_comparisons,
                                              full_comparisons):
    """The abstract's headline: >30 % energy saving during browsing."""
    overall = mean([c.energy_saving
                    for c in mobile_comparisons + full_comparisons])
    assert overall > 0.30


def test_fig10_every_page_saves_energy(mobile_comparisons,
                                       full_comparisons):
    for comparison in mobile_comparisons + full_comparisons:
        assert comparison.energy_saving > 0.10


def test_energy_aware_never_slower_on_tx(mobile_comparisons,
                                         full_comparisons):
    for comparison in mobile_comparisons + full_comparisons:
        assert comparison.tx_time_saving > 0


def test_fig14_display_savings(full_comparisons):
    first = mean([c.first_display_saving for c in full_comparisons])
    final = mean([c.final_display_saving for c in full_comparisons])
    assert first > 0.30   # paper: 45.5 %
    assert 0.05 <= final <= 0.30  # paper: 16.8 %
    assert first > final
