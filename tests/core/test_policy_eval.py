"""Fig. 16 policy evaluation machinery."""

import pytest

from repro.core.policy_eval import PolicyEvaluator
from repro.traces.generator import TraceConfig


@pytest.fixture(scope="module")
def evaluator():
    """A reduced evaluator: fewer users/pages, same machinery."""
    config = TraceConfig(n_users=10, mean_views_per_user=60,
                         catalog_size=16, seed=77)
    return PolicyEvaluator(trace_config=config, train_fraction=0.6)


@pytest.fixture(scope="module")
def results(evaluator):
    return {case.name: case for case in evaluator.evaluate()}


def test_train_eval_split_by_user(evaluator):
    train_users = {r.user_id for r in evaluator.train_set}
    eval_users = {r.user_id for r in evaluator.eval_set}
    assert not train_users & eval_users
    assert train_users and eval_users


def test_baseline_has_zero_savings(results):
    base = results["original"]
    assert base.power_saving == 0.0
    assert base.delay_saving == 0.0
    assert base.switch_rate == 0.0


def test_all_six_cases_present(results):
    assert set(results) == {
        "original", "original-always-off", "energy-aware-always-off",
        "accurate-9", "predict-9", "accurate-20", "predict-20"}


def test_original_always_off_loses_delay(results):
    """Paper: −1.47 % delay — promoting from IDLE every page costs more
    than it saves."""
    assert results["original-always-off"].delay_saving < 0


def test_original_always_off_saves_least_power(results):
    weakest = min((case for name, case in results.items()
                   if name != "original"),
                  key=lambda case: case.power_saving)
    assert weakest.name == "original-always-off"


def test_accurate_9_saves_most_power(results):
    best = max(results.values(), key=lambda case: case.power_saving)
    assert best.name == "accurate-9"


def test_accurate_20_saves_most_delay(results):
    best = max(results.values(), key=lambda case: case.delay_saving)
    assert best.name == "accurate-20"


def test_predictions_bounded_by_oracles(results):
    assert results["predict-9"].power_saving <= \
        results["accurate-9"].power_saving + 1e-9
    assert results["predict-20"].delay_saving <= \
        results["accurate-20"].delay_saving + 1e-9


def test_power_mode_switches_more_than_delay_mode(results):
    assert results["accurate-9"].switch_rate > \
        results["accurate-20"].switch_rate


def test_always_off_switch_rate_is_total(results):
    assert results["energy-aware-always-off"].switch_rate == 1.0


def test_energy_aware_cases_beat_original_always_off(results):
    for name in ("energy-aware-always-off", "accurate-9", "predict-9",
                 "accurate-20", "predict-20"):
        assert results[name].power_saving > \
            results["original-always-off"].power_saving


def test_profiles_strip_exactly_one_promotion(evaluator):
    profile = evaluator._profile(
        next(iter(evaluator.eval_set)).page_name, "original")
    assert profile.load_time > 0
    assert profile.loading_energy > 0


def test_train_fraction_validated():
    with pytest.raises(ValueError):
        PolicyEvaluator(train_fraction=1.0)


def test_analytic_accounting_matches_event_driven_replay(evaluator):
    """Validation: the per-record analytic accounting (profiles + tail
    math) agrees with a full discrete-event replay of the same pageview
    within a small tolerance (RIL hop latency, sampling edges)."""
    from repro.browser.energy_aware import EnergyAwareEngine
    from repro.rrc.states import RrcState
    from repro.rrc.tail import promotion_energy

    record = next(r for r in evaluator.eval_set if r.reading_time > 25.0)
    reading = min(record.reading_time, 60.0)
    alpha = evaluator.config.policy.interest_threshold
    profile = evaluator._profile(record.page_name, "energy-aware")

    # Analytic: IDLE-start promotion + stripped load + reading with a
    # switch at alpha.
    read_energy, state = evaluator._reading_energy_aware(
        profile, reading, switch_at=alpha)
    analytic = (promotion_energy(RrcState.IDLE, evaluator.config.rrc)
                + profile.loading_energy + read_energy)
    assert state is RrcState.IDLE

    # Event-driven replay: real engine, real radio, real RIL, with the
    # dormancy request scheduled exactly alpha after the page opens.
    from repro.core.session import Handset
    from repro.traces.generator import build_catalog
    from repro.webpages.generator import generate_page
    catalog = {c.name: c for c in build_catalog(evaluator.trace_config)}
    page = generate_page(catalog[record.page_name].spec)
    device = Handset(evaluator.config)
    engine = device.make_engine(EnergyAwareEngine, page)
    loads = []

    def opened(result):
        loads.append(result)
        device.sim.schedule(alpha,
                            lambda: device.ril.request_fast_dormancy())

    engine.load(opened)
    device.sim.run()
    open_end = loads[0].started_at + loads[0].load_complete_time
    device.sim.run(until=open_end + reading)
    measured = device.accountant.total_energy(0.0, open_end + reading)

    assert measured == pytest.approx(analytic, rel=0.05)
