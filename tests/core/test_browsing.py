"""Multi-page sessions on a single handset."""

import pytest

from repro.browser.energy_aware import EnergyAwareEngine
from repro.browser.original import OriginalEngine
from repro.core.browsing import (
    PageVisit,
    browse_session,
    compare_session_policies,
)
from repro.prediction.policy import AlwaysOffPolicy, OraclePolicy


@pytest.fixture
def visits(small_page, full_page):
    return [
        PageVisit(small_page, reading_time=3.0),    # quick hop
        PageVisit(full_page, reading_time=30.0),    # long read
        PageVisit(small_page, reading_time=12.0),
    ]


def test_session_replays_every_visit(visits):
    outcome = browse_session(visits, OriginalEngine)
    assert len(outcome.visits) == 3
    assert [v.page_url for v in outcome.visits] \
        == [v.page.url for v in visits]
    assert outcome.total_time > 0
    assert outcome.total_energy > 0


def test_total_energy_is_sum_of_visits(visits):
    outcome = browse_session(visits, OriginalEngine)
    assert outcome.total_energy == pytest.approx(
        sum(v.energy for v in outcome.visits))


def test_radio_state_carries_across_pages(small_page):
    """A quick click catches the radio warm: only the first page of a
    rapid-fire session pays the IDLE promotion."""
    quick = [PageVisit(small_page, reading_time=1.0) for _ in range(3)]
    handset_outcome = browse_session(quick, OriginalEngine)
    # Reconstruct the handset via a fresh replay to inspect the machine.
    from repro.core.session import Handset
    device = Handset()
    browse_session(quick, OriginalEngine, handset=device)
    assert device.machine.promotions["IDLE"] == 1
    assert handset_outcome.total_energy > 0


def test_long_reads_behind_oracle_cause_idle_promotions(small_page):
    """With Algorithm 2 switching on long reads, the *next* page must
    promote from IDLE — the Fig. 3 trade-off at session level."""
    from repro.core.session import Handset
    long_reads = [PageVisit(small_page, reading_time=30.0)
                  for _ in range(3)]
    device = Handset()
    browse_session(long_reads, EnergyAwareEngine, handset=device,
                   policy=OraclePolicy(threshold=20.0))
    assert device.machine.promotions["IDLE"] == 3
    assert device.machine.fast_dormancy_count == 3


def test_policy_saves_energy_on_long_reads(small_page, full_page):
    session = [PageVisit(full_page, 40.0), PageVisit(small_page, 40.0)]
    results = dict(compare_session_policies(
        session, EnergyAwareEngine,
        [("none", None), ("oracle-20", OraclePolicy(20.0))]))
    assert results["oracle-20"].total_energy \
        < results["none"].total_energy
    assert results["oracle-20"].switch_count == 2


def test_policy_not_consulted_below_interest_threshold(small_page):
    outcome = browse_session([PageVisit(small_page, reading_time=1.0)],
                             EnergyAwareEngine,
                             policy=AlwaysOffPolicy())
    assert outcome.visits[0].decision is None
    assert outcome.switch_count == 0


def test_decisions_recorded(small_page):
    outcome = browse_session([PageVisit(small_page, reading_time=25.0)],
                             EnergyAwareEngine,
                             policy=OraclePolicy(20.0))
    decision = outcome.visits[0].decision
    assert decision is not None
    assert decision.switch_to_idle


def test_empty_session_rejected():
    with pytest.raises(ValueError):
        browse_session([], OriginalEngine)


def test_negative_reading_rejected(small_page):
    with pytest.raises(ValueError):
        PageVisit(small_page, reading_time=-1.0)
