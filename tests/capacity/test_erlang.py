"""Erlang-B analytic formula."""

import pytest

from repro.capacity.erlang import erlang_b, offered_load


def test_known_values():
    # Classic Erlang-B table entries.
    assert erlang_b(1, 1.0) == pytest.approx(0.5)
    assert erlang_b(2, 1.0) == pytest.approx(0.2)
    assert erlang_b(2, 2.0) == pytest.approx(0.4)


def test_zero_load_never_blocks():
    assert erlang_b(10, 0.0) == 0.0


def test_blocking_monotone_in_load():
    previous = 0.0
    for load in (10, 50, 100, 180, 250):
        current = erlang_b(200, load)
        assert current >= previous
        previous = current


def test_blocking_monotone_decreasing_in_channels():
    for channels in (10, 20, 40):
        assert erlang_b(channels, 15.0) > erlang_b(channels * 2, 15.0)


def test_heavy_overload_blocks_most_traffic():
    assert erlang_b(10, 1000.0) > 0.98


def test_offered_load():
    # 500 users, one session per 25 s, 10 s holding time = 200 erlangs.
    assert offered_load(500, 25.0, 10.0) == pytest.approx(200.0)


def test_validation():
    with pytest.raises(ValueError):
        erlang_b(0, 1.0)
    with pytest.raises(ValueError):
        erlang_b(10, -1.0)
    with pytest.raises(ValueError):
        offered_load(0, 25.0, 10.0)
