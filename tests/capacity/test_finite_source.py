"""Finite-source (Engset-style) capacity model."""

import pytest

from repro.capacity.finite_source import FiniteSourceCapacitySimulator
from repro.capacity.simulator import (
    CapacityConfig,
    CapacitySimulator,
    capacity_at_drop_target,
)


def make(service=10.0, channels=50, horizon=7200.0):
    return FiniteSourceCapacitySimulator(
        [service], CapacityConfig(n_channels=channels, horizon=horizon,
                                  seed=1))


def test_light_load_never_drops():
    result = make(service=1.0).run(10)
    assert result.dropped == 0


def test_drop_probability_monotone_in_users():
    simulator = make(service=20.0, channels=40)
    probabilities = [simulator.run(n).drop_probability
                     for n in (50, 150, 400, 900)]
    assert probabilities == sorted(probabilities)


def test_seeded_runs_reproducible():
    simulator = make()
    a = simulator.run(200, seed=4)
    b = simulator.run(200, seed=4)
    assert (a.sessions, a.dropped) == (b.sessions, b.dropped)


def test_supports_more_users_than_infinite_source():
    """Think-time gating throttles each user's demand, so the same
    channel pool supports more finite-source users at equal blocking."""
    service, channels = 20.0, 50
    config = CapacityConfig(n_channels=channels, horizon=7200.0, seed=2)
    finite = FiniteSourceCapacitySimulator([service], config)
    infinite = CapacitySimulator([service], config)
    finite_capacity = capacity_at_drop_target(finite, 0.02, seed=2)
    infinite_capacity = capacity_at_drop_target(infinite, 0.02, seed=2)
    assert finite_capacity > infinite_capacity


def test_capacity_gain_damped_vs_infinite_source():
    """The Fig. 11 discussion: shortening the holding time buys
    relatively less capacity when think time gates arrivals."""
    config = CapacityConfig(n_channels=50, horizon=7200.0, seed=3)

    def gain(simulator_cls):
        slow = simulator_cls([14.0], config)
        fast = simulator_cls([10.0], config)
        slow_capacity = capacity_at_drop_target(slow, 0.02, seed=3)
        fast_capacity = capacity_at_drop_target(fast, 0.02, seed=3)
        return fast_capacity / slow_capacity - 1.0

    assert gain(FiniteSourceCapacitySimulator) \
        < gain(CapacitySimulator)


def test_sessions_counted_per_user_cycle():
    result = make(service=2.0, channels=200, horizon=3600.0).run(5)
    # Each user cycles think(25) + service(2): ~130 sessions/user-hour.
    assert 400 <= result.sessions <= 900


def test_validation():
    with pytest.raises(ValueError):
        FiniteSourceCapacitySimulator([])
    with pytest.raises(ValueError):
        FiniteSourceCapacitySimulator([-1.0])
    with pytest.raises(ValueError):
        make().run(0)
