"""M/G/N/N capacity simulator, cross-checked against Erlang-B."""

import numpy as np
import pytest

from repro.capacity.erlang import erlang_b, offered_load
from repro.capacity.simulator import (
    CapacityConfig,
    CapacitySimulator,
    capacity_at_drop_target,
)


def make_simulator(service=10.0, channels=50, horizon=3600.0):
    return CapacitySimulator(
        [service], CapacityConfig(n_channels=channels, horizon=horizon,
                                  seed=1))


def test_no_drops_under_light_load():
    simulator = make_simulator(service=1.0, channels=50)
    result = simulator.run(n_users=10)
    assert result.dropped == 0
    assert result.drop_probability == 0.0


def test_heavy_load_drops_sessions():
    simulator = make_simulator(service=60.0, channels=10)
    result = simulator.run(n_users=200)
    assert result.drop_probability > 0.5


def test_drop_probability_monotone_in_users():
    simulator = make_simulator(service=20.0, channels=40)
    probabilities = [simulator.run(n).drop_probability
                     for n in (20, 60, 120, 240)]
    assert probabilities == sorted(probabilities)


def test_runs_are_seeded():
    simulator = make_simulator()
    a = simulator.run(100, seed=9)
    b = simulator.run(100, seed=9)
    assert (a.sessions, a.dropped) == (b.sessions, b.dropped)


def test_simulation_matches_erlang_b():
    """Property (insensitivity): with deterministic service times the
    simulated loss probability matches the analytic Erlang-B value."""
    channels, users, service = 30, 90, 12.0
    simulator = CapacitySimulator(
        [service], CapacityConfig(n_channels=channels, horizon=40_000.0,
                                  seed=3))
    load = offered_load(users, 25.0, service)
    analytic = erlang_b(channels, load)
    simulated = simulator.run(users).drop_probability
    assert simulated == pytest.approx(analytic, abs=0.02)


def test_empirical_service_distribution_sampled():
    simulator = CapacitySimulator([5.0, 15.0],
                                  CapacityConfig(horizon=1000.0))
    assert simulator.mean_service_time == pytest.approx(10.0)


def test_shorter_service_supports_more_users():
    """The Fig. 11 mechanism."""
    fast = make_simulator(service=10.0, channels=50, horizon=7200.0)
    slow = make_simulator(service=14.0, channels=50, horizon=7200.0)
    fast_capacity = capacity_at_drop_target(fast, 0.02, seed=2)
    slow_capacity = capacity_at_drop_target(slow, 0.02, seed=2)
    assert fast_capacity > slow_capacity


def test_capacity_binary_search_is_tight():
    simulator = make_simulator(service=10.0, channels=50, horizon=7200.0)
    capacity = capacity_at_drop_target(simulator, 0.02, seed=2)
    assert simulator.run(capacity, seed=2).drop_probability <= 0.02
    assert simulator.run(capacity + 25, seed=2).drop_probability > 0.02


def test_sweep_is_deterministic():
    simulator = make_simulator(service=20.0, channels=40)
    a = simulator.sweep([50, 100, 200], seed=11)
    b = simulator.sweep([50, 100, 200], seed=11)
    assert [(r.sessions, r.dropped) for r in a] \
        == [(r.sessions, r.dropped) for r in b]


def test_sweep_points_use_independent_seeds():
    """Each sweep point must draw from its own stream: with one shared
    seed, every point reuses the same arrival luck and the whole curve
    is biased up or down together."""
    simulator = make_simulator(service=20.0, channels=40)
    n = 120
    independent = simulator.sweep([n, n, n], seed=11)
    # Independent streams: same user count, different session draws.
    sessions = {r.sessions for r in independent}
    assert len(sessions) > 1
    # And none of the per-point seeds is the root seed itself.
    assert all(s != 11 for s in simulator.sweep_seeds(3, seed=11))


def test_sweep_common_random_numbers_opt_in():
    """CRN mode restores the shared-seed behaviour for paired
    comparisons: identical points give identical results."""
    simulator = make_simulator(service=20.0, channels=40)
    n = 120
    crn = simulator.sweep([n, n, n], seed=11,
                          common_random_numbers=True)
    assert len({(r.sessions, r.dropped) for r in crn}) == 1
    # CRN matches what run() itself produces with the root seed.
    direct = simulator.run(n, seed=11)
    assert (crn[0].sessions, crn[0].dropped) \
        == (direct.sessions, direct.dropped)


def test_finite_source_sweep_shares_seeding():
    from repro.capacity.finite_source import FiniteSourceCapacitySimulator

    simulator = CapacitySimulator([10.0], CapacityConfig(seed=5))
    finite = FiniteSourceCapacitySimulator([10.0], CapacityConfig(seed=5))
    assert simulator.sweep_seeds(4) == finite.sweep_seeds(4)
    assert finite.sweep_seeds(2, common_random_numbers=True) == [5, 5]


def test_validation():
    with pytest.raises(ValueError):
        CapacitySimulator([])
    with pytest.raises(ValueError):
        CapacitySimulator([0.0])
    with pytest.raises(ValueError):
        CapacityConfig(n_channels=0)
    simulator = make_simulator()
    with pytest.raises(ValueError):
        simulator.run(0)
    with pytest.raises(ValueError):
        capacity_at_drop_target(simulator, 0.0)
