"""End-to-end integration: the full on-device pipeline.

Runs the whole story the paper tells once, across package boundaries:
train the predictor offline on the trace → load a page with the
reorganised browser → radio released at transmission end → collect the
Table-1 features from the live load → Algorithm 2 decides → RIL switch
→ the reading period burns IDLE power.
"""

import pytest

from repro.browser.energy_aware import EnergyAwareEngine
from repro.browser.original import OriginalEngine
from repro.core.config import PolicyConfig
from repro.core.session import Handset
from repro.prediction.features import features_from_load
from repro.prediction.policy import PredictivePolicy
from repro.rrc.ril import RilMessageType
from repro.rrc.states import RrcState
from repro.webpages.corpus import find_page


def test_full_pipeline_switches_radio_when_reading_predicted_long(
        trained_predictor):
    page = find_page("espn.go.com/sports")
    handset = Handset()
    engine = handset.make_engine(EnergyAwareEngine, page)
    results = []
    engine.load(results.append)
    handset.sim.run()
    load = results[0]

    # Phase separation held and the channels were released via the RIL.
    released = [m for m in handset.ril.log
                if m.message_type is RilMessageType.RELEASE_CHANNELS]
    assert released and released[0].reply == "OK"

    # Live features → Algorithm 2.
    features = features_from_load(page, load, second_urls=60)
    policy = PredictivePolicy(trained_predictor,
                              PolicyConfig(mode="power"))
    decision = policy.decide(features, true_reading_time=30.0)
    assert decision.predicted_reading_time > 0

    if decision.switch_to_idle:
        alpha = PolicyConfig().interest_threshold
        handset.sim.run(until=handset.sim.now + alpha)
        handset.ril.request_fast_dormancy()
        handset.sim.run(until=handset.sim.now + 1.0)
        assert handset.machine.state is RrcState.IDLE

    # Reading period accounting on whatever state the policy left.
    start = handset.sim.now
    handset.sim.run(until=start + 20.0)
    energy = handset.accountant.total_energy(start, start + 20.0)
    assert energy > 0


def test_both_engines_agree_on_what_was_downloaded():
    page = find_page("www.apple.com")
    loads = {}
    for engine_cls in (OriginalEngine, EnergyAwareEngine):
        handset = Handset()
        engine = handset.make_engine(engine_cls, page)
        results = []
        engine.load(results.append)
        handset.sim.run()
        loads[engine_cls.name] = results[0]
    original, ours = loads["original"], loads["energy-aware"]
    assert {t.label for t in original.transfers} \
        == {t.label for t in ours.transfers}
    assert original.bytes_downloaded == pytest.approx(
        ours.bytes_downloaded)
    assert original.dom_nodes == ours.dom_nodes


def test_predictor_survives_phone_deployment_roundtrip(
        trained_predictor, small_trace, tmp_path):
    """Offline training → JSON → 'phone' → same decisions."""
    path = tmp_path / "deployed.json"
    trained_predictor.save_json(str(path))
    from repro.prediction.predictor import ReadingTimePredictor
    deployed = ReadingTimePredictor.load_json(str(path))
    policy_a = PredictivePolicy(trained_predictor, PolicyConfig())
    policy_b = PredictivePolicy(deployed, PolicyConfig())
    for record in small_trace.records[:50]:
        features = record.feature_vector()
        assert (policy_a.decide(features, 0.0).switch_to_idle
                == policy_b.decide(features, 0.0).switch_to_idle)


def test_simulation_is_fully_deterministic():
    """Two identical end-to-end runs produce identical traces."""
    page = find_page("cnn")
    energies = []
    for _ in range(2):
        handset = Handset()
        engine = handset.make_engine(EnergyAwareEngine, page)
        results = []
        engine.load(results.append)
        handset.sim.run()
        energies.append(handset.accountant.total_energy())
        times = [t.completed_at for t in results[0].transfers]
        energies.append(tuple(times))
    assert energies[0] == energies[2]
    assert energies[1] == energies[3]


def test_engine_fetch_order_consistent_with_content_layer():
    """Cross-layer check: the energy-aware engine's grouped fetches are
    exactly what scanning/executing the page's real sources discovers."""
    from repro.content import synthesize_sources, derive_graph

    page = find_page("www.motors.ebay.com")
    sources = synthesize_sources(page, seed=4)
    derived = derive_graph(sources)

    handset = Handset()
    engine = handset.make_engine(EnergyAwareEngine, page)
    results = []
    engine.load(results.append)
    handset.sim.run()

    fetched = {t.label for t in results[0].transfers}
    discoverable = set(derived)
    assert fetched == discoverable
    # Everything the root's source scan reveals was requested before any
    # script finished downloading (the grouping property, content-level).
    transfers = {t.label: t for t in results[0].transfers}
    root_scan_refs = derived[page.root_id]
    first_script_done = min(
        (t.completed_at for label, t in transfers.items()
         if label.endswith(".js")), default=float("inf"))
    for ref in root_scan_refs:
        assert transfers[ref].requested_at <= first_script_done
