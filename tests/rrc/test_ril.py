"""RIL message path."""

import pytest

from repro.rrc.machine import RrcMachine
from repro.rrc.ril import RilLink, RilMessageType
from repro.rrc.states import RrcState
from repro.sim.kernel import Simulator


def make_link():
    sim = Simulator()
    machine = RrcMachine(sim)
    return sim, machine, RilLink(sim, machine)


def promote(sim, machine):
    machine.acquire_channel(lambda: None)
    sim.run()
    machine.tx_begin()
    machine.tx_end()


def test_fast_dormancy_travels_through_both_hops():
    sim, machine, ril = make_link()
    promote(sim, machine)
    replies = []
    ril.request_fast_dormancy(replies.append)
    sim.run(until=sim.now + 1.0)
    (message,) = replies
    assert message.hops == ["RIL.java", "firmware"]
    assert message.reply == "OK"
    assert message.error is None
    assert machine.state is RrcState.IDLE


def test_message_latency_is_sum_of_hops():
    sim, machine, ril = make_link()
    promote(sim, machine)
    start = sim.now
    replies = []
    ril.request_fast_dormancy(replies.append)
    sim.run(until=sim.now + 1.0)
    assert replies[0].delivered_at - start == pytest.approx(
        ril.total_latency)


def test_channel_release_message():
    sim, machine, ril = make_link()
    promote(sim, machine)
    replies = []
    ril.request_channel_release(replies.append)
    sim.run(until=sim.now + 0.1)
    assert replies[0].reply == "OK"
    assert machine.state is RrcState.FACH


def test_dormancy_error_reported_not_raised():
    """A dormancy request landing mid-transfer must surface the RrcError
    as a message error, not crash the firmware hop."""
    sim, machine, ril = make_link()
    machine.acquire_channel(lambda: None)
    sim.run()
    machine.tx_begin()
    replies = []
    ril.request_fast_dormancy(replies.append)
    sim.run(until=sim.now + 1.0)
    assert replies[0].reply is None
    assert "transfer" in replies[0].error
    machine.tx_end()


def test_fast_dormancy_from_idle_is_noop_success():
    """Dormancy requested when the radio is already IDLE acknowledges
    OK without touching the machine — no error, no promotion."""
    sim, machine, ril = make_link()
    assert machine.state is RrcState.IDLE
    replies = []
    ril.request_fast_dormancy(replies.append)
    sim.run(until=sim.now + 1.0)
    assert replies[0].ok
    assert machine.state is RrcState.IDLE
    assert ril.errors == []


def test_channel_release_below_dch_is_noop_success():
    sim, machine, ril = make_link()
    replies = []
    ril.request_channel_release(replies.append)
    sim.run(until=sim.now + 1.0)
    assert replies[0].ok
    assert machine.state is RrcState.IDLE


def test_error_routed_to_on_error_callback():
    """With an ``on_error`` callback, a failed request goes there and
    only there; the success callback never fires."""
    sim, machine, ril = make_link()
    machine.acquire_channel(lambda: None)
    sim.run()
    machine.tx_begin()
    oks, errors = [], []
    ril.request_channel_release(oks.append, on_error=errors.append)
    sim.run(until=sim.now + 1.0)
    assert oks == []
    assert len(errors) == 1
    assert "transfer" in errors[0].error
    assert ril.errors == errors
    machine.tx_end()


def test_release_during_promotion_surfaces_error():
    sim, machine, ril = make_link()
    machine.acquire_channel(lambda: None)  # promotion in flight
    errors = []
    ril.request_channel_release(on_error=errors.append)
    sim.run(until=sim.now + RilLink.FRAMEWORK_HOP_LATENCY
            + RilLink.SOCKET_HOP_LATENCY + 0.001)
    assert len(errors) == 1
    assert "promotion" in errors[0].error
    sim.run()


def test_messages_are_logged():
    sim, machine, ril = make_link()
    ril.request_fast_dormancy()
    ril.request_channel_release()
    assert [m.message_type for m in ril.log] == [
        RilMessageType.FAST_DORMANCY, RilMessageType.RELEASE_CHANNELS]


def test_custom_latencies_validated():
    sim = Simulator()
    machine = RrcMachine(sim)
    with pytest.raises(ValueError):
        RilLink(sim, machine, framework_latency=-0.1)
