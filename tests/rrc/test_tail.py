"""Analytic tail math, cross-checked against the state machine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rrc.config import RrcConfig
from repro.rrc.machine import RrcMachine
from repro.rrc.states import RrcState
from repro.rrc.tail import (
    promotion_energy,
    promotion_latency,
    tail_energy_after_release,
    tail_energy_after_tx,
    tail_state_after_release,
    tail_state_after_tx,
)
from repro.sim.kernel import Simulator


def test_tail_states_after_tx():
    config = RrcConfig()
    assert tail_state_after_tx(0.0, config) is RrcState.DCH
    assert tail_state_after_tx(3.99, config) is RrcState.DCH
    assert tail_state_after_tx(4.0, config) is RrcState.FACH
    assert tail_state_after_tx(18.99, config) is RrcState.FACH
    assert tail_state_after_tx(19.0, config) is RrcState.IDLE


def test_tail_states_after_release():
    config = RrcConfig()
    assert tail_state_after_release(0.0, config) is RrcState.FACH
    assert tail_state_after_release(14.99, config) is RrcState.FACH
    assert tail_state_after_release(15.0, config) is RrcState.IDLE


def test_tail_energy_pieces():
    config = RrcConfig()
    power = config.power
    assert tail_energy_after_tx(0, 4, config) == pytest.approx(
        4 * power.dch)
    assert tail_energy_after_tx(4, 19, config) == pytest.approx(
        15 * power.fach)
    assert tail_energy_after_tx(19, 29, config) == pytest.approx(
        10 * power.idle)
    assert tail_energy_after_tx(0, 29, config) == pytest.approx(
        4 * power.dch + 15 * power.fach + 10 * power.idle)


def test_tail_energy_zero_window():
    assert tail_energy_after_tx(5.0, 5.0) == 0.0


def test_tail_energy_reversed_window_rejected():
    with pytest.raises(ValueError):
        tail_energy_after_tx(5.0, 4.0)


def test_promotion_latency_and_energy_by_state():
    config = RrcConfig()
    assert promotion_latency(RrcState.DCH, config) == 0.0
    assert promotion_latency(RrcState.FACH, config) == \
        config.promo_fach_latency
    assert promotion_latency(RrcState.IDLE, config) == \
        config.promo_idle_latency
    assert promotion_energy(RrcState.DCH, config) == 0.0
    assert promotion_energy(RrcState.IDLE, config) > \
        promotion_energy(RrcState.FACH, config)


@settings(max_examples=20, deadline=None)
@given(st.floats(min_value=0.05, max_value=30.0))
def test_property_analytic_tail_matches_machine(offset):
    """Property: the analytic tail state/energy equals what the real
    state machine produces for the same window after a transfer."""
    config = RrcConfig()
    sim = Simulator()
    machine = RrcMachine(sim, config)
    machine.acquire_channel(lambda: None)
    sim.run()
    machine.tx_begin()
    machine.tx_end()
    anchor = sim.now
    sim.run(until=anchor + offset + 1.0)
    machine.finalize()

    # State agreement.
    expected_state = tail_state_after_tx(offset, config)
    segment_state = next(
        s.mode.state for s in machine.segments
        if s.start <= anchor + offset < s.end)
    assert segment_state is expected_state

    # Energy agreement over [anchor, anchor+offset).
    measured = sum(
        config.power.for_mode(s.mode)
        * max(0.0, min(s.end, anchor + offset) - max(s.start, anchor))
        for s in machine.segments)
    assert measured == pytest.approx(
        tail_energy_after_tx(0.0, offset, config), abs=1e-6)
