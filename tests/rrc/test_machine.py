"""RRC state machine: promotions, timers, transfers, dormancy."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rrc.config import RrcConfig
from repro.rrc.machine import RrcError, RrcMachine
from repro.rrc.states import RadioMode, RrcState
from repro.sim.kernel import Simulator


def make_machine(config=None):
    sim = Simulator()
    return sim, RrcMachine(sim, config)


def test_starts_idle():
    _, machine = make_machine()
    assert machine.state is RrcState.IDLE
    assert not machine.transmitting


def test_idle_promotion_takes_configured_latency():
    sim, machine = make_machine()
    granted = []
    machine.acquire_channel(lambda: granted.append(sim.now))
    sim.run()
    assert granted == [machine.config.promo_idle_latency]
    assert machine.state is RrcState.DCH


def test_idle_promotion_charges_signalling_energy():
    sim, machine = make_machine()
    machine.acquire_channel(lambda: None)
    sim.run()
    assert machine.extra_energy == pytest.approx(
        machine.config.promo_idle_signalling_energy)
    assert machine.promotions == {"IDLE": 1, "FACH": 0}


def test_acquire_from_dch_is_instant():
    sim, machine = make_machine()
    machine.acquire_channel(lambda: None)
    sim.run()
    granted = []
    machine.acquire_channel(lambda: granted.append(sim.now))
    assert granted == [sim.now]


def test_fach_promotion_is_faster_than_idle():
    sim, machine = make_machine()
    machine.acquire_channel(lambda: None)
    sim.run()
    machine.tx_begin()
    machine.tx_end()
    # Let T1 expire so the machine sits in FACH.
    sim.run(until=sim.now + machine.config.t1 + 0.1)
    assert machine.state is RrcState.FACH
    start = sim.now
    granted = []
    machine.acquire_channel(lambda: granted.append(sim.now - start))
    sim.run(until=sim.now + 1.0)
    assert granted == [pytest.approx(machine.config.promo_fach_latency)]


def test_concurrent_acquires_granted_together():
    sim, machine = make_machine()
    granted = []
    machine.acquire_channel(lambda: granted.append("a"))
    machine.acquire_channel(lambda: granted.append("b"))
    sim.run()
    assert granted == ["a", "b"]
    assert machine.promotions["IDLE"] == 1


def test_t1_then_t2_demotion_path():
    sim, machine = make_machine()
    machine.acquire_channel(lambda: None)
    sim.run()
    machine.tx_begin()
    machine.tx_end()
    t_end = sim.now
    sim.run()
    machine.finalize()
    modes = [s.mode for s in machine.segments]
    assert modes[-2:] == [RadioMode.DCH, RadioMode.FACH]
    assert machine.state is RrcState.IDLE
    dch_tail = [s for s in machine.segments if s.mode is RadioMode.DCH][-1]
    assert dch_tail.duration == pytest.approx(machine.config.t1)
    fach = [s for s in machine.segments if s.mode is RadioMode.FACH][-1]
    assert fach.duration == pytest.approx(machine.config.t2)
    assert fach.start == pytest.approx(t_end + machine.config.t1)


def test_new_transfer_cancels_t1():
    sim, machine = make_machine()
    machine.acquire_channel(lambda: None)
    sim.run()
    machine.tx_begin()
    machine.tx_end()
    # Re-acquire inside T1: no demotion should happen.
    sim.run(until=sim.now + 2.0)
    machine.acquire_channel(lambda: None)
    machine.tx_begin()
    sim.run(until=sim.now + 10.0)
    assert machine.state is RrcState.DCH
    assert machine.mode is RadioMode.DCH_TX
    machine.tx_end()


def test_overlapping_transfers_are_refcounted():
    sim, machine = make_machine()
    machine.acquire_channel(lambda: None)
    sim.run()
    machine.tx_begin()
    machine.tx_begin()
    machine.tx_end()
    assert machine.mode is RadioMode.DCH_TX  # one still in flight
    machine.tx_end()
    assert machine.mode is RadioMode.DCH


def test_tx_begin_outside_dch_rejected():
    _, machine = make_machine()
    with pytest.raises(RrcError):
        machine.tx_begin()


def test_tx_end_without_begin_rejected():
    sim, machine = make_machine()
    machine.acquire_channel(lambda: None)
    sim.run()
    with pytest.raises(RrcError):
        machine.tx_end()


def test_fast_dormancy_from_dch_tail():
    sim, machine = make_machine()
    machine.acquire_channel(lambda: None)
    sim.run()
    machine.tx_begin()
    machine.tx_end()
    machine.fast_dormancy()
    assert machine.state is RrcState.IDLE
    assert machine.fast_dormancy_count == 1
    # Timers were cancelled: nothing pending fires later.
    sim.run()
    assert machine.state is RrcState.IDLE


def test_fast_dormancy_during_transfer_rejected():
    sim, machine = make_machine()
    machine.acquire_channel(lambda: None)
    sim.run()
    machine.tx_begin()
    with pytest.raises(RrcError, match="during a transfer"):
        machine.fast_dormancy()


def test_fast_dormancy_during_promotion_rejected():
    sim, machine = make_machine()
    machine.acquire_channel(lambda: None)
    with pytest.raises(RrcError, match="promotion"):
        machine.fast_dormancy()


def test_fast_dormancy_when_idle_is_noop():
    _, machine = make_machine()
    machine.fast_dormancy()
    assert machine.fast_dormancy_count == 0


def test_release_channels_goes_to_fach_and_arms_t2():
    sim, machine = make_machine()
    machine.acquire_channel(lambda: None)
    sim.run()
    machine.tx_begin()
    machine.tx_end()
    machine.release_channels()
    assert machine.state is RrcState.FACH
    sim.run()
    assert machine.state is RrcState.IDLE
    machine.finalize()
    fach = [s for s in machine.segments if s.mode is RadioMode.FACH][-1]
    assert fach.duration == pytest.approx(machine.config.t2)


def test_release_channels_below_dch_is_noop():
    _, machine = make_machine()
    machine.release_channels()
    assert machine.state is RrcState.IDLE


def test_radio_energy_integrates_segments():
    config = RrcConfig()
    sim, machine = make_machine(config)
    machine.acquire_channel(lambda: None)
    sim.run()
    machine.tx_begin()
    sim.run(until=sim.now + 2.0)
    machine.tx_end()
    machine.fast_dormancy()
    machine.finalize()
    expected = (config.power.promotion * config.promo_idle_latency
                + config.power.dch_tx * 2.0
                + config.promo_idle_signalling_energy)
    assert machine.radio_energy() == pytest.approx(expected)


def test_time_in_state_accounts_promotions_as_dch():
    sim, machine = make_machine()
    machine.acquire_channel(lambda: None)
    sim.run()
    machine.finalize()
    assert machine.time_in_state(RrcState.DCH) == pytest.approx(
        machine.config.promo_idle_latency)


def test_segments_are_contiguous():
    sim, machine = make_machine()
    machine.acquire_channel(lambda: None)
    sim.run()
    machine.tx_begin()
    sim.run(until=sim.now + 1.0)
    machine.tx_end()
    sim.run()
    machine.finalize()
    for previous, current in zip(machine.segments, machine.segments[1:]):
        assert previous.end == pytest.approx(current.start)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.floats(min_value=0.1, max_value=30.0), min_size=1,
                max_size=10))
def test_property_any_gap_pattern_keeps_invariants(gaps):
    """Property: under arbitrary transfer gap patterns, segments stay
    contiguous, energy stays non-negative, and the machine ends IDLE
    after a full tail."""
    sim = Simulator()
    machine = RrcMachine(sim)

    def do_transfer():
        machine.acquire_channel(lambda: _begin())

    def _begin():
        machine.tx_begin()
        sim.schedule(0.2, _end)

    def _end():
        machine.tx_end()

    at = 0.0
    for gap in gaps:
        at += gap
        sim.schedule_at(at, do_transfer)
    sim.run()
    machine.finalize()

    for previous, current in zip(machine.segments, machine.segments[1:]):
        assert previous.end == pytest.approx(current.start)
    assert machine.radio_energy() > 0
    assert machine.state is RrcState.IDLE
    assert not machine.transmitting


def test_signalling_message_counts():
    """Section 2.1: an IDLE→DCH promotion costs ~10 control message
    exchanges; FACH→DCH fewer (the signalling connection exists)."""
    sim, machine = make_machine()
    machine.acquire_channel(lambda: None)
    sim.run()
    assert machine.signalling_messages == machine.config.promo_idle_messages
    machine.tx_begin()
    machine.tx_end()
    sim.run(until=sim.now + machine.config.t1 + 0.1)  # demote to FACH
    machine.acquire_channel(lambda: None)
    sim.run(until=sim.now + 1.0)
    assert machine.signalling_messages == (
        machine.config.promo_idle_messages
        + machine.config.promo_fach_messages)
