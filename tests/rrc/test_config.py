"""Radio configuration validation and derived quantities."""

import pytest

from repro.rrc.config import PowerProfile, RrcConfig
from repro.rrc.states import RadioMode


def test_paper_defaults():
    config = RrcConfig()
    assert config.t1 == 4.0
    assert config.t2 == 15.0
    assert config.tail_time == 19.0
    power = config.power
    assert power.idle == 0.15
    assert power.fach == 0.63
    assert power.dch == 1.15
    assert power.dch_tx == 1.25


def test_extra_promotion_delay_matches_paper():
    # Section 3.1: switching to IDLE adds ~1.75 s to the next transfer.
    assert RrcConfig().extra_promotion_delay == pytest.approx(1.75)


def test_power_profile_ordering_enforced():
    with pytest.raises(ValueError, match="ordered"):
        PowerProfile(idle=0.7, fach=0.63)


def test_power_profile_rejects_negative():
    with pytest.raises(ValueError):
        PowerProfile(cpu_active=-0.1)


def test_for_mode_covers_every_mode():
    power = PowerProfile()
    for mode in RadioMode:
        assert power.for_mode(mode) > 0


def test_promotion_latency_ordering_enforced():
    with pytest.raises(ValueError, match="slower"):
        RrcConfig(promo_idle_latency=0.1, promo_fach_latency=0.2)


@pytest.mark.parametrize("field,value", [
    ("t1", 0.0), ("t2", -1.0), ("promo_idle_latency", 0.0),
])
def test_timer_validation(field, value):
    with pytest.raises(ValueError):
        RrcConfig(**{field: value})


def test_fig3_breakeven_is_calibrated_to_9_seconds():
    """The signalling energy default is chosen so that the intuitive
    immediate-IDLE scheme breaks even at a 9 s gap (Section 3.1)."""
    config = RrcConfig()
    power = config.power
    # Original at t = 9 s: 4 s DCH tail + 5 s FACH + FACH→DCH promotion.
    original = (power.dch * config.t1 + power.fach * 5.0
                + power.promotion * config.promo_fach_latency)
    intuitive = (power.idle * 9.0
                 + power.promotion * config.promo_idle_latency
                 + config.promo_idle_signalling_energy)
    assert original == pytest.approx(intuitive, abs=0.05)
