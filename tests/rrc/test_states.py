"""RRC state and mode definitions."""

import pytest

from repro.rrc.states import (
    LEGAL_TRANSITIONS,
    RadioMode,
    RrcState,
    is_legal_transition,
)


def test_mode_maps_to_protocol_state():
    assert RadioMode.IDLE.state is RrcState.IDLE
    assert RadioMode.FACH.state is RrcState.FACH
    assert RadioMode.DCH.state is RrcState.DCH
    assert RadioMode.DCH_TX.state is RrcState.DCH


def test_promotions_count_as_destination_state():
    assert RadioMode.PROMO_IDLE_DCH.state is RrcState.DCH
    assert RadioMode.PROMO_FACH_DCH.state is RrcState.DCH


@pytest.mark.parametrize("src,dst,legal", [
    (RrcState.IDLE, RrcState.DCH, True),
    (RrcState.IDLE, RrcState.FACH, False),
    (RrcState.DCH, RrcState.FACH, True),
    (RrcState.DCH, RrcState.IDLE, False),
    (RrcState.FACH, RrcState.DCH, True),
    (RrcState.FACH, RrcState.IDLE, True),
])
def test_transition_legality(src, dst, legal):
    assert is_legal_transition(src, dst) is legal


def test_no_self_transitions_listed():
    for src, dsts in LEGAL_TRANSITIONS.items():
        assert src not in dsts


def test_state_str():
    assert str(RrcState.DCH) == "DCH"
