"""Batched Algorithm-2 decisions vs the scalar policies — bitwise."""

import numpy as np

from repro.core.config import PolicyConfig
from repro.fleet.policy import switch_decisions, threshold_fractions
from repro.prediction.policy import PredictivePolicy
from repro.prediction.predictor import ReadingTimePredictor


def _trained_predictor(seed=17, n=200):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 5))
    y = np.abs(3.0 * x[:, 0] - x[:, 2] + rng.normal(scale=0.5, size=n)) \
        + 0.5
    predictor = ReadingTimePredictor(n_estimators=60,
                                     interest_threshold=None)
    return predictor.fit_arrays(x, y), x


def test_batched_prediction_bitwise_equals_scalar_traversal():
    """predict(X)[i] and predict_one(X[i]) accumulate init + Σ lr·leaf
    in the same order; the results must be equal to the last bit."""
    predictor, x = _trained_predictor()
    batched = predictor.predict(x)
    for i in range(x.shape[0]):
        assert batched[i] == predictor.predict_one(x[i])


def test_switch_decisions_match_policy_decide():
    predictor, x = _trained_predictor(seed=5)
    predictions = predictor.predict(x)
    for mode in ("power", "delay"):
        config = PolicyConfig(mode=mode, power_threshold=9.0,
                              delay_threshold=20.0)
        policy = PredictivePolicy(predictor, config)
        batched = switch_decisions(predictions, mode,
                                   config.power_threshold,
                                   config.delay_threshold)
        for i in range(x.shape[0]):
            assert bool(batched[i]) == policy.decide(x[i], 0.0) \
                .switch_to_idle


def test_threshold_fractions_bitwise_equal_scalar_means():
    rng = np.random.default_rng(8)
    times = rng.weibull(0.6, size=5000) * 18.0
    # Plant exact threshold collisions so side='left' is exercised.
    times[:10] = 9.0
    thresholds = [2.0, 9.0, 20.0]
    batched = threshold_fractions(times, thresholds)
    for threshold, ours in zip(thresholds, batched):
        assert ours == 100.0 * float(np.mean(times < threshold))


def test_backend_port_bitwise_equal(xp):
    """The xp= paths of both policy helpers vs the NumPy reference,
    with planted threshold/sample collisions (count_lt tie semantics
    are the whole point of the port)."""
    from repro.fleet import backend

    rng = np.random.default_rng(8)
    times = rng.weibull(0.6, size=3000) * 18.0
    times[:10] = 9.0
    thresholds = [2.0, 9.0, 20.0, float(times[42])]
    assert threshold_fractions(times, thresholds) \
        == threshold_fractions(times, thresholds, xp=xp)
    predictions = rng.exponential(15.0, size=500)
    for mode in ("power", "delay"):
        reference = switch_decisions(predictions, mode, 9.0, 20.0)
        ported = backend.to_numpy(
            switch_decisions(predictions, mode, 9.0, 20.0, xp=xp))
        np.testing.assert_array_equal(ported, reference)


def test_power_mode_is_a_superset_of_delay_mode():
    predictions = np.array([1.0, 9.5, 15.0, 20.0, 25.0])
    power = switch_decisions(predictions, "power", 9.0, 20.0)
    delay = switch_decisions(predictions, "delay", 9.0, 20.0)
    assert power.tolist() == [False, True, True, True, True]
    assert delay.tolist() == [False, False, False, False, True]
    assert (power | delay).tolist() == power.tolist()
