"""Batched RRC accounting vs the scalar machine (satellite S3).

:func:`repro.fleet.rrc.account` claims closed-form equivalence with a
real :class:`RrcMachine` driven through the event kernel.  The property
test draws traces biased toward the tie-break boundaries (``w == t1``,
``w == t1 + t2``, action offsets at the timer edges) where the closed
forms are easiest to get wrong, and asserts the full state-dwell
ledger matches and the integrated energy agrees within 1e-9 J.
"""

import numpy as np
import pytest
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.fleet.rrc import (
    ACTION_DORMANCY,
    ACTION_NONE,
    ACTION_RELEASE,
    FleetTrace,
    account,
    account_scalar,
    random_fleet,
    replay_scalar,
)
from repro.rrc.config import RrcConfig

CFG = RrcConfig()
T1, T2 = CFG.t1, CFG.t2

COUNTS = ("promotions_idle", "promotions_fach", "signalling_messages",
          "fast_dormancy")
DWELLS = ("time_idle", "time_fach", "time_dch", "time_dch_tx",
          "time_promo_idle", "time_promo_fach", "end_time")


def _assert_handset_matches(ledger, trace, i):
    reference = replay_scalar(trace, i)
    ours = ledger.handset(i)
    for field in COUNTS:
        assert ours[field] == reference[field], (field, i)
    for field in DWELLS:
        assert ours[field] == pytest.approx(reference[field], abs=1e-9), \
            (field, i)
    energy = float(ledger.radio_energy()[i])
    assert energy == pytest.approx(reference["energy"], abs=1e-9)


def _windows():
    # Boundary-heavy window lengths: the exact timer edges, a hair past
    # the IDLE edge, and the bulk of the decay range.
    return st.one_of(
        st.sampled_from([0.0, T1, T1 + T2, T1 + T2 + 1e-9, 30.0]),
        st.floats(min_value=0.0, max_value=60.0,
                  allow_nan=False, allow_infinity=False))


@st.composite
def _traces(draw):
    k = draw(st.integers(min_value=1, max_value=5))
    gaps = [draw(_windows()) for _ in range(k)]
    durations = [draw(st.floats(min_value=1e-3, max_value=8.0))
                 for _ in range(k)]
    actions = [draw(st.sampled_from(
        [ACTION_NONE, ACTION_RELEASE, ACTION_DORMANCY]))
        for _ in range(k)]
    # Offsets pinned to the release/dormancy decision edges (t1 and
    # t1 + t2) and to the window edge where "applied" flips.
    offsets = [draw(st.one_of(
        st.sampled_from([0.0, T1, T1 + T2]),
        st.floats(min_value=0.0, max_value=50.0,
                  allow_nan=False, allow_infinity=False)))
        for _ in range(k)]
    tail = draw(_windows())
    return FleetTrace(
        gaps=np.array([gaps]),
        durations=np.array([durations]),
        actions=np.array([actions], dtype=np.int8),
        offsets=np.array([offsets]),
        n_bursts=np.array([k]),
        tail=np.array([tail]))


@settings(max_examples=80, deadline=None)
@given(_traces())
# gap == t1 + t2 exactly, but the window opens at the non-representable
# anchor 2.001: the kernel's absolute heap keys (anchor + t1) + t2 and
# anchor + gap round to opposite sides of the relative comparison, so
# the demotion to IDLE fires a ULP before the arrival and the next
# promotion is from IDLE, not FACH.
@example(trace=FleetTrace(
    gaps=np.array([[0.0, T1 + T2]]),
    durations=np.array([[0.001, 1.0]]),
    actions=np.array([[ACTION_NONE, ACTION_NONE]], dtype=np.int8),
    offsets=np.array([[0.0, 0.0]]),
    n_bursts=np.array([2]),
    tail=np.array([0.0])))
def test_account_matches_machine_on_boundary_heavy_traces(trace):
    _assert_handset_matches(account(trace), trace, 0)


def test_account_matches_machine_on_random_fleet():
    trace = random_fleet(np.random.default_rng(11), n_handsets=120)
    ledger = account(trace)
    for i in range(trace.n_handsets):
        _assert_handset_matches(ledger, trace, i)


def test_account_scalar_is_the_same_ledger():
    trace = random_fleet(np.random.default_rng(23), n_handsets=40)
    fleet = account(trace)
    scalar = account_scalar(trace)
    for field in COUNTS:
        assert (getattr(fleet, field) == getattr(scalar, field)).all()
    for field in DWELLS:
        np.testing.assert_allclose(getattr(fleet, field),
                                   getattr(scalar, field), atol=1e-9)


def test_adversarial_boundary_matrix():
    """Every (gap, action, offset) combination at the timer edges."""
    gaps = [0.0, T1, T1 + T2, T1 + T2 + 1e-9, 30.0]
    actions = [ACTION_NONE, ACTION_RELEASE, ACTION_DORMANCY]
    rows = []
    for gap in gaps:
        for action in actions:
            for offset in (0.0, T1, T1 + T2, gap,
                           max(gap - 1e-9, 0.0), 50.0):
                rows.append((gap, action, offset))
    n = len(rows)
    trace = FleetTrace(
        gaps=np.array([[5.0, row[0]] for row in rows]),
        durations=np.full((n, 2), 1.5),
        actions=np.array([[row[1], ACTION_NONE] for row in rows],
                         dtype=np.int8),
        offsets=np.array([[row[2], 0.0] for row in rows]),
        n_bursts=np.full(n, 2),
        tail=np.full(n, 40.0))
    ledger = account(trace)
    for i in range(n):
        _assert_handset_matches(ledger, trace, i)


def test_fast_dormancy_counted_only_when_executed():
    """Dormancy past the window is never issued; at the IDLE edge it
    still executes (the dormancy event outruns T2)."""
    trace = FleetTrace(
        gaps=np.array([[1.0], [1.0], [1.0]]),
        durations=np.full((3, 1), 2.0),
        actions=np.full((3, 1), ACTION_DORMANCY, dtype=np.int8),
        offsets=np.array([[5.0], [T1 + T2], [T1 + T2 + 1.0]]),
        n_bursts=np.full(3, 1),
        tail=np.array([30.0, 30.0, T1 + T2 + 0.5]))
    ledger = account(trace)
    assert ledger.fast_dormancy.tolist() == [1, 1, 0]
    for i in range(3):
        _assert_handset_matches(ledger, trace, i)
