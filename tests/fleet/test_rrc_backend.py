"""Golden gate: account_xp (array-API RRC accounting) vs account.

The port keeps every elementwise operation the same IEEE op in the
same order (``clip`` → ``minimum(maximum(·))``, identical association
in the running sums), so the gate is bitwise equality on every ledger
field, not a tolerance.
"""

import numpy as np
import pytest

from repro.fleet import backend
from repro.fleet.rrc import (ACTION_DORMANCY, ACTION_NONE,
                             ACTION_RELEASE, FleetTrace, account,
                             account_xp, random_fleet)
from repro.rrc.config import RrcConfig

_FIELDS = ("time_idle", "time_fach", "time_dch", "time_dch_tx",
           "time_promo_idle", "time_promo_fach", "promotions_idle",
           "promotions_fach", "signalling_messages", "fast_dormancy",
           "end_time")


def _assert_ledgers_identical(reference, ported):
    for field in _FIELDS:
        want, got = getattr(reference, field), getattr(ported, field)
        np.testing.assert_array_equal(got, want, err_msg=field)
        assert got.dtype == want.dtype, field
    np.testing.assert_array_equal(ported.radio_energy(),
                                  reference.radio_energy())


@pytest.mark.parametrize("seed", range(6))
def test_random_fleets_bitwise_identical(xp, seed):
    rng = np.random.default_rng(seed)
    for _ in range(8):
        trace = random_fleet(rng, int(rng.integers(1, 80)),
                             max_bursts=int(rng.integers(1, 12)))
        _assert_ledgers_identical(account(trace),
                                  account_xp(trace, xp=xp))


def test_boundary_edge_traces_bitwise_identical(xp):
    """Windows and offsets landing exactly on the t1/t1+t2 tie points,
    where the kernel's FIFO tie-breaking decides the decayed state."""
    cfg = RrcConfig()
    t1, t2 = cfg.t1, cfg.t2
    gaps = np.array([[1.0, t1], [1.0, t1 + t2], [1.0, t1 + t2 + 1.0],
                     [2.0, 5.0], [2.0, 5.0], [2.0, t2]])
    durations = np.full((6, 2), 1.5)
    actions = np.array([[ACTION_NONE, ACTION_NONE],
                        [ACTION_NONE, ACTION_DORMANCY],
                        [ACTION_RELEASE, ACTION_NONE],
                        [ACTION_RELEASE, ACTION_DORMANCY],
                        [ACTION_DORMANCY, ACTION_RELEASE],
                        [ACTION_RELEASE, ACTION_NONE]], dtype=np.int8)
    offsets = np.array([[0.0, 0.0], [0.5, t1 + t2], [t1, 1.0],
                        [2.0, 5.0], [0.0, t1], [t1 - 1e-9, 0.25]])
    trace = FleetTrace(gaps=gaps, durations=durations, actions=actions,
                       offsets=offsets,
                       n_bursts=np.array([2, 2, 2, 2, 2, 1]),
                       tail=np.array([t1, t1 + t2, 30.0, 0.0, 5.0,
                                      t1 + t2]))
    _assert_ledgers_identical(account(trace), account_xp(trace, xp=xp))


def test_non_default_config_bitwise_identical(xp):
    trace = random_fleet(np.random.default_rng(3), 40)
    cfg = RrcConfig(t1=2.5, t2=7.0)
    _assert_ledgers_identical(account(trace, cfg),
                              account_xp(trace, cfg, xp=xp))


def test_single_burst_single_handset(xp):
    trace = FleetTrace(gaps=np.array([[3.0]]),
                       durations=np.array([[1.0]]),
                       actions=np.array([[ACTION_NONE]], dtype=np.int8),
                       offsets=np.array([[0.0]]),
                       n_bursts=np.array([1]),
                       tail=np.array([10.0]))
    _assert_ledgers_identical(account(trace), account_xp(trace, xp=xp))
