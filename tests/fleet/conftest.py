"""Fleet fixtures: the golden-gated array-API backends.

Every port test runs once per non-NumPy backend.  ``restricted`` is
always available (it is the in-repo allowlist proxy over NumPy);
``array_api_strict`` is exercised when the package is installed — the
dedicated CI job installs it, local runs without it skip.
"""

import pytest

from repro.fleet import backend as fleet_backend


@pytest.fixture(params=["restricted", "array_api_strict"])
def backend_name(request) -> str:
    try:
        fleet_backend.get_namespace(request.param)
    except fleet_backend.BackendUnavailableError as exc:
        pytest.skip(str(exc))
    return request.param


@pytest.fixture
def xp(backend_name):
    return fleet_backend.get_namespace(backend_name)
