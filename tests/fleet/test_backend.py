"""Unit tests for the array-namespace shim (`repro.fleet.backend`).

The scan primitives are checked against the NumPy idioms they replace
(``searchsorted``/``bincount``, ``minimum.accumulate``) with tie-heavy
inputs — their whole reason to exist is exact tie semantics.
"""

import numpy as np
import pytest

from repro.fleet import backend


def test_name_aliases_resolve():
    assert backend.get_namespace("numpy") is np
    assert backend.get_namespace("np") is np
    restricted = backend.get_namespace("restricted")
    assert backend.get_namespace("restricted") is restricted
    assert backend.namespace_name(np) == "numpy"
    assert backend.namespace_name(restricted) == "restricted"


def test_unknown_backend_is_value_error():
    with pytest.raises(ValueError, match="unknown backend"):
        backend.get_namespace("nonsense")


def test_strict_backend_resolves_or_raises_with_hint():
    try:
        import array_api_strict
    except ImportError:
        array_api_strict = None
    if array_api_strict is None:
        with pytest.raises(backend.BackendUnavailableError,
                           match="array-api-strict"):
            backend.get_namespace("strict")
        assert "array_api_strict" not in backend.available_backends()
    else:
        assert backend.get_namespace("strict") is array_api_strict
        assert backend.get_namespace("array-api-strict") \
            is array_api_strict
        assert "array_api_strict" in backend.available_backends()


def test_array_resolution_and_type_errors():
    assert backend.get_namespace(np.zeros(3)) is np
    with pytest.raises(TypeError):
        backend.get_namespace([1.0, 2.0])
    with pytest.raises(TypeError):
        backend.get_namespace(object())


def test_builtin_backends_always_available():
    names = backend.available_backends()
    assert "numpy" in names
    assert "restricted" in names


def test_restricted_proxy_blocks_numpy_isms():
    xp = backend.get_namespace("restricted")
    for name in ("searchsorted", "bincount", "clip", "flatnonzero",
                 "cumsum", "empty_like"):
        with pytest.raises(AttributeError, match="array-API subset"):
            getattr(xp, name)
    # ...while the allowlisted surface forwards straight to NumPy.
    assert xp.concat is np.concat
    assert xp.float64 is np.float64


@pytest.mark.parametrize("seed", range(4))
def test_count_primitives_match_searchsorted(backend_name, seed):
    """count_leq/count_lt == searchsorted side right/left, incl. ties."""
    xp = backend.get_namespace(backend_name)
    rng = np.random.default_rng(seed)
    for _ in range(15):
        # Quantised values force exact collisions between the two sides.
        values = np.round(
            rng.uniform(0, 20, size=int(rng.integers(0, 150))), 1)
        queries = np.round(
            rng.uniform(0, 20, size=int(rng.integers(1, 40))), 1)
        if rng.random() < 0.5 and values.size:
            n_ties = min(5, values.size, queries.size)
            queries[:n_ties] = values[:n_ties]  # guaranteed ties
        leq = backend.to_numpy(backend.count_leq(
            xp, xp.asarray(values), xp.asarray(queries)))
        lt = backend.to_numpy(backend.count_lt(
            xp, xp.asarray(values), xp.asarray(queries)))
        ordered = np.sort(values)
        np.testing.assert_array_equal(
            leq, np.searchsorted(ordered, queries, side="right"))
        np.testing.assert_array_equal(
            lt, np.searchsorted(ordered, queries, side="left"))


def test_count_primitives_empty_sides(xp):
    none = xp.asarray(np.empty(0))
    some = xp.asarray(np.array([1.0, 2.0]))
    assert backend.to_numpy(backend.count_leq(xp, some, none)).size == 0
    np.testing.assert_array_equal(
        backend.to_numpy(backend.count_leq(xp, none, some)), [0, 0])


def test_cumulative_minimum_matches_accumulate(xp):
    rng = np.random.default_rng(11)
    for size in (0, 1, 2, 3, 7, 64, 100, 257):
        x = np.round(rng.normal(size=size), 1)
        got = backend.to_numpy(
            backend.cumulative_minimum(xp, xp.asarray(x)))
        np.testing.assert_array_equal(got, np.minimum.accumulate(x)
                                      if size else x)


def test_host_round_trips(xp):
    x = np.arange(5, dtype=np.float32)
    arr = backend.as_namespace_array(x, xp)
    back = backend.to_numpy(arr)
    assert back.dtype == np.float32
    np.testing.assert_array_equal(back, x)
    # dtype canonicalisation on entry
    as64 = backend.as_namespace_array(x, xp, dtype=xp.float64)
    assert backend.to_numpy(as64).dtype == np.float64
    # an array already in the namespace at the right dtype is a no-op
    again = backend.as_namespace_array(arr, xp)
    assert again is arr
    assert backend.to_numpy(x) is x
    np.testing.assert_array_equal(
        backend.to_numpy(backend.to_device(x, xp)), x)
