"""Batched Erlang-loss drop resolution vs the scalar heap loop."""

import heapq

import numpy as np
import pytest
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.capacity.simulator import (
    CapacityConfig,
    CapacitySimulator,
    capacity_at_drop_target,
)
from repro.fleet.capacity import resolve_drops, resolve_drops_block
from repro.units import hours


def _reference_drops(arrivals, services, n_channels):
    """The CapacitySimulator heap loop, recording per-session status."""
    dropped = np.zeros(arrivals.size, dtype=bool)
    busy: list = []
    for i, (arrival, service) in enumerate(zip(arrivals.tolist(),
                                               services.tolist())):
        while busy and busy[0] <= arrival:
            heapq.heappop(busy)
        if len(busy) >= n_channels:
            dropped[i] = True
            continue
        heapq.heappush(busy, arrival + service)
    return dropped


def _random_case(rng):
    m = int(rng.integers(1, 400))
    gaps = rng.exponential(rng.uniform(0.2, 3.0), size=m)
    arrivals = np.cumsum(gaps)
    if rng.random() < 0.3:
        # Exact ties: duplicated arrival instants and rounded times so
        # departures collide with arrivals.
        arrivals = np.sort(np.round(arrivals, 1))
    services = rng.uniform(0.5, 30.0, size=m)
    if rng.random() < 0.3:
        services = np.maximum(np.round(services, 1), 0.1)
    n_channels = int(rng.integers(1, 40))
    return arrivals, services, n_channels


@pytest.mark.parametrize("seed", range(12))
def test_resolver_matches_heap_reference(seed):
    rng = np.random.default_rng(seed)
    for _ in range(20):
        arrivals, services, n_channels = _random_case(rng)
        expected = _reference_drops(arrivals, services, n_channels)
        got = resolve_drops(arrivals, services, n_channels)
        np.testing.assert_array_equal(got, expected)


@pytest.mark.parametrize("seed", range(6))
def test_resolver_matches_with_tiny_blocks_and_budget(seed):
    """Small blocks exercise the carry/boundary bookkeeping; a sweep
    budget of 1-2 forces the scalar-tail fallback mid-stream."""
    rng = np.random.default_rng(100 + seed)
    for _ in range(10):
        arrivals, services, n_channels = _random_case(rng)
        expected = _reference_drops(arrivals, services, n_channels)
        block = int(rng.integers(3, 64))
        budget = int(rng.integers(1, 4))
        got = resolve_drops(arrivals, services, n_channels,
                            block_arrivals=block, max_sweeps=budget)
        np.testing.assert_array_equal(got, expected)


def test_scalar_tail_fallback_fires_and_matches_vectorised():
    """Regression for the budget path: when a block exhausts its sweep
    budget, ``_scalar_tail`` takes over mid-stream and the combined
    result must be identical to the unbudgeted vectorised resolver.

    The stream is built so the fallback fires with ``start > 0``: an
    idle prefix (drop-free blocks converge in one sweep even with
    ``max_sweeps=1``) followed by a saturated tail whose first drop
    candidate blows the budget."""
    import repro.fleet.capacity as fleet_capacity

    rng = np.random.default_rng(17)
    idle_arrivals = np.cumsum(rng.exponential(50.0, size=130))
    idle_services = rng.uniform(0.5, 2.0, size=130)
    burst_arrivals = idle_arrivals[-1] + np.cumsum(
        rng.exponential(0.05, size=300))
    burst_services = rng.uniform(10.0, 40.0, size=300)
    arrivals = np.concatenate([idle_arrivals, burst_arrivals])
    services = np.concatenate([idle_services, burst_services])
    n_channels = 4

    expected = _reference_drops(arrivals, services, n_channels)
    unbudgeted = resolve_drops(arrivals, services, n_channels)
    np.testing.assert_array_equal(unbudgeted, expected)

    starts = []
    original = fleet_capacity._scalar_tail

    def spy(arrivals, services, n_channels, dropped, start):
        starts.append(start)
        return original(arrivals, services, n_channels, dropped, start)

    fleet_capacity._scalar_tail = spy
    try:
        budgeted = resolve_drops(arrivals, services, n_channels,
                                 block_arrivals=64, max_sweeps=1)
    finally:
        fleet_capacity._scalar_tail = original

    assert starts, "sweep budget of 1 must trigger the scalar tail"
    assert starts[0] > 0, "fallback should start past converged blocks"
    np.testing.assert_array_equal(budgeted, expected)


def test_scalar_tail_from_first_block():
    """Saturation from the very first arrival exercises the fallback's
    empty-heap seeding path (``start == 0``)."""
    rng = np.random.default_rng(23)
    arrivals = np.cumsum(rng.exponential(0.05, size=400))
    services = rng.uniform(10.0, 40.0, size=400)
    expected = _reference_drops(arrivals, services, 3)
    budgeted = resolve_drops(arrivals, services, 3,
                             block_arrivals=64, max_sweeps=1)
    np.testing.assert_array_equal(budgeted, expected)
    np.testing.assert_array_equal(resolve_drops(arrivals, services, 3),
                                  expected)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.floats(min_value=0.0, max_value=100.0),
                          st.floats(min_value=0.01, max_value=50.0)),
                min_size=1, max_size=80),
       st.integers(min_value=1, max_value=5))
def test_resolver_matches_on_arbitrary_floats(pairs, n_channels):
    arrivals = np.sort(np.array([a for a, _ in pairs]))
    services = np.array([s for _, s in pairs])
    expected = _reference_drops(arrivals, services, n_channels)
    got = resolve_drops(arrivals, services, n_channels,
                        block_arrivals=7)
    np.testing.assert_array_equal(got, expected)


@settings(max_examples=80, deadline=None)
@given(pairs=st.lists(st.tuples(st.integers(0, 40), st.integers(1, 60)),
                      min_size=1, max_size=60),
       n_channels=st.integers(min_value=1, max_value=4),
       cut_frac=st.floats(min_value=0.0, max_value=1.0))
# Departure exactly on the block-boundary arrival: session 0 departs at
# 0 + 2.0 == arrival of the first session of block 2 (cut at index 2).
@example(pairs=[(0, 4), (4, 2), (0, 2)], n_channels=1, cut_frac=0.67)
# Cut *between* two equal arrival instants, tying with a departure.
@example(pairs=[(0, 4), (4, 2), (0, 4), (0, 2)], n_channels=1,
         cut_frac=0.5)
def test_cut_point_parity_with_whole_stream(pairs, n_channels,
                                            cut_frac):
    """Property (satellite of the backend port): splitting a stream
    into two blocks at *any* cut point and threading the DropCarry
    yields the same mask as resolve_drops on the whole stream.  Times
    are half-integers, so arrival/departure/boundary ties are exact."""
    gaps = np.array([g for g, _ in pairs], dtype=float) * 0.5
    services = np.array([s for _, s in pairs], dtype=float) * 0.5
    arrivals = np.cumsum(gaps)
    expected = resolve_drops(arrivals, services, n_channels)

    cut = int(round(cut_frac * arrivals.size))
    head_mask, carry = resolve_drops_block(arrivals[:cut],
                                           services[:cut], n_channels)
    tail_mask, _ = resolve_drops_block(arrivals[cut:], services[cut:],
                                       n_channels, carry)
    np.testing.assert_array_equal(
        np.concatenate([head_mask, tail_mask]), expected)


def test_empty_stream():
    empty = np.empty(0)
    assert resolve_drops(empty, empty, 5).size == 0


def test_simulator_fleet_path_identical_to_slow(monkeypatch):
    """CapacitySimulator.run keeps the RNG stream; only the drop
    resolution changes — the CapacityResult must be identical."""
    rng = np.random.default_rng(3)
    pool = rng.lognormal(np.log(14.0), 0.5, size=300)
    simulator = CapacitySimulator(
        pool, CapacityConfig(horizon=hours(0.25), seed=9))
    for n_users in (150, 300, 420, 700):
        monkeypatch.delenv("REPRO_FLEET_SLOW", raising=False)
        fast = simulator.run(n_users)
        monkeypatch.setenv("REPRO_FLEET_SLOW", "1")
        slow = simulator.run(n_users)
        assert fast == slow


def test_capacity_search_identical_to_slow(monkeypatch):
    rng = np.random.default_rng(4)
    pool = rng.lognormal(np.log(14.0), 0.5, size=200)
    simulator = CapacitySimulator(
        pool, CapacityConfig(n_channels=50, horizon=hours(0.1), seed=2))
    monkeypatch.delenv("REPRO_FLEET_SLOW", raising=False)
    fast = capacity_at_drop_target(simulator, 0.02, seed=2)
    monkeypatch.setenv("REPRO_FLEET_SLOW", "1")
    slow = capacity_at_drop_target(simulator, 0.02, seed=2)
    assert fast == slow
