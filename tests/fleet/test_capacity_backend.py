"""Golden gate: the array-API drop-kernel port vs the NumPy reference.

Every assertion here is *element-identical* equality — the port swaps
``searchsorted``/``bincount``/``minimum.accumulate`` for merge-rank and
doubling-scan primitives that compute the same integers, so nothing is
allowed to drift, including on exact ties.  The file also pins the two
silent-wrongness inputs (unsorted arrivals, non-finite sessions) to
raising on every path.
"""

import numpy as np
import pytest

from repro.capacity.simulator import CapacityConfig, CapacitySimulator
from repro.fleet import backend
from repro.fleet.capacity import (DropCarry, resolve_drops,
                                  resolve_drops_block)
from repro.sim.kernel import SimulationError


def _chain(xp, arrivals, services, n_channels, cuts, max_sweeps=96):
    """Run a stream through consecutive port blocks; return the mask."""
    carry = None
    masks = []
    edges = [0] + list(cuts) + [arrivals.size]
    for lo, hi in zip(edges[:-1], edges[1:]):
        mask, carry = resolve_drops_block(
            backend.as_namespace_array(arrivals[lo:hi], xp),
            backend.as_namespace_array(services[lo:hi], xp),
            n_channels, carry, max_sweeps, xp=xp)
        masks.append(backend.to_numpy(mask))
    return np.concatenate(masks) if masks else np.zeros(0, bool), carry


def _random_case(rng):
    m = int(rng.integers(1, 400))
    arrivals = np.cumsum(rng.exponential(rng.uniform(0.2, 3.0), size=m))
    if rng.random() < 0.3:
        # Exact ties: rounded instants so departures collide with
        # arrivals and with each other.
        arrivals = np.sort(np.round(arrivals, 1))
    services = rng.uniform(0.5, 30.0, size=m)
    if rng.random() < 0.3:
        services = np.maximum(np.round(services, 1), 0.1)
    n_channels = int(rng.integers(1, 40))
    return arrivals, services, n_channels


@pytest.mark.parametrize("seed", range(8))
def test_fuzz_corpus_element_identical(backend_name, seed):
    """Chained port blocks == the whole-stream NumPy reference."""
    xp = backend.get_namespace(backend_name)
    rng = np.random.default_rng(1000 + seed)
    for _ in range(12):
        arrivals, services, n_channels = _random_case(rng)
        expected = resolve_drops(arrivals, services, n_channels)
        n_cuts = int(rng.integers(0, 4))
        cuts = sorted(rng.integers(0, arrivals.size + 1,
                                   size=n_cuts).tolist())
        got, carry = _chain(xp, arrivals, services, n_channels, cuts)
        np.testing.assert_array_equal(got, expected)
        # The carry matches the reference block path bit for bit.
        _, ref_carry = resolve_drops_block(arrivals, services,
                                           n_channels)
        np.testing.assert_array_equal(
            np.sort(backend.to_numpy(carry.busy)),
            np.sort(ref_carry.busy))
        assert carry.boundary == ref_carry.boundary


def test_fig11_sweep_element_identical(backend_name):
    """The fig11-shaped capacity sweep through the port, vs .run()."""
    rng = np.random.default_rng(7)
    pool = rng.lognormal(np.log(14.0), 0.5, size=400)
    simulator = CapacitySimulator(
        pool, CapacityConfig(n_channels=50, horizon=1800.0, seed=11))
    xp = backend.get_namespace(backend_name)
    for n_users in (60, 100, 140):
        arrivals, services = simulator.draw(
            n_users, np.random.default_rng(13))
        reference = resolve_drops(arrivals, services, 50)
        got, _ = _chain(xp, arrivals, services, 50,
                        cuts=range(1000, arrivals.size, 1000))
        np.testing.assert_array_equal(got, reference)


def test_unsorted_arrivals_raise_on_every_path(backend_name):
    """The ISSUE's verified input: [5, 0, 1] with one channel used to
    drop two sessions where the sorted stream drops none."""
    arrivals = np.array([5.0, 0.0, 1.0])
    services = np.ones(3)
    with pytest.raises(ValueError, match="non-decreasing"):
        resolve_drops(arrivals, services, 1)
    with pytest.raises(ValueError, match="non-decreasing"):
        resolve_drops_block(arrivals, services, 1)
    xp = backend.get_namespace(backend_name)
    with pytest.raises(ValueError, match="non-decreasing"):
        resolve_drops_block(xp.asarray(arrivals), xp.asarray(services),
                            1, xp=xp)
    # sanity: the sorted stream is accepted and drop-free
    assert not resolve_drops(np.sort(arrivals), services, 1).any()


def test_nonfinite_sessions_raise_on_every_path(backend_name):
    """The ISSUE's second verified input: a NaN service used to be
    marked accepted while never occupying a channel."""
    arrivals = np.array([0.0, 1.0, 2.0])
    nan_services = np.array([1.0, np.nan, 1.0])
    inf_arrivals = np.array([0.0, np.inf, np.inf])
    xp = backend.get_namespace(backend_name)
    for bad_arr, bad_srv in ((arrivals, nan_services),
                             (inf_arrivals, np.ones(3))):
        with pytest.raises(SimulationError, match="finite"):
            resolve_drops(bad_arr, bad_srv, 2)
        with pytest.raises(SimulationError, match="finite"):
            resolve_drops_block(bad_arr, bad_srv, 2)
        with pytest.raises(SimulationError, match="finite"):
            resolve_drops_block(xp.asarray(bad_arr),
                                xp.asarray(bad_srv), 2, xp=xp)


def test_shape_mismatch_raises():
    with pytest.raises(ValueError, match="matching shapes"):
        resolve_drops(np.array([0.0, 1.0]), np.array([1.0]), 2)


def test_boundary_violation_raises(backend_name):
    """A block starting before the carried boundary breaks the
    one-stream contract and must refuse, on both paths."""
    first = np.array([0.0, 4.0])
    services = np.array([1.0, 1.0])
    _, carry = resolve_drops_block(first, services, 2)
    stale = np.array([2.0, 5.0])
    with pytest.raises(ValueError, match="boundary"):
        resolve_drops_block(stale, services, 2, carry)
    xp = backend.get_namespace(backend_name)
    with pytest.raises(ValueError, match="boundary"):
        resolve_drops_block(xp.asarray(stale), xp.asarray(services), 2,
                            carry, xp=xp)


def test_float32_carry_dtype_stable(backend_name):
    """Satellite bugfix: float32 blocks used to come back with a
    float64 frontier after one block (the empty float64 carry promoted
    the concatenate) — the carry dtype is now the block dtype on both
    paths, every block."""
    rng = np.random.default_rng(5)
    arrivals = np.cumsum(rng.exponential(1.0, size=64)).astype(np.float32)
    services = rng.uniform(0.5, 30.0, size=64).astype(np.float32)
    xp = backend.get_namespace(backend_name)
    for use_xp in (False, True):
        carry = None
        for lo in range(0, 64, 16):
            blk = slice(lo, lo + 16)
            if use_xp:
                mask, carry = resolve_drops_block(
                    backend.as_namespace_array(arrivals[blk], xp),
                    backend.as_namespace_array(services[blk], xp),
                    4, carry, xp=xp)
            else:
                mask, carry = resolve_drops_block(
                    arrivals[blk], services[blk], 4, carry)
            assert backend.to_numpy(carry.busy).dtype == np.float32


def test_empty_block_passes_carry_through(xp):
    first = np.array([0.0, 1.0])
    _, carry = resolve_drops_block(
        backend.as_namespace_array(first, xp),
        backend.as_namespace_array(np.array([5.0, 5.0]), xp), 4,
        xp=xp)
    empty = xp.asarray(np.empty(0))
    mask, same = resolve_drops_block(empty, empty, 4, carry, xp=xp)
    assert backend.to_numpy(mask).size == 0
    assert same is carry


def test_budget_fallback_matches_reference(backend_name):
    """Exhausting the port's sweep budget must hand over to the scalar
    replay and still match the unbudgeted reference exactly."""
    rng = np.random.default_rng(17)
    arrivals = np.cumsum(rng.exponential(0.05, size=300))
    services = rng.uniform(10.0, 40.0, size=300)
    expected = resolve_drops(arrivals, services, 4)
    xp = backend.get_namespace(backend_name)
    got, _ = _chain(xp, arrivals, services, 4, cuts=[150],
                    max_sweeps=1)
    np.testing.assert_array_equal(got, expected)


def test_dispatcher_infers_namespace_from_arrays(backend_name):
    """Non-NumPy arrays route to the port without an explicit xp."""
    xp = backend.get_namespace(backend_name)
    if backend_name == "restricted":
        pytest.skip("restricted arrays are plain ndarrays; dispatch "
                    "by array type only applies to wrapper namespaces")
    arrivals = xp.asarray(np.array([0.0, 1.0, 2.0]))
    services = xp.asarray(np.ones(3))
    mask, carry = resolve_drops_block(arrivals, services, 2)
    np.testing.assert_array_equal(
        backend.to_numpy(mask),
        resolve_drops(np.array([0.0, 1.0, 2.0]), np.ones(3), 2))
