"""User interest profiles."""

import numpy as np
import pytest

from repro.traces.user_model import TOPICS, UserProfile, sample_user


def test_profile_requires_one_weight_per_topic():
    with pytest.raises(ValueError):
        UserProfile(user_id=0, interests=(0.5,), dwell_offset=0.0)


def test_weights_must_be_unit_interval():
    bad = tuple([1.5] + [0.5] * (len(TOPICS) - 1))
    with pytest.raises(ValueError):
        UserProfile(user_id=0, interests=bad, dwell_offset=0.0)


def test_interest_lookup():
    interests = tuple(i / 10 for i in range(len(TOPICS)))
    profile = UserProfile(user_id=0, interests=interests, dwell_offset=0.0)
    assert profile.interest_in(TOPICS[3]) == 0.3


def test_bounce_probability_decreases_with_interest():
    lo = UserProfile(0, tuple([0.0] * len(TOPICS)), 0.0)
    hi = UserProfile(0, tuple([1.0] * len(TOPICS)), 0.0)
    assert lo.bounce_probability(TOPICS[0]) > hi.bounce_probability(TOPICS[0])


def test_bounce_probability_clipped():
    hi = UserProfile(0, tuple([1.0] * len(TOPICS)), 0.0)
    assert hi.bounce_probability(TOPICS[0]) >= 0.05


def test_sample_user_is_seeded():
    a = sample_user(1, np.random.default_rng(42))
    b = sample_user(1, np.random.default_rng(42))
    assert a == b


def test_sampled_users_differ():
    rng = np.random.default_rng(42)
    a = sample_user(1, rng)
    b = sample_user(2, rng)
    assert a.interests != b.interests
