"""Trace generator: determinism, CDF calibration, correlation bounds."""

import numpy as np
import pytest

from repro.analysis.stats import pearson
from repro.traces.generator import (
    TraceConfig,
    _triangle,
    build_catalog,
    generate_trace,
    readability_score,
)
from repro.traces.records import FEATURE_NAMES


def test_generation_is_deterministic(small_trace_config):
    a = generate_trace(small_trace_config)
    b = generate_trace(small_trace_config)
    assert len(a) == len(b)
    assert all(x == y for x, y in zip(a, b))


def test_record_count_tracks_config(small_trace_config):
    dataset = generate_trace(small_trace_config)
    expected = (small_trace_config.n_users
                * small_trace_config.mean_views_per_user)
    assert expected * 0.7 <= len(dataset) <= expected * 1.3


def test_every_user_present(small_trace_config, small_trace):
    users = {record.user_id for record in small_trace}
    assert users == set(range(small_trace_config.n_users))


def test_sessions_have_contiguous_sequences(small_trace):
    for session in small_trace.sessions():
        sequences = [r.sequence for r in session.records]
        # filtering can remove records, but order must stay increasing
        assert sequences == sorted(sequences)


def test_catalog_matches_trace_pages(small_trace_config, small_trace):
    catalog_names = {c.name for c in build_catalog(small_trace_config)}
    assert {r.page_name for r in small_trace} <= catalog_names


def test_catalog_has_requested_mix(small_trace_config):
    catalog = build_catalog(small_trace_config)
    assert len(catalog) == small_trace_config.catalog_size
    mobile = sum(1 for c in catalog if c.mobile)
    assert mobile == round(small_trace_config.mobile_fraction
                           * len(catalog))


def test_default_cdf_matches_paper_anchors(default_trace):
    """Fig. 7 calibration: 30 % < 2 s, 53 % < 9 s, 68 % < 20 s (±3 pp)."""
    times = default_trace.reading_times()
    assert np.mean(times < 2.0) == pytest.approx(0.30, abs=0.03)
    assert np.mean(times < 9.0) == pytest.approx(0.53, abs=0.03)
    assert np.mean(times < 20.0) == pytest.approx(0.68, abs=0.03)


def test_default_correlations_near_zero(default_trace):
    """Table 4: no notable linear correlation with any feature."""
    x, y = default_trace.to_arrays()
    for index in range(len(FEATURE_NAMES)):
        assert abs(pearson(x[:, index], y)) < 0.12


def test_reading_times_positive(small_trace):
    assert (small_trace.reading_times() > 0).all()


def test_features_physically_sensible(small_trace):
    for record in small_trace:
        assert record.transmission_time > 2.0  # includes promotion
        assert record.page_size_kb > 0
        assert record.download_objects >= 1
        assert record.figure_size_kb >= 0
        assert record.page_width in (320, 1024)


def test_triangle_shape():
    assert _triangle(5.0, 0.0, 5.0, 10.0) == 1.0
    assert _triangle(0.0, 0.0, 5.0, 10.0) == 0.0
    assert _triangle(10.0, 0.0, 5.0, 10.0) == 0.0
    assert _triangle(2.5, 0.0, 5.0, 10.0) == pytest.approx(0.5)
    assert _triangle(-1.0, 0.0, 5.0, 10.0) == 0.0


def test_readability_score_bounded():
    for size in (1, 50, 200, 500):
        for height in (300, 2000, 5000, 10_000):
            for figures in (0, 7, 25, 60):
                score = readability_score(size, height, figures)
                assert 0.0 <= score <= 1.0


def test_config_validation():
    with pytest.raises(ValueError):
        TraceConfig(n_users=0)
    with pytest.raises(ValueError):
        TraceConfig(catalog_size=0)
