"""Trace records, dataset operations, CSV round trip."""

import numpy as np
import pytest

from repro.traces.records import (
    FEATURE_NAMES,
    BrowsingRecord,
    TraceDataset,
)


def make_record(reading=5.0, user=0, session=1, seq=0):
    return BrowsingRecord(
        user_id=user, session_id=session, sequence=seq,
        page_name="p", mobile=True, reading_time=reading,
        transmission_time=4.0, page_size_kb=30.0, download_objects=8,
        download_js_files=1, download_figures=5, figure_size_kb=40.0,
        js_running_time=0.5, second_urls=12, page_height=1500,
        page_width=320)


def test_feature_vector_order_matches_schema():
    record = make_record()
    vector = record.feature_vector()
    assert len(vector) == len(FEATURE_NAMES) == 10
    assert vector[0] == record.transmission_time
    assert vector[-1] == record.page_width


def test_filter_reading_time_applies_ten_minute_discard():
    dataset = TraceDataset([make_record(5.0), make_record(700.0)])
    kept = dataset.filter_reading_time()
    assert len(kept) == 1
    assert kept.records[0].reading_time == 5.0


def test_exclude_quick_bounces():
    dataset = TraceDataset([make_record(0.5), make_record(1.9),
                            make_record(2.1)])
    kept = dataset.exclude_quick_bounces(2.0)
    assert [r.reading_time for r in kept] == [2.1]


def test_sessions_grouping_preserves_order():
    records = [make_record(seq=0, session=1), make_record(seq=1, session=1),
               make_record(seq=0, session=2, user=3)]
    sessions = TraceDataset(records).sessions()
    assert len(sessions) == 2
    assert [r.sequence for r in sessions[0].records] == [0, 1]
    assert sessions[1].user_id == 3


def test_to_arrays_shapes():
    dataset = TraceDataset([make_record(), make_record(8.0)])
    x, y = dataset.to_arrays()
    assert x.shape == (2, 10)
    assert np.allclose(y, [5.0, 8.0])


def test_to_arrays_empty_rejected():
    with pytest.raises(ValueError):
        TraceDataset([]).to_arrays()


def test_csv_roundtrip(tmp_path):
    dataset = TraceDataset([make_record(3.3), make_record(44.0, user=2)])
    path = tmp_path / "trace.csv"
    dataset.save_csv(str(path))
    restored = TraceDataset.load_csv(str(path))
    assert len(restored) == 2
    for original, loaded in zip(dataset, restored):
        assert loaded == original
