"""MicroBatcher semantics: coalescing, errors, drain, inline mode."""

import threading
import time

import pytest

from repro.serve.batcher import BatcherClosed, MicroBatcher


def _echo_batch(items):
    return [f"answer:{item}" for item in items]


def test_window_zero_runs_inline():
    rounds = []
    batcher = MicroBatcher(_echo_batch, window=0.0,
                           on_round=lambda n, c: rounds.append((n, c)))
    assert batcher.submit("a", "a") == "answer:a"
    assert rounds == [(1, 0)]
    batcher.close()


def test_concurrent_submissions_batch_together():
    rounds = []
    barrier = threading.Barrier(4)

    def compute(items):
        return _echo_batch(items)

    batcher = MicroBatcher(compute, window=0.2,
                           on_round=lambda n, c: rounds.append((n, c)))
    results = {}

    def submit(key):
        barrier.wait()
        results[key] = batcher.submit(key, key)

    threads = [threading.Thread(target=submit, args=(f"k{i}",))
               for i in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    batcher.close()
    assert results == {f"k{i}": f"answer:k{i}" for i in range(4)}
    # All four distinct keys shared rounds; none was computed twice.
    assert sum(n for n, _ in rounds) == 4
    assert len(rounds) < 4


def test_duplicate_keys_coalesce_to_one_computation():
    computed = []

    def compute(items):
        computed.extend(items)
        return _echo_batch(items)

    batcher = MicroBatcher(compute, window=0.15)
    barrier = threading.Barrier(6)
    results = []

    def submit():
        barrier.wait()
        results.append(batcher.submit("same", "same"))

    threads = [threading.Thread(target=submit) for _ in range(6)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    batcher.close()
    assert results == ["answer:same"] * 6
    # One item key -> one compute entry no matter how many waiters.
    assert computed.count("same") <= 2  # racers may land in 2 rounds


def test_max_batch_triggers_early_round():
    started = time.perf_counter()
    batcher = MicroBatcher(_echo_batch, window=30.0, max_batch=2)
    results = []
    threads = [threading.Thread(
        target=lambda k: results.append(batcher.submit(k, k)),
        args=(f"k{i}",)) for i in range(2)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    batcher.close()
    assert time.perf_counter() - started < 10.0
    assert sorted(results) == ["answer:k0", "answer:k1"]


def test_compute_error_reaches_every_waiter():
    def compute(items):
        raise RuntimeError("fleet exploded")

    batcher = MicroBatcher(compute, window=0.05)
    caught = []

    def submit(key):
        try:
            batcher.submit(key, key)
        except RuntimeError as exc:
            caught.append(str(exc))

    threads = [threading.Thread(target=submit, args=(f"k{i}",))
               for i in range(3)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    batcher.close()
    assert caught == ["fleet exploded"] * 3


def test_wrong_result_length_is_an_error():
    batcher = MicroBatcher(lambda items: [], window=0.0)
    with pytest.raises(RuntimeError):
        batcher.submit("a", "a")
    batcher.close()


def test_closed_batcher_rejects_submissions():
    batcher = MicroBatcher(_echo_batch, window=0.0)
    batcher.close()
    with pytest.raises(BatcherClosed):
        batcher.submit("a", "a")


def test_close_drains_in_flight_round():
    release = threading.Event()

    def compute(items):
        release.wait(timeout=5.0)
        return _echo_batch(items)

    batcher = MicroBatcher(compute, window=0.05)
    results = []
    thread = threading.Thread(
        target=lambda: results.append(batcher.submit("a", "a")))
    thread.start()
    time.sleep(0.2)  # let the round start computing
    closer = threading.Thread(target=batcher.close)
    closer.start()
    release.set()
    thread.join(timeout=5.0)
    closer.join(timeout=5.0)
    assert results == ["answer:a"]
