"""Golden gates: a served prediction is byte-identical to the offline
evaluator and the direct capacity simulator, batched or not."""

import json
import threading

import numpy as np
import pytest

from repro.ablation.engine import spec_seed
from repro.ablation.objective import evaluate_setup, variant_hold_pool
from repro.capacity.simulator import CapacityConfig, CapacitySimulator
from repro.serve.schema import PredictRequest
from repro.serve.service import (WhatIfService, predict_eval_seed,
                                 predict_run_id)
from repro.stream.sweep import sweep_point

#: Small but non-trivial: a real congested cell, two default pages.
PAYLOAD = {"n_users": 40, "n_channels": 30, "horizon": 300.0,
           "mean_interval": 8.0, "profile": "congested",
           "setup": {"predictor": "gbrt-like"}}


@pytest.fixture(scope="module")
def request_obj() -> PredictRequest:
    return PredictRequest.from_payload(PAYLOAD)


@pytest.fixture(scope="module")
def response(request_obj):
    service = WhatIfService(batch_window=0.0)
    try:
        return service.predict(request_obj)
    finally:
        service.close()


def test_run_id_and_seed_are_deterministic(request_obj):
    twin = PredictRequest.from_payload(dict(PAYLOAD))
    assert predict_run_id(twin) == predict_run_id(request_obj)
    assert predict_eval_seed(twin) == \
        spec_seed(predict_run_id(request_obj))


def test_metrics_match_offline_evaluator_exactly(request_obj, response):
    """The served metrics dict IS evaluate_setup's — same keys, same
    bytes — for the population-bearing scenario the request denotes."""
    golden = evaluate_setup(request_obj.setup(),
                            request_obj.scenario(with_population=True),
                            predict_eval_seed(request_obj))
    assert response["metrics"] == golden


def test_capacity_matches_direct_simulator(request_obj, response):
    """The capacity section reproduces a hand-built CapacitySimulator
    run seeded by the evaluator's recipe, byte for byte."""
    eval_seed = predict_eval_seed(request_obj)
    pool = variant_hold_pool(request_obj.setup(),
                             request_obj.scenario())
    config = CapacityConfig(n_channels=PAYLOAD["n_channels"],
                            mean_interval=PAYLOAD["mean_interval"],
                            horizon=PAYLOAD["horizon"],
                            seed=eval_seed)
    simulator = CapacitySimulator(pool, config)
    capacity_seed = int(np.random.SeedSequence(
        eval_seed, spawn_key=(1,)).generate_state(1)[0])

    direct = simulator.run(PAYLOAD["n_users"], seed=capacity_seed)
    assert response["capacity"]["sessions"] == direct.sessions
    assert response["capacity"]["dropped"] == direct.dropped
    assert response["capacity"]["drop_probability"] == \
        direct.drop_probability
    assert response["metrics"]["drop_probability"] == \
        direct.drop_probability

    point = sweep_point(simulator, PAYLOAD["n_users"], capacity_seed,
                        stream=False)
    assert response["capacity"] == point.to_dict()


def test_response_is_json_serialisable(response):
    encoded = json.dumps(response, sort_keys=True)
    assert json.loads(encoded) == json.loads(encoded)


def test_batched_equals_unbatched_byte_for_byte(response):
    """Concurrent requests through a windowed batcher answer with the
    same bytes the inline path produced."""
    payloads = [
        dict(PAYLOAD),
        {"n_users": 25, "n_channels": 30, "horizon": 300.0,
         "mean_interval": 8.0, "profile": "congested"},
        dict(PAYLOAD),  # duplicate: exercises coalescing
    ]
    requests = [PredictRequest.from_payload(p) for p in payloads]

    service = WhatIfService(batch_window=0.2)
    barrier = threading.Barrier(len(requests))
    batched = [None] * len(requests)

    def submit(index):
        barrier.wait()
        batched[index] = service.predict(requests[index])

    threads = [threading.Thread(target=submit, args=(index,))
               for index in range(len(requests))]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    service.close()

    inline = WhatIfService(batch_window=0.0)
    try:
        for request, got in zip(requests, batched):
            want = inline.predict(request)
            assert json.dumps(got, sort_keys=True) == \
                json.dumps(want, sort_keys=True)
    finally:
        inline.close()
    assert json.dumps(batched[0], sort_keys=True) == \
        json.dumps(response, sort_keys=True)


def test_distinct_scenarios_answer_independently():
    """Scenario grouping must not leak one profile's metrics into
    another's response."""
    service = WhatIfService(batch_window=0.2)
    a = PredictRequest.from_payload(
        {"n_users": 20, "n_channels": 25, "horizon": 200.0,
         "profile": "ideal"})
    b = PredictRequest.from_payload(
        {"n_users": 20, "n_channels": 25, "horizon": 200.0,
         "profile": "cell_edge"})
    barrier = threading.Barrier(2)
    out = {}

    def submit(tag, request):
        barrier.wait()
        out[tag] = service.predict(request)

    threads = [threading.Thread(target=submit, args=args)
               for args in (("a", a), ("b", b))]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    service.close()

    assert out["a"]["run_id"] != out["b"]["run_id"]
    for tag, request in (("a", a), ("b", b)):
        golden = evaluate_setup(request.setup(),
                                request.scenario(with_population=True),
                                predict_eval_seed(request))
        assert out[tag]["metrics"] == golden
