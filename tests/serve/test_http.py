"""End-to-end over a real socket: routing, errors, jobs, metrics."""

import json
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.ablation.objective import variant_hold_pool
from repro.capacity.simulator import CapacityConfig, CapacitySimulator
from repro.serve.http import ServeApp, ServerThread
from repro.serve.jobs import JobManager
from repro.serve.schema import PredictRequest
from repro.serve.service import WhatIfService, predict_eval_seed

PREDICT = {"n_users": 30, "n_channels": 20, "horizon": 200.0,
           "mean_interval": 6.0}
SWEEP = {"users": [5, 9], "n_channels": 8, "horizon": 50.0,
         "mean_interval": 2.0, "pool_size": 16}


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    service = WhatIfService(batch_window=0.002)
    service.warmup()
    jobs = JobManager(tmp_path_factory.mktemp("jobs"), workers=1)
    thread = ServerThread(ServeApp(service, jobs)).start()
    yield thread
    thread.stop()


def _request(url, method="GET", payload=None):
    data = None if payload is None else json.dumps(payload).encode()
    request = urllib.request.Request(url, data=data, method=method)
    if data is not None:
        request.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(request, timeout=120) as reply:
            return reply.status, json.loads(reply.read()), dict(
                reply.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), dict(exc.headers)


def test_health(server):
    status, body, _ = _request(server.url + "/health")
    assert status == 200
    assert body["status"] == "ok"
    assert body["warm"] is True
    assert body["jobs_enabled"] is True


def test_predict_matches_direct_capacity_run(server):
    """The bytes on the wire equal a hand-built simulator run."""
    status, body, _ = _request(server.url + "/predict", "POST", PREDICT)
    assert status == 200

    request = PredictRequest.from_payload(PREDICT)
    eval_seed = predict_eval_seed(request)
    assert body["eval_seed"] == eval_seed
    pool = variant_hold_pool(request.setup(), request.scenario())
    simulator = CapacitySimulator(
        pool, CapacityConfig(n_channels=PREDICT["n_channels"],
                             mean_interval=PREDICT["mean_interval"],
                             horizon=PREDICT["horizon"],
                             seed=eval_seed))
    capacity_seed = int(np.random.SeedSequence(
        eval_seed, spawn_key=(1,)).generate_state(1)[0])
    direct = simulator.run(PREDICT["n_users"], seed=capacity_seed)
    assert body["capacity"]["sessions"] == direct.sessions
    assert body["capacity"]["dropped"] == direct.dropped
    assert body["metrics"]["drop_probability"] == \
        direct.drop_probability


def test_predict_is_idempotent_on_the_wire(server):
    one = _request(server.url + "/predict", "POST", PREDICT)
    two = _request(server.url + "/predict", "POST", PREDICT)
    assert one == two


def test_predict_validation_error_is_400(server):
    status, body, _ = _request(server.url + "/predict", "POST",
                               {"n_users": 0})
    assert status == 400
    assert body["error"]["field"] == "n_users"


def test_malformed_json_body_is_400(server):
    request = urllib.request.Request(
        server.url + "/predict", data=b"{nope", method="POST")
    with pytest.raises(urllib.error.HTTPError) as caught:
        urllib.request.urlopen(request, timeout=30)
    assert caught.value.code == 400
    assert json.loads(caught.value.read())["error"]["field"] == "body"


def test_unknown_route_is_404(server):
    status, body, _ = _request(server.url + "/nope")
    assert status == 404


def test_wrong_method_is_405_with_allow(server):
    status, _, headers = _request(server.url + "/predict", "GET")
    assert status == 405
    assert headers.get("Allow") == "POST"


def test_unknown_job_is_404(server):
    status, body, _ = _request(server.url + "/jobs/feedfacefeedface")
    assert status == 404
    assert "unknown job" in body["error"]["message"]


def test_sweep_round_trip(server):
    status, body, _ = _request(server.url + "/sweep", "POST", SWEEP)
    assert status == 202
    job_id = body["job_id"]
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        status, body, _ = _request(server.url + f"/jobs/{job_id}")
        assert status == 200
        if body["state"] in ("complete", "failed"):
            break
        time.sleep(0.05)
    assert body["state"] == "complete"
    assert [p["n_users"] for p in body["result"]["points"]] == \
        SWEEP["users"]

    # Resubmitting answers from the finished work dir, still 202.
    status, again, _ = _request(server.url + "/sweep", "POST", SWEEP)
    assert status == 202
    assert again["job_id"] == job_id
    assert again["state"] == "complete"


def test_metrics_counts_the_traffic(server):
    _request(server.url + "/predict", "POST", PREDICT)
    status, body, _ = _request(server.url + "/metrics")
    assert status == 200
    assert body["requests"]["predict"] >= 1
    latency = body["latency_ms"]["predict"]
    assert latency["count"] >= 1
    assert latency["p50"] <= latency["p99"]
    assert body["caches"]["pages"]["hits"] >= 0
    assert body["serving"]["requests"] >= 1


def test_sweep_without_job_manager_is_503():
    service = WhatIfService(batch_window=0.0)
    app = ServeApp(service, jobs=None)
    status, body, _ = app.handle("POST", "/sweep", SWEEP)
    assert status == 503
    service.close()
