"""CLI error paths and the in-process serve-bench loop
(satellite #3)."""

import json

from repro.cli import main
from repro.serve import ServeApp, ServerThread, WhatIfService


def test_serve_rejects_bad_port(capsys):
    assert main(["serve", "--port", "99999"]) == 2
    err = capsys.readouterr().err
    assert "invalid port" in err
    assert len(err.strip().splitlines()) == 1


def test_serve_rejects_negative_window(capsys):
    assert main(["serve", "--batch-window", "-1"]) == 2
    assert "batch-window" in capsys.readouterr().err


def test_serve_rejects_bad_worker_counts(capsys):
    assert main(["serve", "--workers", "0"]) == 2
    assert "must be >= 1" in capsys.readouterr().err


def test_serve_bench_rejects_malformed_payload_json(capsys):
    assert main(["serve-bench", "--payload", "{not json"]) == 2
    err = capsys.readouterr().err
    assert "malformed --payload JSON" in err
    assert len(err.strip().splitlines()) == 1


def test_serve_bench_rejects_unknown_profile(capsys):
    assert main(["serve-bench", "--profile", "marsbase"]) == 2
    err = capsys.readouterr().err
    assert "unknown profile 'marsbase'" in err


def test_serve_bench_rejects_invalid_scenario_payload(capsys):
    assert main(["serve-bench", "--payload",
                 json.dumps({"n_users": 0})]) == 2
    assert "invalid bench payload" in capsys.readouterr().err


def test_serve_bench_rejects_nonpositive_clients(capsys):
    assert main(["serve-bench", "--clients", "0"]) == 2
    assert "must be >= 1" in capsys.readouterr().err


def test_serve_bench_dead_server_exits_1(capsys):
    assert main(["serve-bench", "--url", "http://127.0.0.1:1",
                 "--clients", "1", "--requests", "1"]) == 1
    err = capsys.readouterr().err
    assert "cannot reach" in err
    assert len(err.strip().splitlines()) == 1


def test_serve_bench_against_live_server(tmp_path, capsys):
    """The happy path end to end: spin a server in-process, bench it,
    write the report row."""
    service = WhatIfService(batch_window=0.002)
    service.warmup()
    thread = ServerThread(ServeApp(service)).start()
    out_path = tmp_path / "bench.json"
    try:
        assert main(["serve-bench", "--url", thread.url,
                     "--clients", "3", "--requests", "2",
                     "--payload",
                     json.dumps({"n_users": 20, "n_channels": 15,
                                 "horizon": 120.0}),
                     "--out", str(out_path)]) == 0
    finally:
        thread.stop()
    out = capsys.readouterr().out
    assert "throughput" in out
    row = json.loads(out_path.read_text())
    assert row["requests"] == 6
    assert row["latency_ms"]["p50"] <= row["latency_ms"]["p99"]
