"""Request validation: every bad field answers with a clear 400 body."""

import pytest

from repro.serve.schema import (PredictRequest, SweepRequest,
                                ValidationError, known_page_names)


def _error_for(payload) -> ValidationError:
    with pytest.raises(ValidationError) as caught:
        PredictRequest.from_payload(payload)
    return caught.value


class TestPredictRequest:
    def test_minimal_payload_fills_defaults(self):
        request = PredictRequest.from_payload({"n_users": 300})
        assert request.n_users == 300
        assert request.profile == "ideal"
        assert request.n_channels == 200
        assert request.setup_overrides == ()

    def test_payload_must_be_mapping(self):
        error = _error_for([1, 2, 3])
        assert error.field == "body"

    def test_n_users_is_required(self):
        error = _error_for({})
        assert error.field == "n_users"
        assert "required" in error.message

    def test_n_users_rejects_bool_and_zero(self):
        assert _error_for({"n_users": True}).field == "n_users"
        assert _error_for({"n_users": 0}).field == "n_users"
        assert _error_for({"n_users": "many"}).field == "n_users"

    def test_unknown_top_level_field_rejected(self):
        error = _error_for({"n_users": 10, "n_chanels": 8})
        assert error.field == "n_chanels"
        assert "unknown field" in error.message

    def test_unknown_profile_rejected(self):
        error = _error_for({"n_users": 10, "profile": "marsbase"})
        assert error.field == "profile"
        assert "marsbase" in error.message

    def test_unknown_page_rejected(self):
        error = _error_for({"n_users": 10, "pages": ["not-a-page"]})
        assert error.field == "pages"
        assert "not-a-page" in error.message

    def test_known_page_accepted(self):
        name = sorted(known_page_names())[0]
        request = PredictRequest.from_payload(
            {"n_users": 10, "pages": [name]})
        assert request.pages == (name,)

    def test_empty_reading_times_rejected(self):
        error = _error_for({"n_users": 10, "reading_times": []})
        assert error.field == "reading_times"

    def test_negative_horizon_rejected(self):
        error = _error_for({"n_users": 10, "horizon": -3.0})
        assert error.field == "horizon"

    def test_unknown_setup_override_rejected(self):
        error = _error_for({"n_users": 10,
                            "setup": {"warp_drive": True}})
        assert error.field == "setup"
        assert "warp_drive" in error.message

    def test_setup_override_round_trips(self):
        request = PredictRequest.from_payload(
            {"n_users": 10, "setup": {"predictor": "gbrt-like",
                                      "t1": 3.0}})
        setup = request.setup()
        assert setup.predictor == "gbrt-like"
        assert setup.t1 == 3.0

    def test_error_body_shape(self):
        body = _error_for({}).to_dict()
        assert body == {"field": "n_users", "message": body["message"]}

    def test_canonical_is_stable_and_order_free(self):
        one = PredictRequest.from_payload(
            {"n_users": 10, "setup": {"t1": 3.0, "t2": 12.0}})
        two = PredictRequest.from_payload(
            {"setup": {"t2": 12.0, "t1": 3.0}, "n_users": 10})
        assert one.canonical() == two.canonical()

    def test_scenario_key_ignores_population_fields(self):
        one = PredictRequest.from_payload({"n_users": 10})
        two = PredictRequest.from_payload({"n_users": 99,
                                           "n_channels": 7})
        assert one.scenario_key() == two.scenario_key()

    def test_population_scenario_carries_spec(self):
        request = PredictRequest.from_payload(
            {"n_users": 12, "n_channels": 9, "horizon": 120.0,
             "mean_interval": 4.0})
        scenario = request.scenario(with_population=True)
        assert scenario.population.n_users == 12
        assert scenario.population.n_channels == 9
        assert request.scenario().population is None


class TestSweepRequest:
    def test_users_required_and_positive(self):
        with pytest.raises(ValidationError) as caught:
            SweepRequest.from_payload({})
        assert caught.value.field == "users"
        with pytest.raises(ValidationError):
            SweepRequest.from_payload({"users": [10, 0]})

    def test_unknown_field_rejected(self):
        with pytest.raises(ValidationError) as caught:
            SweepRequest.from_payload({"users": [5], "bogus": 1})
        assert caught.value.field == "bogus"

    def test_spec_carries_fingerprint_and_is_deterministic(self):
        payload = {"users": [5, 10], "n_channels": 8,
                   "horizon": 60.0, "pool_size": 32}
        one = SweepRequest.from_payload(payload).spec()
        two = SweepRequest.from_payload(payload).spec()
        assert one["fingerprint"] == two["fingerprint"]

    def test_spec_fingerprint_tracks_inputs(self):
        base = SweepRequest.from_payload({"users": [5]}).spec()
        other = SweepRequest.from_payload({"users": [6]}).spec()
        assert base["fingerprint"] != other["fingerprint"]
