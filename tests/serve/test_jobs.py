"""JobManager: idempotent submission, backpressure, resumability."""

import time

import pytest

from repro.serve.jobs import JobManager, JobQueueFull, UnknownJob
from repro.serve.schema import SweepRequest

#: Small enough to finish in well under a second per point.
SWEEP = {"users": [6, 12], "n_channels": 10, "horizon": 60.0,
         "mean_interval": 2.0, "pool_size": 24}


def _wait_state(manager, job_id, want, timeout=30.0) -> dict:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status = manager.status(job_id)
        if status["state"] in (want, "failed"):
            return status
        time.sleep(0.05)
    raise AssertionError(
        f"job {job_id} never reached {want}: {manager.status(job_id)}")


def test_submit_runs_to_completion(tmp_path):
    manager = JobManager(tmp_path / "jobs", workers=1)
    try:
        request = SweepRequest.from_payload(SWEEP)
        submitted = manager.submit(request)
        assert submitted["job_id"] == \
            request.spec()["fingerprint"][:16]
        assert submitted["request"] == request.to_dict()

        status = _wait_state(manager, submitted["job_id"], "complete")
        assert status["state"] == "complete"
        points = status["result"]["points"]
        assert [p["n_users"] for p in points] == SWEEP["users"]
        assert status["progress"]["points_complete"] == 2
    finally:
        manager.shutdown()


def test_resubmit_is_idempotent_and_complete_skips_queue(tmp_path):
    manager = JobManager(tmp_path / "jobs", workers=1)
    try:
        request = SweepRequest.from_payload(SWEEP)
        first = manager.submit(request)
        _wait_state(manager, first["job_id"], "complete")
        again = manager.submit(request)
        assert again["job_id"] == first["job_id"]
        assert again["state"] == "complete"
        assert again["result"]["points"][0]["drop_probability"] == \
            manager.status(first["job_id"])["result"]["points"][0][
                "drop_probability"]
    finally:
        manager.shutdown()


def test_unknown_job_raises(tmp_path):
    manager = JobManager(tmp_path / "jobs", workers=1)
    try:
        with pytest.raises(UnknownJob):
            manager.status("deadbeefdeadbeef")
    finally:
        manager.shutdown()


def test_full_queue_raises_job_queue_full(tmp_path):
    # Zero workers are forbidden; stop the pool instead so nothing
    # drains the queue while we fill it.
    manager = JobManager(tmp_path / "jobs", max_pending=1, workers=1,
                         retry_after=7.0)
    manager.shutdown(wait=True, timeout=5.0)
    first = SweepRequest.from_payload(SWEEP)
    second = SweepRequest.from_payload(dict(SWEEP, users=[5]))
    third = SweepRequest.from_payload(dict(SWEEP, users=[4]))
    manager.submit(first)
    with pytest.raises(JobQueueFull) as caught:
        manager.submit(second)
        manager.submit(third)
    assert caught.value.retry_after == 7.0


def test_status_survives_manager_restart(tmp_path):
    """All state is on disk: a fresh manager over the same root answers
    for jobs a dead one ran — the crash-resume story."""
    root = tmp_path / "jobs"
    first = JobManager(root, workers=1)
    request = SweepRequest.from_payload(SWEEP)
    job_id = first.submit(request)["job_id"]
    _wait_state(first, job_id, "complete")
    first.shutdown()

    second = JobManager(root, workers=1)
    try:
        status = second.status(job_id)
        assert status["state"] == "complete"
        assert [p["n_users"] for p in status["result"]["points"]] == \
            SWEEP["users"]
        # Resubmitting against the new manager rejoins, no rerun needed.
        assert second.submit(request)["state"] == "complete"
    finally:
        second.shutdown()


def test_pending_state_before_any_execution(tmp_path):
    """A spec-only work dir reports pending — satellite #2: the status
    path must not raise on a job no worker has touched yet."""
    manager = JobManager(tmp_path / "jobs", workers=1)
    manager.shutdown(wait=True, timeout=5.0)  # nothing will run it
    submitted = manager.submit(SweepRequest.from_payload(SWEEP))
    assert submitted["state"] == "pending"
    status = manager.status(submitted["job_id"])
    assert status["state"] == "pending"
    assert status["progress"]["points_complete"] == 0
    assert "result" not in status
