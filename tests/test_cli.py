"""CLI: every subcommand end to end."""

import pytest

from repro.cli import main


def test_compare_subcommand(capsys):
    assert main(["compare", "--page", "cnn", "--reading", "5"]) == 0
    out = capsys.readouterr().out
    assert "energy-aware" in out
    assert "savings" in out


def test_experiments_subcommand_subset(capsys):
    assert main(["experiments", "fig03"]) == 0
    out = capsys.readouterr().out
    assert "break-even" in out


def test_experiments_unknown_id(capsys):
    assert main(["experiments", "fig99"]) == 2
    assert "unknown" in capsys.readouterr().err


def test_ablations_unknown_name(capsys):
    assert main(["ablations", "nonsense"]) == 2
    assert "unknown" in capsys.readouterr().err


def test_trace_train_predict_pipeline(tmp_path, capsys):
    trace_path = str(tmp_path / "trace.csv")
    model_path = str(tmp_path / "model.json")
    assert main(["trace", "--out", trace_path, "--users", "5",
                 "--views", "40", "--seed", "7"]) == 0
    assert main(["train", "--trace", trace_path, "--out",
                 model_path]) == 0
    assert main(["predict", "--model", model_path, "--trace",
                 trace_path, "--threshold", "9"]) == 0
    out = capsys.readouterr().out
    assert "threshold accuracy" in out


def test_train_without_interest_threshold(tmp_path, capsys):
    trace_path = str(tmp_path / "trace.csv")
    model_path = str(tmp_path / "model.json")
    main(["trace", "--out", trace_path, "--users", "4", "--views", "30"])
    assert main(["train", "--trace", trace_path, "--out", model_path,
                 "--no-interest-threshold"]) == 0
    assert "interest threshold: None" in capsys.readouterr().out


def test_missing_subcommand_rejected():
    with pytest.raises(SystemExit):
        main([])


def test_session_subcommand(capsys):
    assert main(["session", "--user", "3", "--seed", "2013"]) == 0
    out = capsys.readouterr().out
    assert "Algorithm 2" in out
    assert "switches" in out


def test_session_unknown_user(capsys):
    assert main(["session", "--user", "9999"]) == 2
    assert "not found" in capsys.readouterr().err
