#!/usr/bin/env python
"""Power trace: watch the radio states while a page loads (Figs. 1, 9).

Loads espn.go.com/sports with both browsers while the simulated bench
supply samples device power at 4 Hz (the paper's Agilent E3631A rig),
then renders both traces as ASCII charts with the radio-state timeline
underneath.

Run:  python examples/power_trace.py
"""

from repro.browser.energy_aware import EnergyAwareEngine
from repro.browser.original import OriginalEngine
from repro.core.session import browse_and_read
from repro.webpages.corpus import find_page

BLOCKS = " .:-=+*#%@"


def render(trace, width_scale=2.0) -> str:
    top = max(sample.watts for sample in trace.samples)
    lines = []
    for sample in trace.samples[::2]:  # every 0.5 s
        bar = "#" * int(round(width_scale * 10 * sample.watts / top))
        lines.append(f"  {sample.time:6.2f}s {sample.watts:5.2f}W "
                     f"{sample.mode.value:14s} |{bar}")
    return "\n".join(lines)


def main() -> None:
    page = find_page("espn.go.com/sports")
    for engine_cls, idle_at_open in ((OriginalEngine, False),
                                     (EnergyAwareEngine, True)):
        session = browse_and_read(page, engine_cls, reading_time=20.0,
                                  idle_at_open=idle_at_open)
        load = session.load
        trace = session.handset.sampler.trace(
            start=load.started_at,
            end=load.started_at + load.load_complete_time + 20.0)
        print(f"\n=== {engine_cls.name} ===")
        print(f"tx done {load.data_transmission_time:.1f}s, "
              f"load done {load.load_complete_time:.1f}s, "
              f"mean power {trace.mean_power():.2f}W, "
              f"energy {session.total_energy:.1f}J")
        print(render(trace))


if __name__ == "__main__":
    main()
