#!/usr/bin/env python
"""Benchmark report: the paper's Table 3 corpus under both browsers.

Loads all twenty benchmark pages (ten mobile-version, ten full-version)
with the stock and the energy-aware browser, each followed by a 20 s
reading period, and prints a per-page and per-benchmark summary of the
transmission-time, loading-time and energy savings — the data behind
Figs. 8 and 10.

Run:  python examples/benchmark_report.py
"""

from repro.analysis.tables import format_table
from repro.core.comparison import benchmark_comparison, mean


def report_half(mobile: bool) -> None:
    label = "mobile-version" if mobile else "full-version"
    comparisons = benchmark_comparison(mobile=mobile, reading_time=20.0)
    rows = []
    for comparison in comparisons:
        load = comparison.original.load
        rows.append((
            comparison.page.url.replace("http://", ""),
            round(comparison.page.total_kb, 0),
            round(load.load_complete_time, 1),
            round(comparison.energy_aware.load.data_transmission_time, 1),
            f"{comparison.tx_time_saving:.0%}",
            f"{comparison.loading_time_saving:.0%}",
            f"{comparison.energy_saving:.0%}",
        ))
    print(format_table(
        ("page", "KB", "orig load s", "ours tx s", "tx save",
         "load save", "energy save"),
        rows, title=f"\n== {label} benchmark =="))
    print(f"averages: tx saving "
          f"{mean([c.tx_time_saving for c in comparisons]):.1%}, "
          f"loading saving "
          f"{mean([c.loading_time_saving for c in comparisons]):.1%}, "
          f"energy saving "
          f"{mean([c.energy_saving for c in comparisons]):.1%}")


def main() -> None:
    for mobile in (True, False):
        report_half(mobile)
    print("\npaper reference: tx saving 15% mobile / 27% full; loading "
          "saving 2.5% / 17%;\nenergy saving 35.7% / 30.8% "
          "(Figs. 8 and 10)")


if __name__ == "__main__":
    main()
