#!/usr/bin/env python
"""Capacity planning: how many browsing users can a cell support?

The operator's view of Section 5.4: dedicated transmission channels are
a scarce resource, every page load holds one for its data transmission
time, and sessions arriving when all 200 pairs are busy are dropped.
This example measures per-page transmission times on the full-version
benchmark under both browsers, sweeps the user count in the M/G/200
loss-system simulator, cross-checks against the analytic Erlang-B
formula, and reports the capacity at a 2 % dropping target.

Run:  python examples/capacity_planning.py
"""

from repro.capacity import (
    CapacityConfig,
    CapacitySimulator,
    capacity_at_drop_target,
    erlang_b,
    offered_load,
)
from repro.core.comparison import benchmark_comparison
from repro.units import hours


def main() -> None:
    print("measuring transmission times on the full-version benchmark...")
    comparisons = benchmark_comparison(mobile=False)
    services = {
        "original": [c.original.load.data_transmission_time
                     for c in comparisons],
        "energy-aware": [c.energy_aware.load.data_transmission_time
                         for c in comparisons],
    }

    capacities = {}
    for engine, times in services.items():
        simulator = CapacitySimulator(
            times, CapacityConfig(horizon=hours(1), seed=11))
        mean_service = simulator.mean_service_time
        capacity = capacity_at_drop_target(simulator, target=0.02, seed=11)
        capacities[engine] = capacity
        analytic = erlang_b(200, offered_load(capacity, 25.0,
                                              mean_service))
        print(f"\n{engine}: mean holding time {mean_service:.1f} s")
        print(f"  users at 2% dropping (simulated):   {capacity}")
        print(f"  Erlang-B blocking at that load:     {analytic:.2%}")
        for users in (int(capacity * 0.9), capacity, int(capacity * 1.1)):
            result = simulator.run(users, seed=11)
            print(f"  {users:4d} users -> {result.drop_probability:6.2%} "
                  f"dropped ({result.dropped}/{result.sessions})")

    gain = capacities["energy-aware"] / capacities["original"] - 1
    print(f"\ncapacity gain from the energy-aware browser: {gain:.1%} "
          "(paper: +19.6% on the full benchmark)")


if __name__ == "__main__":
    main()
