#!/usr/bin/env python
"""Reading-time prediction: train, deploy, and drive Algorithm 2.

Walks the paper's Section 4.3 pipeline end to end:

1. generate the 40-user browsing trace (the stand-in for the paper's
   student data collection);
2. train the GBRT reading-time predictor offline, with the interest
   threshold α = 2 s excluding quick bounces from training;
3. serialise the tree model to JSON and load it back — the "deploy to
   the phone" step;
4. report threshold accuracies at Tp = 9 s and Td = 20 s and the
   feature importances;
5. run Algorithm 2 over a user's session and show its decisions.

Run:  python examples/reading_time_prediction.py
"""

import tempfile

import numpy as np

from repro.core.config import PolicyConfig
from repro.prediction.policy import PredictivePolicy
from repro.prediction.predictor import ReadingTimePredictor
from repro.traces.generator import generate_trace
from repro.traces.records import FEATURE_NAMES, TraceDataset


def main() -> None:
    dataset = generate_trace().filter_reading_time()
    print(f"trace: {len(dataset)} pageviews from 40 users")

    # Hold out the last 10 users for evaluation.
    train = TraceDataset([r for r in dataset if r.user_id < 30])
    test = TraceDataset([r for r in dataset if r.user_id >= 30])

    predictor = ReadingTimePredictor(interest_threshold=2.0).fit(train)

    # Offline training → phone deployment round trip.
    with tempfile.NamedTemporaryFile(suffix=".json") as handle:
        predictor.save_json(handle.name)
        deployed = ReadingTimePredictor.load_json(handle.name)
    print(f"deployed model: {len(deployed.model.trees_)} trees, "
          f"{deployed.model.total_nodes} nodes")

    interested = test.exclude_quick_bounces(2.0)
    for threshold, name in ((9.0, "Tp"), (20.0, "Td")):
        accuracy = deployed.accuracy(interested, threshold)
        print(f"accuracy at {name}={threshold:.0f}s "
              f"(interest threshold applied): {accuracy:.1%}")

    importances = deployed.model.feature_importances_
    print("\nfeature importances:")
    for name, value in sorted(zip(FEATURE_NAMES, importances),
                              key=lambda item: -item[1]):
        print(f"  {name:20s} {value:6.1%}")

    # Algorithm 2 over one held-out session.
    policy = PredictivePolicy(deployed, PolicyConfig(mode="power"))
    session = max(test.sessions(), key=len)
    print(f"\nAlgorithm 2 (power-driven) over user {session.user_id}'s "
          f"session of {len(session)} pages:")
    for record in session.records:
        decision = policy.decide(record.feature_vector(),
                                 record.reading_time)
        action = "switch to IDLE" if decision.switch_to_idle else "stay"
        print(f"  read {record.reading_time:6.1f}s | "
              f"predicted {decision.predicted_reading_time:6.1f}s | "
              f"{action}")


if __name__ == "__main__":
    np.set_printoptions(precision=3)
    main()
