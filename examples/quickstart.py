#!/usr/bin/env python
"""Quickstart: load one webpage with both browsers and compare.

This is the smallest end-to-end use of the library: build the paper's
headline page (espn.go.com/sports, ~760 KB), load it on a simulated
3G handset with the stock browser and with the energy-aware browser,
then print the timing and energy comparison of Figs. 8-10.

Run:  python examples/quickstart.py
"""

from repro.core import compare_engines
from repro.webpages.corpus import find_page


def main() -> None:
    page = find_page("espn.go.com/sports")
    print(f"page: {page.url}  ({page.total_kb:.0f} KB, "
          f"{page.object_count} objects)")

    # Load with both engines, then read for 20 seconds (Fig. 10's setup).
    comparison = compare_engines(page, reading_time=20.0)

    original = comparison.original
    ours = comparison.energy_aware
    print("\n                         original    energy-aware")
    print(f"data transmission time   {original.load.data_transmission_time:7.1f} s   "
          f"{ours.load.data_transmission_time:7.1f} s")
    print(f"total loading time       {original.load.load_complete_time:7.1f} s   "
          f"{ours.load.load_complete_time:7.1f} s")
    print(f"loading energy           {original.loading_energy.total:7.1f} J   "
          f"{ours.loading_energy.total:7.1f} J")
    print(f"20 s reading energy      {original.reading_energy.total:7.1f} J   "
          f"{ours.reading_energy.total:7.1f} J")

    print(f"\ntransmission-time saving: {comparison.tx_time_saving:.1%}")
    print(f"loading-time saving:      {comparison.loading_time_saving:.1%}")
    print(f"energy saving:            {comparison.energy_saving:.1%} "
          f"(paper: 43.6% on this page)")


if __name__ == "__main__":
    main()
