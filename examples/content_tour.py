#!/usr/bin/env python
"""Content tour: why scanning is cheap and scripts must run.

Shows the content-level ground truth of Section 4.1 on the paper's
headline page: the synthesized HTML source and what a URL scan finds,
the stylesheet and its url() backgrounds, and a script whose fetch
targets no static scan can see — only execution reveals them.

Run:  python examples/content_tour.py
"""

from repro.content import (
    derive_graph,
    execute_script,
    parse_css,
    parse_html,
    scan_css_urls,
    scan_html_urls,
    scan_script_urls,
    synthesize_sources,
)
from repro.webpages.corpus import find_page


def main() -> None:
    page = find_page("espn.go.com/sports")
    sources = synthesize_sources(page, seed=42)

    root = sources.source_of(page.root_id)
    print(f"root document: {len(root)} chars of HTML; first lines:")
    for line in root.splitlines()[:6]:
        print(f"    {line}")
    scanned = scan_html_urls(root)
    tree = parse_html(root)
    print(f"\nURL scan found {len(scanned)} resources "
          f"(no tree built); the full parse builds "
          f"{tree.count_elements()} DOM elements and agrees: "
          f"{set(scanned) == set(tree.resource_urls())}")

    css_id = next(oid for oid in sources.text if oid.endswith(".css"))
    sheet = sources.source_of(css_id)
    print(f"\nstylesheet {css_id}: scan found url() refs "
          f"{scan_css_urls(sheet)}; full parse extracts "
          f"{len(parse_css(sheet))} rules")

    js_id = next(oid for oid in sources.text if oid.endswith(".js"))
    program = sources.source_of(js_id)
    print(f"\nscript {js_id}:")
    for line in program.splitlines()[:4]:
        print(f"    {line}")
    print(f"static scan of the script sees: {scan_script_urls(program)}")
    result = execute_script(program)
    print(f"execution reveals: {result.fetched_urls} "
          f"(+{result.dom_nodes_appended} DOM nodes, "
          f"{result.work_units} work units)")

    graph = derive_graph(sources)
    matches = all(set(refs) == set(page.objects[oid].references)
                  for oid, refs in graph.items())
    print(f"\nre-deriving the whole object graph from sources alone: "
          f"{len(graph)} objects discovered, matches the declared "
          f"graph: {matches}")


if __name__ == "__main__":
    main()
