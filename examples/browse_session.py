#!/usr/bin/env python
"""A realistic browsing session: Algorithm 2 in the loop, end to end.

Trains the reading-time predictor on the synthetic trace, then replays a
user's evening browsing session — a mix of quick hops and long reads over
Table 3 pages — on a single simulated handset, under three policies:

1. the stock browser with no switching,
2. the energy-aware browser with no switching,
3. the energy-aware browser + Algorithm 2 (power-driven), with the GBRT
   predictor consulted after every page open.

The radio state carries across pageviews, so you can see the Fig. 3
trade-off live: a wrong "switch" prediction makes the next click pay the
IDLE promotion.

Run:  python examples/browse_session.py
"""

from repro.browser.energy_aware import EnergyAwareEngine
from repro.browser.original import OriginalEngine
from repro.core.browsing import PageVisit, browse_session
from repro.core.config import PolicyConfig
from repro.prediction.policy import PredictivePolicy
from repro.prediction.predictor import ReadingTimePredictor
from repro.traces.generator import generate_trace
from repro.webpages.corpus import find_page

#: (page, seconds the user reads it): quick hops and long reads mixed.
SESSION = [
    ("cnn", 4.0),
    ("espn.go.com/sports", 45.0),
    ("cnn", 1.5),
    ("www.motors.ebay.com", 90.0),
    ("youtube", 8.0),
    ("www.apple.com", 30.0),
]


def main() -> None:
    print("training the reading-time predictor on the 40-user trace...")
    predictor = ReadingTimePredictor(interest_threshold=2.0).fit(
        generate_trace().filter_reading_time())
    policy = PredictivePolicy(predictor, PolicyConfig(mode="power"))

    visits = [PageVisit(find_page(name), reading) for name, reading
              in SESSION]
    runs = (
        ("original browser", OriginalEngine, None),
        ("energy-aware, no policy", EnergyAwareEngine, None),
        ("energy-aware + Algorithm 2", EnergyAwareEngine, policy),
    )

    baseline = None
    for label, engine_cls, run_policy in runs:
        outcome = browse_session(visits, engine_cls, policy=run_policy)
        if baseline is None:
            baseline = outcome.total_energy
        saving = 1.0 - outcome.total_energy / baseline
        print(f"\n== {label} ==")
        print(f"  session: {outcome.total_time:.0f} s, "
              f"{outcome.total_energy:.1f} J "
              f"({saving:+.1%} vs original), "
              f"{outcome.switch_count} IDLE switches")
        for visit in outcome.visits:
            decision = visit.decision
            verdict = ("-" if decision is None else
                       f"Tr={decision.predicted_reading_time:5.1f}s "
                       f"{'switch' if decision.switch_to_idle else 'stay'}")
            print(f"    {visit.page_url.replace('http://', ''):28s} "
                  f"load {visit.load.load_complete_time:5.1f}s  "
                  f"read {visit.reading_time:5.1f}s  "
                  f"{visit.energy:6.1f}J  {verdict}")


if __name__ == "__main__":
    main()
