# Convenience targets for the reproduction workflow.

.PHONY: install test bench bench-baseline bench-compare bench-backend \
	bench-ablate bench-ablate-search bench-sched bench-serve serve \
	fleet-bench stream-sweep stream-bench experiments \
	experiments-parallel ablations ablate tune-smoke faults-sweep ci \
	examples clean

# Worker count for the parallel experiment runner (override: make N=8 ...).
N ?= 4

install:
	pip install -e . || python setup.py develop

test:
	python -m pytest tests/

bench:
	python -m pytest benchmarks/ --benchmark-only -s

# Performance trajectory: bench-baseline writes the committed baseline
# artifact; bench-compare writes the next BENCH_<n>.json and fails on a
# >25% suite-total regression against the baseline.
bench-baseline:
	python -m repro.runtime.profiling bench --out BENCH_0.json

bench-compare:
	python -m repro.runtime.profiling bench --out auto --compare BENCH_0.json

# Per-backend rows for the array-API kernel ports (BENCH_4).
bench-backend:
	python -m repro.runtime.profiling bench --select fleet_backend \
		--out BENCH_4.json

# Ablation-matrix engine rows: cold wall time + warm cache-hit rate
# (BENCH_5).
bench-ablate:
	python -m repro.runtime.profiling bench --select ablation_matrix \
		--out BENCH_5.json

# Batched tune-engine rows: slow-reference vs cold vs warm halving
# search plus population-objective throughput (BENCH_6).
bench-ablate-search:
	python -m repro.runtime.profiling bench --select ablation_search \
		--out BENCH_6.json

# Distributed work-stealing scheduler: 1-worker task timings plus the
# modelled 8-worker speedup on the fig11 10x sweep (BENCH_7).
bench-sched:
	python -m repro.runtime.profiling bench --select sched_workdir \
		--out BENCH_7.json

# Serving rows: warm p99 under 8 closed-loop clients, micro-batched vs
# unbatched, over the in-process HTTP server (BENCH_8).
bench-serve:
	python -m repro.runtime.profiling bench --select serve \
		--out BENCH_8.json

# The what-if capacity-planning service (foreground; ^C drains).
serve:
	python -m repro serve --job-dir serve-jobs

# Batched-vs-scalar fleet engine timings with equivalence checks.
fleet-bench:
	python -m repro fleet-bench

# Bounded-memory capacity sweep through the block pipeline, with
# resumable shard spills under stream-shards/.
stream-sweep:
	python -m repro stream-sweep --out stream-shards

# In-memory vs streamed wall-clock and peak-RSS comparison (BENCH_3).
stream-bench:
	python -m repro.stream.bench --out BENCH_3.json

experiments:
	python -m repro.experiments.runner

experiments-parallel:
	python -m repro experiments --parallel $(N) --cache

ablations:
	python -m repro ablations

# Declarative ablation matrix over the full default registry, with the
# importance ranking exported next to the deterministic report.
ablate:
	python -m repro ablate --matrix loo --cache \
		--report ablation-report.json --rank-out ablation-rank.json

# Constrained timer/threshold search at cell edge: successive halving
# under a next-click delay budget, with a resumable JSONL trace.
tune-smoke:
	python -m repro tune --algorithm halving --profile cell_edge \
		--budget-delay 1.2 --trials 10 --cache \
		--trace tune-trace.jsonl --report tune-report.json

faults-sweep:
	python -m repro faults-sweep --parallel $(N)

ci:
	python -m pytest -x -q
	python -m repro experiments --parallel 2 fig01 table05
	python -m repro faults-sweep --parallel 2 ideal congested

examples:
	python examples/quickstart.py
	python examples/browse_session.py
	python examples/content_tour.py
	python examples/benchmark_report.py
	python examples/reading_time_prediction.py
	python examples/capacity_planning.py
	python examples/power_trace.py

clean:
	find . -name __pycache__ -type d -exec rm -rf {} +
	rm -rf .pytest_cache src/repro.egg-info .benchmarks
