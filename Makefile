# Convenience targets for the reproduction workflow.

.PHONY: install test bench experiments ablations examples clean

install:
	pip install -e . || python setup.py develop

test:
	python -m pytest tests/

bench:
	python -m pytest benchmarks/ --benchmark-only -s

experiments:
	python -m repro.experiments.runner

ablations:
	python -m repro ablations

examples:
	python examples/quickstart.py
	python examples/browse_session.py
	python examples/content_tour.py
	python examples/benchmark_report.py
	python examples/reading_time_prediction.py
	python examples/capacity_planning.py
	python examples/power_trace.py

clean:
	find . -name __pycache__ -type d -exec rm -rf {} +
	rm -rf .pytest_cache src/repro.egg-info .benchmarks
