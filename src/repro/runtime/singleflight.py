"""Single-flight computation for process-global memo caches.

The memo dicts that PRs 3 and 8 added (`benchmark_comparison`, the
ablation load memo) were built for process pools, where each worker has
its own copy and plain ``dict.get``-then-store is safe.  The serving
layer (:mod:`repro.serve`) drives those caches from many request
*threads* in one process, where the naive pattern has two defects:

- **duplicate work** — two threads miss on the same key and both run a
  multi-second deterministic computation that one of them should have
  waited for; and
- **torn counters** — unlocked ``stats["x"] += 1`` bookkeeping drops
  increments under contention, so cache hit rates lie.

:class:`SingleFlight` fixes both: the first thread to miss on a key
becomes its *leader* and computes; every other thread blocks on the
leader's event and reads the published value.  A leader that raises
wakes the waiters, who retry and elect a new leader, so a failed
computation never wedges a key.  Values are published exactly once per
key and never recomputed (the computations cached here are
deterministic), so reads after publication are lock-free-in-spirit:
one short lock round-trip, no waiting.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Hashable, Tuple, TypeVar

T = TypeVar("T")


class SingleFlight:
    """A thread-safe memo where each key is computed exactly once.

    ``do(key, fn)`` returns the cached value for ``key``, running
    ``fn()`` on the first call; concurrent callers for the same key
    wait for the one in-flight computation instead of repeating it.
    Distinct keys compute concurrently — the internal lock is only
    held for bookkeeping, never during ``fn()``.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._values: Dict[Hashable, object] = {}
        self._in_flight: Dict[Hashable, threading.Event] = {}
        self._hits = 0
        self._misses = 0
        self._waits = 0

    def do(self, key: Hashable, fn: Callable[[], T]) -> T:
        """Return the value for ``key``, computing it at most once."""
        while True:
            with self._lock:
                if key in self._values:
                    self._hits += 1
                    return self._values[key]  # type: ignore[return-value]
                event = self._in_flight.get(key)
                if event is None:
                    event = self._in_flight[key] = threading.Event()
                    break  # this thread leads the computation
                self._waits += 1
            event.wait()
            # Leader published (loop reads it) or raised (loop elects a
            # new leader).
        try:
            value = fn()
        except BaseException:
            with self._lock:
                self._in_flight.pop(key, None)
            event.set()
            raise
        with self._lock:
            self._values[key] = value
            self._in_flight.pop(key, None)
            self._misses += 1
        event.set()
        return value

    def peek(self, key: Hashable):
        """The cached value for ``key`` or ``None``; never computes."""
        with self._lock:
            return self._values.get(key)

    def stats(self) -> Dict[str, int]:
        """Hit/miss/wait counters (``size`` is the number of keys)."""
        with self._lock:
            return {"hits": self._hits, "misses": self._misses,
                    "waits": self._waits, "size": len(self._values)}

    def clear(self) -> None:
        """Drop every cached value and zero the counters (tests)."""
        with self._lock:
            if self._in_flight:
                raise RuntimeError(
                    "cannot clear a SingleFlight with computations "
                    "in flight")
            self._values.clear()
            self._hits = self._misses = self._waits = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._values)


def locked_counter_add(lock: threading.Lock, counters: Dict[str, int],
                       key: str, amount: int = 1) -> None:
    """Increment ``counters[key]`` under ``lock``.

    The one-liner that makes shared stats dicts safe: ``d[k] += 1`` is
    a read-modify-write and silently drops updates when two threads
    interleave.
    """
    with lock:
        counters[key] = counters.get(key, 0) + amount


def snapshot_counters(lock: threading.Lock,
                      counters: Dict[str, int]) -> Dict[str, int]:
    """A consistent copy of a locked counters dict."""
    with lock:
        return dict(counters)
