"""Zero-copy array handoff to pool workers via shared memory.

``ProcessPoolExecutor`` pickles every task's arguments; for the fleet
sweeps that used to mean re-serialising the same service-time pool (or
trace arrays) once per task.  :class:`SharedArray` puts the array in a
``multiprocessing.shared_memory`` segment once, ships only its
``(name, shape, dtype)`` spec to the workers, and each worker maps the
same physical pages read-only.

Lifecycle: the creator owns the segment (``create`` → ``unlink`` when
done); workers ``attach`` and merely ``close``.  Attached views are
marked read-only — a worker scribbling on shared input would corrupt
every sibling's task.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Tuple

import numpy as np


@dataclass(frozen=True)
class SharedArraySpec:
    """Picklable handle: everything a worker needs to map the segment."""

    name: str
    shape: Tuple[int, ...]
    dtype: str


class SharedArray:
    """A NumPy array backed by a named shared-memory segment."""

    def __init__(self, shm: shared_memory.SharedMemory,
                 array: np.ndarray, owner: bool):
        self._shm = shm
        self.array = array
        self._owner = owner

    @classmethod
    def create(cls, source: np.ndarray) -> "SharedArray":
        """Copy ``source`` into a fresh segment (pay the copy once)."""
        source = np.ascontiguousarray(source)
        shm = shared_memory.SharedMemory(create=True,
                                         size=max(1, source.nbytes))
        array = np.ndarray(source.shape, dtype=source.dtype,
                           buffer=shm.buf)
        array[...] = source
        return cls(shm, array, owner=True)

    @classmethod
    def attach(cls, spec: SharedArraySpec) -> "SharedArray":
        """Map an existing segment; the view comes back read-only."""
        # Attaching also registers with the resource tracker (fixed
        # only in 3.13's ``track=False``); forked pool workers share
        # the parent's tracker, where the duplicate registration is a
        # set no-op and the owner's ``unlink`` still cleans up exactly
        # once.
        shm = shared_memory.SharedMemory(name=spec.name)
        array = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype),
                           buffer=shm.buf)
        array.flags.writeable = False
        return cls(shm, array, owner=False)

    @property
    def spec(self) -> SharedArraySpec:
        return SharedArraySpec(name=self._shm.name,
                               shape=tuple(self.array.shape),
                               dtype=self.array.dtype.str)

    def close(self) -> None:
        """Drop this process's mapping (the view dies with it)."""
        self.array = None
        self._shm.close()

    def unlink(self) -> None:
        """Destroy the segment (creator only, after every close)."""
        if self._owner:
            self._shm.unlink()

    def __enter__(self) -> "SharedArray":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
        self.unlink()
