"""Profiling harness and the committed benchmark trajectory.

Two jobs, one module:

- ``repro profile <task>`` wraps any registered experiment / ablation /
  faults task in :mod:`cProfile`, prints the top-N hotspots, and can
  embed them in a JSON report next to the task's kernel counters — so
  "where does the time go" is one command, not folklore.

- ``python -m repro.runtime.profiling bench`` runs the pytest-benchmark
  suite under ``benchmarks/`` and distils it into a ``BENCH_<n>.json``
  artifact: suite total wall time plus, per benchmark, wall time,
  kernel events/second and the sim-time/real-time ratio.  ``compare``
  diffs two such artifacts and fails (exit 1) past a regression budget,
  which is what ``make bench-compare`` and the CI smoke job run.  The
  committed ``BENCH_0.json`` (seed) and ``BENCH_1.json`` (after the
  fast-path work) are the repo's performance trajectory.
"""

from __future__ import annotations

import argparse
import cProfile
import io
import json
import os
import platform
import pstats
import subprocess
import sys
import tempfile
import time as _time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

#: Filename pattern of committed trajectory artifacts.
BENCH_PATTERN = "BENCH_{n}.json"
BENCH_SCHEMA = "repro-bench-v1"

# ----------------------------------------------------------------------
# cProfile wrapper around one registered task
# ----------------------------------------------------------------------


def _hotspots(stats: pstats.Stats, top_n: int,
              sort: str) -> List[Dict[str, Any]]:
    """Top-N rows of a ``pstats`` table as plain dicts."""
    stats.sort_stats(sort)
    rows: List[Dict[str, Any]] = []
    for func in stats.fcn_list[:top_n]:  # (file, line, name)
        cc, nc, tottime, cumtime, _ = stats.stats[func]
        file, line, name = func
        rows.append({
            "function": name,
            "file": file,
            "line": line,
            "ncalls": nc,
            "primitive_calls": cc,
            "tottime": round(tottime, 6),
            "cumtime": round(cumtime, 6),
        })
    return rows


def profile_task(kind: str, task_id: str, seed: Optional[int] = None,
                 top_n: int = 25,
                 sort: str = "cumulative") -> Dict[str, Any]:
    """Run one registered task under cProfile; return a report payload.

    Seeding matches :func:`repro.runtime.parallel.run_tasks` exactly, so
    a profiled run reproduces the same work the suite runner would do.
    """
    import numpy as np

    from repro.runtime import parallel as runtime_parallel
    from repro.runtime.observability import collecting
    from repro.runtime.seeding import DEFAULT_ROOT_SEED, task_seed

    registry = runtime_parallel.registry_for(kind)
    if task_id not in registry:
        raise KeyError(f"unknown {kind} id {task_id!r}; "
                       f"known: {sorted(registry)}")
    title, runner = registry[task_id]
    root_seed = DEFAULT_ROOT_SEED if seed is None else seed
    derived = task_seed(root_seed, f"{kind}:{task_id}")
    np.random.seed(derived % (2 ** 32))

    profiler = cProfile.Profile()
    started = _time.perf_counter()
    with collecting() as collector:
        profiler.enable()
        if getattr(runner, "needs_seed", False):
            report = runner(seed=derived).report()
        else:
            report = runner().report()
        profiler.disable()
    wall_time = _time.perf_counter() - started
    stats = pstats.Stats(profiler, stream=io.StringIO())

    payload: Dict[str, Any] = {
        "kind": kind,
        "task_id": task_id,
        "title": title,
        "seed": derived,
        "wall_time": wall_time,
        "total_calls": stats.total_calls,
        "report": report,
        "hotspots": _hotspots(stats, top_n, sort),
        "kernel": collector.snapshot().to_dict(),
    }
    return payload


def render_profile(payload: Dict[str, Any]) -> str:
    """Human-readable hotspot table for one :func:`profile_task` payload."""
    lines = [f"== profile {payload['task_id']}: {payload['title']} ==",
             f"wall {payload['wall_time']:.2f}s, "
             f"{payload['total_calls']} calls"]
    kernel = payload["kernel"]
    if kernel.get("events_processed"):
        lines.append(
            f"kernel: {kernel['events_processed']} events, "
            f"sim/real {kernel['sim_time_ratio']:.0f}x")
    lines.append(f"{'ncalls':>10s} {'tottime':>9s} {'cumtime':>9s}  "
                 f"function")
    for row in payload["hotspots"]:
        where = f"{Path(row['file']).name}:{row['line']}"
        lines.append(f"{row['ncalls']:>10d} {row['tottime']:>9.3f} "
                     f"{row['cumtime']:>9.3f}  {row['function']} "
                     f"({where})")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# BENCH_<n>.json: run the benchmark suite, distil, compare
# ----------------------------------------------------------------------


def next_bench_path(directory: os.PathLike = ".") -> Path:
    """First unused ``BENCH_<n>.json`` path in ``directory``."""
    root = Path(directory)
    n = 0
    while (root / BENCH_PATTERN.format(n=n)).exists():
        n += 1
    return root / BENCH_PATTERN.format(n=n)


def _distil(raw: Dict[str, Any]) -> Dict[str, Any]:
    """Reduce a pytest-benchmark JSON dump to the trajectory schema."""
    from repro.runtime.cache import code_version_hash

    benchmarks: List[Dict[str, Any]] = []
    for bench in sorted(raw.get("benchmarks", []),
                        key=lambda b: b["name"]):
        wall = float(bench["stats"]["mean"])
        extra = bench.get("extra_info", {}) or {}
        events = int(extra.get("events_processed", 0))
        work = int(extra.get("work_units", 0))
        row = {
            "name": bench["name"],
            "wall_time": round(wall, 4),
            "events_processed": events,
            "events_per_sec": round(events / wall) if wall > 0 else 0,
            # Non-kernel work (GBRT fitting/prediction, trace synthesis,
            # fleet array sweeps): benchmarks that never enter the event
            # loop still get a throughput denominator for the gate.
            "work_units": work,
            "work_per_sec": round(work / wall) if wall > 0 else 0,
            "sim_time": round(float(extra.get("sim_time", 0.0)), 2),
            "sim_time_ratio": round(float(extra.get("sim_time_ratio",
                                                    0.0)), 1),
            # Ablation-matrix rows: fraction of cells served from the
            # content-addressed result cache (1.0 on a warm rerun).
            "cache_hit_rate": round(float(extra.get("cache_hit_rate",
                                                    0.0)), 3),
            # Ablation-search rows: fraction of page-load lookups the
            # projection memo/disk cache absorbed, and the count of
            # discrete-event loads actually simulated.
            "load_cache_hit_rate": round(float(extra.get(
                "load_cache_hit_rate", 0.0)), 3),
            "page_loads": int(extra.get("page_loads", 0)),
            # Distributed-scheduler rows: work-unit/replay/steal
            # counters plus the 8-worker speedup modelled from the
            # measured task durations (see benchmarks/test_sched.py).
            "sched_units": int(extra.get("sched_units", 0)),
            "sched_replay_blocks": int(extra.get("sched_replay_blocks",
                                                 0)),
            "sched_steals": int(extra.get("sched_steals", 0)),
            "sched_speedup_8w": round(float(extra.get(
                "sched_speedup_8w", 0.0)), 2),
            # Serving rows (benchmarks/test_serve.py): warm p99 under 8
            # closed-loop clients with and without micro-batching, plus
            # the batched throughput — the BENCH_8 latency gate.
            "serve_clients": int(extra.get("serve_clients", 0)),
            "serve_unbatched_p99_ms": round(float(extra.get(
                "serve_unbatched_p99_ms", 0.0)), 2),
            "serve_batched_p99_ms": round(float(extra.get(
                "serve_batched_p99_ms", 0.0)), 2),
            "serve_batched_rps": round(float(extra.get(
                "serve_batched_rps", 0.0)), 1),
        }
        benchmarks.append(row)
    return {
        "schema": BENCH_SCHEMA,
        "code_version": code_version_hash(),
        "machine": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "suite": {
            "n_benchmarks": len(benchmarks),
            "total_wall_time": round(sum(b["wall_time"]
                                         for b in benchmarks), 2),
        },
        "benchmarks": benchmarks,
    }


def run_bench_suite(select: Optional[str] = None,
                    bench_dir: str = "benchmarks") -> Dict[str, Any]:
    """Run ``pytest <bench_dir> --benchmark-only`` and distil the result.

    ``select`` is a pytest ``-k`` expression (the CI smoke job runs a
    reduced grid with it).  The pytest run happens in a subprocess so a
    partially-imported parent process can never skew the numbers.
    """
    with tempfile.TemporaryDirectory() as tmp:
        raw_path = Path(tmp) / "bench-raw.json"
        command = [sys.executable, "-m", "pytest", bench_dir,
                   "--benchmark-only", "-q",
                   f"--benchmark-json={raw_path}"]
        if select:
            command += ["-k", select]
        env = dict(os.environ)
        env.setdefault("PYTHONPATH", str(Path(__file__).parents[2]))
        completed = subprocess.run(command, env=env)
        if completed.returncode != 0 or not raw_path.exists():
            raise RuntimeError(
                f"benchmark run failed (exit {completed.returncode})")
        with raw_path.open() as handle:
            raw = json.load(handle)
    return _distil(raw)


def compare_bench(baseline: Dict[str, Any], candidate: Dict[str, Any],
                  max_regression: float = 0.25) -> "tuple[str, bool]":
    """Diff two trajectory artifacts over their common benchmarks.

    Returns ``(text, ok)``; ``ok`` is False when the candidate's total
    wall time over the intersection regresses more than
    ``max_regression`` (0.25 = 25 % slower than baseline).  Comparing
    the intersection lets a reduced CI grid diff against the full
    committed baseline.
    """
    base = {b["name"]: b for b in baseline["benchmarks"]}
    cand = {b["name"]: b for b in candidate["benchmarks"]}
    common = sorted(set(base) & set(cand))
    if not common:
        return "no common benchmarks to compare", False
    lines = [f"{'benchmark':44s} {'base s':>9s} {'cand s':>9s} "
             f"{'speedup':>8s}"]
    base_total = cand_total = 0.0
    for name in common:
        b, c = base[name]["wall_time"], cand[name]["wall_time"]
        base_total += b
        cand_total += c
        speedup = b / c if c > 0 else float("inf")
        lines.append(f"{name:44s} {b:9.2f} {c:9.2f} {speedup:7.2f}x")
    speedup = base_total / cand_total if cand_total > 0 else float("inf")
    ok = cand_total <= base_total * (1.0 + max_regression)
    lines.append(f"{'TOTAL (%d common)' % len(common):44s} "
                 f"{base_total:9.2f} {cand_total:9.2f} {speedup:7.2f}x")
    lines.append(
        f"budget: <= {(1.0 + max_regression) * base_total:.2f}s "
        f"(+{100 * max_regression:.0f}%) -> "
        f"{'OK' if ok else 'REGRESSION'}")
    return "\n".join(lines), ok


def load_bench(path: os.PathLike) -> Dict[str, Any]:
    with open(path) as handle:
        payload = json.load(handle)
    if payload.get("schema") != BENCH_SCHEMA:
        raise ValueError(f"{path}: not a {BENCH_SCHEMA} artifact")
    return payload


def write_bench(payload: Dict[str, Any], path: os.PathLike) -> None:
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


# ----------------------------------------------------------------------
# CLI (python -m repro.runtime.profiling ...)
# ----------------------------------------------------------------------


def _cmd_bench(args: argparse.Namespace) -> int:
    payload = run_bench_suite(select=args.select,
                              bench_dir=args.bench_dir)
    out = (next_bench_path() if args.out == "auto"
           else Path(args.out))
    write_bench(payload, out)
    print(f"suite total {payload['suite']['total_wall_time']:.2f}s "
          f"over {payload['suite']['n_benchmarks']} benchmarks "
          f"-> {out}")
    if args.compare:
        text, ok = compare_bench(load_bench(args.compare), payload,
                                 max_regression=args.max_regression)
        print(text)
        return 0 if ok else 1
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    text, ok = compare_bench(load_bench(args.baseline),
                             load_bench(args.candidate),
                             max_regression=args.max_regression)
    print(text)
    return 0 if ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runtime.profiling",
        description="benchmark-trajectory harness (BENCH_<n>.json)")
    sub = parser.add_subparsers(dest="command", required=True)

    bench = sub.add_parser("bench", help="run the benchmark suite and "
                                         "write a trajectory artifact")
    bench.add_argument("--out", default="auto",
                       help="output path, or 'auto' for the next free "
                            "BENCH_<n>.json (default)")
    bench.add_argument("--select", metavar="EXPR",
                       help="pytest -k expression (reduced grid)")
    bench.add_argument("--bench-dir", default="benchmarks")
    bench.add_argument("--compare", metavar="BASELINE",
                       help="also diff against a baseline artifact; "
                            "exit 1 past the regression budget")
    bench.add_argument("--max-regression", type=float, default=0.25,
                       help="allowed total slowdown (default: 0.25)")
    bench.set_defaults(func=_cmd_bench)

    compare = sub.add_parser("compare",
                             help="diff two trajectory artifacts")
    compare.add_argument("baseline")
    compare.add_argument("candidate")
    compare.add_argument("--max-regression", type=float, default=0.25)
    compare.set_defaults(func=_cmd_compare)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
