"""Deterministic seed derivation for fan-out work.

Two needs, one mechanism (:class:`numpy.random.SeedSequence`):

- **positional streams** (:func:`spawn_seeds`): a sweep over N points
  needs N independent, reproducible streams.  ``SeedSequence(root)
  .spawn(n)`` gives exactly that — child i depends only on ``(root, i)``,
  so run i of a sweep is decorrelated from run j yet identical across
  re-executions and across sequential/parallel runners.
- **keyed streams** (:func:`task_seed`): the parallel experiment runner
  seeds each task by its *identifier*, not its position in the submitted
  subset, so ``repro experiments fig08`` and a full run hand fig08 the
  same seed.  The key is folded into the ``spawn_key`` via a stable
  (non-``hash()``) digest, keeping the derivation independent of
  ``PYTHONHASHSEED`` and of which other tasks run alongside.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Sequence

import numpy as np

#: Root seed of the experiment-runner task streams.
DEFAULT_ROOT_SEED = 2013


def spawn_seeds(root_seed: int, n: int) -> List[int]:
    """Derive ``n`` independent 32-bit seeds from one root seed."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    children = np.random.SeedSequence(root_seed).spawn(n)
    return [int(child.generate_state(1)[0]) for child in children]


def _key_digest(key: str) -> int:
    """Stable 64-bit digest of a task key (independent of hash seeds)."""
    return int.from_bytes(
        hashlib.sha256(key.encode("utf-8")).digest()[:8], "big")


def task_seed(root_seed: int, key: str) -> int:
    """Derive the seed for a named task, independent of co-scheduled work."""
    sequence = np.random.SeedSequence(root_seed,
                                      spawn_key=(_key_digest(key),))
    return int(sequence.generate_state(1)[0])


def task_seeds(root_seed: int, keys: Sequence[str]) -> Dict[str, int]:
    """Seeds for a batch of named tasks; ordering of ``keys`` is irrelevant."""
    return {key: task_seed(root_seed, key) for key in keys}
