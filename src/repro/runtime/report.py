"""Structured export of a suite run: JSON for machines, CSV for sheets.

The parallel runner produces a :class:`repro.runtime.parallel.SuiteReport`
whose ``to_dict()`` is the canonical schema::

    {
      "suite": {"n_tasks": ..., "n_cached": ..., "processes": ...,
                 "root_seed": ..., "code_version": ...,
                 "total_wall_time": ...},
      "tasks": [
        {"task_id": "fig08", "kind": "experiment", "title": ...,
         "seed": ..., "cached": false, "wall_time": ...,
         "events_processed": ..., "cancellations": ...,
         "peak_queue_depth": ..., "sim_time": ...,
         "sim_time_ratio": ..., "report": "..."},
        ...
      ]
    }

``write_report`` dispatches on the output suffix so the CLI needs no
format flag: ``--report out.json`` or ``--report out.csv``.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Dict, List

#: Per-task scalar columns exported to CSV, in column order.  The
#: rendered report text is JSON-only: multi-line cells make spreadsheet
#: round-trips miserable.
CSV_COLUMNS = (
    "task_id", "kind", "title", "seed", "cached", "wall_time",
    "events_processed", "cancellations", "peak_queue_depth",
    "sim_time", "sim_time_ratio", "faults_injected", "transfer_retries",
)


def write_json_report(payload: Dict[str, Any], path: Path) -> None:
    """Write the canonical suite schema as pretty-printed JSON."""
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def write_csv_report(payload: Dict[str, Any], path: Path) -> None:
    """Write one CSV row per task (scalar metrics only)."""
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    tasks: List[Dict[str, Any]] = payload.get("tasks", [])
    with path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=CSV_COLUMNS,
                                extrasaction="ignore")
        writer.writeheader()
        for task in tasks:
            writer.writerow(task)


def write_report(payload: Dict[str, Any], path: "str | Path") -> None:
    """Dispatch on suffix: ``.csv`` → CSV, anything else → JSON."""
    path = Path(path)
    if path.suffix.lower() == ".csv":
        write_csv_report(payload, path)
    else:
        write_json_report(payload, path)
