"""Claim-file leases over a shared directory.

The distributed sweep executor (:mod:`repro.sched`) and the shard
manifest writer lock coordinate through plain files on a directory
every participant can see — no coordinator process, no sockets.  The
primitive is a *claim file*:

- **acquire** — ``O_CREAT | O_EXCL`` of ``<name>.claim`` with a JSON
  payload naming the owner.  Exactly one creator wins; everyone else
  sees ``FileExistsError``.
- **heartbeat** — the holder touches the claim's mtime periodically
  (:class:`Heartbeat` runs a daemon thread).  A claim whose mtime is
  older than ``stale_after`` is presumed dead.
- **steal** — a stale claim is first *renamed* to a unique tombstone
  (atomic, so exactly one stealer wins the rename) and then
  re-acquired with ``O_EXCL``.  A holder that was merely paused
  discovers the theft on its next heartbeat — ``utime`` on the renamed
  path raises — and must treat the lease as lost.
- **release** — unlink the claim.

Staleness compares the reader's clock against the holder's mtime, so
cross-host use assumes a shared filesystem with loosely agreeing
clocks (the executor's defaults leave minutes of slack).  Everything a
lease protects must stay idempotent: a zombie holder can race the
stealer for a short window, and the protocol only guarantees the work
is re-executed, not executed once.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from pathlib import Path
from typing import Optional

#: Default staleness horizon — ten missed heartbeats at the default rate.
DEFAULT_STALE_AFTER = 30.0
DEFAULT_HEARTBEAT = 3.0


def _claim_payload(owner: str) -> bytes:
    return json.dumps({
        "owner": str(owner),
        "pid": os.getpid(),
        "claimed_at": time.time(),
    }, sort_keys=True).encode("utf-8")


def try_claim(path, owner: str, *,
              stale_after: float = DEFAULT_STALE_AFTER) -> bool:
    """Try to acquire the claim file at ``path``; never blocks.

    Returns ``True`` when this call created the claim (fresh or by
    stealing a stale one), ``False`` when someone else holds it.
    """
    path = Path(path)
    try:
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        pass
    else:
        with os.fdopen(fd, "wb") as handle:
            handle.write(_claim_payload(owner))
        return True
    # Held by someone: steal only if their heartbeat went stale.
    try:
        age = time.time() - path.stat().st_mtime
    except OSError:
        # Released or stolen between our open and stat; next call
        # races cleanly for the fresh file.
        return False
    if age <= stale_after:
        return False
    tombstone = path.with_name(
        f"{path.name}.stale-{os.getpid()}-{uuid.uuid4().hex[:8]}")
    try:
        os.rename(path, tombstone)
    except OSError:
        # Another stealer renamed it first (or the holder released).
        return False
    try:
        os.remove(tombstone)
    except OSError:
        pass
    try:
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        # A third party re-claimed in the window after our rename.
        return False
    with os.fdopen(fd, "wb") as handle:
        handle.write(_claim_payload(owner))
    return True


def heartbeat(path) -> bool:
    """Refresh the claim's mtime; ``False`` means the lease was lost."""
    try:
        os.utime(path)
    except OSError:
        return False
    return True


def release(path) -> None:
    """Drop the claim (idempotent)."""
    try:
        os.remove(path)
    except OSError:
        pass


def claim_owner(path) -> Optional[str]:
    """Owner recorded in a claim file, or ``None`` if unreadable."""
    try:
        payload = json.loads(Path(path).read_bytes())
    except (OSError, json.JSONDecodeError, UnicodeDecodeError):
        return None
    owner = payload.get("owner") if isinstance(payload, dict) else None
    return str(owner) if owner is not None else None


class Heartbeat:
    """Context manager touching a held claim from a daemon thread.

    ``lost`` flips to ``True`` if a touch ever fails — the claim was
    stolen from under us — at which point the thread stops and the
    holder should abandon (not publish) its work where possible.
    """

    def __init__(self, path, interval: float = DEFAULT_HEARTBEAT):
        self.path = Path(path)
        self.interval = float(interval)
        self.lost = False
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            if not heartbeat(self.path):
                self.lost = True
                return

    def __enter__(self) -> "Heartbeat":
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join()


def acquire_blocking(path, owner: str, *, timeout: float,
                     poll: float = 0.005,
                     stale_after: float = DEFAULT_STALE_AFTER) -> bool:
    """Spin on :func:`try_claim` until acquired or ``timeout`` elapses.

    Meant for short-lived critical sections (the shard manifest lock),
    where the hold time is milliseconds and a bounded wait beats
    failing fast.
    """
    deadline = time.monotonic() + float(timeout)
    while True:
        if try_claim(path, owner, stale_after=stale_after):
            return True
        if time.monotonic() >= deadline:
            return False
        time.sleep(poll)
