"""Process-pool experiment runner with caching and kernel observability.

``ALL_EXPERIMENTS`` is embarrassingly parallel — every figure/table
builds its own handsets and traces — yet the sequential runner serialises
roughly two minutes of independent work.  This module fans experiments
(and ablations, and capacity sweeps) out across worker processes while
keeping three guarantees:

- **determinism**: each task's seed derives from ``(root_seed, task id)``
  via :func:`repro.runtime.seeding.task_seed`, so output is independent
  of worker count, scheduling order, and which subset of tasks runs.
  ``--parallel 8`` is byte-identical to ``--parallel 1``.
- **idempotence**: with a :class:`repro.runtime.cache.ResultCache`, a
  task whose (id, params, code version) triple already has an entry is
  skipped and served from disk.
- **attribution**: every task reports kernel counters (events processed,
  cancellations, peak queue depth) and the wall-clock/sim-time ratio,
  collected via :mod:`repro.runtime.observability`.
"""

from __future__ import annotations

import time as _time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.runtime.cache import ResultCache, cache_key, code_version_hash
from repro.runtime.observability import SimRunStats, collecting
from repro.runtime.seeding import DEFAULT_ROOT_SEED, task_seed

KIND_EXPERIMENT = "experiment"
KIND_ABLATION = "ablation"
KIND_FAULTS = "faults"
KIND_ABLATE = "ablate"


def _experiment_registry() -> "Dict[str, Tuple[str, Callable]]":
    # Imported lazily: repro.experiments pulls in every figure module,
    # which this module's importers (the kernel-adjacent ones) must not.
    from repro.experiments.runner import ALL_EXPERIMENTS

    return {task_id: (title, runner)
            for task_id, title, runner in ALL_EXPERIMENTS}


def _ablation_registry() -> "Dict[str, Tuple[str, Callable]]":
    from repro.experiments.ablations import ALL_ABLATIONS

    return {name: (f"Ablation: {name}", runner)
            for name, runner in ALL_ABLATIONS.items()}


def _faults_registry() -> "Dict[str, Tuple[str, Callable]]":
    from repro.experiments.fig_sensitivity import SWEEP_TASKS

    return {name: (title, runner) for name, title, runner in SWEEP_TASKS}


def _ablate_registry() -> "Dict[str, Tuple[str, Callable]]":
    from repro.ablation.engine import standard_study_registry

    return standard_study_registry()


_REGISTRIES = {
    KIND_EXPERIMENT: _experiment_registry,
    KIND_ABLATION: _ablation_registry,
    KIND_FAULTS: _faults_registry,
    KIND_ABLATE: _ablate_registry,
}


def registry_for(kind: str) -> "Dict[str, Tuple[str, Callable]]":
    """Public registry lookup (used by the profiling harness)."""
    return _REGISTRIES[kind]()


@dataclass(frozen=True)
class TaskResult:
    """One completed (or cache-served) task."""

    task_id: str
    kind: str
    title: str
    seed: int
    report: str
    wall_time: float
    kernel: SimRunStats
    cached: bool = False

    def to_dict(self) -> Dict[str, Any]:
        row: Dict[str, Any] = {
            "task_id": self.task_id,
            "kind": self.kind,
            "title": self.title,
            "seed": self.seed,
            "cached": self.cached,
            "wall_time": self.wall_time,
            "report": self.report,
        }
        row.update(self.kernel.to_dict())
        return row

    @classmethod
    def from_dict(cls, payload: Dict[str, Any],
                  cached: bool = False) -> "TaskResult":
        return cls(
            task_id=payload["task_id"],
            kind=payload["kind"],
            title=payload["title"],
            seed=payload["seed"],
            report=payload["report"],
            wall_time=payload["wall_time"],
            kernel=SimRunStats(
                events_processed=int(payload.get("events_processed", 0)),
                cancellations=int(payload.get("cancellations", 0)),
                peak_queue_depth=int(payload.get("peak_queue_depth", 0)),
                sim_time=float(payload.get("sim_time", 0.0)),
                wall_time=float(payload.get("wall_time", 0.0)),
                faults_injected=int(payload.get("faults_injected", 0)),
                transfer_retries=int(payload.get("transfer_retries", 0)),
                work_units=int(payload.get("work_units", 0)),
                stream_blocks=int(payload.get("stream_blocks", 0)),
                stream_merges=int(payload.get("stream_merges", 0)),
                stream_spills=int(payload.get("stream_spills", 0)),
                stream_shard_bytes=int(
                    payload.get("stream_shard_bytes", 0)),
                stream_peak_carried_bytes=int(
                    payload.get("stream_peak_carried_bytes", 0))),
            cached=cached)


@dataclass
class SuiteReport:
    """Every task's report plus the run's own runtime metrics."""

    results: List[TaskResult]
    processes: int
    root_seed: int
    total_wall_time: float
    code_version: str = field(default_factory=code_version_hash)

    @property
    def n_cached(self) -> int:
        return sum(1 for result in self.results if result.cached)

    def render(self) -> str:
        """The experiment reports, in canonical registry order."""
        blocks: List[str] = []
        for result in self.results:
            blocks.append(f"== {result.task_id}: {result.title} ==")
            blocks.append(result.report)
            blocks.append("")
        return "\n".join(blocks)

    def render_summary(self) -> str:
        """One line per task: where the wall-clock went."""
        lines = [f"-- runtime: {len(self.results)} tasks, "
                 f"{self.n_cached} cached, {self.processes} workers, "
                 f"{self.total_wall_time:.2f}s wall --"]
        for result in self.results:
            source = "cache" if result.cached else "run"
            kernel = result.kernel
            lines.append(
                f"  {result.task_id:10s} {result.wall_time:7.2f}s "
                f"[{source:5s}]  {kernel.events_processed:8d} events  "
                f"{kernel.cancellations:6d} cancels  "
                f"depth {kernel.peak_queue_depth:4d}  "
                f"sim/real {kernel.sim_time_ratio:9.1f}x")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "suite": {
                "n_tasks": len(self.results),
                "n_cached": self.n_cached,
                "processes": self.processes,
                "root_seed": self.root_seed,
                "code_version": self.code_version,
                "total_wall_time": self.total_wall_time,
            },
            "tasks": [result.to_dict() for result in self.results],
        }


def _warm_worker() -> None:
    """Pool-worker initializer: pre-generate the page corpus.

    Every experiment/ablation/faults task starts from the Table 3 pages;
    warming the process-local corpus memo at worker startup (overlapping
    with pool spin-up) means no task pays page generation mid-run, and a
    worker's second task never regenerates what its first one built.
    """
    from repro.webpages.corpus import warm_corpus

    warm_corpus()


def _execute_task(kind: str, task_id: str, seed: int) -> Dict[str, Any]:
    """Worker entry point: run one task and return its payload dict.

    Runs in a pool worker (or inline for ``processes=1``).  The legacy
    global NumPy stream is re-seeded from the task seed so any code path
    still drawing from ``np.random`` is reproducible regardless of which
    worker picks the task up or what ran in that worker before.
    """
    title, runner = _REGISTRIES[kind]()[task_id]
    np.random.seed(seed % (2 ** 32))
    started = _time.perf_counter()
    with collecting() as collector:
        if getattr(runner, "needs_seed", False):
            # Seed-aware runners (the faults sweep) derive their own
            # per-unit child streams from the task seed explicitly.
            report = runner(seed=seed).report()
        else:
            report = runner().report()
    wall_time = _time.perf_counter() - started
    kernel = collector.snapshot()
    payload = {
        "task_id": task_id,
        "kind": kind,
        "title": title,
        "seed": seed,
        "report": report,
        "wall_time": wall_time,
    }
    payload.update(kernel.to_dict())
    # wall_time in the kernel record is time inside Simulator.run only;
    # the task-level wall_time above wins for the flat payload.
    payload["wall_time"] = wall_time
    return payload


def _task_params(seed: int) -> Dict[str, Any]:
    return {"seed": seed}


def run_tasks(kind: str,
              ids: Optional[Sequence[str]] = None,
              processes: int = 1,
              cache: Optional[ResultCache] = None,
              root_seed: int = DEFAULT_ROOT_SEED) -> SuiteReport:
    """Run a batch of registered tasks, possibly in parallel.

    ``ids=None`` means every task in the registry, in registry order —
    results always come back in that canonical order, whatever order the
    workers finish in.  Unknown ids raise ``KeyError`` before any work
    starts.
    """
    if processes < 1:
        raise ValueError(f"processes must be >= 1, got {processes}")
    registry = _REGISTRIES[kind]()
    if ids is None or not ids:
        selected = list(registry)
    else:
        unknown = [task_id for task_id in ids if task_id not in registry]
        if unknown:
            raise KeyError(
                f"unknown {kind} ids: {sorted(unknown)}; "
                f"known: {sorted(registry)}")
        # Canonical order + dedup, whatever order the caller typed.
        requested = set(ids)
        selected = [task_id for task_id in registry
                    if task_id in requested]

    started = _time.perf_counter()
    code_version = code_version_hash()
    seeds = {task_id: task_seed(root_seed, f"{kind}:{task_id}")
             for task_id in selected}

    results: Dict[str, TaskResult] = {}
    pending: List[str] = []
    keys: Dict[str, str] = {}
    for task_id in selected:
        if cache is not None:
            key = cache_key(kind, task_id, _task_params(seeds[task_id]),
                            code_version)
            keys[task_id] = key
            hit = cache.get(key)
            if hit is not None:
                results[task_id] = TaskResult.from_dict(hit, cached=True)
                continue
        pending.append(task_id)

    if pending:
        if processes == 1 or len(pending) == 1:
            payloads = [_execute_task(kind, task_id, seeds[task_id])
                        for task_id in pending]
        else:
            workers = min(processes, len(pending))
            with ProcessPoolExecutor(max_workers=workers,
                                     initializer=_warm_worker) as pool:
                futures = [pool.submit(_execute_task, kind, task_id,
                                       seeds[task_id])
                           for task_id in pending]
                payloads = [future.result() for future in futures]
        for payload in payloads:
            task_id = payload["task_id"]
            if cache is not None:
                cache.put(keys[task_id], payload)
            results[task_id] = TaskResult.from_dict(payload)

    return SuiteReport(
        results=[results[task_id] for task_id in selected],
        processes=processes,
        root_seed=root_seed,
        total_wall_time=_time.perf_counter() - started,
        code_version=code_version)


def run_experiments(ids: Optional[Sequence[str]] = None,
                    processes: int = 1,
                    cache: Optional[ResultCache] = None,
                    root_seed: int = DEFAULT_ROOT_SEED) -> SuiteReport:
    """Fan the figure/table suite out across ``processes`` workers."""
    return run_tasks(KIND_EXPERIMENT, ids, processes, cache, root_seed)


def run_ablations(names: Optional[Sequence[str]] = None,
                  processes: int = 1,
                  cache: Optional[ResultCache] = None,
                  root_seed: int = DEFAULT_ROOT_SEED) -> SuiteReport:
    """Fan the ablation studies out across ``processes`` workers."""
    return run_tasks(KIND_ABLATION, names, processes, cache, root_seed)


def run_faults_sweep(names: Optional[Sequence[str]] = None,
                     processes: int = 1,
                     cache: Optional[ResultCache] = None,
                     root_seed: int = DEFAULT_ROOT_SEED) -> SuiteReport:
    """Fan the channel-sensitivity sweep out across ``processes`` workers.

    One task per channel profile; each task's per-page seeds derive from
    its task seed, so reports are byte-identical across worker counts.
    """
    return run_tasks(KIND_FAULTS, names, processes, cache, root_seed)


def _run_capacity_point(simulator, n_users: int, seed: int):
    return simulator.run(n_users, seed=seed)


#: Worker-process simulator built by :func:`_attach_fleet_worker`.
_FLEET_STATE: dict = {}


def _attach_fleet_worker(simulator_cls, spec, config) -> None:
    """Pool initializer: map the shared service pool, build the
    simulator once.  Everything after this ships per task is two ints."""
    from repro.runtime.shm import SharedArray

    shared = SharedArray.attach(spec)
    _FLEET_STATE["shared"] = shared
    _FLEET_STATE["simulator"] = simulator_cls(shared.array, config)


def _run_fleet_point(n_users: int, seed: int):
    return _FLEET_STATE["simulator"].run(n_users, seed=seed)


def parallel_fleet_sweep(simulator, user_counts: Sequence[int],
                         processes: int = 1,
                         seed: Optional[int] = None,
                         common_random_numbers: bool = False) -> list:
    """:func:`parallel_sweep` without the per-task pickling.

    The simulator's service-time pool goes into one
    :class:`repro.runtime.shm.SharedArray` segment; workers map it
    read-only at pool start-up and rebuild the simulator locally (the
    constructors take ``ndarray`` inputs in place), so each task's
    payload is just ``(n_users, seed)``.  Results are byte-identical to
    :meth:`CapacitySimulator.sweep` — same seed derivation, same runs.
    """
    from repro.runtime.shm import SharedArray

    counts = list(user_counts)
    seeds = simulator.sweep_seeds(len(counts), seed=seed,
                                  common_random_numbers=common_random_numbers)
    if processes <= 1 or len(counts) <= 1:
        return [simulator.run(n, seed=s) for n, s in zip(counts, seeds)]
    workers = min(processes, len(counts))
    shared = SharedArray.create(simulator.service_times)
    try:
        with ProcessPoolExecutor(
                max_workers=workers,
                initializer=_attach_fleet_worker,
                initargs=(type(simulator), shared.spec,
                          simulator.config)) as pool:
            futures = [pool.submit(_run_fleet_point, n, s)
                       for n, s in zip(counts, seeds)]
            return [future.result() for future in futures]
    finally:
        shared.close()
        shared.unlink()


#: Worker-process state built by :func:`_attach_stream_worker`.
_STREAM_STATE: dict = {}


def _attach_stream_worker(spec, config, options) -> None:
    """Pool initializer for stream-sweep points: map the shared pool
    once; each task then ships only ``(n_users, seed)``."""
    from repro.runtime.shm import SharedArray

    shared = SharedArray.attach(spec)
    _STREAM_STATE["shared"] = shared
    _STREAM_STATE["pool"] = shared.array
    _STREAM_STATE["config"] = config
    _STREAM_STATE["options"] = options


def _run_stream_point(n_users: int, seed: int):
    from repro.capacity.simulator import CapacitySimulator
    from repro.stream.sweep import sweep_point

    simulator = CapacitySimulator(_STREAM_STATE["pool"],
                                  _STREAM_STATE["config"])
    with collecting() as stats:
        point = sweep_point(simulator, n_users, seed,
                            **_STREAM_STATE["options"])
    return point, stats.snapshot()


def parallel_stream_points(simulator, user_counts: Sequence[int],
                           seeds: Sequence[int], processes: int = 1,
                           **options) -> list:
    """Fan stream-sweep points across worker processes.

    Same shared-memory shape as :func:`parallel_fleet_sweep`; the
    workers' stream counters fold back into this process's
    :data:`~repro.runtime.observability.KERNEL_STATS` so the sweep's
    runtime report sees blocks/spills from every process.  Per-point
    shard subdirectories (chosen by the caller) keep workers from
    racing on a shared manifest.

    Points are *submitted* largest ``n_users`` first: a sweep's point
    costs scale with its session count, and submission order is the
    only scheduling lever a process pool offers — caller order put the
    most expensive points (the knee and beyond, listed last) at the
    tail of the queue, where one of them routinely ran alone while
    every other worker sat idle.  Results are restored to caller order
    before returning, so the reordering is invisible in the output.
    """
    from repro.runtime.observability import KERNEL_STATS
    from repro.runtime.shm import SharedArray

    counts = list(user_counts)
    order = sorted(range(len(counts)), key=lambda i: -counts[i])
    workers = min(processes, len(counts))
    shared = SharedArray.create(simulator.service_times)
    try:
        with ProcessPoolExecutor(
                max_workers=workers,
                initializer=_attach_stream_worker,
                initargs=(shared.spec, simulator.config,
                          dict(options))) as pool:
            futures = {i: pool.submit(_run_stream_point, counts[i],
                                      seeds[i])
                       for i in order}
            outcomes = [futures[i].result()
                        for i in range(len(counts))]
    finally:
        shared.close()
        shared.unlink()
    for _, stats in outcomes:
        KERNEL_STATS.accumulate(stats)
    return [point for point, _ in outcomes]


def parallel_sweep(simulator, user_counts: Sequence[int],
                   processes: int = 1,
                   seed: Optional[int] = None,
                   common_random_numbers: bool = False) -> list:
    """Parallel ``CapacitySimulator.sweep`` with identical results.

    Seeds are derived exactly as :meth:`CapacitySimulator.sweep_seeds`
    does, *before* fanning out, so the parallel sweep returns the same
    list the sequential one would.  Works with any simulator exposing
    ``run(n_users, seed=...)`` and ``sweep_seeds`` semantics; simulators
    are pickled once per task, which is cheap next to a multi-hour-horizon
    run.
    """
    counts = list(user_counts)
    seeds = simulator.sweep_seeds(len(counts), seed=seed,
                                  common_random_numbers=common_random_numbers)
    if processes <= 1 or len(counts) <= 1:
        return [simulator.run(n, seed=s) for n, s in zip(counts, seeds)]
    workers = min(processes, len(counts))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [pool.submit(_run_capacity_point, simulator, n, s)
                   for n, s in zip(counts, seeds)]
        return [future.result() for future in futures]
