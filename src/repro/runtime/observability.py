"""Kernel observability: per-run counters and a process-wide collector.

The simulation kernel (:mod:`repro.sim.kernel`) reports a
:class:`SimRunStats` record to :data:`KERNEL_STATS` every time
``Simulator.run`` returns.  Harnesses that want to attribute kernel work
to a unit of their own — one experiment in the parallel runner, one
benchmark round — bracket that unit with :meth:`KernelStatsCollector.
reset` / :meth:`KernelStatsCollector.snapshot` (or the
:func:`collecting` context manager) and read the aggregate.

This module deliberately imports nothing from the rest of the library so
the kernel can depend on it without creating an import cycle.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator


@dataclass(frozen=True)
class SimRunStats:
    """Counters from one ``Simulator.run`` call (or one lifetime)."""

    #: Callbacks executed.
    events_processed: int = 0
    #: Events cancelled via ``Simulator.cancel``.
    cancellations: int = 0
    #: Largest number of live events queued at once.
    peak_queue_depth: int = 0
    #: Simulated seconds the clock advanced.
    sim_time: float = 0.0
    #: Real seconds spent inside the event loop.
    wall_time: float = 0.0
    #: Impairments injected by :mod:`repro.faults` (losses, timeouts,
    #: RIL drops/delays, promotion spikes, dormancy failures).
    faults_injected: int = 0
    #: Transfer retries issued in response to impairments.
    transfer_retries: int = 0
    #: Domain work units performed outside the event loop: samples
    #: scanned by GBRT split search, rows predicted, trace records
    #: generated, fleet array cells advanced.  Gives benchmarks whose
    #: cost is dominated by non-kernel work (model fitting, batched
    #: accounting) a non-zero denominator in the regression gate.
    work_units: int = 0
    #: Blocks processed by the streaming pipeline (repro.stream).
    stream_blocks: int = 0
    #: Aggregator ``merge()`` calls performed by streaming drivers.
    stream_merges: int = 0
    #: Shards spilled to disk (checkpoints and finals).
    stream_spills: int = 0
    #: Bytes written to shard files.
    stream_shard_bytes: int = 0
    #: Largest carried state (drop carry + aggregate) between any two
    #: blocks, in bytes — the streaming memory claim, measured.
    stream_peak_carried_bytes: int = 0
    #: Work units (block ranges) executed by the distributed scheduler.
    sched_units: int = 0
    #: Blocks re-resolved by the carry-chain stitch before the replayed
    #: frontier coincided with the speculative one.
    sched_replay_blocks: int = 0
    #: Stale claims stolen from crashed (or paused) workers.
    sched_steals: int = 0
    #: Requests answered by the serving layer (repro.serve).
    serve_requests: int = 0
    #: Micro-batches the serving layer executed (each one fleet call).
    serve_batches: int = 0
    #: Requests that rode another request's computation — duplicates
    #: coalesced by the micro-batcher within one window.
    serve_coalesced: int = 0

    @property
    def sim_time_ratio(self) -> float:
        """Simulated seconds per real second (speed-up factor).

        The headline "runs as fast as the hardware allows" metric: a
        ratio of 1000 means one wall-clock second simulates 1000 seconds
        of device time.  Zero wall time (nothing ran) reports 0.
        """
        if self.wall_time <= 0.0:
            return 0.0
        return self.sim_time / self.wall_time

    def merged(self, other: "SimRunStats") -> "SimRunStats":
        """Combine two records: sums for flows, max for the peak."""
        return SimRunStats(
            events_processed=self.events_processed + other.events_processed,
            cancellations=self.cancellations + other.cancellations,
            peak_queue_depth=max(self.peak_queue_depth,
                                 other.peak_queue_depth),
            sim_time=self.sim_time + other.sim_time,
            wall_time=self.wall_time + other.wall_time,
            faults_injected=self.faults_injected + other.faults_injected,
            transfer_retries=self.transfer_retries
            + other.transfer_retries,
            work_units=self.work_units + other.work_units,
            stream_blocks=self.stream_blocks + other.stream_blocks,
            stream_merges=self.stream_merges + other.stream_merges,
            stream_spills=self.stream_spills + other.stream_spills,
            stream_shard_bytes=self.stream_shard_bytes
            + other.stream_shard_bytes,
            stream_peak_carried_bytes=max(
                self.stream_peak_carried_bytes,
                other.stream_peak_carried_bytes),
            sched_units=self.sched_units + other.sched_units,
            sched_replay_blocks=self.sched_replay_blocks
            + other.sched_replay_blocks,
            sched_steals=self.sched_steals + other.sched_steals,
            serve_requests=self.serve_requests + other.serve_requests,
            serve_batches=self.serve_batches + other.serve_batches,
            serve_coalesced=self.serve_coalesced
            + other.serve_coalesced)

    def to_dict(self) -> Dict[str, float]:
        """Flat dict for JSON/CSV report rows."""
        return {
            "events_processed": self.events_processed,
            "cancellations": self.cancellations,
            "peak_queue_depth": self.peak_queue_depth,
            "sim_time": self.sim_time,
            "wall_time": self.wall_time,
            "sim_time_ratio": self.sim_time_ratio,
            "faults_injected": self.faults_injected,
            "transfer_retries": self.transfer_retries,
            "work_units": self.work_units,
            "stream_blocks": self.stream_blocks,
            "stream_merges": self.stream_merges,
            "stream_spills": self.stream_spills,
            "stream_shard_bytes": self.stream_shard_bytes,
            "stream_peak_carried_bytes": self.stream_peak_carried_bytes,
            "sched_units": self.sched_units,
            "sched_replay_blocks": self.sched_replay_blocks,
            "sched_steals": self.sched_steals,
            "serve_requests": self.serve_requests,
            "serve_batches": self.serve_batches,
            "serve_coalesced": self.serve_coalesced,
        }


class KernelStatsCollector:
    """Aggregates :class:`SimRunStats` across every simulator in-process.

    Thread-safe: benchmarks and the inline (``--parallel 1``) runner may
    drive simulators from worker threads.  In the process-pool runner
    each worker process has its own collector, which is exactly the
    per-task attribution we want.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._events_processed = 0
        self._cancellations = 0
        self._peak_queue_depth = 0
        self._sim_time = 0.0
        self._wall_time = 0.0
        self._faults_injected = 0
        self._transfer_retries = 0
        self._work_units = 0
        self._stream_blocks = 0
        self._stream_merges = 0
        self._stream_spills = 0
        self._stream_shard_bytes = 0
        self._stream_peak_carried_bytes = 0
        self._sched_units = 0
        self._sched_replay_blocks = 0
        self._sched_steals = 0
        self._serve_requests = 0
        self._serve_batches = 0
        self._serve_coalesced = 0
        self._runs = 0

    def record_run(self, events_processed: int, cancellations: int,
                   peak_queue_depth: int, sim_time: float,
                   wall_time: float) -> None:
        """Fold one run's counters into the aggregate.

        This is the kernel's hot exit path — many experiments drive
        thousands of short ``Simulator.run`` calls — so it takes plain
        numbers and touches plain counters; a :class:`SimRunStats`
        record is only materialised when someone asks for a
        :meth:`snapshot`.
        """
        with self._lock:
            self._events_processed += events_processed
            self._cancellations += cancellations
            if peak_queue_depth > self._peak_queue_depth:
                self._peak_queue_depth = peak_queue_depth
            self._sim_time += sim_time
            self._wall_time += wall_time
            self._runs += 1

    def record_work(self, units: int) -> None:
        """Count domain work performed outside the event loop.

        Cheap enough for hot paths: one lock round-trip per *batch* of
        work (a whole ``fit``, a whole vectorised sweep), never per
        element.
        """
        with self._lock:
            self._work_units += int(units)

    def record_stream(self, blocks: int = 0, merges: int = 0,
                      spills: int = 0, shard_bytes: int = 0,
                      carried_bytes: int = 0) -> None:
        """Fold streaming-pipeline counters in (one call per block or
        spill, never per element).  ``carried_bytes`` updates the peak.
        """
        with self._lock:
            self._stream_blocks += int(blocks)
            self._stream_merges += int(merges)
            self._stream_spills += int(spills)
            self._stream_shard_bytes += int(shard_bytes)
            if carried_bytes > self._stream_peak_carried_bytes:
                self._stream_peak_carried_bytes = int(carried_bytes)

    def record_sched(self, units: int = 0, replay_blocks: int = 0,
                     steals: int = 0) -> None:
        """Fold distributed-scheduler counters in (one call per work
        unit, stitch pass, or steal — never per block)."""
        with self._lock:
            self._sched_units += int(units)
            self._sched_replay_blocks += int(replay_blocks)
            self._sched_steals += int(steals)

    def record_serve(self, requests: int = 0, batches: int = 0,
                     coalesced: int = 0) -> None:
        """Fold serving-layer counters in (one call per request or
        per executed micro-batch — never inside the fleet kernels)."""
        with self._lock:
            self._serve_requests += int(requests)
            self._serve_batches += int(batches)
            self._serve_coalesced += int(coalesced)

    def record(self, stats: SimRunStats) -> None:
        """Fold one run's counters into the aggregate (record form)."""
        with self._lock:
            self._fold(stats)
            self._runs += 1

    def accumulate(self, stats: SimRunStats) -> None:
        """Fold counters in without counting a run.

        Used by out-of-kernel instrumentation — the fault injector
        reports impairments as they happen, which must not inflate
        :attr:`runs_recorded`.
        """
        with self._lock:
            self._fold(stats)

    def _fold(self, stats: SimRunStats) -> None:
        # Caller holds the lock.
        self._events_processed += stats.events_processed
        self._cancellations += stats.cancellations
        if stats.peak_queue_depth > self._peak_queue_depth:
            self._peak_queue_depth = stats.peak_queue_depth
        self._sim_time += stats.sim_time
        self._wall_time += stats.wall_time
        self._faults_injected += stats.faults_injected
        self._transfer_retries += stats.transfer_retries
        self._work_units += stats.work_units
        self._stream_blocks += stats.stream_blocks
        self._stream_merges += stats.stream_merges
        self._stream_spills += stats.stream_spills
        self._stream_shard_bytes += stats.stream_shard_bytes
        if stats.stream_peak_carried_bytes \
                > self._stream_peak_carried_bytes:
            self._stream_peak_carried_bytes = \
                stats.stream_peak_carried_bytes
        self._sched_units += stats.sched_units
        self._sched_replay_blocks += stats.sched_replay_blocks
        self._sched_steals += stats.sched_steals
        self._serve_requests += stats.serve_requests
        self._serve_batches += stats.serve_batches
        self._serve_coalesced += stats.serve_coalesced

    def reset(self) -> None:
        """Zero the aggregate (start of a new attribution window)."""
        with self._lock:
            self._events_processed = 0
            self._cancellations = 0
            self._peak_queue_depth = 0
            self._sim_time = 0.0
            self._wall_time = 0.0
            self._faults_injected = 0
            self._transfer_retries = 0
            self._work_units = 0
            self._stream_blocks = 0
            self._stream_merges = 0
            self._stream_spills = 0
            self._stream_shard_bytes = 0
            self._stream_peak_carried_bytes = 0
            self._sched_units = 0
            self._sched_replay_blocks = 0
            self._sched_steals = 0
            self._serve_requests = 0
            self._serve_batches = 0
            self._serve_coalesced = 0
            self._runs = 0

    def snapshot(self) -> SimRunStats:
        """The aggregate since the last :meth:`reset`."""
        with self._lock:
            return SimRunStats(
                events_processed=self._events_processed,
                cancellations=self._cancellations,
                peak_queue_depth=self._peak_queue_depth,
                sim_time=self._sim_time,
                wall_time=self._wall_time,
                faults_injected=self._faults_injected,
                transfer_retries=self._transfer_retries,
                work_units=self._work_units,
                stream_blocks=self._stream_blocks,
                stream_merges=self._stream_merges,
                stream_spills=self._stream_spills,
                stream_shard_bytes=self._stream_shard_bytes,
                stream_peak_carried_bytes=self
                ._stream_peak_carried_bytes,
                sched_units=self._sched_units,
                sched_replay_blocks=self._sched_replay_blocks,
                sched_steals=self._sched_steals,
                serve_requests=self._serve_requests,
                serve_batches=self._serve_batches,
                serve_coalesced=self._serve_coalesced)

    @property
    def runs_recorded(self) -> int:
        """Number of ``Simulator.run`` calls folded in so far."""
        with self._lock:
            return self._runs


#: Process-wide collector the kernel reports into.
KERNEL_STATS = KernelStatsCollector()


@contextmanager
def collecting() -> Iterator[KernelStatsCollector]:
    """Reset :data:`KERNEL_STATS`, yield it, leave the aggregate readable.

    The pattern used around one experiment::

        with collecting() as stats:
            result = experiment.run()
        kernel_metrics = stats.snapshot()
    """
    KERNEL_STATS.reset()
    yield KERNEL_STATS
