"""Parallel execution, result caching, and observability for the suite.

Layout:

- :mod:`repro.runtime.observability` — kernel counters and the
  process-wide collector ``Simulator.run`` reports into;
- :mod:`repro.runtime.seeding` — deterministic seed derivation
  (``SeedSequence`` positional spawns and keyed task seeds);
- :mod:`repro.runtime.cache` — content-addressed on-disk result cache
  keyed by task, parameters, and a code-version hash;
- :mod:`repro.runtime.report` — JSON/CSV export of suite runs;
- :mod:`repro.runtime.parallel` — the process-pool runner itself
  (imported on demand: it reaches into :mod:`repro.experiments`, which
  the sim kernel — an importer of this package — must not).
"""

from __future__ import annotations

from repro.runtime.cache import ResultCache, cache_key, code_version_hash
from repro.runtime.observability import (
    KERNEL_STATS,
    KernelStatsCollector,
    SimRunStats,
    collecting,
)
from repro.runtime.report import write_csv_report, write_json_report, write_report
from repro.runtime.seeding import (
    DEFAULT_ROOT_SEED,
    spawn_seeds,
    task_seed,
    task_seeds,
)

__all__ = [
    "ResultCache",
    "cache_key",
    "code_version_hash",
    "KERNEL_STATS",
    "KernelStatsCollector",
    "SimRunStats",
    "collecting",
    "write_csv_report",
    "write_json_report",
    "write_report",
    "DEFAULT_ROOT_SEED",
    "spawn_seeds",
    "task_seed",
    "task_seeds",
]
