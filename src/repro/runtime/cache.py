"""Content-addressed on-disk cache for experiment results.

A cache entry is keyed by the SHA-256 of everything that could change the
result:

- the task kind and identifier (``experiment:fig08``),
- the task parameters (seed, config overrides) in canonical JSON,
- the **code version** — a digest over every ``.py`` file in the
  installed ``repro`` package.

Any source edit therefore invalidates the whole cache; no staleness
heuristics, no mtime races.  Entries are small JSON documents (the
rendered report plus runtime metrics), written atomically so a killed
run never leaves a torn entry behind.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional

#: Default cache location, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro-cache"

_code_version_memo: Optional[str] = None


def code_version_hash() -> str:
    """Digest of the installed ``repro`` package's Python source.

    Memoised per process: the source cannot change underneath a running
    interpreter in any way that matters to already-imported modules.
    """
    global _code_version_memo
    if _code_version_memo is None:
        import repro

        root = Path(repro.__file__).parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode("utf-8"))
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _code_version_memo = digest.hexdigest()
    return _code_version_memo


def cache_key(kind: str, task_id: str, params: Dict[str, Any],
              code_version: Optional[str] = None) -> str:
    """Content hash identifying one task execution."""
    payload = json.dumps(
        {
            "kind": kind,
            "task_id": task_id,
            "params": params,
            "code_version": code_version or code_version_hash(),
        },
        sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ResultCache:
    """Directory of ``<key>.json`` entries, one per completed task."""

    def __init__(self, root: Optional[os.PathLike] = None) -> None:
        self.root = Path(root) if root is not None else Path(DEFAULT_CACHE_DIR)

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """Return the cached payload for ``key``, or ``None`` on a miss.

        A corrupt entry (torn write from a hard kill, manual edit) is
        treated as a miss and removed so it gets regenerated.
        """
        path = self._path(key)
        try:
            with path.open("r", encoding="utf-8") as handle:
                return json.load(handle)
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, OSError):
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        """Atomically persist ``payload`` under ``key``."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._path(key)
        fd, tmp_name = tempfile.mkstemp(dir=str(self.root),
                                        suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def __contains__(self, key: str) -> bool:
        return self._path(key).is_file()

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.json"))

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed
