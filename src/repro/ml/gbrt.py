"""Gradient tree boosting (the paper's Algorithm 1).

The model is F(x) = F0 + ν Σ_m Σ_j γ_jm 1(x ∈ R_jm):

1. F0 is the loss-optimal constant (mean for L2, median for LAD);
2. each round fits a J-terminal-node regression tree to the pseudo-
   residuals −∂L/∂F;
3. each leaf's value is replaced by the loss's line-search optimum γ_jm
   over the samples in that region;
4. the tree's contribution is shrunk by the learning rate ν.

Optional stochastic subsampling draws a fraction of the training set per
round (the leaf line-search still uses only the drawn samples).
"""

from __future__ import annotations

import os
from typing import Iterator, List, Optional

import numpy as np

from repro.ml.losses import Loss, SquaredLoss
from repro.ml.tree import _SLOW_GBRT_ENV, RegressionTree
from repro.runtime.observability import KERNEL_STATS


class GradientBoostedRegressor:
    """Boosted ensemble of J-terminal-node regression trees."""

    def __init__(self, n_estimators: int = 300, max_leaves: int = 8,
                 learning_rate: float = 0.05, subsample: float = 1.0,
                 min_samples_leaf: int = 5, loss: Optional[Loss] = None,
                 random_state: Optional[int] = None):
        if n_estimators < 1:
            raise ValueError("n_estimators must be at least 1")
        if not 0.0 < learning_rate <= 1.0:
            raise ValueError("learning_rate must be in (0, 1]")
        if not 0.0 < subsample <= 1.0:
            raise ValueError("subsample must be in (0, 1]")
        self.n_estimators = n_estimators
        self.max_leaves = max_leaves
        self.learning_rate = learning_rate
        self.subsample = subsample
        self.min_samples_leaf = min_samples_leaf
        self.loss = loss or SquaredLoss()
        self.random_state = random_state

        self.init_: Optional[float] = None
        self.trees_: List[RegressionTree] = []
        self.train_losses_: List[float] = []
        self.n_features_: Optional[int] = None

    # ------------------------------------------------------------------
    def fit(self, x: np.ndarray, y: np.ndarray) -> "GradientBoostedRegressor":
        """Fit the ensemble to ``x`` (n, d), ``y`` (n,)."""
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if x.ndim != 2 or y.shape != (x.shape[0],):
            raise ValueError("x must be (n, d) and y (n,)")
        if x.shape[0] < 2:
            raise ValueError("need at least two training samples")
        rng = np.random.default_rng(self.random_state)
        n = x.shape[0]
        self.n_features_ = x.shape[1]

        self.init_ = self.loss.init_estimate(y)
        prediction = np.full(n, self.init_, dtype=float)
        self.trees_ = []
        self.train_losses_ = []

        slow = bool(os.environ.get(_SLOW_GBRT_ENV))
        full_sample = self.subsample >= 1.0
        # The feature matrix never changes between rounds when every
        # round trains on the full sample, so the stable argsort the
        # split search needs is paid once here, not once per round.
        presorted = (np.argsort(x, axis=0, kind="stable")
                     if full_sample and not slow else None)

        for _ in range(self.n_estimators):
            if full_sample:
                # Avoid n-sized fancy-index copies of x/y/prediction
                # every round; identical values, the arrays themselves.
                x_round, y_round, pred_round = x, y, prediction
            else:
                size = max(2 * self.min_samples_leaf,
                           int(round(self.subsample * n)))
                chosen = rng.choice(n, size=min(size, n), replace=False)
                x_round = x[chosen]
                y_round = y[chosen]
                pred_round = prediction[chosen]

            residuals = self.loss.negative_gradient(y_round, pred_round)
            tree = RegressionTree(max_leaves=self.max_leaves,
                                  min_samples_leaf=self.min_samples_leaf)
            tree.fit(x_round, residuals, presorted=presorted)

            # Per-leaf line search on the true loss (γ_jm in Algorithm 1).
            regions = tree.apply(x_round)
            leaves = tree.leaves()
            for leaf_id, leaf in enumerate(leaves):
                in_leaf = regions == leaf_id
                if in_leaf.any():
                    leaf.value = self.loss.leaf_value(
                        y_round[in_leaf], pred_round[in_leaf])

            if slow:
                prediction += self.learning_rate * tree.predict(x)
            else:
                # tree.predict(x) would re-partition x; the regions are
                # already known (identically) from apply, so look the
                # leaf values up instead.  Full sample: reuse the
                # line-search regions outright.
                regions_full = regions if full_sample else tree.apply(x)
                leaf_values = np.array([leaf.value for leaf in leaves])
                prediction += self.learning_rate * leaf_values[regions_full]
            self.trees_.append(tree)
            self.train_losses_.append(self.loss.loss(y, prediction))
        # Model fitting never enters the event loop; report its work so
        # benchmarks dominated by training still have a denominator.
        KERNEL_STATS.record_work(
            sum(tree.n_nodes for tree in self.trees_) * n)
        return self

    # ------------------------------------------------------------------
    def _check_fitted(self) -> None:
        if self.init_ is None:
            raise RuntimeError("model is not fitted")

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Vectorised prediction."""
        self._check_fitted()
        x = np.asarray(x, dtype=float)
        if x.ndim == 1:
            x = x.reshape(1, -1)
        out = np.full(x.shape[0], self.init_, dtype=float)
        for tree in self.trees_:
            out += self.learning_rate * tree.predict(x)
        # One lock round-trip per batch; predict_one stays uncounted on
        # purpose — it is the per-element on-phone path Table 7 times.
        KERNEL_STATS.record_work(x.shape[0] * len(self.trees_))
        return out

    def predict_one(self, row) -> float:
        """Scalar prediction by sequential tree traversal — the low-
        overhead on-phone code path the paper times in Table 7."""
        self._check_fitted()
        if isinstance(row, np.ndarray):
            # Hundreds of trees each index the row a handful of times;
            # plain-list indexing returns Python floats without the
            # numpy scalar boxing that dominates the traversal cost.
            row = row.tolist()
        value = self.init_
        rate = self.learning_rate
        for tree in self.trees_:
            value += rate * tree.predict_one(row)
        return value

    def staged_predict(self, x: np.ndarray) -> Iterator[np.ndarray]:
        """Predictions after each boosting round (for tuning M)."""
        self._check_fitted()
        x = np.asarray(x, dtype=float)
        if x.ndim == 1:
            x = x.reshape(1, -1)
        out = np.full(x.shape[0], self.init_, dtype=float)
        for tree in self.trees_:
            out = out + self.learning_rate * tree.predict(x)
            yield out

    # ------------------------------------------------------------------
    # Serialisation (offline training → on-phone deployment, Sec. 4.3.3)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-data representation of the fitted ensemble."""
        self._check_fitted()
        return {
            "init": self.init_,
            "learning_rate": self.learning_rate,
            "n_features": self.n_features_,
            "loss": type(self.loss).__name__,
            "trees": [tree.to_dict() for tree in self.trees_],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "GradientBoostedRegressor":
        """Rebuild a model serialised by :meth:`to_dict`."""
        from repro.ml.losses import AbsoluteLoss, SquaredLoss
        loss = {"SquaredLoss": SquaredLoss,
                "AbsoluteLoss": AbsoluteLoss}[data["loss"]]()
        model = cls(n_estimators=max(1, len(data["trees"])),
                    learning_rate=data["learning_rate"], loss=loss)
        model.init_ = float(data["init"])
        model.n_features_ = int(data["n_features"])
        model.trees_ = [RegressionTree.from_dict(t) for t in data["trees"]]
        return model

    # ------------------------------------------------------------------
    @property
    def feature_importances_(self) -> np.ndarray:
        """Total split gain per feature, normalised to sum to 1."""
        self._check_fitted()
        importances = np.zeros(self.n_features_, dtype=float)
        for tree in self.trees_:
            for feature, gain in tree.split_gains:
                importances[feature] += gain
        total = importances.sum()
        if total > 0:
            importances /= total
        return importances

    @property
    def total_nodes(self) -> int:
        """Total node count across all trees (Table 7's model size)."""
        return sum(tree.n_nodes for tree in self.trees_)
