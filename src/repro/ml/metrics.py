"""Regression and threshold-classification metrics.

``threshold_accuracy`` is the paper's accuracy definition (Section 5.6.1):
a prediction is correct when the predicted and true reading times fall on
the same side of a given threshold (Tp or Td).
"""

from __future__ import annotations

import numpy as np


def _as_arrays(y_true, y_pred):
    y_true = np.asarray(y_true, dtype=float)
    y_pred = np.asarray(y_pred, dtype=float)
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    if y_true.size == 0:
        raise ValueError("metrics need at least one sample")
    return y_true, y_pred


def mean_squared_error(y_true, y_pred) -> float:
    """Mean of squared residuals."""
    y_true, y_pred = _as_arrays(y_true, y_pred)
    return float(np.mean((y_true - y_pred) ** 2))


def mean_absolute_error(y_true, y_pred) -> float:
    """Mean of absolute residuals."""
    y_true, y_pred = _as_arrays(y_true, y_pred)
    return float(np.mean(np.abs(y_true - y_pred)))


def r2_score(y_true, y_pred) -> float:
    """Coefficient of determination (1 − SSE/SST)."""
    y_true, y_pred = _as_arrays(y_true, y_pred)
    sse = float(np.sum((y_true - y_pred) ** 2))
    sst = float(np.sum((y_true - np.mean(y_true)) ** 2))
    if sst == 0:
        return 1.0 if sse == 0 else 0.0
    return 1.0 - sse / sst


def threshold_accuracy(y_true, y_pred, threshold: float) -> float:
    """Fraction of samples where prediction and truth agree on which side
    of ``threshold`` they fall (the paper's prediction accuracy)."""
    y_true, y_pred = _as_arrays(y_true, y_pred)
    return float(np.mean((y_true > threshold) == (y_pred > threshold)))
