"""Dataset splitting utilities (train/test split and K-fold CV)."""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np


def train_test_split(x: np.ndarray, y: np.ndarray, test_fraction: float = 0.3,
                     random_state: Optional[int] = None
                     ) -> Tuple[np.ndarray, np.ndarray, np.ndarray,
                                np.ndarray]:
    """Shuffle and split into (x_train, x_test, y_train, y_test)."""
    x = np.asarray(x)
    y = np.asarray(y)
    if x.shape[0] != y.shape[0]:
        raise ValueError("x and y must have the same number of rows")
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    n = x.shape[0]
    n_test = max(1, int(round(test_fraction * n)))
    if n_test >= n:
        raise ValueError("split leaves no training samples")
    rng = np.random.default_rng(random_state)
    order = rng.permutation(n)
    test_index, train_index = order[:n_test], order[n_test:]
    return x[train_index], x[test_index], y[train_index], y[test_index]


class KFold:
    """Deterministic shuffled K-fold cross-validation indices."""

    def __init__(self, n_splits: int = 5,
                 random_state: Optional[int] = None):
        if n_splits < 2:
            raise ValueError("n_splits must be at least 2")
        self.n_splits = n_splits
        self.random_state = random_state

    def split(self, n_samples: int) -> Iterator[Tuple[np.ndarray,
                                                      np.ndarray]]:
        """Yield (train_index, test_index) pairs."""
        if n_samples < self.n_splits:
            raise ValueError(
                f"cannot split {n_samples} samples into "
                f"{self.n_splits} folds")
        rng = np.random.default_rng(self.random_state)
        order = rng.permutation(n_samples)
        folds = np.array_split(order, self.n_splits)
        for k in range(self.n_splits):
            test_index = folds[k]
            train_index = np.concatenate(
                [folds[j] for j in range(self.n_splits) if j != k])
            yield train_index, test_index
