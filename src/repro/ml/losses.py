"""Loss functions for gradient boosting.

Each loss provides the three pieces Algorithm 1 needs:

- ``init_estimate`` — the constant model F0 minimising the loss;
- ``negative_gradient`` — the pseudo-residuals the next tree is fit to;
- ``leaf_value`` — the per-leaf line-search step
  γ_jm = argmin_γ Σ L(y_i, F_{m-1}(x_i) + γ).

For squared error the leaf value is the residual mean; for absolute error
it is the residual median (robust to the long reading-time tail).
"""

from __future__ import annotations

import abc

import numpy as np


class Loss(abc.ABC):
    """Interface consumed by :class:`repro.ml.gbrt.GradientBoostedRegressor`."""

    @abc.abstractmethod
    def init_estimate(self, y: np.ndarray) -> float:
        """The optimal constant prediction F0."""

    @abc.abstractmethod
    def negative_gradient(self, y: np.ndarray,
                          prediction: np.ndarray) -> np.ndarray:
        """Pseudo-residuals −∂L/∂F evaluated at the current model."""

    @abc.abstractmethod
    def leaf_value(self, y: np.ndarray, prediction: np.ndarray) -> float:
        """Optimal additive step for samples falling in one leaf."""

    @abc.abstractmethod
    def loss(self, y: np.ndarray, prediction: np.ndarray) -> float:
        """Mean loss of a prediction (for monitoring/early stopping)."""


class SquaredLoss(Loss):
    """L(y, F) = (y − F)² — the paper's training loss (Section 4.3.3)."""

    def init_estimate(self, y: np.ndarray) -> float:
        return float(np.mean(y))

    def negative_gradient(self, y: np.ndarray,
                          prediction: np.ndarray) -> np.ndarray:
        return y - prediction

    def leaf_value(self, y: np.ndarray, prediction: np.ndarray) -> float:
        return float(np.mean(y - prediction))

    def loss(self, y: np.ndarray, prediction: np.ndarray) -> float:
        return float(np.mean((y - prediction) ** 2))


class AbsoluteLoss(Loss):
    """L(y, F) = |y − F| (least absolute deviation).

    Algorithm 1 in the paper initialises with the median, which is the
    LAD-optimal constant; provided for robustness experiments.
    """

    def init_estimate(self, y: np.ndarray) -> float:
        return float(np.median(y))

    def negative_gradient(self, y: np.ndarray,
                          prediction: np.ndarray) -> np.ndarray:
        return np.sign(y - prediction)

    def leaf_value(self, y: np.ndarray, prediction: np.ndarray) -> float:
        return float(np.median(y - prediction))

    def loss(self, y: np.ndarray, prediction: np.ndarray) -> float:
        return float(np.mean(np.abs(y - prediction)))
