"""Ordinary least squares — the baseline the paper rules out.

Table 4's near-zero Pearson correlations are the paper's argument that
"we cannot use simple linear models for prediction" (Section 5.1.3).
This module provides the ruled-out baseline so the claim can be tested:
ridge-regularised least squares with feature standardisation, the
strongest reasonable linear contender.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class LinearRegressor:
    """Standardised ridge regression (closed form)."""

    def __init__(self, l2: float = 1e-6):
        if l2 < 0:
            raise ValueError("l2 must be non-negative")
        self.l2 = l2
        self.coefficients_: Optional[np.ndarray] = None
        self.intercept_: Optional[float] = None
        self._mean: Optional[np.ndarray] = None
        self._scale: Optional[np.ndarray] = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LinearRegressor":
        """Fit on ``x`` (n, d), ``y`` (n,)."""
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if x.ndim != 2 or y.shape != (x.shape[0],):
            raise ValueError("x must be (n, d) and y (n,)")
        if x.shape[0] < 2:
            raise ValueError("need at least two samples")
        self._mean = x.mean(axis=0)
        scale = x.std(axis=0)
        self._scale = np.where(scale > 0, scale, 1.0)
        z = (x - self._mean) / self._scale
        gram = z.T @ z + self.l2 * np.eye(x.shape[1])
        self.coefficients_ = np.linalg.solve(gram, z.T @ (y - y.mean()))
        self.intercept_ = float(y.mean())
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predict targets for rows of ``x``."""
        if self.coefficients_ is None:
            raise RuntimeError("model is not fitted")
        x = np.asarray(x, dtype=float)
        if x.ndim == 1:
            x = x.reshape(1, -1)
        z = (x - self._mean) / self._scale
        return self.intercept_ + z @ self.coefficients_
