"""Least-squares regression trees with J terminal nodes.

Trees are grown *best-first*: at every step the leaf whose best split
yields the largest sum-of-squared-error reduction is expanded, until the
tree has ``max_leaves`` (the paper's J) terminal nodes or no leaf has a
valid split.  Split search is exact: every threshold between consecutive
distinct feature values is evaluated via prefix sums.
"""

from __future__ import annotations

import heapq
import itertools
import os
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

#: Set to any non-empty value to route split search through the original
#: per-node, per-feature loop.  The vectorised path is required to grow
#: byte-identical trees (the golden tests serialise both and diff).
_SLOW_GBRT_ENV = "REPRO_GBRT_SLOW"


class TreeNode:
    """One node of a fitted regression tree.

    Internal nodes carry ``(feature, threshold)`` and children; terminal
    nodes carry ``value`` (the region's prediction b_j in Eq. 7).

    ``__slots__`` (hand-written; ``dataclass(slots=True)`` needs 3.10)
    because ensembles hold thousands of nodes and the traversal loops
    touch their attributes constantly.
    """

    __slots__ = ("value", "n_samples", "feature", "threshold", "left",
                 "right")

    def __init__(self, value: float, n_samples: int,
                 feature: Optional[int] = None,
                 threshold: Optional[float] = None,
                 left: Optional["TreeNode"] = None,
                 right: Optional["TreeNode"] = None) -> None:
        self.value = value
        self.n_samples = n_samples
        self.feature = feature
        self.threshold = threshold
        self.left = left
        self.right = right

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if self.is_leaf:
            return f"TreeNode(value={self.value!r}, n={self.n_samples})"
        return (f"TreeNode(feature={self.feature}, "
                f"threshold={self.threshold!r}, n={self.n_samples})")

    @property
    def is_leaf(self) -> bool:
        return self.feature is None

    def count_nodes(self) -> int:
        """Total nodes in this subtree (internal + terminal)."""
        if self.is_leaf:
            return 1
        return 1 + self.left.count_nodes() + self.right.count_nodes()

    def count_leaves(self) -> int:
        if self.is_leaf:
            return 1
        return self.left.count_leaves() + self.right.count_leaves()

    def depth(self) -> int:
        if self.is_leaf:
            return 0
        return 1 + max(self.left.depth(), self.right.depth())


@dataclass(frozen=True)
class _Split:
    """A candidate split of one leaf."""

    gain: float
    feature: int
    threshold: float
    left_index: np.ndarray
    right_index: np.ndarray
    left_value: float
    right_value: float
    #: Per-feature stable sort orders of each child's rows, propagated
    #: by the vectorised split search so children never re-sort (absent
    #: on the reference path).
    left_order: Optional[np.ndarray] = None
    right_order: Optional[np.ndarray] = None


def _best_split(x: np.ndarray, y: np.ndarray, index: np.ndarray,
                min_samples_leaf: int,
                order: np.ndarray) -> Optional[_Split]:
    """Exact best SSE-reducing split of the samples in ``index``.

    One pass over the whole feature matrix instead of a per-feature
    Python loop.  ``order`` (d, n) holds this node's rows stably sorted
    per feature; the root's comes from one ``np.argsort(x, axis=0,
    kind="stable")`` per fit (reusable across boosting rounds when the
    training matrix doesn't change) and children inherit theirs by
    filtering the parent's — a stable sort of a subset is the subset of
    the stable sort, so every node sees exactly the sorted values,
    prefix sums, floats, and tie-breaks the original per-node loop
    computed.
    """
    n_features, n = order.shape
    if n < 2 * min_samples_leaf:
        return None
    y_node = y[index]
    total_sum = y_node.sum()

    feature_rows = np.arange(n_features)[:, None]
    sorted_values = x[order, feature_rows]            # (d, n)
    prefix_sum = np.cumsum(y[order], axis=1)          # (d, n)

    # Candidate split after position p puts p+1 samples on the left, so
    # both-children-big-enough restricts p to the band [msl-1, n-msl);
    # the reference loop computed every position and masked, this slices
    # the band up front (identical arithmetic, evaluated in the same
    # left-to-right order, just in-place on the band).
    lo = min_samples_leaf - 1
    hi = n - min_samples_leaf                         # exclusive; >= lo+1
    left_sizes = np.arange(lo + 1, hi + 1)
    right_sizes = n - left_sizes
    left_sums = prefix_sum[:, lo:hi]
    gains = left_sums ** 2
    gains /= left_sizes
    right_part = total_sum - left_sums
    right_part **= 2
    right_part /= right_sizes
    gains += right_part
    gains -= total_sum ** 2 / n
    # Thresholds must fall between distinct values.
    distinct = sorted_values[:, lo:hi] < sorted_values[:, lo + 1:hi + 1]
    gains[~distinct] = -np.inf
    positions = np.argmax(gains, axis=1)              # per-feature best
    per_feature_gain = gains[np.arange(n_features), positions]
    # The sequential loop kept the first feature to beat the running
    # best by a strict margin, i.e. the lowest-indexed maximum — which
    # is exactly np.argmax's first-occurrence rule.
    feature = int(np.argmax(per_feature_gain))
    gain = float(per_feature_gain[feature])
    if gain <= 1e-12:  # require strictly positive gain
        return None
    pos = lo + int(positions[feature])
    threshold = float((sorted_values[feature, pos]
                       + sorted_values[feature, pos + 1]) / 2)
    values = x[index, feature]
    left_mask = values <= threshold
    left_index = index[left_mask]
    right_index = index[~left_mask]

    member = np.zeros(x.shape[0], dtype=bool)
    member[left_index] = True
    in_left = member[order]                           # (d, n)
    left_order = order[in_left].reshape(n_features, left_index.size)
    right_order = order[~in_left].reshape(n_features, right_index.size)
    return _Split(
        gain=gain, feature=feature, threshold=threshold,
        left_index=left_index, right_index=right_index,
        left_value=float(y[left_index].mean()),
        right_value=float(y[right_index].mean()),
        left_order=left_order, right_order=right_order)


def _best_split_slow(x: np.ndarray, y: np.ndarray, index: np.ndarray,
                     min_samples_leaf: int) -> Optional[_Split]:
    """Original per-feature split search, kept as the equivalence
    reference behind ``REPRO_GBRT_SLOW``."""
    n = index.size
    if n < 2 * min_samples_leaf:
        return None
    y_node = y[index]
    total_sum = y_node.sum()
    total_sq = float(y_node @ y_node)
    parent_sse = total_sq - total_sum ** 2 / n

    best: Optional[_Split] = None
    best_gain = 1e-12  # require strictly positive gain
    for feature in range(x.shape[1]):
        values = x[index, feature]
        order = np.argsort(values, kind="stable")
        sorted_values = values[order]
        sorted_y = y_node[order]
        prefix_sum = np.cumsum(sorted_y)
        # Candidate split after position i (1-based sizes i+1).
        left_sizes = np.arange(1, n)
        left_sums = prefix_sum[:-1]
        right_sizes = n - left_sizes
        right_sums = total_sum - left_sums
        # SSE reduction = S_L²/n_L + S_R²/n_R − S²/n  (the −Σy² terms
        # cancel between parent and children).
        gains = (left_sums ** 2 / left_sizes
                 + right_sums ** 2 / right_sizes
                 - total_sum ** 2 / n)
        # Valid positions: both children big enough, threshold between
        # distinct values.
        valid = ((left_sizes >= min_samples_leaf)
                 & (right_sizes >= min_samples_leaf)
                 & (sorted_values[:-1] < sorted_values[1:]))
        if not valid.any():
            continue
        gains = np.where(valid, gains, -np.inf)
        pos = int(np.argmax(gains))
        gain = float(gains[pos])
        if gain <= best_gain:
            continue
        best_gain = gain
        threshold = float((sorted_values[pos] + sorted_values[pos + 1]) / 2)
        left_mask = values <= threshold
        left_index = index[left_mask]
        right_index = index[~left_mask]
        best = _Split(
            gain=gain, feature=feature, threshold=threshold,
            left_index=left_index, right_index=right_index,
            left_value=float(y[left_index].mean()),
            right_value=float(y[right_index].mean()))
    # ``parent_sse`` is implicit in the gain formula; keep the flake quiet.
    del parent_sse
    return best


class RegressionTree:
    """A J-terminal-node least-squares regression tree."""

    def __init__(self, max_leaves: int = 8, min_samples_leaf: int = 1):
        if max_leaves < 2:
            raise ValueError("max_leaves must be at least 2")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be at least 1")
        self.max_leaves = max_leaves
        self.min_samples_leaf = min_samples_leaf
        self.root: Optional[TreeNode] = None
        #: (feature, gain) pairs of every split made, for importances.
        self.split_gains: List[Tuple[int, float]] = []

    # ------------------------------------------------------------------
    def fit(self, x: np.ndarray, y: np.ndarray,
            presorted: Optional[np.ndarray] = None) -> "RegressionTree":
        """Grow the tree on ``x`` (n, d) against targets ``y`` (n,).

        ``presorted`` is an optional ``np.argsort(x, axis=0,
        kind="stable")`` computed by the caller; boosting passes it so
        the sort is paid once per ensemble instead of once per round
        when the training matrix doesn't change between rounds.
        """
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if x.ndim != 2:
            raise ValueError(f"x must be 2-D, got shape {x.shape}")
        if y.shape != (x.shape[0],):
            raise ValueError("y must be 1-D with one target per row of x")
        if x.shape[0] == 0:
            raise ValueError("cannot fit a tree on zero samples")

        index = np.arange(x.shape[0])
        self.root = TreeNode(value=float(y.mean()), n_samples=index.size)
        self.split_gains = []

        if os.environ.get(_SLOW_GBRT_ENV):
            def find_split(node_index: np.ndarray,
                           order: Optional[np.ndarray]) -> Optional[_Split]:
                return _best_split_slow(x, y, node_index,
                                        self.min_samples_leaf)

            root_order: Optional[np.ndarray] = None
        else:
            def find_split(node_index: np.ndarray,
                           order: Optional[np.ndarray]) -> Optional[_Split]:
                return _best_split(x, y, node_index,
                                   self.min_samples_leaf, order)

            sort_idx = (presorted if presorted is not None
                        else np.argsort(x, axis=0, kind="stable"))
            root_order = sort_idx.T

        # Best-first growth: a max-heap of (−gain, tiebreak, node, split).
        counter = itertools.count()
        heap: list = []

        def push(node: TreeNode, node_index: np.ndarray,
                 order: Optional[np.ndarray]) -> None:
            split = find_split(node_index, order)
            if split is not None:
                heapq.heappush(heap, (-split.gain, next(counter), node,
                                      split))

        push(self.root, index, root_order)
        leaves = 1
        while heap and leaves < self.max_leaves:
            neg_gain, _, node, split = heapq.heappop(heap)
            node.feature = split.feature
            node.threshold = split.threshold
            node.left = TreeNode(value=split.left_value,
                                 n_samples=split.left_index.size)
            node.right = TreeNode(value=split.right_value,
                                  n_samples=split.right_index.size)
            self.split_gains.append((split.feature, -neg_gain))
            leaves += 1
            push(node.left, split.left_index, split.left_order)
            push(node.right, split.right_index, split.right_order)
        return self

    # ------------------------------------------------------------------
    def predict(self, x: np.ndarray) -> np.ndarray:
        """Vectorised prediction for rows of ``x``.

        Iterative frontier partition: each internal node splits its
        index set with one vectorised comparison, leaves write their
        value into the output slice.  Same values as a per-row
        traversal, O(n) numpy work per tree level.
        """
        if self.root is None:
            raise RuntimeError("tree is not fitted")
        x = np.asarray(x, dtype=float)
        if x.ndim == 1:
            x = x.reshape(1, -1)
        out = np.empty(x.shape[0], dtype=float)
        stack = [(self.root, np.arange(x.shape[0]))]
        while stack:
            node, index = stack.pop()
            while not node.is_leaf:
                mask = x[index, node.feature] <= node.threshold
                stack.append((node.right, index[~mask]))
                node = node.left
                index = index[mask]
            out[index] = node.value
        return out

    def _predict_into(self, node: TreeNode, x: np.ndarray,
                      index: np.ndarray, out: np.ndarray) -> None:
        """Recursive reference partition (kept for the equivalence
        tests; :meth:`predict` uses the iterative frontier)."""
        if node.is_leaf:
            out[index] = node.value
            return
        mask = x[index, node.feature] <= node.threshold
        self._predict_into(node.left, x, index[mask], out)
        self._predict_into(node.right, x, index[~mask], out)

    def predict_one(self, row) -> float:
        """Scalar prediction by plain traversal (the on-phone code path
        whose cost Table 7 measures)."""
        if self.root is None:
            raise RuntimeError("tree is not fitted")
        node = self.root
        while not node.is_leaf:
            node = node.left if row[node.feature] <= node.threshold \
                else node.right
        return node.value

    # ------------------------------------------------------------------
    @property
    def n_leaves(self) -> int:
        if self.root is None:
            return 0
        return self.root.count_leaves()

    @property
    def n_nodes(self) -> int:
        if self.root is None:
            return 0
        return self.root.count_nodes()

    # ------------------------------------------------------------------
    # Serialisation (the paper trains offline and deploys the tree model
    # to the phone; we serialise to plain dicts / JSON).
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-data representation of the fitted tree."""
        if self.root is None:
            raise RuntimeError("tree is not fitted")

        def encode(node: TreeNode) -> dict:
            if node.is_leaf:
                return {"value": node.value, "n": node.n_samples}
            return {"feature": node.feature, "threshold": node.threshold,
                    "n": node.n_samples, "value": node.value,
                    "left": encode(node.left), "right": encode(node.right)}

        return {"max_leaves": self.max_leaves,
                "min_samples_leaf": self.min_samples_leaf,
                "split_gains": [list(pair) for pair in self.split_gains],
                "root": encode(self.root)}

    @classmethod
    def from_dict(cls, data: dict) -> "RegressionTree":
        """Rebuild a tree serialised by :meth:`to_dict`."""
        tree = cls(max_leaves=data["max_leaves"],
                   min_samples_leaf=data["min_samples_leaf"])
        tree.split_gains = [(int(f), float(g))
                            for f, g in data["split_gains"]]

        def decode(node_data: dict) -> TreeNode:
            node = TreeNode(value=float(node_data["value"]),
                            n_samples=int(node_data["n"]))
            if "feature" in node_data:
                node.feature = int(node_data["feature"])
                node.threshold = float(node_data["threshold"])
                node.left = decode(node_data["left"])
                node.right = decode(node_data["right"])
            return node

        tree.root = decode(data["root"])
        return tree

    def leaves(self) -> List[TreeNode]:
        """Terminal nodes in left-to-right order (matches :meth:`apply`
        numbering), so boosting can rewrite leaf values in place."""
        if self.root is None:
            return []
        out: List[TreeNode] = []

        def walk(node: TreeNode) -> None:
            if node.is_leaf:
                out.append(node)
                return
            walk(node.left)
            walk(node.right)

        walk(self.root)
        return out

    def apply(self, x: np.ndarray) -> np.ndarray:
        """Region index (leaf id in left-to-right order) for each row.

        Iterative frontier partition, like :meth:`predict`.  Popping the
        stack after always descending left first visits leaves in
        left-to-right order, so numbering them as they are reached
        reproduces the recursive numbering (including leaves no row of
        ``x`` lands in).
        """
        if self.root is None:
            raise RuntimeError("tree is not fitted")
        x = np.asarray(x, dtype=float)
        if x.ndim == 1:
            x = x.reshape(1, -1)
        out = np.empty(x.shape[0], dtype=int)
        next_leaf = 0
        stack = [(self.root, np.arange(x.shape[0]))]
        while stack:
            node, index = stack.pop()
            while not node.is_leaf:
                mask = x[index, node.feature] <= node.threshold
                stack.append((node.right, index[~mask]))
                node = node.left
                index = index[mask]
            out[index] = next_leaf
            next_leaf += 1
        return out
