"""Least-squares regression trees with J terminal nodes.

Trees are grown *best-first*: at every step the leaf whose best split
yields the largest sum-of-squared-error reduction is expanded, until the
tree has ``max_leaves`` (the paper's J) terminal nodes or no leaf has a
valid split.  Split search is exact: every threshold between consecutive
distinct feature values is evaluated via prefix sums.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np


@dataclass
class TreeNode:
    """One node of a fitted regression tree.

    Internal nodes carry ``(feature, threshold)`` and children; terminal
    nodes carry ``value`` (the region's prediction b_j in Eq. 7).
    """

    value: float
    n_samples: int
    feature: Optional[int] = None
    threshold: Optional[float] = None
    left: Optional["TreeNode"] = None
    right: Optional["TreeNode"] = None

    @property
    def is_leaf(self) -> bool:
        return self.feature is None

    def count_nodes(self) -> int:
        """Total nodes in this subtree (internal + terminal)."""
        if self.is_leaf:
            return 1
        return 1 + self.left.count_nodes() + self.right.count_nodes()

    def count_leaves(self) -> int:
        if self.is_leaf:
            return 1
        return self.left.count_leaves() + self.right.count_leaves()

    def depth(self) -> int:
        if self.is_leaf:
            return 0
        return 1 + max(self.left.depth(), self.right.depth())


@dataclass(frozen=True)
class _Split:
    """A candidate split of one leaf."""

    gain: float
    feature: int
    threshold: float
    left_index: np.ndarray
    right_index: np.ndarray
    left_value: float
    right_value: float


def _best_split(x: np.ndarray, y: np.ndarray, index: np.ndarray,
                min_samples_leaf: int) -> Optional[_Split]:
    """Exact best SSE-reducing split of the samples in ``index``."""
    n = index.size
    if n < 2 * min_samples_leaf:
        return None
    y_node = y[index]
    total_sum = y_node.sum()
    total_sq = float(y_node @ y_node)
    parent_sse = total_sq - total_sum ** 2 / n

    best: Optional[_Split] = None
    best_gain = 1e-12  # require strictly positive gain
    for feature in range(x.shape[1]):
        values = x[index, feature]
        order = np.argsort(values, kind="stable")
        sorted_values = values[order]
        sorted_y = y_node[order]
        prefix_sum = np.cumsum(sorted_y)
        # Candidate split after position i (1-based sizes i+1).
        left_sizes = np.arange(1, n)
        left_sums = prefix_sum[:-1]
        right_sizes = n - left_sizes
        right_sums = total_sum - left_sums
        # SSE reduction = S_L²/n_L + S_R²/n_R − S²/n  (the −Σy² terms
        # cancel between parent and children).
        gains = (left_sums ** 2 / left_sizes
                 + right_sums ** 2 / right_sizes
                 - total_sum ** 2 / n)
        # Valid positions: both children big enough, threshold between
        # distinct values.
        valid = ((left_sizes >= min_samples_leaf)
                 & (right_sizes >= min_samples_leaf)
                 & (sorted_values[:-1] < sorted_values[1:]))
        if not valid.any():
            continue
        gains = np.where(valid, gains, -np.inf)
        pos = int(np.argmax(gains))
        gain = float(gains[pos])
        if gain <= best_gain:
            continue
        best_gain = gain
        threshold = float((sorted_values[pos] + sorted_values[pos + 1]) / 2)
        left_mask = values <= threshold
        left_index = index[left_mask]
        right_index = index[~left_mask]
        best = _Split(
            gain=gain, feature=feature, threshold=threshold,
            left_index=left_index, right_index=right_index,
            left_value=float(y[left_index].mean()),
            right_value=float(y[right_index].mean()))
    # ``parent_sse`` is implicit in the gain formula; keep the flake quiet.
    del parent_sse
    return best


class RegressionTree:
    """A J-terminal-node least-squares regression tree."""

    def __init__(self, max_leaves: int = 8, min_samples_leaf: int = 1):
        if max_leaves < 2:
            raise ValueError("max_leaves must be at least 2")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be at least 1")
        self.max_leaves = max_leaves
        self.min_samples_leaf = min_samples_leaf
        self.root: Optional[TreeNode] = None
        #: (feature, gain) pairs of every split made, for importances.
        self.split_gains: List[Tuple[int, float]] = []

    # ------------------------------------------------------------------
    def fit(self, x: np.ndarray, y: np.ndarray) -> "RegressionTree":
        """Grow the tree on ``x`` (n, d) against targets ``y`` (n,)."""
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if x.ndim != 2:
            raise ValueError(f"x must be 2-D, got shape {x.shape}")
        if y.shape != (x.shape[0],):
            raise ValueError("y must be 1-D with one target per row of x")
        if x.shape[0] == 0:
            raise ValueError("cannot fit a tree on zero samples")

        index = np.arange(x.shape[0])
        self.root = TreeNode(value=float(y.mean()), n_samples=index.size)
        self.split_gains = []

        # Best-first growth: a max-heap of (−gain, tiebreak, node, split).
        counter = itertools.count()
        heap: list = []

        def push(node: TreeNode, node_index: np.ndarray) -> None:
            split = _best_split(x, y, node_index, self.min_samples_leaf)
            if split is not None:
                heapq.heappush(heap, (-split.gain, next(counter), node,
                                      split))

        push(self.root, index)
        leaves = 1
        while heap and leaves < self.max_leaves:
            neg_gain, _, node, split = heapq.heappop(heap)
            node.feature = split.feature
            node.threshold = split.threshold
            node.left = TreeNode(value=split.left_value,
                                 n_samples=split.left_index.size)
            node.right = TreeNode(value=split.right_value,
                                  n_samples=split.right_index.size)
            self.split_gains.append((split.feature, -neg_gain))
            leaves += 1
            push(node.left, split.left_index)
            push(node.right, split.right_index)
        return self

    # ------------------------------------------------------------------
    def predict(self, x: np.ndarray) -> np.ndarray:
        """Vectorised prediction for rows of ``x``."""
        if self.root is None:
            raise RuntimeError("tree is not fitted")
        x = np.asarray(x, dtype=float)
        if x.ndim == 1:
            x = x.reshape(1, -1)
        out = np.empty(x.shape[0], dtype=float)
        self._predict_into(self.root, x, np.arange(x.shape[0]), out)
        return out

    def _predict_into(self, node: TreeNode, x: np.ndarray,
                      index: np.ndarray, out: np.ndarray) -> None:
        if node.is_leaf:
            out[index] = node.value
            return
        mask = x[index, node.feature] <= node.threshold
        self._predict_into(node.left, x, index[mask], out)
        self._predict_into(node.right, x, index[~mask], out)

    def predict_one(self, row) -> float:
        """Scalar prediction by plain traversal (the on-phone code path
        whose cost Table 7 measures)."""
        if self.root is None:
            raise RuntimeError("tree is not fitted")
        node = self.root
        while not node.is_leaf:
            node = node.left if row[node.feature] <= node.threshold \
                else node.right
        return node.value

    # ------------------------------------------------------------------
    @property
    def n_leaves(self) -> int:
        if self.root is None:
            return 0
        return self.root.count_leaves()

    @property
    def n_nodes(self) -> int:
        if self.root is None:
            return 0
        return self.root.count_nodes()

    # ------------------------------------------------------------------
    # Serialisation (the paper trains offline and deploys the tree model
    # to the phone; we serialise to plain dicts / JSON).
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-data representation of the fitted tree."""
        if self.root is None:
            raise RuntimeError("tree is not fitted")

        def encode(node: TreeNode) -> dict:
            if node.is_leaf:
                return {"value": node.value, "n": node.n_samples}
            return {"feature": node.feature, "threshold": node.threshold,
                    "n": node.n_samples, "value": node.value,
                    "left": encode(node.left), "right": encode(node.right)}

        return {"max_leaves": self.max_leaves,
                "min_samples_leaf": self.min_samples_leaf,
                "split_gains": [list(pair) for pair in self.split_gains],
                "root": encode(self.root)}

    @classmethod
    def from_dict(cls, data: dict) -> "RegressionTree":
        """Rebuild a tree serialised by :meth:`to_dict`."""
        tree = cls(max_leaves=data["max_leaves"],
                   min_samples_leaf=data["min_samples_leaf"])
        tree.split_gains = [(int(f), float(g))
                            for f, g in data["split_gains"]]

        def decode(node_data: dict) -> TreeNode:
            node = TreeNode(value=float(node_data["value"]),
                            n_samples=int(node_data["n"]))
            if "feature" in node_data:
                node.feature = int(node_data["feature"])
                node.threshold = float(node_data["threshold"])
                node.left = decode(node_data["left"])
                node.right = decode(node_data["right"])
            return node

        tree.root = decode(data["root"])
        return tree

    def leaves(self) -> List[TreeNode]:
        """Terminal nodes in left-to-right order (matches :meth:`apply`
        numbering), so boosting can rewrite leaf values in place."""
        if self.root is None:
            return []
        out: List[TreeNode] = []

        def walk(node: TreeNode) -> None:
            if node.is_leaf:
                out.append(node)
                return
            walk(node.left)
            walk(node.right)

        walk(self.root)
        return out

    def apply(self, x: np.ndarray) -> np.ndarray:
        """Region index (leaf id in left-to-right order) for each row."""
        if self.root is None:
            raise RuntimeError("tree is not fitted")
        x = np.asarray(x, dtype=float)
        leaf_ids = {}

        def number(node: TreeNode) -> None:
            if node.is_leaf:
                leaf_ids[id(node)] = len(leaf_ids)
                return
            number(node.left)
            number(node.right)

        number(self.root)
        out = np.empty(x.shape[0], dtype=int)
        for i in range(x.shape[0]):
            node = self.root
            while not node.is_leaf:
                node = node.left if x[i, node.feature] <= node.threshold \
                    else node.right
            out[i] = leaf_ids[id(node)]
        return out
