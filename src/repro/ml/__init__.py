"""Gradient Boosted Regression Trees, from scratch.

Implements the predictor of Section 4.3: least-squares regression trees
with J terminal nodes grown best-first, boosted with shrinkage following
Friedman's gradient-boosting algorithm (the paper's Algorithm 1 —
initialise with a constant, then repeatedly fit a tree to the negative
gradient of the loss and take a line-search step per leaf).  Squared and
absolute losses are provided; no external ML library is used.
"""

from repro.ml.losses import AbsoluteLoss, Loss, SquaredLoss
from repro.ml.tree import RegressionTree, TreeNode
from repro.ml.gbrt import GradientBoostedRegressor
from repro.ml.metrics import (
    mean_absolute_error,
    mean_squared_error,
    r2_score,
    threshold_accuracy,
)
from repro.ml.validation import KFold, train_test_split

__all__ = [
    "Loss",
    "SquaredLoss",
    "AbsoluteLoss",
    "RegressionTree",
    "TreeNode",
    "GradientBoostedRegressor",
    "mean_squared_error",
    "mean_absolute_error",
    "r2_score",
    "threshold_accuracy",
    "KFold",
    "train_test_split",
]
