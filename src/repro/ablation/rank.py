"""Importance ranking: fold matrix results into per-component deltas.

Given a :class:`~repro.ablation.engine.MatrixResult` containing the
baseline cell, the ranker computes

- **main effects** — for every cell that deviates from the baseline in
  exactly one component, ``delta = metric(cell) - metric(baseline)``
  (positive delta on an energy metric means ablating the component
  *costs* energy, i.e. the component helps);
- **component importance** — the main effect at the component's declared
  ``ablated`` level (falling back to its largest-magnitude level),
  ranked by magnitude; a component whose removal *improves* the metric
  is flagged harmful, the ``aumai-ablation`` convention;
- **pairwise interactions** — for every double-deviation cell,
  ``metric(both) - effect(a) - effect(b) - metric(baseline)``: the part
  of the joint cell the two main effects do not explain.

Reports are emitted as deterministic text, JSON, or CSV via
:func:`write_ranking` (suffix dispatch, same convention as
``repro.runtime.report``).
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.ablation.engine import MatrixResult

#: CSV columns for the flat ranking export.
CSV_COLUMNS = ("rank", "component", "level", "metric", "baseline",
               "value", "delta", "relative", "harmful", "run_id")


@dataclass(frozen=True)
class Effect:
    """One single-deviation cell measured against the baseline."""

    component: str
    level: str
    metric: str
    baseline: float
    value: float
    run_id: str

    @property
    def delta(self) -> float:
        return self.value - self.baseline

    @property
    def relative(self) -> float:
        if self.baseline == 0:
            return 0.0
        return self.delta / abs(self.baseline)

    @property
    def harmful(self) -> bool:
        """Removing the component *improved* the metric."""
        return self.delta < 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "component": self.component,
            "level": self.level,
            "metric": self.metric,
            "baseline": self.baseline,
            "value": self.value,
            "delta": self.delta,
            "relative": self.relative,
            "harmful": self.harmful,
            "run_id": self.run_id,
        }


@dataclass(frozen=True)
class Interaction:
    """The unexplained part of one double-deviation cell."""

    first: str
    first_level: str
    second: str
    second_level: str
    metric: str
    value: float
    expected: float
    run_id: str

    @property
    def interaction(self) -> float:
        return self.value - self.expected

    def to_dict(self) -> Dict[str, Any]:
        return {
            "first": self.first,
            "first_level": self.first_level,
            "second": self.second,
            "second_level": self.second_level,
            "metric": self.metric,
            "value": self.value,
            "expected": self.expected,
            "interaction": self.interaction,
            "run_id": self.run_id,
        }


@dataclass
class Ranking:
    """Ranked main effects plus whatever interactions the matrix held."""

    metric: str
    baseline_value: float
    baseline_run_id: str
    effects: List[Effect]
    ranked: List[Effect]
    interactions: List[Interaction]

    def report(self) -> str:
        lines = [f"== importance ranking ({self.metric}) | "
                 f"baseline={self.baseline_value:.6f} =="]
        for position, effect in enumerate(self.ranked, start=1):
            flag = "  [harmful]" if effect.harmful else ""
            lines.append(
                f" {position:2d}. {effect.component:22s} "
                f"{effect.level:14s} "
                f"delta={effect.delta:+.6f} "
                f"({effect.relative:+.2%}){flag}")
        if self.interactions:
            lines.append("interactions:")
            for entry in self.interactions:
                lines.append(
                    f"     {entry.first}({entry.first_level}) x "
                    f"{entry.second}({entry.second_level})  "
                    f"delta={entry.interaction:+.6f}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ranking": {
                "metric": self.metric,
                "baseline": self.baseline_value,
                "baseline_run_id": self.baseline_run_id,
            },
            "importance": [effect.to_dict() for effect in self.ranked],
            "effects": [effect.to_dict() for effect in self.effects],
            "interactions": [entry.to_dict()
                             for entry in self.interactions],
        }

    def to_rows(self) -> List[Dict[str, Any]]:
        """Flat per-component rows for the CSV export."""
        rows = []
        for position, effect in enumerate(self.ranked, start=1):
            row = effect.to_dict()
            row["rank"] = position
            rows.append(row)
        return rows


def rank_components(result: MatrixResult, metric: str = "energy",
                    ) -> Ranking:
    """Fold a matrix into a :class:`Ranking` on ``metric``.

    The matrix must contain the baseline cell; cells with raw overrides
    (search points) are ignored — importance is about declared levels.
    """
    registry = result.registry()
    baseline_run = None
    for run in result.runs:
        if run.spec.overrides:
            continue
        if not run.spec.deviations(registry):
            baseline_run = run
            break
    if baseline_run is None:
        raise ValueError("matrix has no baseline cell; importance "
                         "ranking needs one (use a loo/ofat/pairs "
                         "matrix)")
    if metric not in baseline_run.metrics:
        raise KeyError(f"metric {metric!r} not in matrix results; "
                       f"known: {sorted(baseline_run.metrics)}")
    baseline_value = baseline_run.metrics[metric]

    effects: List[Effect] = []
    by_deviation: Dict[tuple, float] = {}
    doubles = []
    for run in result.runs:
        if run.spec.overrides:
            continue
        deviations = run.spec.deviations(registry)
        if len(deviations) == 1:
            (component, level), = deviations.items()
            effect = Effect(component=component, level=level,
                            metric=metric, baseline=baseline_value,
                            value=run.metrics[metric],
                            run_id=run.spec.run_id)
            effects.append(effect)
            by_deviation[(component, level)] = effect.delta
        elif len(deviations) == 2:
            doubles.append((run, deviations))
    effects.sort(key=lambda e: (e.component, e.level))

    # One representative effect per component: the declared ablated
    # level if the matrix measured it, else the largest-|delta| level.
    ranked: List[Effect] = []
    per_component: Dict[str, List[Effect]] = {}
    for effect in effects:
        per_component.setdefault(effect.component, []).append(effect)
    for component, candidates in per_component.items():
        declared = registry.get(component).ablated
        pick: Optional[Effect] = next(
            (e for e in candidates if e.level == declared), None)
        if pick is None:
            pick = max(candidates, key=lambda e: abs(e.delta))
        ranked.append(pick)
    ranked.sort(key=lambda e: (-abs(e.delta), e.component))

    interactions: List[Interaction] = []
    for run, deviations in doubles:
        (first, first_level), (second, second_level) = sorted(
            deviations.items())
        delta_a = by_deviation.get((first, first_level))
        delta_b = by_deviation.get((second, second_level))
        if delta_a is None or delta_b is None:
            continue  # main effects absent; interaction undefined
        expected = baseline_value + delta_a + delta_b
        interactions.append(Interaction(
            first=first, first_level=first_level,
            second=second, second_level=second_level,
            metric=metric, value=run.metrics[metric],
            expected=expected, run_id=run.spec.run_id))
    interactions.sort(key=lambda i: (-abs(i.interaction), i.first,
                                     i.second))

    return Ranking(metric=metric, baseline_value=baseline_value,
                   baseline_run_id=baseline_run.spec.run_id,
                   effects=effects, ranked=ranked,
                   interactions=interactions)


def write_ranking(ranking: Ranking, path: "str | Path") -> None:
    """Suffix dispatch: ``.csv`` → flat rows, anything else → JSON."""
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    if path.suffix.lower() == ".csv":
        with path.open("w", encoding="utf-8", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=CSV_COLUMNS,
                                    extrasaction="ignore")
            writer.writeheader()
            for row in ranking.to_rows():
                writer.writerow(row)
    else:
        with path.open("w", encoding="utf-8") as handle:
            json.dump(ranking.to_dict(), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
