"""Run-matrix generation with stable, content-addressed run IDs.

A matrix cell is a :class:`RunSpec`: a component→level assignment plus
the scenario context it will be evaluated under.  Its ``run_id`` is the
SHA-256 of the canonical JSON of that content — independent of Python's
per-process hash seed, of component declaration order, of the order the
matrix generator happened to emit cells in, and of which process (or
machine) computes it.  The cached parallel runner keys results by run ID,
so re-running a matrix, resuming a killed search, or re-ordering the
component declarations all hit the same cache entries.

Generators:

- :func:`baseline_specs` — the full system alone;
- :func:`leave_one_out` — baseline + one run per component at its
  declared ``ablated`` level (the classic importance matrix);
- :func:`one_factor_at_a_time` — baseline + one run per non-baseline
  level of every component (covers multi-level components fully);
- :func:`pairwise_factorial` — adds the two-level interaction cells
  (componentwise ablated×ablated) on top of leave-one-out;
- :func:`full_factorial` — the cartesian product of all levels, with an
  explicit cell-count guard;
- :func:`fractional_factorial` — a deterministic 1/q content-addressed
  subsample of the full factorial (membership decided by run-ID digest,
  so the fraction is stable across processes and reorderings).

Every generator returns cells sorted by run ID with the baseline first
when present, so matrix order is itself content-addressed.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.ablation.components import ComponentRegistry

#: Guard against accidentally exploding factorials; raise above this.
MAX_FACTORIAL_CELLS = 4096


def canonical_json(payload: Mapping) -> str:
    """Canonical JSON used for all content addressing in this package."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def content_id(payload: Mapping) -> str:
    """SHA-256 hex digest of a payload's canonical JSON."""
    return hashlib.sha256(
        canonical_json(payload).encode("utf-8")).hexdigest()


def spec_run_id(assignment: Mapping[str, str],
                context: Optional[Mapping] = None,
                overrides: Optional[Mapping[str, object]] = None) -> str:
    """The content-addressed identity of one evaluation.

    ``assignment`` maps component names to level names; ``overrides``
    carries raw field values (the search layer's numeric knobs); the
    ``context`` is the scenario fingerprint.  Keys are sorted by the
    canonical JSON encoding, so insertion order never leaks in.
    """
    return content_id({
        "assignment": dict(assignment),
        "overrides": dict(overrides or {}),
        "context": dict(context or {}),
    })


@dataclass(frozen=True)
class RunSpec:
    """One matrix cell: an assignment bound to a scenario context.

    ``overrides`` carries raw :class:`VariantSetup` field values applied
    *on top of* the assignment — the search layer's numeric knobs.  They
    are part of the run identity, so a grid point and a matrix cell with
    the same assignment never collide in the cache.
    """

    assignment: "tuple[tuple[str, str], ...]"
    context: "tuple[tuple[str, object], ...]" = ()
    overrides: "tuple[tuple[str, object], ...]" = ()
    run_id: str = field(init=False, default="")

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.assignment))
        object.__setattr__(self, "assignment", ordered)
        object.__setattr__(self, "context", tuple(sorted(self.context)))
        object.__setattr__(self, "overrides",
                           tuple(sorted(self.overrides)))
        object.__setattr__(self, "run_id", spec_run_id(
            dict(ordered), dict(self.context), dict(self.overrides)))

    @classmethod
    def make(cls, assignment: Mapping[str, str],
             context: Optional[Mapping] = None,
             overrides: Optional[Mapping[str, object]] = None
             ) -> "RunSpec":
        return cls(assignment=tuple(assignment.items()),
                   context=tuple((context or {}).items()),
                   overrides=tuple((overrides or {}).items()))

    @property
    def assignment_dict(self) -> Dict[str, str]:
        return dict(self.assignment)

    @property
    def overrides_dict(self) -> Dict[str, object]:
        return dict(self.overrides)

    @property
    def short_id(self) -> str:
        return self.run_id[:12]

    def deviations(self, registry: ComponentRegistry) -> Dict[str, str]:
        """Components assigned away from their baseline level."""
        return {name: level for name, level in self.assignment
                if level != registry.get(name).baseline}

    def label(self, registry: ComponentRegistry) -> str:
        """Human-readable cell label (``baseline`` for the full system)."""
        deviations = self.deviations(registry)
        parts = [f"{name}={level}"
                 for name, level in sorted(deviations.items())]
        parts += [f"{name}:{value}" for name, value in self.overrides]
        if not parts:
            return "baseline"
        return " ".join(parts)


def _ordered(specs: Iterable[RunSpec],
             baseline_id: Optional[str] = None) -> List[RunSpec]:
    """Dedup + canonical order: baseline first, then by run ID."""
    unique = {spec.run_id: spec for spec in specs}
    ordered = sorted(unique.values(), key=lambda spec: spec.run_id)
    if baseline_id is not None and baseline_id in unique:
        ordered.remove(unique[baseline_id])
        ordered.insert(0, unique[baseline_id])
    return ordered


def baseline_specs(registry: ComponentRegistry,
                   context: Optional[Mapping] = None) -> List[RunSpec]:
    """The full system alone."""
    return [RunSpec.make(registry.baseline_assignment(), context)]


def leave_one_out(registry: ComponentRegistry,
                  context: Optional[Mapping] = None) -> List[RunSpec]:
    """Baseline + one run per component at its ``ablated`` level."""
    base = registry.baseline_assignment()
    baseline = RunSpec.make(base, context)
    specs = [baseline]
    for component in registry:
        assignment = dict(base)
        assignment[component.name] = component.ablated
        specs.append(RunSpec.make(assignment, context))
    return _ordered(specs, baseline.run_id)


def one_factor_at_a_time(registry: ComponentRegistry,
                         context: Optional[Mapping] = None
                         ) -> List[RunSpec]:
    """Baseline + every non-baseline level of every component."""
    base = registry.baseline_assignment()
    baseline = RunSpec.make(base, context)
    specs = [baseline]
    for component in registry:
        for level in component.level_names:
            if level == component.baseline:
                continue
            assignment = dict(base)
            assignment[component.name] = level
            specs.append(RunSpec.make(assignment, context))
    return _ordered(specs, baseline.run_id)


def pairwise_factorial(registry: ComponentRegistry,
                       context: Optional[Mapping] = None
                       ) -> List[RunSpec]:
    """Leave-one-out plus every pairwise ablated×ablated cell.

    The extra cells are exactly what the ranker needs to report
    two-component interactions next to the main effects.
    """
    base = registry.baseline_assignment()
    baseline = RunSpec.make(base, context)
    specs = leave_one_out(registry, context)
    components = registry.components()
    for first, second in itertools.combinations(components, 2):
        assignment = dict(base)
        assignment[first.name] = first.ablated
        assignment[second.name] = second.ablated
        specs.append(RunSpec.make(assignment, context))
    return _ordered(specs, baseline.run_id)


def full_factorial(registry: ComponentRegistry,
                   context: Optional[Mapping] = None,
                   max_cells: int = MAX_FACTORIAL_CELLS) -> List[RunSpec]:
    """Cartesian product of every component's levels."""
    components = registry.components()
    n_cells = 1
    for component in components:
        n_cells *= len(component.level_names)
    if n_cells > max_cells:
        raise ValueError(
            f"full factorial has {n_cells} cells, above the "
            f"max_cells={max_cells} guard; use fractional_factorial or "
            f"a component subset")
    baseline = RunSpec.make(registry.baseline_assignment(), context)
    specs = []
    for levels in itertools.product(*(component.level_names
                                      for component in components)):
        assignment = {component.name: level
                      for component, level in zip(components, levels)}
        specs.append(RunSpec.make(assignment, context))
    return _ordered(specs, baseline.run_id)


def fractional_factorial(registry: ComponentRegistry,
                         fraction: int,
                         context: Optional[Mapping] = None,
                         max_cells: int = MAX_FACTORIAL_CELLS,
                         salt: str = "") -> List[RunSpec]:
    """A deterministic 1/``fraction`` subsample of the full factorial.

    Membership is decided by each cell's run-ID digest (re-hashed with
    ``salt`` so different fractions of the same matrix are independent),
    so the subsample is a pure function of content: stable across
    processes, declaration orderings, and resumed runs.  The baseline
    cell is always kept — the ranker needs it.
    """
    if fraction < 1:
        raise ValueError(f"fraction must be >= 1, got {fraction}")
    cells = full_factorial(registry, context, max_cells=max_cells)
    baseline = RunSpec.make(registry.baseline_assignment(), context)
    kept = []
    for spec in cells:
        digest = hashlib.sha256(
            f"{salt}:{spec.run_id}".encode("utf-8")).digest()
        if int.from_bytes(digest[:8], "big") % fraction == 0:
            kept.append(spec)
    if baseline.run_id not in {spec.run_id for spec in kept}:
        kept.append(baseline)
    return _ordered(kept, baseline.run_id)


#: Canonical generator names used by the CLI and the named studies.
GENERATORS = {
    "baseline": baseline_specs,
    "loo": leave_one_out,
    "ofat": one_factor_at_a_time,
    "pairs": pairwise_factorial,
    "factorial": full_factorial,
}


def generate(kind: str, registry: ComponentRegistry,
             context: Optional[Mapping] = None,
             fraction: Optional[int] = None) -> List[RunSpec]:
    """Dispatch on a generator name (``fraction`` implies factorial)."""
    if fraction is not None:
        return fractional_factorial(registry, fraction, context)
    try:
        generator = GENERATORS[kind]
    except KeyError:
        raise KeyError(f"unknown matrix kind {kind!r}; known: "
                       f"{sorted(GENERATORS)} or --fraction N") from None
    return generator(registry, context)
