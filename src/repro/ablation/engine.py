"""Cached, parallel execution of ablation run matrices.

The execution contract mirrors :mod:`repro.runtime.parallel` exactly —
fan cells across a process pool, serve repeats from the content-addressed
:class:`~repro.runtime.cache.ResultCache`, return results in canonical
matrix order whatever order the workers finished in — with one
ablation-specific twist required by the determinism story:

**every run's seed is spawned off its run ID** (not its position, not a
submission counter).  Killing a matrix half-way and re-running it, or
resuming a search from its trace, re-derives byte-identical seeds for
the remaining cells, so results never depend on *when* a cell ran.

The module also exposes :data:`STANDARD_STUDIES` — a handful of named
matrix studies (``loo-ideal``, ``pairs-cell-edge``, …) registered as the
``KIND_ABLATE`` task kind in :mod:`repro.runtime.parallel`, so
``repro profile --kind ablate`` and the cached suite runner treat matrix
studies like any other experiment.
"""

from __future__ import annotations

import hashlib
import time as _time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import (Any, Callable, Dict, List, Mapping, Optional,
                    Sequence, Tuple)

import numpy as np

from repro.ablation.components import ComponentRegistry, VariantSetup, \
    default_registry
from repro.ablation.matrix import RunSpec, generate
from repro.ablation.objective import (Scenario, ablate_fast_enabled,
                                      evaluate_setup, evaluate_setups)
from repro.runtime.cache import ResultCache, cache_key, code_version_hash

#: Task kind under which matrix studies appear in ``runtime.parallel``.
KIND_ABLATE = "ablate"

#: Metric columns, in report/CSV order.  ``drop_probability`` joins when
#: the scenario carries a population.
METRIC_COLUMNS = ("energy", "energy_saving", "delay", "load_time",
                  "tx_time", "switch_rate", "drop_probability")


# ----------------------------------------------------------------------
# Registries by name — workers rebuild them locally, so nothing but
# strings and frozen dataclasses ever crosses a process boundary.
# ----------------------------------------------------------------------

REGISTRY_FACTORIES: Dict[str, Callable[[], ComponentRegistry]] = {
    "default": default_registry,
}


def register_registry(name: str,
                      factory: Callable[[], ComponentRegistry]) -> None:
    """Expose a registry factory to worker processes under ``name``."""
    existing = REGISTRY_FACTORIES.get(name)
    if existing is not None and existing is not factory:
        raise ValueError(f"registry {name!r} already bound to a "
                         f"different factory")
    REGISTRY_FACTORIES[name] = factory


def registry_by_name(name: str) -> ComponentRegistry:
    try:
        factory = REGISTRY_FACTORIES[name]
    except KeyError:
        raise KeyError(f"unknown component registry {name!r}; known: "
                       f"{sorted(REGISTRY_FACTORIES)}") from None
    return factory()


def spec_seed(run_id: str) -> int:
    """The run's seed, spawned off its content-addressed identity.

    A :class:`numpy.random.SeedSequence` keyed purely by the run ID —
    no positional component, no root seed (the scenario's seed is
    already *inside* the run ID via the context fingerprint) — so a
    cell's stream survives kills, resumes, subset re-runs and matrix
    reorderings unchanged.
    """
    digest = hashlib.sha256(f"ablate:{run_id}".encode("utf-8")).digest()
    sequence = np.random.SeedSequence(
        int.from_bytes(digest[:8], "big"))
    return int(sequence.generate_state(1)[0])


@dataclass(frozen=True)
class MatrixRun:
    """One evaluated matrix cell."""

    spec: RunSpec
    seed: int
    metrics: Dict[str, float]
    wall_time: float = 0.0
    cached: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "run_id": self.spec.run_id,
            "assignment": self.spec.assignment_dict,
            "overrides": self.spec.overrides_dict,
            "seed": self.seed,
            "metrics": dict(self.metrics),
            "wall_time": self.wall_time,
            "cached": self.cached,
        }


def _setup_for_spec(registry: ComponentRegistry,
                    spec: RunSpec) -> VariantSetup:
    setup = registry.setup_for(spec.assignment_dict)
    if spec.overrides:
        setup = setup.apply(spec.overrides_dict)
    return setup


def _execute_spec(registry_name: str, spec: RunSpec, scenario: Scenario,
                  seed: int,
                  cache_dir: Optional[str] = None) -> Dict[str, Any]:
    """Worker entry point: evaluate one cell, return its payload.

    ``cache_dir`` points pool workers at the matrix's on-disk cache so
    memoised page loads (keyed by the load-relevant projection) are
    shared across processes, not just within one.
    """
    registry = registry_by_name(registry_name)
    setup = _setup_for_spec(registry, spec)
    load_cache = ResultCache(cache_dir) if cache_dir is not None else None
    # Legacy global stream, for any stray np.random user on the path.
    np.random.seed(seed % (2 ** 32))
    started = _time.perf_counter()
    metrics = evaluate_setup(setup, scenario, seed,
                             load_cache=load_cache)
    return {
        "run_id": spec.run_id,
        "seed": seed,
        "metrics": metrics,
        "wall_time": _time.perf_counter() - started,
    }


def _execute_specs_batched(registry_name: str, specs: Sequence[RunSpec],
                           scenario: Scenario, seeds: Mapping[str, int],
                           cache_dir: Optional[str] = None
                           ) -> List[Dict[str, Any]]:
    """Evaluate many cells in one unit-grid pass (single-process path).

    Nothing on the evaluation path reads the legacy global np.random
    stream (predictor and capacity draws use explicit ``eval_seed``
    generators), so skipping the per-spec ``np.random.seed`` of
    :func:`_execute_spec` cannot change metrics — the golden tests
    compare this path against per-spec execution byte for byte.
    Per-cell wall time is an equal share of the batch (runtime summary
    only; it never reaches a deterministic report).
    """
    registry = registry_by_name(registry_name)
    load_cache = ResultCache(cache_dir) if cache_dir is not None else None
    pairs = [(_setup_for_spec(registry, spec), seeds[spec.run_id])
             for spec in specs]
    started = _time.perf_counter()
    metrics_list = evaluate_setups(pairs, scenario,
                                   load_cache=load_cache)
    share = (_time.perf_counter() - started) / len(specs)
    return [{
        "run_id": spec.run_id,
        "seed": seeds[spec.run_id],
        "metrics": metrics,
        "wall_time": share,
    } for spec, metrics in zip(specs, metrics_list)]


def warm_process() -> None:
    """Pre-generate the corpus into this process's caches.

    Pool workers run this as their initializer; the serving layer runs
    it at startup so no request pays page generation mid-latency-
    window.  Warming is deterministic and idempotent — it only moves
    *when* the cost is paid, never what any evaluation returns.
    """
    from repro.webpages.corpus import warm_corpus

    warm_corpus()


# Backwards-compatible alias: pool initializers predate the public name.
_warm_worker = warm_process


@dataclass
class MatrixResult:
    """Every cell's metrics, in canonical matrix order.

    :meth:`report` is fully deterministic — same matrix, same scenario,
    same code → byte-identical text, with or without the cache, at any
    worker count.  Runtime facts (wall time, cache hits) live only in
    :meth:`render_summary`, exactly the split ``SuiteReport`` uses.
    """

    registry_name: str
    scenario: Scenario
    runs: List[MatrixRun]
    processes: int = 1
    total_wall_time: float = 0.0

    @property
    def n_cached(self) -> int:
        return sum(1 for run in self.runs if run.cached)

    @property
    def cache_hit_rate(self) -> float:
        return self.n_cached / len(self.runs) if self.runs else 0.0

    def registry(self) -> ComponentRegistry:
        return registry_by_name(self.registry_name)

    def run_for(self, run_id: str) -> MatrixRun:
        for run in self.runs:
            if run.spec.run_id == run_id:
                return run
        raise KeyError(f"no run {run_id!r} in this matrix")

    def _columns(self) -> "Tuple[str, ...]":
        present = set()
        for run in self.runs:
            present.update(run.metrics)
        return tuple(column for column in METRIC_COLUMNS
                     if column in present)

    def report(self) -> str:
        """Deterministic per-cell metric table."""
        registry = self.registry()
        columns = self._columns()
        header = (f"== ablation matrix: {len(self.runs)} runs | "
                  f"profile={self.scenario.profile} "
                  f"pages={len(self.scenario.pages)} "
                  f"readings={len(self.scenario.reading_times)} ==")
        lines = [header,
                 "  ".join([f"{'run':12s}"]
                           + [f"{column:>14s}" for column in columns]
                           + ["label"])]
        for run in self.runs:
            cells = [f"{run.spec.short_id:12s}"]
            for column in columns:
                value = run.metrics.get(column)
                cells.append(f"{value:14.6f}" if value is not None
                             else f"{'-':>14s}")
            cells.append(run.spec.label(registry))
            lines.append("  ".join(cells))
        return "\n".join(lines)

    def render_summary(self) -> str:
        """Runtime facts only — never part of the deterministic report."""
        lines = [f"-- matrix runtime: {len(self.runs)} runs, "
                 f"{self.n_cached} cached "
                 f"({self.cache_hit_rate:.0%} hit rate), "
                 f"{self.processes} workers, "
                 f"{self.total_wall_time:.2f}s wall --"]
        for run in self.runs:
            source = "cache" if run.cached else "run"
            lines.append(f"  {run.spec.short_id}  {run.wall_time:7.2f}s "
                         f"[{source}]")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "matrix": {
                "registry": self.registry_name,
                "scenario": self.scenario.fingerprint(),
                "n_runs": len(self.runs),
                "n_cached": self.n_cached,
                "cache_hit_rate": self.cache_hit_rate,
                "processes": self.processes,
                "total_wall_time": self.total_wall_time,
                "code_version": code_version_hash(),
            },
            "runs": [run.to_dict() for run in self.runs],
        }


def run_specs(specs: Sequence[RunSpec], scenario: Scenario,
              registry_name: str = "default", processes: int = 1,
              cache: Optional[ResultCache] = None) -> MatrixResult:
    """Evaluate ``specs`` under ``scenario``, possibly in parallel.

    Cells already in the cache (same run ID, same code version) are
    served from disk; the rest fan out across ``processes`` workers.
    Results come back in the order ``specs`` were given — for generator
    output that is canonical content-addressed order.
    """
    if processes < 1:
        raise ValueError(f"processes must be >= 1, got {processes}")
    seen = set()
    for spec in specs:
        if spec.run_id in seen:
            raise ValueError(f"duplicate run {spec.short_id} in matrix")
        seen.add(spec.run_id)

    started = _time.perf_counter()
    code_version = code_version_hash()
    seeds = {spec.run_id: spec_seed(spec.run_id) for spec in specs}

    results: Dict[str, MatrixRun] = {}
    pending: List[RunSpec] = []
    keys: Dict[str, str] = {}
    for spec in specs:
        if cache is not None:
            key = cache_key(KIND_ABLATE, spec.run_id,
                            {"seed": seeds[spec.run_id]}, code_version)
            keys[spec.run_id] = key
            hit = cache.get(key)
            if hit is not None:
                results[spec.run_id] = MatrixRun(
                    spec=spec, seed=hit["seed"],
                    metrics=dict(hit["metrics"]),
                    wall_time=hit["wall_time"], cached=True)
                continue
        pending.append(spec)

    if pending:
        cache_dir = str(cache.root) if cache is not None else None
        if processes == 1 and len(pending) > 1 and ablate_fast_enabled():
            payloads = _execute_specs_batched(registry_name, pending,
                                              scenario, seeds, cache_dir)
        elif processes == 1 or len(pending) == 1:
            payloads = [_execute_spec(registry_name, spec, scenario,
                                      seeds[spec.run_id], cache_dir)
                        for spec in pending]
        else:
            workers = min(processes, len(pending))
            with ProcessPoolExecutor(max_workers=workers,
                                     initializer=_warm_worker) as pool:
                futures = [pool.submit(_execute_spec, registry_name,
                                       spec, scenario,
                                       seeds[spec.run_id], cache_dir)
                           for spec in pending]
                payloads = [future.result() for future in futures]
        by_id = {spec.run_id: spec for spec in pending}
        for payload in payloads:
            run_id = payload["run_id"]
            if cache is not None:
                cache.put(keys[run_id], payload)
            results[run_id] = MatrixRun(
                spec=by_id[run_id], seed=payload["seed"],
                metrics=dict(payload["metrics"]),
                wall_time=payload["wall_time"])

    return MatrixResult(
        registry_name=registry_name,
        scenario=scenario,
        runs=[results[spec.run_id] for spec in specs],
        processes=processes,
        total_wall_time=_time.perf_counter() - started)


def run_matrix(kind: str, scenario: Scenario,
               registry_name: str = "default",
               components: Optional[Sequence[str]] = None,
               fraction: Optional[int] = None,
               processes: int = 1,
               cache: Optional[ResultCache] = None) -> MatrixResult:
    """Generate a ``kind`` matrix for the named registry and run it."""
    registry = registry_by_name(registry_name)
    if components:
        registry = registry.subset(components)
    specs = generate(kind, registry, context=scenario.fingerprint(),
                     fraction=fraction)
    return run_specs(specs, scenario, registry_name=registry_name,
                     processes=processes, cache=cache)


# ----------------------------------------------------------------------
# Named studies: the KIND_ABLATE registry for repro profile / run_tasks.
# ----------------------------------------------------------------------


class MatrixStudy:
    """A named, zero-argument matrix study (the task-registry shape)."""

    def __init__(self, kind: str, profile: str,
                 registry_name: str = "default") -> None:
        self.kind = kind
        self.profile = profile
        self.registry_name = registry_name

    def __call__(self) -> MatrixResult:
        scenario = Scenario(profile=self.profile)
        return run_matrix(self.kind, scenario,
                          registry_name=self.registry_name)


#: ``(name, matrix kind, channel profile)`` for the standard studies.
_STANDARD = (
    ("loo-ideal", "loo", "ideal"),
    ("loo-cell-edge", "loo", "cell_edge"),
    ("ofat-ideal", "ofat", "ideal"),
    ("pairs-cell-edge", "pairs", "cell_edge"),
)

#: Named matrix studies exposed as the ``ablate`` task kind.
STANDARD_STUDIES: Dict[str, Tuple[str, Callable]] = {
    name: (f"Ablation matrix: {kind} @ {profile}",
           MatrixStudy(kind, profile))
    for name, kind, profile in _STANDARD
}


def standard_study_registry() -> Dict[str, Tuple[str, Callable]]:
    """Factory handed to ``runtime.parallel``'s ``_REGISTRIES``."""
    return dict(STANDARD_STUDIES)
