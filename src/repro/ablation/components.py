"""Declarative component registry for ablation studies.

The paper's energy savings hinge on a handful of coupled knobs —
computation-sequence reorganisation, the intermediate display, fast
dormancy, the reading-time predictor, the T1/T2 RRC timers and the
α/Tp/Td thresholds.  Until now each knob was probed by its own ad-hoc
``test_ablation_*`` experiment; this module declares every knob **once**
as a :class:`Component` with named levels, and everything downstream
(matrix generation, importance ranking, search) is generated from the
declarations.

A component does not carry code.  Its levels are plain field-override
mappings applied to a :class:`VariantSetup` — the frozen record of every
tunable the objective layer understands — via ``dataclasses.replace``.
That keeps declarations picklable (they cross process-pool boundaries),
diffable, and content-addressable: a run is identified by *which levels
it assigns*, never by the identity of a patch function.

Canonical ordering is by component **name** everywhere (registration
order is irrelevant), so run IDs and matrices are stable under
declaration reordering.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from repro.browser.config import BrowserConfig
from repro.core.config import ExperimentConfig, PolicyConfig
from repro.rrc.config import RrcConfig


@dataclass(frozen=True)
class VariantSetup:
    """Every knob the ablation objective understands, in one record.

    Defaults are the full energy-aware system with the paper's Table 2
    parameters and a perfect (oracle) reading-time predictor — the
    baseline every ablation is measured against.
    """

    #: Computation-sequence reorganisation (Section 4.1): ``False`` runs
    #: the stock browser engine instead.
    reorganisation: bool = True
    #: Simplified intermediate display (Section 4.2).
    intermediate_display: bool = True
    #: Fast dormancy: release the channels at the last byte and allow
    #: the post-load FACH→IDLE switch.  ``False`` leaves the radio to
    #: its inactivity timers.
    fast_dormancy: bool = True
    #: Reading-time predictor family used for the switch decision:
    #: ``oracle`` (perfect), ``gbrt-like`` (oracle with the GBRT's
    #: seeded log-normal error band), ``always-switch``, ``never-switch``.
    predictor: str = "oracle"
    #: RRC inactivity timers (Section 2.1; T-Mobile: 4 s / 15 s).
    t1: float = 4.0
    t2: float = 15.0
    #: Algorithm 2 thresholds (Table 2).
    alpha: float = 2.0
    tp: float = 9.0
    td: float = 20.0
    #: Threshold mode: ``power`` (Tp) or ``delay`` (Td).
    mode: str = "power"

    _PREDICTORS = ("oracle", "gbrt-like", "always-switch", "never-switch")

    def __post_init__(self) -> None:
        if self.predictor not in self._PREDICTORS:
            raise ValueError(f"predictor must be one of "
                             f"{self._PREDICTORS}, got {self.predictor!r}")
        # Timer/threshold validation is delegated to the config
        # dataclasses so the rules live in exactly one place.
        self.to_config()

    def to_config(self) -> ExperimentConfig:
        """The :class:`ExperimentConfig` this setup patches out."""
        return ExperimentConfig(
            rrc=RrcConfig(t1=self.t1, t2=self.t2),
            browser=BrowserConfig(
                intermediate_display=self.intermediate_display,
                dormancy_after_tx=self.fast_dormancy),
            policy=PolicyConfig(interest_threshold=self.alpha,
                                power_threshold=self.tp,
                                delay_threshold=self.td,
                                mode=self.mode))

    def apply(self, overrides: Mapping[str, object]) -> "VariantSetup":
        """A copy with ``overrides`` replacing fields (validated)."""
        unknown = sorted(set(overrides) - {f.name for f in fields(self)})
        if unknown:
            raise KeyError(f"unknown VariantSetup fields: {unknown}")
        return replace(self, **dict(overrides))


#: The stock browser the paper measures against: no reorganisation, no
#: fast dormancy, and no switch policy.  ``energy_saving`` metrics are
#: relative to this setup under the same scenario.
STOCK_SETUP = VariantSetup(reorganisation=False, fast_dormancy=False,
                           predictor="never-switch")


@dataclass(frozen=True)
class Component:
    """One declared knob: named levels, each a field-override mapping.

    ``levels`` is an ordered tuple of ``(level_name, overrides)`` pairs;
    ``baseline`` names the level the full system runs at and ``ablated``
    the level a leave-one-out matrix knocks the component down to
    (default: the first non-baseline level).
    """

    name: str
    description: str
    levels: Tuple[Tuple[str, Mapping[str, object]], ...]
    baseline: str
    ablated: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("component name must be non-empty")
        names = [level for level, _ in self.levels]
        if len(names) < 2:
            raise ValueError(
                f"component {self.name!r} needs at least two levels")
        if len(set(names)) != len(names):
            raise ValueError(
                f"component {self.name!r} has duplicate level names")
        if self.baseline not in names:
            raise ValueError(
                f"component {self.name!r}: baseline {self.baseline!r} "
                f"is not a declared level")
        if self.ablated:
            if self.ablated not in names:
                raise ValueError(
                    f"component {self.name!r}: ablated level "
                    f"{self.ablated!r} is not declared")
        else:
            fallback = next(level for level in names
                            if level != self.baseline)
            object.__setattr__(self, "ablated", fallback)

    @property
    def level_names(self) -> Tuple[str, ...]:
        return tuple(level for level, _ in self.levels)

    def overrides_for(self, level: str) -> Mapping[str, object]:
        for name, overrides in self.levels:
            if name == level:
                return overrides
        raise KeyError(f"component {self.name!r} has no level {level!r}; "
                       f"known: {list(self.level_names)}")


class ComponentRegistry:
    """A set of declared components, canonically ordered by name."""

    def __init__(self, components: Optional[List[Component]] = None):
        self._components: Dict[str, Component] = {}
        for component in components or ():
            self.register(component)

    def register(self, component: Component) -> Component:
        if component.name in self._components:
            raise ValueError(
                f"component {component.name!r} already registered")
        self._components[component.name] = component
        return component

    def get(self, name: str) -> Component:
        try:
            return self._components[name]
        except KeyError:
            raise KeyError(f"unknown component {name!r}; "
                           f"known: {self.names()}") from None

    def names(self) -> List[str]:
        """Component names in canonical (sorted) order."""
        return sorted(self._components)

    def components(self) -> List[Component]:
        """Components in canonical order, whatever order they were
        registered in."""
        return [self._components[name] for name in self.names()]

    def subset(self, names) -> "ComponentRegistry":
        """A registry holding only ``names`` (canonical order kept)."""
        return ComponentRegistry([self.get(name) for name in names])

    def baseline_assignment(self) -> Dict[str, str]:
        """Every component at its baseline level (canonical order)."""
        return {component.name: component.baseline
                for component in self.components()}

    def setup_for(self, assignment: Mapping[str, str],
                  base: Optional[VariantSetup] = None) -> VariantSetup:
        """Resolve a component→level assignment into a
        :class:`VariantSetup`.

        Unassigned components sit at their baseline level.  Overrides
        apply in canonical component order, so the result is independent
        of both declaration order and the assignment's key order even
        when components touch overlapping fields.
        """
        unknown = sorted(set(assignment) - set(self._components))
        if unknown:
            raise KeyError(f"assignment names unknown components: "
                           f"{unknown}; known: {self.names()}")
        setup = base or VariantSetup()
        for component in self.components():
            level = assignment.get(component.name, component.baseline)
            setup = setup.apply(component.overrides_for(level))
        return setup

    def __len__(self) -> int:
        return len(self._components)

    def __iter__(self) -> Iterator[Component]:
        return iter(self.components())

    def __contains__(self, name: str) -> bool:
        return name in self._components


# ----------------------------------------------------------------------
# The paper's components, declared once.
# ----------------------------------------------------------------------

#: Carrier T1/T2 presets from the measurement literature (the legacy
#: carrier ablation's table), as levels of the ``timers`` component.
TIMER_LEVELS: Tuple[Tuple[str, Mapping[str, object]], ...] = (
    ("t-mobile", {"t1": 4.0, "t2": 15.0}),
    ("carrier-b", {"t1": 5.0, "t2": 12.0}),
    ("aggressive", {"t1": 2.0, "t2": 8.0}),
    ("conservative", {"t1": 6.0, "t2": 20.0}),
)


def default_registry() -> ComponentRegistry:
    """The paper's knobs as one declarative registry.

    Every legacy ``test_ablation_*`` component appears: reorganisation
    and the intermediate display (the reorganisation study), fast
    dormancy (Section 4.1's radio action), the predictor family (the
    predictor study, collapsed to decision quality), the carrier timer
    presets (the timers/carriers studies) and the Algorithm 2 thresholds
    (the α study).
    """
    registry = ComponentRegistry()
    registry.register(Component(
        name="reorganisation",
        description="computation-sequence reorganisation (Section 4.1)",
        levels=(("on", {"reorganisation": True}),
                ("off", {"reorganisation": False})),
        baseline="on"))
    registry.register(Component(
        name="intermediate_display",
        description="simplified intermediate display (Section 4.2)",
        levels=(("on", {"intermediate_display": True}),
                ("off", {"intermediate_display": False})),
        baseline="on"))
    registry.register(Component(
        name="fast_dormancy",
        description="release channels at the last byte + allow the "
                    "post-load IDLE switch (Section 4.1)",
        levels=(("on", {"fast_dormancy": True}),
                ("off", {"fast_dormancy": False})),
        baseline="on"))
    registry.register(Component(
        name="predictor",
        description="reading-time predictor quality behind Algorithm 2",
        levels=(("oracle", {"predictor": "oracle"}),
                ("gbrt-like", {"predictor": "gbrt-like"}),
                ("always-switch", {"predictor": "always-switch"}),
                ("never-switch", {"predictor": "never-switch"})),
        baseline="oracle",
        ablated="always-switch"))
    registry.register(Component(
        name="timers",
        description="carrier T1/T2 inactivity-timer preset",
        levels=TIMER_LEVELS,
        baseline="t-mobile",
        ablated="aggressive"))
    registry.register(Component(
        name="thresholds",
        description="Algorithm 2 switching thresholds (α, Tp, Td)",
        levels=(("paper", {"alpha": 2.0, "tp": 9.0, "td": 20.0}),
                ("eager", {"alpha": 0.5, "tp": 4.0, "td": 20.0}),
                ("reluctant", {"alpha": 4.0, "tp": 18.0, "td": 20.0})),
        baseline="paper",
        ablated="eager"))
    return registry
