"""The five ad-hoc ablation studies, ported onto the declarative registry.

Each legacy study in :mod:`repro.experiments.ablations` becomes one
declared :class:`~repro.ablation.components.Component` (its variants are
the component's levels, in the study's original row order) plus a named
**metric extractor** — the study-specific measurement the generic
objective does not compute (threshold accuracy, coverage, engine
comparison savings).  The public ``reorganisation_ablation`` /
``timer_ablation`` / … functions in ``experiments.ablations`` now
delegate here; a golden test pins the new path's reports to the original
implementations byte-for-byte.

The split of responsibilities matches the tentpole design: the registry
*declares* what varies (levels as plain override mappings — VariantSetup
fields where the knob is an engine knob, study-domain parameters like
the GBRT boosting budget where it is not), the extractor *measures*, and
a fold assembles the study's legacy result object so every report,
table, and downstream consumer stays identical.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Mapping, Tuple

import numpy as np

from repro.ablation.components import Component, ComponentRegistry

#: Evaluation context shared by every level of one study run.
Context = Dict[str, Any]


# ----------------------------------------------------------------------
# Component declarations (levels in legacy row order).
# ----------------------------------------------------------------------

REORGANISATION_COMPONENT = Component(
    name="reorganisation_variant",
    description="which of the two mechanisms (grouping, release) runs",
    levels=(
        ("original", {"reorganisation": False}),
        ("reorganised, no release", {"fast_dormancy": False}),
        ("reorganised, no intermediate display",
         {"intermediate_display": False}),
        ("energy-aware (full)", {}),
    ),
    baseline="energy-aware (full)",
    ablated="original")

TIMER_COMPONENT = Component(
    name="timer_preset",
    description="T1/T2 sweep under the stock browser",
    levels=(
        ("1/5", {"t1": 1.0, "t2": 5.0}),
        ("2/10", {"t1": 2.0, "t2": 10.0}),
        ("4/15", {"t1": 4.0, "t2": 15.0}),
        ("8/15", {"t1": 8.0, "t2": 15.0}),
    ),
    baseline="4/15",
    ablated="1/5")

PREDICTOR_COMPONENT = Component(
    name="predictor_model",
    description="linear baseline vs GBRT at several boosting budgets",
    levels=(
        ("linear (ridge)", {"model": "linear"}),
        ("GBRT M=25", {"model": "gbrt", "n_estimators": 25}),
        ("GBRT M=100", {"model": "gbrt", "n_estimators": 100}),
        ("GBRT M=300", {"model": "gbrt", "n_estimators": 300}),
    ),
    baseline="GBRT M=300",
    ablated="linear (ridge)")

ALPHA_COMPONENT = Component(
    name="interest_threshold",
    description="interest threshold α: accuracy vs coverage",
    levels=(
        ("0", {"alpha": 0.0}),
        ("1", {"alpha": 1.0}),
        ("2", {"alpha": 2.0}),
        ("4", {"alpha": 4.0}),
        ("8", {"alpha": 8.0}),
    ),
    baseline="2",
    ablated="0")

CARRIER_COMPONENT = Component(
    name="carrier_timers",
    description="full-system saving across carrier timer presets",
    levels=(
        ("t-mobile (paper)", {"t1": 4.0, "t2": 15.0}),
        ("carrier B", {"t1": 5.0, "t2": 12.0}),
        ("aggressive", {"t1": 2.0, "t2": 8.0}),
        ("conservative", {"t1": 6.0, "t2": 20.0}),
    ),
    baseline="t-mobile (paper)",
    ablated="aggressive")


def legacy_registry() -> ComponentRegistry:
    """All five legacy study components in one registry."""
    return ComponentRegistry([
        REORGANISATION_COMPONENT, TIMER_COMPONENT, PREDICTOR_COMPONENT,
        ALPHA_COMPONENT, CARRIER_COMPONENT])


# ----------------------------------------------------------------------
# Metric extractors: one level → one legacy row.
# ----------------------------------------------------------------------


def _prepare_reorganisation(params: Mapping[str, Any]) -> Context:
    from repro.core.config import ExperimentConfig
    from repro.webpages.corpus import benchmark_pages

    return {"base": params.get("config") or ExperimentConfig(),
            "pages": benchmark_pages(mobile=False)}


def _extract_reorganisation(level: str, overrides: Mapping[str, Any],
                            ctx: Context):
    from repro.browser.config import BrowserConfig
    from repro.browser.energy_aware import EnergyAwareEngine
    from repro.browser.original import OriginalEngine
    from repro.core.comparison import mean
    from repro.core.session import browse_and_read
    from repro.experiments.ablations import ReorganisationRow

    engine_cls = (EnergyAwareEngine
                  if overrides.get("reorganisation", True)
                  else OriginalEngine)
    browser_knobs = {}
    if "fast_dormancy" in overrides:
        browser_knobs["dormancy_after_tx"] = overrides["fast_dormancy"]
    if "intermediate_display" in overrides:
        browser_knobs["intermediate_display"] = \
            overrides["intermediate_display"]
    config = ctx["base"]
    if browser_knobs:
        config = replace(config, browser=BrowserConfig(**browser_knobs))
    sessions = [browse_and_read(page, engine_cls, reading_time=0.0,
                                config=config)
                for page in ctx["pages"]]
    return ReorganisationRow(
        variant=level,
        tx_time=mean([s.load.data_transmission_time for s in sessions]),
        load_time=mean([s.load.load_complete_time for s in sessions]),
        loading_energy=mean([s.loading_energy.total for s in sessions]))


def _fold_reorganisation(rows: List, params: Mapping[str, Any]):
    from repro.experiments.ablations import ReorganisationAblation

    return ReorganisationAblation(rows=rows)


def _prepare_timers(params: Mapping[str, Any]) -> Context:
    from repro.webpages.corpus import find_page

    return {"page": find_page(params.get("page_name",
                                         "www.motors.ebay.com")),
            "reading_time": params.get("reading_time", 10.0)}


def _extract_timers(level: str, overrides: Mapping[str, Any],
                    ctx: Context):
    from repro.browser.original import OriginalEngine
    from repro.core.config import ExperimentConfig
    from repro.core.session import browse_and_read
    from repro.experiments.ablations import TimerRow
    from repro.rrc.config import RrcConfig
    from repro.rrc.tail import promotion_latency, tail_state_after_tx

    t1, t2 = float(overrides["t1"]), float(overrides["t2"])
    reading_time = ctx["reading_time"]
    rrc = RrcConfig(t1=t1, t2=t2)
    config = replace(ExperimentConfig(), rrc=rrc)
    session = browse_and_read(ctx["page"], OriginalEngine, reading_time,
                              config=config)
    last_byte = max(t.completed_at for t in session.load.transfers)
    load_end = session.load.started_at + session.load.load_complete_time
    offset = load_end - last_byte + reading_time
    state = tail_state_after_tx(offset, rrc)
    return TimerRow(t1=t1, t2=t2, total_energy=session.total_energy,
                    next_click_delay=promotion_latency(state, rrc))


def _fold_timers(rows: List, params: Mapping[str, Any]):
    from repro.experiments.ablations import TimerAblation

    return TimerAblation(rows=rows,
                         reading_time=params.get("reading_time", 10.0))


def _prepare_predictor(params: Mapping[str, Any]) -> Context:
    from repro.ml.validation import train_test_split
    from repro.traces.generator import generate_trace

    dataset = generate_trace(params.get("trace_config")) \
        .filter_reading_time().exclude_quick_bounces(2.0)
    x, y = dataset.to_arrays()
    x_train, x_test, y_train, y_test = train_test_split(
        x, y, test_fraction=0.3,
        random_state=params.get("split_seed", 7))
    return {"x_train": x_train, "x_test": x_test,
            "y_train": y_train, "y_test": y_test}


def _extract_predictor(level: str, overrides: Mapping[str, Any],
                       ctx: Context):
    from repro.experiments.ablations import PredictorRow
    from repro.ml.linear import LinearRegressor
    from repro.ml.metrics import threshold_accuracy
    from repro.prediction.predictor import ReadingTimePredictor

    if overrides["model"] == "linear":
        linear = LinearRegressor().fit(ctx["x_train"],
                                       np.log1p(ctx["y_train"]))
        predicted = np.expm1(linear.predict(ctx["x_test"]))
    else:
        predictor = ReadingTimePredictor(
            n_estimators=int(overrides["n_estimators"]),
            interest_threshold=None)
        predictor.fit_arrays(ctx["x_train"], ctx["y_train"])
        predicted = predictor.predict(ctx["x_test"])
    return PredictorRow(
        model=level,
        accuracy_tp=threshold_accuracy(ctx["y_test"], predicted, 9.0),
        accuracy_td=threshold_accuracy(ctx["y_test"], predicted, 20.0))


def _fold_predictor(rows: List, params: Mapping[str, Any]):
    from repro.experiments.ablations import PredictorAblation

    return PredictorAblation(rows=rows)


def _prepare_alpha(params: Mapping[str, Any]) -> Context:
    from repro.traces.generator import generate_trace

    dataset = generate_trace(params.get("trace_config")) \
        .filter_reading_time()
    return {"dataset": dataset, "total": len(dataset),
            "split_seed": params.get("split_seed", 7)}


def _extract_alpha(level: str, overrides: Mapping[str, Any],
                   ctx: Context):
    from repro.experiments.ablations import AlphaRow
    from repro.ml.metrics import threshold_accuracy
    from repro.ml.validation import train_test_split
    from repro.prediction.predictor import ReadingTimePredictor

    alpha = float(overrides["alpha"])
    dataset = ctx["dataset"]
    kept = dataset.exclude_quick_bounces(alpha) if alpha > 0 else dataset
    x, y = kept.to_arrays()
    x_train, x_test, y_train, y_test = train_test_split(
        x, y, test_fraction=0.3, random_state=ctx["split_seed"])
    predictor = ReadingTimePredictor(n_estimators=150,
                                     interest_threshold=None)
    predictor.fit_arrays(x_train, y_train)
    accuracy = threshold_accuracy(y_test, predictor.predict(x_test),
                                  9.0)
    return AlphaRow(alpha=alpha, accuracy_tp=accuracy,
                    coverage=len(kept) / ctx["total"])


def _fold_alpha(rows: List, params: Mapping[str, Any]):
    from repro.experiments.ablations import AlphaAblation

    return AlphaAblation(rows=rows)


def _prepare_carriers(params: Mapping[str, Any]) -> Context:
    from repro.webpages.corpus import find_page

    return {"page": find_page(params.get("page_name",
                                         "espn.go.com/sports")),
            "reading_time": params.get("reading_time", 20.0)}


def _extract_carriers(level: str, overrides: Mapping[str, Any],
                      ctx: Context):
    from repro.core.comparison import compare_engines
    from repro.core.config import ExperimentConfig
    from repro.experiments.ablations import CarrierRow
    from repro.rrc.config import RrcConfig

    t1, t2 = float(overrides["t1"]), float(overrides["t2"])
    config = replace(ExperimentConfig(), rrc=RrcConfig(t1=t1, t2=t2))
    comparison = compare_engines(ctx["page"],
                                 reading_time=ctx["reading_time"],
                                 config=config)
    return CarrierRow(carrier=level, t1=t1, t2=t2,
                      energy_saving=comparison.energy_saving)


def _fold_carriers(rows: List, params: Mapping[str, Any]):
    from repro.experiments.ablations import CarrierAblation

    return CarrierAblation(rows=rows,
                           reading_time=params.get("reading_time",
                                                   20.0))


@dataclass(frozen=True)
class LegacyStudy:
    """One ported study: a component plus its extractor and fold."""

    name: str
    component: Component
    prepare: Callable[[Mapping[str, Any]], Context]
    extract: Callable[[str, Mapping[str, Any], Context], Any]
    fold: Callable[[List[Any], Mapping[str, Any]], Any]

    def run(self, **params: Any) -> Any:
        """Enumerate the component's levels in declared (legacy row)
        order, extract each level's row, fold the legacy result."""
        ctx = self.prepare(params)
        rows = [self.extract(level, overrides, ctx)
                for level, overrides in self.component.levels]
        return self.fold(rows, params)


#: Legacy study name → ported study, keyed exactly as ``ALL_ABLATIONS``.
LEGACY_STUDIES: Dict[str, LegacyStudy] = {
    "reorganisation": LegacyStudy(
        "reorganisation", REORGANISATION_COMPONENT,
        _prepare_reorganisation, _extract_reorganisation,
        _fold_reorganisation),
    "timers": LegacyStudy(
        "timers", TIMER_COMPONENT, _prepare_timers, _extract_timers,
        _fold_timers),
    "predictor": LegacyStudy(
        "predictor", PREDICTOR_COMPONENT, _prepare_predictor,
        _extract_predictor, _fold_predictor),
    "alpha": LegacyStudy(
        "alpha", ALPHA_COMPONENT, _prepare_alpha, _extract_alpha,
        _fold_alpha),
    "carriers": LegacyStudy(
        "carriers", CARRIER_COMPONENT, _prepare_carriers,
        _extract_carriers, _fold_carriers),
}


def run_legacy(name: str, **params: Any) -> Any:
    """Run one ported study by its ``ALL_ABLATIONS`` name."""
    try:
        study = LEGACY_STUDIES[name]
    except KeyError:
        raise KeyError(f"unknown legacy study {name!r}; known: "
                       f"{sorted(LEGACY_STUDIES)}") from None
    return study.run(**params)
