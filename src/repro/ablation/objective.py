"""Scenario evaluation: one :class:`VariantSetup` → one metrics dict.

The evaluation unit is a *scenario*: a channel profile, a small page
set, and a grid of reading times.  For each page the variant engine
loads the page once with the full discrete-event simulator (under the
scenario's seeded :class:`~repro.faults.injector.FaultPlan`, common
random numbers across variants so comparisons are fair), and each
(page, reading-time) unit is then scored with the analytic radio-tail
math of :mod:`repro.rrc.tail` — the same closed forms the Fig. 16 policy
evaluation uses — including the next click's promotion latency and
signalling energy, which is what makes eager switching pay a price.

Metrics per run:

- ``energy`` — mean per-unit energy (load + reading tail + next-click
  promotion), joules; the search objective.
- ``energy_saving`` — fractional saving vs the stock browser
  (:data:`~repro.ablation.components.STOCK_SETUP`) under the *same*
  scenario, memoised per process.
- ``delay`` — mean next-click promotion latency, seconds; the constraint
  metric (``repro tune --budget-delay``).
- ``load_time``, ``tx_time`` — mean load / data-transmission times.
- ``switch_rate`` — fraction of units Algorithm 2 switched to IDLE.
- ``drop_probability`` — only with a population: an M/G/N capacity run
  (:class:`repro.capacity.simulator.CapacitySimulator`, fleet-backed)
  whose service pool is the variant's own measured channel-hold times,
  so reorganisation and timer choices move the drop curve.

Determinism: fault plans derive from ``(scenario.seed, page index)`` —
identical across runs and variants — while the run's own randomness (the
``gbrt-like`` predictor's error band, the capacity run) draws from the
``eval_seed`` handed in by the engine, which spawns it off the run ID.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.ablation.components import STOCK_SETUP, VariantSetup
from repro.browser.energy_aware import EnergyAwareEngine
from repro.browser.original import OriginalEngine
from repro.core.session import browse_and_read
from repro.faults.injector import FaultPlan
from repro.faults.profiles import get_profile
from repro.rrc.states import RrcState
from repro.rrc.tail import (
    promotion_energy,
    promotion_latency,
    tail_energy_after_release,
    tail_energy_after_tx,
    tail_state_after_release,
    tail_state_after_tx,
)
from repro.runtime.seeding import DEFAULT_ROOT_SEED, spawn_seeds
from repro.webpages.corpus import find_page

#: Default page set: two mid-size full-version Table 3 pages — big
#: enough that reorganisation matters, small enough for dense matrices.
DEFAULT_PAGES: Tuple[str, ...] = ("espn.go.com/sports",
                                  "www.motors.ebay.com")

#: Default reading-time grid, seconds: spans both sides of the paper's
#: Tp = 9 s break-even and the Td = 20 s delay threshold.
DEFAULT_READING_TIMES: Tuple[float, ...] = (2.0, 5.0, 9.0, 15.0, 30.0,
                                            60.0)

#: Log-scale error of the ``gbrt-like`` predictor level — roughly the
#: trained GBRT's reading-time accuracy band.
GBRT_LIKE_SIGMA = 0.35


@dataclass(frozen=True)
class PopulationSpec:
    """Optional population-scale objective: an M/G/N capacity run."""

    n_users: int = 300
    n_channels: int = 200
    horizon: float = 3600.0
    mean_interval: float = 25.0

    def __post_init__(self) -> None:
        if self.n_users < 1 or self.n_channels < 1:
            raise ValueError("population needs n_users and n_channels "
                             ">= 1")
        if self.horizon <= 0 or self.mean_interval <= 0:
            raise ValueError("population horizon and mean_interval must "
                             "be positive")

    def fingerprint(self) -> Dict[str, object]:
        return {"n_users": self.n_users, "n_channels": self.n_channels,
                "horizon": self.horizon,
                "mean_interval": self.mean_interval}


@dataclass(frozen=True)
class Scenario:
    """The evaluation context every run of a matrix/search shares."""

    profile: str = "ideal"
    pages: Tuple[str, ...] = DEFAULT_PAGES
    reading_times: Tuple[float, ...] = DEFAULT_READING_TIMES
    seed: int = DEFAULT_ROOT_SEED
    population: Optional[PopulationSpec] = None

    def __post_init__(self) -> None:
        get_profile(self.profile)  # validate the name eagerly
        if not self.pages:
            raise ValueError("scenario needs at least one page")
        if not self.reading_times:
            raise ValueError("scenario needs at least one reading time")
        if any(r < 0 for r in self.reading_times):
            raise ValueError("reading times must be non-negative")

    def fingerprint(self) -> Dict[str, object]:
        """JSON-stable identity for run IDs and cache keys."""
        payload: Dict[str, object] = {
            "profile": self.profile,
            "pages": list(self.pages),
            "reading_times": [float(r) for r in self.reading_times],
            "seed": int(self.seed),
        }
        if self.population is not None:
            payload["population"] = self.population.fingerprint()
        return payload

    def at_fidelity(self, n_readings: int) -> "Scenario":
        """A cheaper scenario using the first ``n_readings`` reading
        times — the successive-halving rung ladder."""
        if n_readings < 1:
            raise ValueError("fidelity must keep at least one reading")
        kept = self.reading_times[:n_readings]
        return replace(self, reading_times=kept)

    @property
    def n_units(self) -> int:
        return len(self.pages) * len(self.reading_times)


@dataclass(frozen=True)
class _PageLoad:
    """The per-page load facts the closed-form reading phase needs."""

    load_time: float
    tx_time: float
    loading_energy: float
    #: Offset of the reading anchor after the last transmission ended.
    tail_offset: float
    #: Offset of the reading anchor after the channel release.
    release_offset: float
    #: Channel-hold time for the capacity pool.
    hold_time: float


def _load_page(page_name: str, setup: VariantSetup, profile: str,
               page_seed: int) -> _PageLoad:
    """One full discrete-event page load under the scenario's plan."""
    page = find_page(page_name)
    engine_cls = (EnergyAwareEngine if setup.reorganisation
                  else OriginalEngine)
    plan = None
    if profile != "ideal":
        plan = FaultPlan.named(profile, seed=page_seed)
    session = browse_and_read(page, engine_cls, reading_time=0.0,
                              config=setup.to_config(), faults=plan)
    load = session.load
    last_byte = max(t.completed_at - load.started_at
                    for t in load.transfers)
    released = setup.reorganisation and setup.fast_dormancy
    # Channel-hold time: with fast dormancy the channels go at the last
    # byte; otherwise the DCH inactivity timer T1 keeps them allocated.
    hold = load.data_transmission_time + (0.0 if released else setup.t1)
    return _PageLoad(
        load_time=load.load_complete_time,
        tx_time=load.data_transmission_time,
        loading_energy=session.loading_energy.total,
        tail_offset=load.load_complete_time - last_byte,
        release_offset=load.layout_phase_time,
        hold_time=hold)


def _wants_switch(setup: VariantSetup, reading: float,
                  predicted: float) -> bool:
    """Algorithm 2's decision for one unit, given a prediction."""
    if not setup.fast_dormancy:
        return False
    if reading <= setup.alpha:  # the user left before the decision point
        return False
    threshold = setup.tp if setup.mode == "power" else setup.td
    return predicted > threshold


def _predictions(setup: VariantSetup, readings: np.ndarray,
                 eval_seed: int) -> np.ndarray:
    """The predictor level's reading-time estimates, deterministically.

    ``oracle`` returns the truth; ``gbrt-like`` perturbs it with a
    seeded log-normal error (one draw per unit, fixed unit order);
    ``always-switch``/``never-switch`` saturate the decision.
    """
    if setup.predictor == "oracle":
        return readings.copy()
    if setup.predictor == "always-switch":
        return np.full_like(readings, np.inf)
    if setup.predictor == "never-switch":
        return np.zeros_like(readings)
    rng = np.random.default_rng(np.random.SeedSequence(eval_seed))
    noise = rng.normal(0.0, GBRT_LIKE_SIGMA, size=readings.size)
    return readings * np.exp(noise)


def _reading_phase(setup: VariantSetup, load: _PageLoad, reading: float,
                   switch: bool) -> Tuple[float, RrcState]:
    """Closed-form reading energy and the radio state at the next click.

    Anchored at the channel release when the variant released (energy-
    aware engine with fast dormancy), at the last transmission otherwise
    — exactly the Fig. 16 evaluator's accounting.  A switching unit cuts
    the tail at α and idles for the rest of the reading period.
    """
    rrc = setup.to_config().rrc
    released = setup.reorganisation and setup.fast_dormancy
    if released:
        start = load.release_offset
        energy_fn, state_fn = tail_energy_after_release, \
            tail_state_after_release
    else:
        start = load.tail_offset
        energy_fn, state_fn = tail_energy_after_tx, tail_state_after_tx
    if not switch or reading <= setup.alpha:
        energy = energy_fn(start, start + reading, rrc)
        return energy, state_fn(start + reading, rrc)
    energy = energy_fn(start, start + setup.alpha, rrc)
    energy += rrc.power.idle * (reading - setup.alpha)
    return energy, RrcState.IDLE


def _drop_probability(holds: List[float], population: PopulationSpec,
                      eval_seed: int) -> float:
    """Population-scale objective: drop probability of an M/G/N cell
    whose service pool is the variant's own channel-hold times."""
    from repro.capacity.simulator import CapacityConfig, CapacitySimulator

    config = CapacityConfig(n_channels=population.n_channels,
                            mean_interval=population.mean_interval,
                            horizon=population.horizon,
                            seed=eval_seed)
    simulator = CapacitySimulator(np.asarray(holds, dtype=float), config)
    capacity_seed = int(np.random.SeedSequence(
        eval_seed, spawn_key=(1,)).generate_state(1)[0])
    result = simulator.run(population.n_users, seed=capacity_seed)
    return result.drop_probability


def evaluate_setup(setup: VariantSetup, scenario: Scenario,
                   eval_seed: int) -> Dict[str, float]:
    """Score one variant under one scenario; pure given its inputs."""
    page_seeds = spawn_seeds(scenario.seed, len(scenario.pages))
    loads = [_load_page(name, setup, scenario.profile, page_seed)
             for name, page_seed in zip(scenario.pages, page_seeds)]

    readings = np.asarray(
        [r for _ in scenario.pages for r in scenario.reading_times],
        dtype=float)
    predicted = _predictions(setup, readings, eval_seed)

    rrc = setup.to_config().rrc
    energies: List[float] = []
    delays: List[float] = []
    switches = 0
    unit = 0
    for load in loads:
        for reading in scenario.reading_times:
            switch = _wants_switch(setup, float(reading),
                                   float(predicted[unit]))
            unit += 1
            read_energy, state = _reading_phase(setup, load,
                                                float(reading), switch)
            switches += bool(switch)
            energies.append(load.loading_energy + read_energy
                            + promotion_energy(state, rrc))
            delays.append(promotion_latency(state, rrc))

    metrics: Dict[str, float] = {
        "energy": float(np.mean(energies)),
        "delay": float(np.mean(delays)),
        "load_time": float(np.mean([load.load_time for load in loads])),
        "tx_time": float(np.mean([load.tx_time for load in loads])),
        "switch_rate": switches / len(energies),
    }
    if scenario.population is not None:
        metrics["drop_probability"] = _drop_probability(
            [load.hold_time for load in loads], scenario.population,
            eval_seed)
    reference = reference_metrics(scenario)
    if reference["energy"] > 0:
        metrics["energy_saving"] = (
            (reference["energy"] - metrics["energy"])
            / reference["energy"])
    else:
        metrics["energy_saving"] = 0.0
    return metrics


#: Process-local memo: the stock browser's metrics per scenario.  The
#: stock setup has no run-level randomness (``never-switch`` predictor,
#: no capacity draw needed), so the scenario fully determines it.
_REFERENCE_MEMO: Dict[Tuple, Dict[str, float]] = {}


def reference_metrics(scenario: Scenario) -> Dict[str, float]:
    """The stock browser's scores under ``scenario`` (memoised)."""
    key = (scenario.profile, scenario.pages, scenario.reading_times,
           scenario.seed)
    hit = _REFERENCE_MEMO.get(key)
    if hit is not None:
        return hit
    reference = replace(scenario, population=None)
    page_seeds = spawn_seeds(reference.seed, len(reference.pages))
    loads = [_load_page(name, STOCK_SETUP, reference.profile, page_seed)
             for name, page_seed in zip(reference.pages, page_seeds)]
    rrc = STOCK_SETUP.to_config().rrc
    energies: List[float] = []
    delays: List[float] = []
    for load in loads:
        for reading in reference.reading_times:
            read_energy, state = _reading_phase(STOCK_SETUP, load,
                                                float(reading), False)
            energies.append(load.loading_energy + read_energy
                            + promotion_energy(state, rrc))
            delays.append(promotion_latency(state, rrc))
    metrics = {
        "energy": float(np.mean(energies)),
        "delay": float(np.mean(delays)),
        "load_time": float(np.mean([load.load_time for load in loads])),
    }
    _REFERENCE_MEMO[key] = metrics
    return metrics
