"""Scenario evaluation: one :class:`VariantSetup` → one metrics dict.

The evaluation unit is a *scenario*: a channel profile, a small page
set, and a grid of reading times.  For each page the variant engine
loads the page once with the full discrete-event simulator (under the
scenario's seeded :class:`~repro.faults.injector.FaultPlan`, common
random numbers across variants so comparisons are fair), and each
(page, reading-time) unit is then scored with the analytic radio-tail
math of :mod:`repro.rrc.tail` — the same closed forms the Fig. 16 policy
evaluation uses — including the next click's promotion latency and
signalling energy, which is what makes eager switching pay a price.

Metrics per run:

- ``energy`` — mean per-unit energy (load + reading tail + next-click
  promotion), joules; the search objective.
- ``energy_saving`` — fractional saving vs the stock browser
  (:data:`~repro.ablation.components.STOCK_SETUP`) under the *same*
  scenario, memoised per process.
- ``delay`` — mean next-click promotion latency, seconds; the constraint
  metric (``repro tune --budget-delay``).
- ``load_time``, ``tx_time`` — mean load / data-transmission times.
- ``switch_rate`` — fraction of units Algorithm 2 switched to IDLE.
- ``drop_probability`` — only with a population: an M/G/N capacity run
  (:class:`repro.capacity.simulator.CapacitySimulator`, fleet-backed)
  whose service pool is the variant's own measured channel-hold times,
  so reorganisation and timer choices move the drop curve.

Determinism: fault plans derive from ``(scenario.seed, page index)`` —
identical across runs and variants — while the run's own randomness (the
``gbrt-like`` predictor's error band, the capacity run) draws from the
``eval_seed`` handed in by the engine, which spawns it off the run ID.

Batched evaluation (PR 8): only a *projection* of the setup can change a
discrete-event page load — reorganisation, intermediate display, fast
dormancy, and the T1/T2 timers (:func:`load_projection`).  α/Tp/Td, the
decision mode and the predictor level are scoring-only, so
:func:`_load_page` outcomes are memoised on ``(page, profile, page_seed,
projection)`` — process-local plus the content-addressed on-disk
:class:`~repro.runtime.cache.ResultCache` — and a tune sweep over
thresholds runs its simulations once, not once per trial.  Scoring then
runs over the whole (trials × pages × readings) unit grid through the
``*_grid`` array forms of :mod:`repro.rrc.tail` in a fleet backend
namespace.  The scalar per-unit loop is retained verbatim behind
``REPRO_ABLATE_SLOW=1`` and the two paths are golden-gated
byte-identical (``tests/ablation/test_batched_golden.py``).
"""

from __future__ import annotations

import os
import threading
from dataclasses import asdict, dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.ablation.components import STOCK_SETUP, VariantSetup
from repro.browser.energy_aware import EnergyAwareEngine
from repro.browser.original import OriginalEngine
from repro.core.session import browse_and_read
from repro.faults.injector import FaultPlan
from repro.faults.profiles import get_profile
from repro.fleet import backend as fleet_backend
from repro.rrc.states import RrcState
from repro.rrc.tail import (
    STATE_IDLE,
    promotion_energy,
    promotion_energy_grid,
    promotion_latency,
    promotion_latency_grid,
    tail_energy_after_release,
    tail_energy_after_tx,
    tail_energy_grid,
    tail_state_after_release,
    tail_state_after_tx,
    tail_state_grid,
)
from repro.runtime.cache import ResultCache, cache_key
from repro.runtime.observability import KERNEL_STATS
from repro.runtime.seeding import DEFAULT_ROOT_SEED, spawn_seeds
from repro.runtime.singleflight import (
    SingleFlight,
    locked_counter_add,
    snapshot_counters,
)
from repro.webpages.corpus import find_page

#: Set to any non-empty value to route through the scalar per-unit
#: reference evaluator (no load memo, no grid scoring) — the golden
#: twin of the batched path, read at call time like REPRO_FLEET_SLOW.
ABLATE_SLOW_ENV = "REPRO_ABLATE_SLOW"

#: Array namespace the grid scoring runs in ("numpy" default;
#: "restricted" enforces array-API-only usage in CI).
ABLATE_BACKEND_ENV = "REPRO_ABLATE_BACKEND"

#: Cache kind for memoised page-load outcomes (tentpole: loads are
#: keyed by the load-relevant projection, not the full setup).
KIND_LOAD_PAGE = "ablate-load"


def ablate_fast_enabled() -> bool:
    """Whether the batched evaluator is active (checked per call)."""
    return not os.environ.get(ABLATE_SLOW_ENV)


def scoring_namespace():
    """The array namespace the unit-grid scoring runs in."""
    return fleet_backend.get_namespace(
        os.environ.get(ABLATE_BACKEND_ENV) or "numpy")

#: Default page set: two mid-size full-version Table 3 pages — big
#: enough that reorganisation matters, small enough for dense matrices.
DEFAULT_PAGES: Tuple[str, ...] = ("espn.go.com/sports",
                                  "www.motors.ebay.com")

#: Default reading-time grid, seconds: spans both sides of the paper's
#: Tp = 9 s break-even and the Td = 20 s delay threshold.
DEFAULT_READING_TIMES: Tuple[float, ...] = (2.0, 5.0, 9.0, 15.0, 30.0,
                                            60.0)

#: Log-scale error of the ``gbrt-like`` predictor level — roughly the
#: trained GBRT's reading-time accuracy band.
GBRT_LIKE_SIGMA = 0.35


@dataclass(frozen=True)
class PopulationSpec:
    """Optional population-scale objective: an M/G/N capacity run."""

    n_users: int = 300
    n_channels: int = 200
    horizon: float = 3600.0
    mean_interval: float = 25.0

    def __post_init__(self) -> None:
        if self.n_users < 1 or self.n_channels < 1:
            raise ValueError("population needs n_users and n_channels "
                             ">= 1")
        if self.horizon <= 0 or self.mean_interval <= 0:
            raise ValueError("population horizon and mean_interval must "
                             "be positive")

    def fingerprint(self) -> Dict[str, object]:
        return {"n_users": self.n_users, "n_channels": self.n_channels,
                "horizon": self.horizon,
                "mean_interval": self.mean_interval}


@dataclass(frozen=True)
class Scenario:
    """The evaluation context every run of a matrix/search shares."""

    profile: str = "ideal"
    pages: Tuple[str, ...] = DEFAULT_PAGES
    reading_times: Tuple[float, ...] = DEFAULT_READING_TIMES
    seed: int = DEFAULT_ROOT_SEED
    population: Optional[PopulationSpec] = None

    def __post_init__(self) -> None:
        get_profile(self.profile)  # validate the name eagerly
        if not self.pages:
            raise ValueError("scenario needs at least one page")
        if not self.reading_times:
            raise ValueError("scenario needs at least one reading time")
        if any(r < 0 for r in self.reading_times):
            raise ValueError("reading times must be non-negative")

    def fingerprint(self) -> Dict[str, object]:
        """JSON-stable identity for run IDs and cache keys."""
        payload: Dict[str, object] = {
            "profile": self.profile,
            "pages": list(self.pages),
            "reading_times": [float(r) for r in self.reading_times],
            "seed": int(self.seed),
        }
        if self.population is not None:
            payload["population"] = self.population.fingerprint()
        return payload

    def at_fidelity(self, n_readings: int) -> "Scenario":
        """A cheaper scenario using the first ``n_readings`` reading
        times — the successive-halving rung ladder."""
        if n_readings < 1:
            raise ValueError("fidelity must keep at least one reading")
        kept = self.reading_times[:n_readings]
        return replace(self, reading_times=kept)

    @property
    def n_units(self) -> int:
        return len(self.pages) * len(self.reading_times)


@dataclass(frozen=True)
class _PageLoad:
    """The per-page load facts the closed-form reading phase needs."""

    load_time: float
    tx_time: float
    loading_energy: float
    #: Offset of the reading anchor after the last transmission ended.
    tail_offset: float
    #: Offset of the reading anchor after the channel release.
    release_offset: float
    #: Channel-hold time for the capacity pool.
    hold_time: float


def _load_page(page_name: str, setup: VariantSetup, profile: str,
               page_seed: int) -> _PageLoad:
    """One full discrete-event page load under the scenario's plan."""
    page = find_page(page_name)
    engine_cls = (EnergyAwareEngine if setup.reorganisation
                  else OriginalEngine)
    plan = None
    if profile != "ideal":
        plan = FaultPlan.named(profile, seed=page_seed)
    session = browse_and_read(page, engine_cls, reading_time=0.0,
                              config=setup.to_config(), faults=plan)
    load = session.load
    last_byte = max(t.completed_at - load.started_at
                    for t in load.transfers)
    released = setup.reorganisation and setup.fast_dormancy
    # Channel-hold time: with fast dormancy the channels go at the last
    # byte; otherwise the DCH inactivity timer T1 keeps them allocated.
    hold = load.data_transmission_time + (0.0 if released else setup.t1)
    return _PageLoad(
        load_time=load.load_complete_time,
        tx_time=load.data_transmission_time,
        loading_energy=session.loading_energy.total,
        tail_offset=load.load_complete_time - last_byte,
        release_offset=load.layout_phase_time,
        hold_time=hold)


# ----------------------------------------------------------------------
# Load-outcome caching: the projection contract.
#
# A discrete-event page load can only depend on the knobs below —
# which engine runs (reorganisation), what it renders early
# (intermediate_display), whether it releases channels
# (fast_dormancy), and the radio timers (t1/t2, which shape promotion
# timing and the hold-time accounting).  α/Tp/Td, the decision mode
# and the predictor level are consulted strictly after the load, so
# two setups differing only in those share one cached load — the
# Hypothesis property in tests/ablation/test_batched_golden.py pins
# this contract.
# ----------------------------------------------------------------------

#: VariantSetup fields that can change a page-load outcome.
LOAD_FIELDS: Tuple[str, ...] = ("reorganisation", "intermediate_display",
                                "fast_dormancy", "t1", "t2")


def load_projection(setup: VariantSetup) -> Dict[str, object]:
    """The load-relevant projection of a setup — the cache key half."""
    return {
        "reorganisation": bool(setup.reorganisation),
        "intermediate_display": bool(setup.intermediate_display),
        "fast_dormancy": bool(setup.fast_dormancy),
        "t1": float(setup.t1),
        "t2": float(setup.t2),
    }


def load_cache_key(page_name: str, profile: str, page_seed: int,
                   setup: VariantSetup) -> str:
    """On-disk cache key for one page-load outcome (content-addressed:
    the current code-version hash is folded in automatically)."""
    return cache_key(KIND_LOAD_PAGE, page_name, {
        "profile": profile,
        "page_seed": int(page_seed),
        "projection": load_projection(setup),
    })


#: Process-local load memo: ``(page, profile, page_seed, projection
#: items) -> _PageLoad``.  Single-flight: the serving layer calls the
#: evaluator from concurrent request threads, and two threads missing
#: on the same key must share one discrete-event load, not race two.
_LOAD_MEMO = SingleFlight()

#: Counters for the BENCH_6 load-cache hit-rate rows.  ``+=`` on a
#: shared dict tears under threads, so every bump goes through the lock.
_LOAD_STATS_LOCK = threading.Lock()
_LOAD_STATS = {"loads": 0, "memo_hits": 0, "disk_hits": 0}


def load_cache_stats() -> Dict[str, int]:
    """Snapshot of the load counters (simulated / memo / disk hits)."""
    return snapshot_counters(_LOAD_STATS_LOCK, _LOAD_STATS)


def reset_load_cache() -> None:
    """Clear the process-local load memo and its counters (tests,
    benchmarks; the on-disk cache is the caller's to manage)."""
    _LOAD_MEMO.clear()
    with _LOAD_STATS_LOCK:
        for counter in _LOAD_STATS:
            _LOAD_STATS[counter] = 0


def _load_page_cached(page_name: str, setup: VariantSetup, profile: str,
                      page_seed: int,
                      load_cache: Optional[ResultCache] = None
                      ) -> _PageLoad:
    """:func:`_load_page` through the projection memo and disk cache.

    Safe because the load path draws no global randomness (fault plans
    are seeded per ``(profile, page_seed)``) and ``_PageLoad`` is six
    floats — JSON round-trips them exactly via ``repr``, so a cached
    load scores byte-identically to a fresh one.
    """
    memo_key = (page_name, profile, int(page_seed),
                tuple(load_projection(setup).items()))
    hit = _LOAD_MEMO.peek(memo_key)
    if hit is not None:
        locked_counter_add(_LOAD_STATS_LOCK, _LOAD_STATS, "memo_hits")
        return hit

    def _compute() -> _PageLoad:
        if load_cache is not None:
            key = load_cache_key(page_name, profile, page_seed, setup)
            payload = load_cache.get(key)
            if payload is not None:
                locked_counter_add(_LOAD_STATS_LOCK, _LOAD_STATS,
                                   "disk_hits")
                return _PageLoad(**payload["load"])
        load = _load_page(page_name, setup, profile, page_seed)
        locked_counter_add(_LOAD_STATS_LOCK, _LOAD_STATS, "loads")
        if load_cache is not None:
            load_cache.put(key, {"load": asdict(load)})
        return load

    return _LOAD_MEMO.do(memo_key, _compute)


def _wants_switch(setup: VariantSetup, reading: float,
                  predicted: float) -> bool:
    """Algorithm 2's decision for one unit, given a prediction."""
    if not setup.fast_dormancy:
        return False
    if reading <= setup.alpha:  # the user left before the decision point
        return False
    threshold = setup.tp if setup.mode == "power" else setup.td
    return predicted > threshold


def _predictions(setup: VariantSetup, readings: np.ndarray,
                 eval_seed: int) -> np.ndarray:
    """The predictor level's reading-time estimates, deterministically.

    ``oracle`` returns the truth; ``gbrt-like`` perturbs it with a
    seeded log-normal error (one draw per unit, fixed unit order);
    ``always-switch``/``never-switch`` saturate the decision.
    """
    if setup.predictor == "oracle":
        return readings.copy()
    if setup.predictor == "always-switch":
        return np.full_like(readings, np.inf)
    if setup.predictor == "never-switch":
        return np.zeros_like(readings)
    rng = np.random.default_rng(np.random.SeedSequence(eval_seed))
    noise = rng.normal(0.0, GBRT_LIKE_SIGMA, size=readings.size)
    return readings * np.exp(noise)


def _reading_phase(setup: VariantSetup, load: _PageLoad, reading: float,
                   switch: bool, rrc) -> Tuple[float, RrcState]:
    """Closed-form reading energy and the radio state at the next click.

    Anchored at the channel release when the variant released (energy-
    aware engine with fast dormancy), at the last transmission otherwise
    — exactly the Fig. 16 evaluator's accounting.  A switching unit cuts
    the tail at α and idles for the rest of the reading period.
    ``rrc`` is the setup's radio config, built once per setup by the
    caller rather than per unit.
    """
    released = setup.reorganisation and setup.fast_dormancy
    if released:
        start = load.release_offset
        energy_fn, state_fn = tail_energy_after_release, \
            tail_state_after_release
    else:
        start = load.tail_offset
        energy_fn, state_fn = tail_energy_after_tx, tail_state_after_tx
    if not switch or reading <= setup.alpha:
        energy = energy_fn(start, start + reading, rrc)
        return energy, state_fn(start + reading, rrc)
    energy = energy_fn(start, start + setup.alpha, rrc)
    energy += rrc.power.idle * (reading - setup.alpha)
    return energy, RrcState.IDLE


def _drop_probability(holds: List[float], population: PopulationSpec,
                      eval_seed: int) -> float:
    """Population-scale objective: drop probability of an M/G/N cell
    whose service pool is the variant's own channel-hold times."""
    from repro.capacity.simulator import CapacityConfig, CapacitySimulator

    config = CapacityConfig(n_channels=population.n_channels,
                            mean_interval=population.mean_interval,
                            horizon=population.horizon,
                            seed=eval_seed)
    simulator = CapacitySimulator(np.asarray(holds, dtype=float), config)
    capacity_seed = int(np.random.SeedSequence(
        eval_seed, spawn_key=(1,)).generate_state(1)[0])
    result = simulator.run(population.n_users, seed=capacity_seed)
    return result.drop_probability


def _evaluate_setup_slow(setup: VariantSetup, scenario: Scenario,
                         eval_seed: int) -> Dict[str, float]:
    """The scalar per-unit reference evaluator (``REPRO_ABLATE_SLOW``).

    One full discrete-event load per page per call — no memo, no disk
    cache, no grid scoring — so it is the honest before-state the
    BENCH_6 rows compare against, and the golden twin the batched path
    must match byte for byte.
    """
    page_seeds = spawn_seeds(scenario.seed, len(scenario.pages))
    loads = [_load_page(name, setup, scenario.profile, page_seed)
             for name, page_seed in zip(scenario.pages, page_seeds)]

    readings = np.asarray(
        [r for _ in scenario.pages for r in scenario.reading_times],
        dtype=float)
    predicted = _predictions(setup, readings, eval_seed)

    rrc = setup.to_config().rrc
    energies: List[float] = []
    delays: List[float] = []
    switches = 0
    unit = 0
    for load in loads:
        for reading in scenario.reading_times:
            switch = _wants_switch(setup, float(reading),
                                   float(predicted[unit]))
            unit += 1
            read_energy, state = _reading_phase(setup, load,
                                                float(reading), switch,
                                                rrc)
            switches += bool(switch)
            energies.append(load.loading_energy + read_energy
                            + promotion_energy(state, rrc))
            delays.append(promotion_latency(state, rrc))
    KERNEL_STATS.record_work(len(energies))

    metrics: Dict[str, float] = {
        "energy": float(np.mean(energies)),
        "delay": float(np.mean(delays)),
        "load_time": float(np.mean([load.load_time for load in loads])),
        "tx_time": float(np.mean([load.tx_time for load in loads])),
        "switch_rate": switches / len(energies),
    }
    if scenario.population is not None:
        metrics["drop_probability"] = _drop_probability(
            [load.hold_time for load in loads], scenario.population,
            eval_seed)
    reference = reference_metrics(scenario)
    if reference["energy"] > 0:
        metrics["energy_saving"] = (
            (reference["energy"] - metrics["energy"])
            / reference["energy"])
    else:
        metrics["energy_saving"] = 0.0
    return metrics


def _drop_probabilities_batched(pools: Sequence[np.ndarray],
                                population: PopulationSpec,
                                eval_seeds: Sequence[int],
                                block_size: int = 1 << 16
                                ) -> List[float]:
    """Per-trial drop probabilities through the streaming block kernel.

    Each trial reuses :meth:`CapacitySimulator.draw` for the canonical
    arrival/service streams (same config seeding, same
    ``spawn_key=(1,)`` capacity seed as :func:`_drop_probability`),
    then resolves drops by threading :class:`DropCarry` through
    :func:`repro.fleet.capacity.resolve_drops_block` — identical masks
    to one whole-array ``resolve_drops`` per cell (the block-chaining
    golden gates of PRs 5–6), without a scalar heap in sight.
    """
    from repro.capacity.simulator import CapacityConfig, CapacitySimulator
    from repro.fleet.capacity import resolve_drops_block

    out: List[float] = []
    for pool, eval_seed in zip(pools, eval_seeds):
        config = CapacityConfig(n_channels=population.n_channels,
                                mean_interval=population.mean_interval,
                                horizon=population.horizon,
                                seed=eval_seed)
        simulator = CapacitySimulator(pool, config)
        capacity_seed = int(np.random.SeedSequence(
            eval_seed, spawn_key=(1,)).generate_state(1)[0])
        rng = np.random.default_rng(capacity_seed)
        arrivals, services = simulator.draw(population.n_users, rng)
        dropped = 0
        carry = None
        for lo in range(0, arrivals.size, block_size):
            mask, carry = resolve_drops_block(
                arrivals[lo:lo + block_size],
                services[lo:lo + block_size],
                population.n_channels, carry)
            dropped += int(mask.sum())
        sessions = int(arrivals.size)
        out.append(dropped / sessions if sessions else 0.0)
    return out


def _evaluate_batch(pairs: Sequence[Tuple[VariantSetup, int]],
                    scenario: Scenario,
                    load_cache: Optional[ResultCache] = None
                    ) -> List[Dict[str, float]]:
    """Score every ``(setup, eval_seed)`` pair in one unit-grid pass."""
    xp = scoring_namespace()
    page_seeds = spawn_seeds(scenario.seed, len(scenario.pages))
    n_read = len(scenario.reading_times)
    n_units = len(scenario.pages) * n_read
    readings_np = np.asarray(
        [r for _ in scenario.pages for r in scenario.reading_times],
        dtype=float)

    loads_per_trial = [
        [_load_page_cached(name, setup, scenario.profile, page_seed,
                           load_cache)
         for name, page_seed in zip(scenario.pages, page_seeds)]
        for setup, _ in pairs]

    # Flat (trials × pages × readings) grid, trial-major — slice t is
    # elementwise what the scalar loop computes for trial t.
    total = len(pairs) * n_units
    start = np.empty(total)
    b1 = np.empty(total)
    b2 = np.empty(total)
    loading = np.empty(total)
    alpha = np.empty(total)
    reading = np.empty(total)
    switch = np.zeros(total, dtype=bool)
    for t, (setup, eval_seed) in enumerate(pairs):
        base = t * n_units
        span = slice(base, base + n_units)
        if setup.fast_dormancy:
            predicted = _predictions(setup, readings_np, eval_seed)
            threshold = setup.tp if setup.mode == "power" else setup.td
            switch[span] = ((readings_np > setup.alpha)
                            & (predicted > threshold))
        reading[span] = readings_np
        alpha[span] = setup.alpha
        released = setup.reorganisation and setup.fast_dormancy
        b1[span] = 0.0 if released else setup.t1
        b2[span] = setup.t2 if released else setup.t1 + setup.t2
        for p, load in enumerate(loads_per_trial[t]):
            cell = slice(base + p * n_read, base + (p + 1) * n_read)
            start[cell] = (load.release_offset if released
                           else load.tail_offset)
            loading[cell] = load.loading_energy

    # Power/promotion constants never vary across trials (VariantSetup
    # only moves the timers, which ride in b1/b2), so one config covers
    # the whole grid.
    rrc = pairs[0][0].to_config().rrc

    sx = fleet_backend.as_namespace_array(start, xp)
    rx = fleet_backend.as_namespace_array(reading, xp)
    ax = fleet_backend.as_namespace_array(alpha, xp)
    b1x = fleet_backend.as_namespace_array(b1, xp)
    b2x = fleet_backend.as_namespace_array(b2, xp)
    swx = fleet_backend.as_namespace_array(switch, xp)
    lx = fleet_backend.as_namespace_array(loading, xp)

    end_full = sx + rx
    e_full = tail_energy_grid(xp, sx, end_full, b1x, b2x, rrc)
    e_cut = (tail_energy_grid(xp, sx, sx + ax, b1x, b2x, rrc)
             + rrc.power.idle * (rx - ax))
    read_energy = xp.where(swx, e_cut, e_full)

    states = tail_state_grid(xp, end_full, b1x, b2x)
    idle = xp.full(states.shape, STATE_IDLE, dtype=xp.int64)
    states = xp.where(swx, idle, states)

    energies = ((lx + read_energy)
                + promotion_energy_grid(xp, states, rrc))
    delays = promotion_latency_grid(xp, states, rrc)
    energies_np = fleet_backend.to_numpy(energies)
    delays_np = fleet_backend.to_numpy(delays)
    KERNEL_STATS.record_work(total)

    drops: Optional[List[float]] = None
    if scenario.population is not None:
        pools = [np.asarray([load.hold_time for load in loads],
                            dtype=float)
                 for loads in loads_per_trial]
        drops = _drop_probabilities_batched(
            pools, scenario.population, [seed for _, seed in pairs])

    reference = reference_metrics(scenario, load_cache=load_cache)
    results: List[Dict[str, float]] = []
    for t, (setup, eval_seed) in enumerate(pairs):
        span = slice(t * n_units, (t + 1) * n_units)
        loads = loads_per_trial[t]
        metrics: Dict[str, float] = {
            "energy": float(np.mean(energies_np[span])),
            "delay": float(np.mean(delays_np[span])),
            "load_time": float(np.mean([load.load_time
                                        for load in loads])),
            "tx_time": float(np.mean([load.tx_time for load in loads])),
            "switch_rate": int(switch[span].sum()) / n_units,
        }
        if drops is not None:
            metrics["drop_probability"] = drops[t]
        if reference["energy"] > 0:
            metrics["energy_saving"] = (
                (reference["energy"] - metrics["energy"])
                / reference["energy"])
        else:
            metrics["energy_saving"] = 0.0
        results.append(metrics)
    return results


def evaluate_setups(pairs: Sequence[Tuple[VariantSetup, int]],
                    scenario: Scenario,
                    load_cache: Optional[ResultCache] = None
                    ) -> List[Dict[str, float]]:
    """Batched trial evaluation: metrics per ``(setup, eval_seed)``.

    Byte-identical to calling :func:`evaluate_setup` per pair — the
    grid slices are elementwise what the per-trial arrays would be, and
    ``np.mean`` over equal values at equal length is exact.  With
    ``REPRO_ABLATE_SLOW`` set, falls through to the scalar reference
    one pair at a time.
    """
    pairs = list(pairs)
    if not pairs:
        return []
    if not ablate_fast_enabled():
        return [_evaluate_setup_slow(setup, scenario, eval_seed)
                for setup, eval_seed in pairs]
    return _evaluate_batch(pairs, scenario, load_cache)


def evaluate_setup(setup: VariantSetup, scenario: Scenario,
                   eval_seed: int,
                   load_cache: Optional[ResultCache] = None
                   ) -> Dict[str, float]:
    """Score one variant under one scenario; pure given its inputs."""
    if not ablate_fast_enabled():
        return _evaluate_setup_slow(setup, scenario, eval_seed)
    return _evaluate_batch([(setup, eval_seed)], scenario,
                           load_cache)[0]


#: Process-local memo: the stock browser's metrics per scenario.  The
#: stock setup has no run-level randomness (``never-switch`` predictor,
#: no capacity draw needed), so the scenario fully determines it.
#: Single-flight for the same reason as the load memo.
_REFERENCE_MEMO = SingleFlight()


def reference_metrics(scenario: Scenario,
                      load_cache: Optional[ResultCache] = None
                      ) -> Dict[str, float]:
    """The stock browser's scores under ``scenario`` (memoised)."""
    key = (scenario.profile, scenario.pages, scenario.reading_times,
           scenario.seed)

    def _compute() -> Dict[str, float]:
        reference = replace(scenario, population=None)
        page_seeds = spawn_seeds(reference.seed, len(reference.pages))
        if ablate_fast_enabled():
            loads = [_load_page_cached(name, STOCK_SETUP,
                                       reference.profile, page_seed,
                                       load_cache)
                     for name, page_seed in zip(reference.pages,
                                                page_seeds)]
        else:
            loads = [_load_page(name, STOCK_SETUP, reference.profile,
                                page_seed)
                     for name, page_seed in zip(reference.pages,
                                                page_seeds)]
        rrc = STOCK_SETUP.to_config().rrc
        energies: List[float] = []
        delays: List[float] = []
        for load in loads:
            for reading in reference.reading_times:
                read_energy, state = _reading_phase(STOCK_SETUP, load,
                                                    float(reading),
                                                    False, rrc)
                energies.append(load.loading_energy + read_energy
                                + promotion_energy(state, rrc))
                delays.append(promotion_latency(state, rrc))
        return {
            "energy": float(np.mean(energies)),
            "delay": float(np.mean(delays)),
            "load_time": float(np.mean([load.load_time
                                        for load in loads])),
        }

    return _REFERENCE_MEMO.do(key, _compute)


def variant_hold_pool(setup: VariantSetup, scenario: Scenario,
                      load_cache: Optional[ResultCache] = None
                      ) -> np.ndarray:
    """The variant's channel-hold-time pool under ``scenario``.

    One hold time per scenario page, in page order — exactly the
    service pool :func:`_drop_probability` builds inside the evaluator,
    exposed so the serving layer can run a *single* capacity simulation
    that yields both the drop probability and the service-time
    quantiles, instead of paying the M/G/N run twice.
    """
    page_seeds = spawn_seeds(scenario.seed, len(scenario.pages))
    if ablate_fast_enabled():
        loads = [_load_page_cached(name, setup, scenario.profile,
                                   page_seed, load_cache)
                 for name, page_seed in zip(scenario.pages, page_seeds)]
    else:
        loads = [_load_page(name, setup, scenario.profile, page_seed)
                 for name, page_seed in zip(scenario.pages, page_seeds)]
    return np.asarray([load.hold_time for load in loads], dtype=float)
