"""Declarative ablation engine with importance ranking and auto-tuning.

The pipeline (DESIGN.md §14): a **registry** declares every knob once
(:mod:`~repro.ablation.components`), a **matrix generator** expands the
declarations into leave-one-out / OFAT / factorial run matrices with
content-addressed run IDs (:mod:`~repro.ablation.matrix`), the cached
parallel **engine** evaluates them (:mod:`~repro.ablation.engine` over
:mod:`~repro.ablation.objective`), a **ranker** folds results into
per-component importance (:mod:`~repro.ablation.rank`), and a **search**
layer tunes T1/T2 and α/Tp/Td per channel profile under constraints
(:mod:`~repro.ablation.search`).  The five legacy ad-hoc studies live on
in :mod:`~repro.ablation.legacy`, ported onto the same registry.
"""

from repro.ablation.components import (Component, ComponentRegistry,
                                       STOCK_SETUP, VariantSetup,
                                       default_registry)
from repro.ablation.engine import (KIND_ABLATE, MatrixResult, MatrixRun,
                                   run_matrix, run_specs, spec_seed,
                                   warm_process)
from repro.ablation.matrix import (GENERATORS, RunSpec, generate,
                                   spec_run_id)
from repro.ablation.objective import (ABLATE_SLOW_ENV, PopulationSpec,
                                      Scenario, ablate_fast_enabled,
                                      evaluate_setup, evaluate_setups,
                                      load_cache_stats, load_projection,
                                      reset_load_cache,
                                      variant_hold_pool)
from repro.ablation.rank import Ranking, rank_components, write_ranking
from repro.ablation.search import (ALGORITHMS, Constraint, Parameter,
                                   SearchResult, SearchSpace,
                                   default_space, grid_search,
                                   halving_search, promote,
                                   random_search)

__all__ = [
    "ABLATE_SLOW_ENV", "ALGORITHMS", "Component", "ComponentRegistry",
    "Constraint", "GENERATORS", "KIND_ABLATE", "MatrixResult",
    "MatrixRun", "Parameter", "PopulationSpec", "Ranking", "RunSpec",
    "Scenario", "SearchResult", "SearchSpace", "STOCK_SETUP",
    "VariantSetup", "ablate_fast_enabled", "default_registry",
    "default_space", "evaluate_setup", "evaluate_setups", "generate",
    "grid_search", "halving_search", "load_cache_stats",
    "load_projection", "promote", "random_search", "rank_components",
    "reset_load_cache", "run_matrix", "run_specs", "spec_run_id",
    "spec_seed", "variant_hold_pool", "warm_process", "write_ranking",
]
