"""Constrained timer/threshold search over a channel profile.

Answers the question the paper never asked: *what (T1, T2, α, Tp)
minimises energy at this channel profile without violating a delay
budget?*  Three algorithms share one machinery:

- :func:`grid_search` — the cartesian product of per-parameter grids;
- :func:`random_search` — seeded uniform sampling over the ranges;
- :func:`halving_search` — successive halving: sample wide, evaluate at
  a cheap fidelity (a prefix of the scenario's reading-time grid),
  promote the best ``1/eta`` per rung, finish at full fidelity.

Every trial is a :class:`~repro.ablation.matrix.RunSpec` whose raw
field overrides (and evaluation fidelity, via the scenario fingerprint)
are part of its content-addressed run ID, executed through
:func:`~repro.ablation.engine.run_specs` — so trials cache, and its seed
is spawned off the run ID, so *when* a trial runs never matters.

Determinism and resume: the search writes a JSONL trace — a header line
fingerprinting the whole search configuration, then one record per
trial in a fixed order, each serialised as canonical JSON.  Records are
only ever appended in that order, so an interrupted search leaves a
valid prefix; re-running with the same trace path verifies the header,
replays the prefix (no re-evaluation), and appends the rest.  Killed or
not, the completed trace is byte-identical.

Infeasible-by-construction samples (a draw with ``Tp > Td``) are
*recorded*, not redrawn — redrawing would make the trial sequence depend
on the validation rules, breaking trace stability across code versions
that only tighten validation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from itertools import product
from pathlib import Path
from typing import (Any, Dict, List, Mapping, Optional, Sequence,
                    Tuple)

import numpy as np

from repro.ablation.engine import MatrixResult, registry_by_name, run_specs
from repro.ablation.matrix import RunSpec, canonical_json, content_id
from repro.ablation.objective import Scenario
from repro.runtime.cache import ResultCache
from repro.runtime.seeding import DEFAULT_ROOT_SEED

#: The objective every search minimises by default.
DEFAULT_OBJECTIVE = "energy"

#: Sampled values are rounded to this many decimals: keeps traces tidy
#: and makes grid/random points JSON-stable.
_ROUND = 3


@dataclass(frozen=True)
class Parameter:
    """One searched :class:`VariantSetup` field and its range."""

    name: str
    low: float
    high: float
    #: Explicit grid values; when empty, grids use ``linspace(low,
    #: high, points)`` and random search samples uniformly.
    grid: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise ValueError(f"parameter {self.name!r}: low {self.low} "
                             f"> high {self.high}")
        for value in self.grid:
            if not (self.low <= value <= self.high):
                raise ValueError(f"parameter {self.name!r}: grid value "
                                 f"{value} outside [{self.low}, "
                                 f"{self.high}]")

    def grid_values(self, points: int) -> List[float]:
        if self.grid:
            return [round(float(v), _ROUND) for v in self.grid]
        if points < 2:
            return [round((self.low + self.high) / 2.0, _ROUND)]
        return [round(float(v), _ROUND)
                for v in np.linspace(self.low, self.high, points)]


@dataclass(frozen=True)
class SearchSpace:
    """The searched parameters, canonically ordered by name."""

    parameters: Tuple[Parameter, ...]

    def __post_init__(self) -> None:
        if not self.parameters:
            raise ValueError("search space needs at least one parameter")
        names = [parameter.name for parameter in self.parameters]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate parameter names: {names}")
        ordered = tuple(sorted(self.parameters,
                               key=lambda parameter: parameter.name))
        object.__setattr__(self, "parameters", ordered)

    def fingerprint(self) -> List[Dict[str, Any]]:
        return [{"name": parameter.name, "low": parameter.low,
                 "high": parameter.high, "grid": list(parameter.grid)}
                for parameter in self.parameters]


def default_space() -> SearchSpace:
    """T1/T2 and α/Tp around (and beyond) the paper's Table 2 values."""
    return SearchSpace((
        Parameter("t1", 1.0, 8.0),
        Parameter("t2", 4.0, 20.0),
        Parameter("alpha", 0.5, 4.0),
        Parameter("tp", 2.0, 18.0),
    ))


@dataclass(frozen=True)
class Constraint:
    """An upper bound on one metric (``delay <= budget``)."""

    metric: str
    maximum: float

    def satisfied(self, metrics: Mapping[str, float]) -> bool:
        value = metrics.get(self.metric)
        return value is not None and value <= self.maximum

    def fingerprint(self) -> Dict[str, Any]:
        return {"metric": self.metric, "max": self.maximum}

    def __str__(self) -> str:
        return f"{self.metric}<={self.maximum:g}"


def feasible(metrics: Mapping[str, float],
             constraints: Sequence[Constraint]) -> bool:
    """Constraint filtering: every bound must hold."""
    return all(constraint.satisfied(metrics)
               for constraint in constraints)


@dataclass(frozen=True)
class Trial:
    """One evaluated (or rejected-at-construction) search point."""

    index: int
    rung: int
    overrides: Tuple[Tuple[str, float], ...]
    run_id: str
    seed: int
    metrics: Dict[str, float]
    valid: bool
    feasible: bool

    @property
    def overrides_dict(self) -> Dict[str, float]:
        return dict(self.overrides)

    def objective(self, name: str) -> Optional[float]:
        if not self.valid:
            return None
        return self.metrics.get(name)

    def record(self) -> Dict[str, Any]:
        """The trace-record payload (stable key set, no timing)."""
        return {
            "trial": self.index,
            "rung": self.rung,
            "overrides": self.overrides_dict,
            "run_id": self.run_id,
            "seed": self.seed,
            "metrics": dict(self.metrics),
            "valid": self.valid,
            "feasible": self.feasible,
        }

    @classmethod
    def from_record(cls, record: Mapping[str, Any]) -> "Trial":
        return cls(index=int(record["trial"]), rung=int(record["rung"]),
                   overrides=tuple(sorted(
                       (str(k), float(v))
                       for k, v in record["overrides"].items())),
                   run_id=str(record["run_id"]),
                   seed=int(record["seed"]),
                   metrics=dict(record["metrics"]),
                   valid=bool(record["valid"]),
                   feasible=bool(record["feasible"]))


def promote(candidates: Sequence[Tuple[Any, Optional[float], bool]],
            eta: int) -> List[Any]:
    """Successive-halving promotion: which candidates survive a rung.

    ``candidates`` is ``(key, objective, feasible)`` — objective ``None``
    marks an invalid trial, never promoted.  Feasible candidates always
    outrank infeasible ones; within each class, lower objective wins
    (ties broken by key, so promotion is deterministic).  The rung keeps
    ``max(1, len(candidates) // eta)`` survivors.
    """
    if eta < 2:
        raise ValueError(f"eta must be >= 2, got {eta}")
    valid = [entry for entry in candidates if entry[1] is not None]
    if not valid:
        return []
    keep = max(1, len(candidates) // eta)
    ordered = sorted(valid, key=lambda entry: (
        not entry[2], entry[1], str(entry[0])))
    return [key for key, _, _ in ordered[:keep]]


class SearchTrace:
    """Append-only JSONL trace with a fingerprinted header.

    The file is a valid prefix at every instant: header first, then
    trial records in the order the (deterministic) search generates
    them.  Opening an existing trace verifies the header against this
    search's fingerprint and loads the completed prefix so the caller
    can skip straight past it.
    """

    def __init__(self, path: Optional[Path], header: Dict[str, Any]):
        self.path = Path(path) if path is not None else None
        self.header = dict(header)
        self.records: List[Dict[str, Any]] = []
        self._cursor = 0
        if self.path is None:
            return
        if self.path.exists():
            lines = [line for line in
                     self.path.read_text(encoding="utf-8").splitlines()
                     if line]
            if not lines:
                self._write_header()
                return
            import json as _json
            head = _json.loads(lines[0])
            if head != {"header": self.header}:
                raise ValueError(
                    f"search trace {self.path} belongs to a different "
                    f"search (header mismatch); delete it or pass a "
                    f"different --trace path")
            self.records = [_json.loads(line) for line in lines[1:]]
        else:
            self._write_header()

    def _write_header(self) -> None:
        if self.path.parent != Path(""):
            self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("w", encoding="utf-8") as handle:
            handle.write(canonical_json({"header": self.header}) + "\n")

    def replay(self) -> Optional[Dict[str, Any]]:
        """The next already-recorded trial, or ``None`` at the tip."""
        if self._cursor < len(self.records):
            record = self.records[self._cursor]
            self._cursor += 1
            return record
        return None

    def append(self, record: Dict[str, Any]) -> None:
        self.records.append(record)
        self._cursor = len(self.records)
        if self.path is not None:
            with self.path.open("a", encoding="utf-8") as handle:
                handle.write(canonical_json(record) + "\n")


@dataclass
class SearchResult:
    """Trials in trace order plus the winning configuration."""

    algorithm: str
    scenario: Scenario
    space: SearchSpace
    constraints: Tuple[Constraint, ...]
    objective: str
    trials: List[Trial]
    reference: Dict[str, float]
    fingerprint: str
    best: Optional[Trial] = None
    final_rung: int = 0
    total_wall_time: float = 0.0
    n_cached: int = 0

    def report(self) -> str:
        """Deterministic search report (no timing, no cache facts)."""
        lines = [f"== tune: {self.algorithm} | "
                 f"profile={self.scenario.profile} "
                 f"objective={self.objective} "
                 f"trials={len(self.trials)} =="]
        lines.append("space: " + "  ".join(
            f"{p.name}[{p.low:g},{p.high:g}]"
            for p in self.space.parameters))
        if self.constraints:
            lines.append("constraints: " + "  ".join(
                str(constraint) for constraint in self.constraints))
        reference_bits = "  ".join(
            f"{name}={self.reference[name]:.6f}"
            for name in sorted(self.reference))
        lines.append(f"reference (paper defaults): {reference_bits}")
        if self.best is None:
            lines.append("best: none feasible")
            return "\n".join(lines)
        best_knobs = "  ".join(f"{name}={value:g}" for name, value
                               in self.best.overrides)
        lines.append(f"best: trial {self.best.index} "
                     f"[{self.best.run_id[:12]}]  {best_knobs}")
        best_metrics = "  ".join(
            f"{name}={self.best.metrics[name]:.6f}"
            for name in sorted(self.best.metrics))
        lines.append(f"      {best_metrics}")
        reference_energy = self.reference.get(self.objective)
        best_energy = self.best.metrics.get(self.objective)
        if reference_energy and best_energy is not None:
            gain = (reference_energy - best_energy) / reference_energy
            lines.append(f"      vs paper defaults: "
                         f"{gain:+.2%} on {self.objective}")
        finalists = [trial for trial in self.trials
                     if trial.rung == self.final_rung and trial.valid]
        finalists.sort(key=lambda trial: (
            not trial.feasible, trial.metrics.get(self.objective,
                                                  math.inf),
            trial.run_id))
        lines.append(f"top {min(5, len(finalists))} at full fidelity:")
        for trial in finalists[:5]:
            knobs = "  ".join(f"{name}={value:g}"
                              for name, value in trial.overrides)
            flag = "ok " if trial.feasible else "infeasible"
            lines.append(
                f"  [{flag}] trial {trial.index:3d}  "
                f"{self.objective}="
                f"{trial.metrics.get(self.objective, math.nan):.6f}  "
                f"delay={trial.metrics.get('delay', math.nan):.6f}  "
                f"{knobs}")
        return "\n".join(lines)

    def render_summary(self) -> str:
        return (f"-- search runtime: {len(self.trials)} trials, "
                f"{self.n_cached} cached, "
                f"{self.total_wall_time:.2f}s wall --")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "search": {
                "algorithm": self.algorithm,
                "objective": self.objective,
                "fingerprint": self.fingerprint,
                "scenario": self.scenario.fingerprint(),
                "space": self.space.fingerprint(),
                "constraints": [constraint.fingerprint()
                                for constraint in self.constraints],
                "reference": dict(self.reference),
                "final_rung": self.final_rung,
                "n_trials": len(self.trials),
            },
            "best": None if self.best is None else self.best.record(),
            "trials": [trial.record() for trial in self.trials],
        }


class _Evaluator:
    """Shared trial machinery: spec building, caching, trace replay."""

    def __init__(self, scenario: Scenario, registry_name: str,
                 constraints: Sequence[Constraint], objective: str,
                 trace: SearchTrace, processes: int,
                 cache: Optional[ResultCache]):
        self.scenario = scenario
        self.registry_name = registry_name
        self.registry = registry_by_name(registry_name)
        self.base_assignment = self.registry.baseline_assignment()
        self.base_setup = self.registry.setup_for(self.base_assignment)
        self.constraints = tuple(constraints)
        self.objective = objective
        self.trace = trace
        self.processes = processes
        self.cache = cache
        self.trials: List[Trial] = []
        self.total_wall_time = 0.0
        self.n_cached = 0

    def _spec_for(self, overrides: Mapping[str, float],
                  fidelity_scenario: Scenario) -> Optional[RunSpec]:
        """The trial's RunSpec, or ``None`` if the combination is
        invalid by construction (e.g. a draw with Tp > Td)."""
        try:
            self.base_setup.apply(dict(overrides))
        except (ValueError, KeyError):
            return None
        return RunSpec.make(self.base_assignment,
                            context=fidelity_scenario.fingerprint(),
                            overrides=dict(overrides))

    def run_batch(self, rung: int,
                  batch: Sequence[Tuple[int, Dict[str, float]]],
                  fidelity_scenario: Scenario) -> List[Trial]:
        """Evaluate one rung's trials, replaying the trace prefix.

        ``batch`` is ``(trial_index, overrides)`` in deterministic
        order.  Trials already in the trace are reused verbatim; the
        rest run through the cached matrix engine and are appended.
        """
        planned: List[Tuple[int, Dict[str, float],
                            Optional[RunSpec]]] = []
        replayed: Dict[int, Trial] = {}
        to_run: List[RunSpec] = []
        for index, overrides in batch:
            record = self.trace.replay()
            if record is not None:
                trial = Trial.from_record(record)
                if (trial.index, trial.rung) != (index, rung):
                    raise ValueError(
                        f"search trace out of step: expected trial "
                        f"{index} rung {rung}, found trial "
                        f"{trial.index} rung {trial.rung}; the trace "
                        f"belongs to a different search")
                replayed[index] = trial
                continue
            spec = self._spec_for(overrides, fidelity_scenario)
            planned.append((index, overrides, spec))
            if spec is not None:
                to_run.append(spec)

        matrix: Optional[MatrixResult] = None
        if to_run:
            matrix = run_specs(to_run, fidelity_scenario,
                               registry_name=self.registry_name,
                               processes=self.processes,
                               cache=self.cache)
            self.total_wall_time += matrix.total_wall_time
            self.n_cached += matrix.n_cached

        produced: Dict[int, Trial] = {}
        for index, overrides, spec in planned:
            ordered = tuple(sorted((str(k), float(v))
                            for k, v in overrides.items()))
            if spec is None:
                trial = Trial(index=index, rung=rung,
                              overrides=ordered, run_id="", seed=0,
                              metrics={}, valid=False, feasible=False)
            else:
                run = matrix.run_for(spec.run_id)
                trial = Trial(index=index, rung=rung,
                              overrides=ordered, run_id=spec.run_id,
                              seed=run.seed, metrics=dict(run.metrics),
                              valid=True,
                              feasible=feasible(run.metrics,
                                                self.constraints))
            produced[index] = trial

        out: List[Trial] = []
        for index, _ in batch:
            trial = replayed.get(index)
            if trial is None:
                trial = produced[index]
                self.trace.append(trial.record())
            out.append(trial)
        self.trials.extend(out)
        return out

    def reference_metrics(self) -> Dict[str, float]:
        """The paper-default configuration at full fidelity."""
        spec = RunSpec.make(self.base_assignment,
                            context=self.scenario.fingerprint())
        matrix = run_specs([spec], self.scenario,
                           registry_name=self.registry_name,
                           processes=1, cache=self.cache)
        self.total_wall_time += matrix.total_wall_time
        return dict(matrix.runs[0].metrics)

    def pick_best(self, final_rung: int) -> Optional[Trial]:
        finalists = [trial for trial in self.trials
                     if trial.rung == final_rung and trial.valid
                     and trial.feasible]
        if not finalists:
            return None
        return min(finalists, key=lambda trial: (
            trial.metrics.get(self.objective, math.inf), trial.run_id))


def _search_header(algorithm: str, scenario: Scenario,
                   space: SearchSpace,
                   constraints: Sequence[Constraint], objective: str,
                   params: Dict[str, Any]) -> Dict[str, Any]:
    fingerprint = content_id({
        "algorithm": algorithm,
        "objective": objective,
        "scenario": scenario.fingerprint(),
        "space": space.fingerprint(),
        "constraints": [constraint.fingerprint()
                        for constraint in constraints],
        "params": params,
    })
    return {"kind": "repro-search", "version": 1,
            "algorithm": algorithm, "fingerprint": fingerprint}


def _finish(evaluator: _Evaluator, algorithm: str, space: SearchSpace,
            header: Dict[str, Any], reference: Dict[str, float],
            final_rung: int) -> SearchResult:
    return SearchResult(
        algorithm=algorithm, scenario=evaluator.scenario, space=space,
        constraints=evaluator.constraints,
        objective=evaluator.objective, trials=evaluator.trials,
        reference=reference, fingerprint=header["fingerprint"],
        best=evaluator.pick_best(final_rung), final_rung=final_rung,
        total_wall_time=evaluator.total_wall_time,
        n_cached=evaluator.n_cached)


def grid_search(scenario: Scenario,
                space: Optional[SearchSpace] = None,
                constraints: Sequence[Constraint] = (),
                objective: str = DEFAULT_OBJECTIVE,
                points: int = 3,
                registry_name: str = "default",
                processes: int = 1,
                cache: Optional[ResultCache] = None,
                trace_path: Optional[Path] = None) -> SearchResult:
    """Exhaustive seeded grid over the space's per-parameter grids."""
    space = space or default_space()
    header = _search_header("grid", scenario, space, constraints,
                            objective, {"points": points})
    trace = SearchTrace(trace_path, header)
    evaluator = _Evaluator(scenario, registry_name, constraints,
                           objective, trace, processes, cache)
    axes = [parameter.grid_values(points)
            for parameter in space.parameters]
    names = [parameter.name for parameter in space.parameters]
    batch = [(index, dict(zip(names, values)))
             for index, values in enumerate(product(*axes))]
    evaluator.run_batch(0, batch, scenario)
    reference = evaluator.reference_metrics()
    return _finish(evaluator, "grid", space, header, reference,
                   final_rung=0)


def _sample(space: SearchSpace, n_trials: int, seed: int,
            header_fingerprint: str) -> List[Dict[str, float]]:
    """The deterministic trial sequence for random/halving search.

    The stream is keyed by the search fingerprint, so two searches with
    different spaces/constraints/scenarios draw independent sequences,
    while re-running (or resuming) the same search redraws the same one.
    """
    key = int(header_fingerprint[:16], 16)
    rng = np.random.default_rng(
        np.random.SeedSequence(seed, spawn_key=(key,)))
    draws: List[Dict[str, float]] = []
    for _ in range(n_trials):
        overrides = {}
        for parameter in space.parameters:  # canonical (name) order
            value = float(rng.uniform(parameter.low, parameter.high))
            overrides[parameter.name] = round(value, _ROUND)
        draws.append(overrides)
    return draws


def random_search(scenario: Scenario,
                  space: Optional[SearchSpace] = None,
                  constraints: Sequence[Constraint] = (),
                  objective: str = DEFAULT_OBJECTIVE,
                  n_trials: int = 20,
                  seed: int = DEFAULT_ROOT_SEED,
                  registry_name: str = "default",
                  processes: int = 1,
                  cache: Optional[ResultCache] = None,
                  trace_path: Optional[Path] = None) -> SearchResult:
    """Seeded uniform random search at full fidelity."""
    if n_trials < 1:
        raise ValueError(f"n_trials must be >= 1, got {n_trials}")
    space = space or default_space()
    header = _search_header("random", scenario, space, constraints,
                            objective,
                            {"n_trials": n_trials, "seed": seed})
    trace = SearchTrace(trace_path, header)
    evaluator = _Evaluator(scenario, registry_name, constraints,
                           objective, trace, processes, cache)
    draws = _sample(space, n_trials, seed, header["fingerprint"])
    evaluator.run_batch(0, list(enumerate(draws)), scenario)
    reference = evaluator.reference_metrics()
    return _finish(evaluator, "random", space, header, reference,
                   final_rung=0)


def halving_rungs(n_readings: int, n_trials: int,
                  eta: int) -> List[int]:
    """The fidelity ladder: reading-time prefix lengths per rung."""
    if eta < 2:
        raise ValueError(f"eta must be >= 2, got {eta}")
    n_rungs = max(1, int(math.floor(math.log(n_trials, eta))) + 1)
    fidelities = []
    for rung in range(n_rungs):
        shrink = eta ** (n_rungs - 1 - rung)
        fidelities.append(max(1, n_readings // shrink))
    # Collapse duplicate fidelities from tiny reading grids, keep the
    # final rung at full fidelity.
    fidelities[-1] = n_readings
    deduped = []
    for fidelity in fidelities:
        if not deduped or fidelity != deduped[-1]:
            deduped.append(fidelity)
    return deduped


def halving_search(scenario: Scenario,
                   space: Optional[SearchSpace] = None,
                   constraints: Sequence[Constraint] = (),
                   objective: str = DEFAULT_OBJECTIVE,
                   n_trials: int = 16,
                   eta: int = 2,
                   seed: int = DEFAULT_ROOT_SEED,
                   registry_name: str = "default",
                   processes: int = 1,
                   cache: Optional[ResultCache] = None,
                   trace_path: Optional[Path] = None) -> SearchResult:
    """Successive halving over reading-time-prefix fidelities."""
    if n_trials < 1:
        raise ValueError(f"n_trials must be >= 1, got {n_trials}")
    space = space or default_space()
    header = _search_header("halving", scenario, space, constraints,
                            objective, {"n_trials": n_trials,
                                        "eta": eta, "seed": seed})
    trace = SearchTrace(trace_path, header)
    evaluator = _Evaluator(scenario, registry_name, constraints,
                           objective, trace, processes, cache)
    draws = _sample(space, n_trials, seed, header["fingerprint"])
    rungs = halving_rungs(len(scenario.reading_times), n_trials, eta)

    alive = list(range(n_trials))
    final_rung = len(rungs) - 1
    for rung, fidelity in enumerate(rungs):
        fidelity_scenario = scenario.at_fidelity(fidelity)
        batch = [(index, draws[index]) for index in alive]
        trials = evaluator.run_batch(rung, batch, fidelity_scenario)
        if rung == final_rung:
            break
        candidates = [(trial.index, trial.objective(objective),
                       trial.feasible) for trial in trials]
        alive = sorted(promote(candidates, eta))
        if not alive:
            final_rung = rung
            break
    reference = evaluator.reference_metrics()
    return _finish(evaluator, "halving", space, header, reference,
                   final_rung=final_rung)


#: Algorithm dispatch used by the ``repro tune`` CLI.
ALGORITHMS = {
    "grid": grid_search,
    "random": random_search,
    "halving": halving_search,
}
