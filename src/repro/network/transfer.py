"""Transfer records produced by the link.

A :class:`Transfer` is one HTTP-level request/response: its size, when it
was requested (queued), when bytes started moving, and when it completed.
The experiments use these records for transmission-time accounting and to
reconstruct traffic-over-time plots.

Under fault injection (:mod:`repro.faults`) one transfer may take several
wire *attempts*: a lost or timed-out attempt is retried after a backoff
until the recovery policy's attempt budget runs out, at which point the
transfer is delivered as *failed* and the page degrades instead of
hanging.  The attempt accounting lives here so both the engines and the
sensitivity sweep can read it off the record.
"""

from __future__ import annotations

from typing import Optional

from repro.units import require_non_negative


class Transfer:
    """One request/response over the 3G link.

    ``__slots__`` (hand-written; ``dataclass(slots=True)`` needs 3.10):
    a busy experiment creates hundreds of thousands of these, and the
    link's scheduling loop reads their fields constantly.
    """

    __slots__ = ("label", "size_bytes", "requested_at", "started_at",
                 "completed_at", "high_priority", "attempts",
                 "lost_attempts", "timeout_attempts", "failed",
                 "retry_issued_at")

    def __init__(self, label: str, size_bytes: float, requested_at: float,
                 started_at: Optional[float] = None,
                 completed_at: Optional[float] = None,
                 high_priority: bool = True,
                 attempts: int = 0,
                 lost_attempts: int = 0,
                 timeout_attempts: int = 0,
                 failed: bool = False,
                 retry_issued_at: Optional[float] = None) -> None:
        require_non_negative("size_bytes", size_bytes)
        self.label = label
        self.size_bytes = size_bytes
        self.requested_at = requested_at
        self.started_at = started_at
        self.completed_at = completed_at
        #: Scheduling class the link used (documents/styles/scripts
        #: vs media).
        self.high_priority = high_priority
        #: Wire attempts made so far (1 for an unimpaired transfer).
        self.attempts = attempts
        #: Attempts whose response was lost in the channel.
        self.lost_attempts = lost_attempts
        #: Attempts abandoned at the recovery timeout.
        self.timeout_attempts = timeout_attempts
        #: True once the recovery policy gave the transfer up for good.
        self.failed = failed
        #: When the most recent retry was re-queued (None before any
        #: retry).
        self.retry_issued_at = retry_issued_at

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Transfer(label={self.label!r}, "
                f"size_bytes={self.size_bytes!r}, "
                f"requested_at={self.requested_at!r}, "
                f"complete={self.complete}, failed={self.failed})")

    @property
    def issued_at(self) -> float:
        """When the transfer last entered the link queue (original
        request, or the most recent retry)."""
        if self.retry_issued_at is not None:
            return self.retry_issued_at
        return self.requested_at

    @property
    def queue_delay(self) -> float:
        """Seconds spent waiting behind other transfers."""
        if self.started_at is None:
            raise ValueError(f"transfer {self.label!r} never started")
        return self.started_at - self.requested_at

    @property
    def duration(self) -> float:
        """Seconds from first byte on the wire to the last byte arriving
        (retries and backoffs of an impaired transfer included)."""
        if self.started_at is None or self.completed_at is None:
            raise ValueError(f"transfer {self.label!r} not complete")
        return self.completed_at - self.started_at

    @property
    def complete(self) -> bool:
        return self.completed_at is not None
