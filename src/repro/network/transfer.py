"""Transfer records produced by the link.

A :class:`Transfer` is one HTTP-level request/response: its size, when it
was requested (queued), when bytes started moving, and when it completed.
The experiments use these records for transmission-time accounting and to
reconstruct traffic-over-time plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.units import require_non_negative


@dataclass
class Transfer:
    """One request/response over the 3G link."""

    label: str
    size_bytes: float
    requested_at: float
    started_at: Optional[float] = None
    completed_at: Optional[float] = None

    def __post_init__(self) -> None:
        require_non_negative("size_bytes", self.size_bytes)

    @property
    def queue_delay(self) -> float:
        """Seconds spent waiting behind other transfers."""
        if self.started_at is None:
            raise ValueError(f"transfer {self.label!r} never started")
        return self.started_at - self.requested_at

    @property
    def duration(self) -> float:
        """Seconds of actual wire time (request + response)."""
        if self.started_at is None or self.completed_at is None:
            raise ValueError(f"transfer {self.label!r} not complete")
        return self.completed_at - self.started_at

    @property
    def complete(self) -> bool:
        return self.completed_at is not None
