"""Transfer records produced by the link.

A :class:`Transfer` is one HTTP-level request/response: its size, when it
was requested (queued), when bytes started moving, and when it completed.
The experiments use these records for transmission-time accounting and to
reconstruct traffic-over-time plots.

Under fault injection (:mod:`repro.faults`) one transfer may take several
wire *attempts*: a lost or timed-out attempt is retried after a backoff
until the recovery policy's attempt budget runs out, at which point the
transfer is delivered as *failed* and the page degrades instead of
hanging.  The attempt accounting lives here so both the engines and the
sensitivity sweep can read it off the record.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.units import require_non_negative


@dataclass
class Transfer:
    """One request/response over the 3G link."""

    label: str
    size_bytes: float
    requested_at: float
    started_at: Optional[float] = None
    completed_at: Optional[float] = None
    #: Scheduling class the link used (documents/styles/scripts vs media).
    high_priority: bool = True
    #: Wire attempts made so far (1 for an unimpaired transfer).
    attempts: int = 0
    #: Attempts whose response was lost in the channel.
    lost_attempts: int = 0
    #: Attempts abandoned at the recovery timeout.
    timeout_attempts: int = 0
    #: True once the recovery policy gave the transfer up for good.
    failed: bool = False
    #: When the most recent retry was re-queued (None before any retry).
    retry_issued_at: Optional[float] = None

    def __post_init__(self) -> None:
        require_non_negative("size_bytes", self.size_bytes)

    @property
    def issued_at(self) -> float:
        """When the transfer last entered the link queue (original
        request, or the most recent retry)."""
        if self.retry_issued_at is not None:
            return self.retry_issued_at
        return self.requested_at

    @property
    def queue_delay(self) -> float:
        """Seconds spent waiting behind other transfers."""
        if self.started_at is None:
            raise ValueError(f"transfer {self.label!r} never started")
        return self.started_at - self.requested_at

    @property
    def duration(self) -> float:
        """Seconds from first byte on the wire to the last byte arriving
        (retries and backoffs of an impaired transfer included)."""
        if self.started_at is None or self.completed_at is None:
            raise ValueError(f"transfer {self.label!r} not complete")
        return self.completed_at - self.started_at

    @property
    def complete(self) -> bool:
        return self.completed_at is not None
