"""The 3G link: a bandwidth/RTT pipe gated by the RRC state machine.

Transfers are serialised.  On a 3G downlink the handset's parallel
HTTP connections share one dedicated channel, so aggregate throughput —
which is what the energy accounting depends on — is the same whether the
byte streams interleave or queue; serialising keeps the simulation
deterministic.  Within the serial order, documents/stylesheets/scripts
take priority over media, and a request whose round trip has already
elapsed (response bytes ready to stream) goes out before one that would
stall the downlink for its remaining RTT — the serial stand-in for the
parallel connections real browsers use.

Every transfer acquires the dedicated channel first (paying the promotion
latency when the radio is in FACH or IDLE) and brackets its wire time with
``tx_begin``/``tx_end`` so the radio draws transmission-level power for
exactly the bytes-in-flight interval.

Default calibration follows Fig. 4 of the paper: a bulk socket download
of 760 KB completes in ~11 s wire time (~70 KB/s effective downlink
goodput on the 2012-era T-Mobile UMTS network) with a 400 ms round trip,
and the browsing workloads then reproduce the loading-time ratios of
Figs. 8–10.

The constant pipe is the *baseline*.  An optional
:class:`repro.faults.injector.FaultInjector` layers time-varying
impairments on top — bandwidth fades, RTT jitter, Gilbert–Elliott loss,
promotion stalls — and an optional :class:`repro.faults.recovery.
RecoveryPolicy` bounds the damage: an attempt that is lost or outlasts
the timeout is retried after an exponential backoff, and a transfer that
exhausts its attempts is delivered *failed* so the page degrades instead
of hanging.  Both hooks default to ``None``, in which case the code path
is exactly the baseline one.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Deque, List, Optional, Sequence, Tuple

from repro.network.transfer import Transfer
from repro.rrc.machine import RrcMachine
from repro.rrc.states import RrcState
from repro.sim.kernel import Simulator
from repro.units import require_non_negative, require_positive

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints only
    from repro.faults.injector import FaultInjector
    from repro.faults.recovery import RecoveryPolicy

#: Outcomes of one wire attempt.
_ATTEMPT_OK = "ok"
_ATTEMPT_LOST = "lost"
_ATTEMPT_TIMEOUT = "timeout"


@dataclass(frozen=True)
class NetworkConfig:
    """Link parameters for the simulated UMTS data path."""

    #: Effective downlink goodput in bytes/second.
    downlink_bandwidth: float = 70_000.0
    #: Effective uplink goodput in bytes/second (requests are small).
    uplink_bandwidth: float = 40_000.0
    #: Round-trip time between handset and server, seconds.
    rtt: float = 0.4
    #: Size of an HTTP request (headers), bytes.
    request_bytes: float = 400.0
    #: Per-request server/HTTP overhead that cannot be pipelined away.
    pipeline_overhead: float = 0.13

    def __post_init__(self) -> None:
        require_positive("downlink_bandwidth", self.downlink_bandwidth)
        require_positive("uplink_bandwidth", self.uplink_bandwidth)
        require_non_negative("rtt", self.rtt)
        require_non_negative("request_bytes", self.request_bytes)
        require_non_negative("pipeline_overhead", self.pipeline_overhead)

    def wire_time(self, size_bytes: float, queue_delay: float = 0.0) -> float:
        """Wire time of one request/response of ``size_bytes`` payload.

        ``queue_delay`` is how long the request has already been queued
        behind other transfers.  Browsers issue queued requests
        immediately on parallel/pipelined connections, so their RTT
        overlaps the ongoing downloads: by the time the downlink frees,
        up to ``queue_delay`` of the round trip has already elapsed.
        A request hitting an idle link pays the full RTT.
        """
        effective_rtt = max(0.0, self.rtt - queue_delay)
        return (effective_rtt + self.pipeline_overhead
                + self.request_bytes / self.uplink_bandwidth
                + size_bytes / self.downlink_bandwidth)


class Link:
    """FIFO transfer scheduler over the RRC-gated 3G pipe."""

    def __init__(self, sim: Simulator, machine: RrcMachine,
                 config: Optional[NetworkConfig] = None,
                 injector: Optional["FaultInjector"] = None,
                 recovery: Optional["RecoveryPolicy"] = None):
        self._sim = sim
        self._machine = machine
        self.config = config or NetworkConfig()
        self._injector = injector
        self._recovery = recovery
        # Two-level priority: documents, stylesheets and scripts jump
        # ahead of images/flash, as real browsers schedule them.
        self._high: Deque[Tuple[Transfer, Callable[[Transfer], None]]] = \
            deque()
        self._low: Deque[Tuple[Transfer, Callable[[Transfer], None]]] = \
            deque()
        self._active = False
        #: When the current DCH busy streak's channel came up; requests
        #: cannot overlap their RTT with anything before this instant.
        self._streak_ready: Optional[float] = None
        self.transfers: List[Transfer] = []

    # ------------------------------------------------------------------
    @property
    def busy(self) -> bool:
        """True while bytes are moving or transfers are queued."""
        return self._active or bool(self._high) or bool(self._low)

    @property
    def bytes_transferred(self) -> float:
        """Payload bytes of all completed transfers."""
        return sum(t.size_bytes for t in self.transfers if t.complete)

    def fetch(self, size_bytes: float, on_complete: Callable[[Transfer],
              None], label: str = "", high_priority: bool = True
              ) -> Transfer:
        """Request a download of ``size_bytes``; ``on_complete(transfer)``
        fires when the last byte arrives — or, under fault injection,
        when the recovery policy gives the transfer up for good, with
        ``transfer.failed`` set.  ``high_priority`` transfers (documents,
        stylesheets, scripts) are scheduled before low-priority ones
        (images, flash)."""
        require_non_negative("size_bytes", size_bytes)
        transfer = Transfer(label=label, size_bytes=size_bytes,
                            requested_at=self._sim.now,
                            high_priority=high_priority)
        self.transfers.append(transfer)
        queue = self._high if high_priority else self._low
        queue.append((transfer, on_complete))
        self._dispatch()
        return transfer

    def fetch_many(self, requests: Sequence[Tuple[float,
                   Callable[[Transfer], None], str, bool]]
                   ) -> List[Transfer]:
        """Request a batch of back-to-back downloads in one call.

        ``requests`` holds ``(size_bytes, on_complete, label,
        high_priority)`` tuples.  Event-for-event identical to calling
        :meth:`fetch` once per tuple: the dispatch happens after the
        *first* enqueue (as the first sequential ``fetch`` would do it),
        so a synchronously granted channel sees exactly the queue state
        the sequential calls would have produced; every later ``fetch``'s
        dispatch would have been a no-op anyway because the link is
        already active by then.
        """
        now = self._sim.now
        transfers: List[Transfer] = []
        for size_bytes, on_complete, label, high_priority in requests:
            require_non_negative("size_bytes", size_bytes)
            transfer = Transfer(label=label, size_bytes=size_bytes,
                                requested_at=now,
                                high_priority=high_priority)
            self.transfers.append(transfer)
            queue = self._high if high_priority else self._low
            queue.append((transfer, on_complete))
            transfers.append(transfer)
            if len(transfers) == 1:
                self._dispatch()
        return transfers

    # ------------------------------------------------------------------
    def _dispatch(self) -> None:
        if self._active or not (self._high or self._low):
            return
        self._active = True
        if (self._injector is not None
                and self._machine.state is not RrcState.DCH):
            # A stalled promotion: the RACH procedure retries before the
            # RRC connection setup even starts, so the spike precedes
            # (and adds to) the usual promotion latency.
            spike = self._injector.promotion_spike()
            if spike > 0.0:
                self._sim.schedule(spike, self._machine.acquire_channel,
                                   self._channel_granted)
                return
        self._machine.acquire_channel(self._channel_granted)

    def _channel_granted(self) -> None:
        if not (self._high or self._low):  # all requests were drained
            self._active = False
            return
        now = self._sim.now
        if self._streak_ready is None:
            self._streak_ready = now
        transfer, on_complete = self._pop_next(now)
        if transfer.started_at is None:
            transfer.started_at = now
        transfer.attempts += 1
        self._machine.tx_begin()
        # The RTT can only overlap time during which the request could
        # actually have been in flight: after it was (re-)issued AND
        # after the channel came up (a promotion wait buys no overlap).
        overlap = now - max(transfer.issued_at, self._streak_ready)
        wire = self.config.wire_time(transfer.size_bytes,
                                     queue_delay=overlap)
        wire, outcome = self._shape_attempt(now, transfer, wire)
        self._sim.schedule(wire, self._attempt_done, transfer, on_complete,
                           outcome)

    def _shape_attempt(self, now: float, transfer: Transfer,
                       wire: float) -> Tuple[float, str]:
        """Apply channel impairments to one attempt's wire time.

        Returns the (possibly stretched) time the attempt occupies the
        radio and its outcome.  A lost attempt occupies the radio for the
        full recovery timeout — the handset waits for a response that
        never comes — which is exactly the energy waste the recovery
        layer exists to bound.
        """
        if self._injector is None:
            return wire, _ATTEMPT_OK
        scale = self._injector.bandwidth_scale(now)
        if scale != 1.0:
            payload_time = transfer.size_bytes / self.config.downlink_bandwidth
            wire += payload_time * (1.0 / scale - 1.0)
        wire += self._injector.attempt_rtt_jitter()
        if self._recovery is None:
            # Loss needs a retry path to be survivable; without a
            # recovery policy the channel only fades and jitters.
            return wire, _ATTEMPT_OK
        if self._injector.attempt_lost():
            return self._recovery.timeout, _ATTEMPT_LOST
        if wire > self._recovery.timeout:
            self._injector.note_timeout()
            return self._recovery.timeout, _ATTEMPT_TIMEOUT
        return wire, _ATTEMPT_OK

    def _pop_next(self, now: float
                  ) -> Tuple[Transfer, Callable[[Transfer], None]]:
        """Pick the next transfer to put on the downlink.

        Prefer a request whose round trip has already elapsed — its
        response bytes are at the handset, ready to stream, so the
        downlink pays no dead air — documents before media as usual.
        Only when *no* queued response is ready does the strict
        priority-FIFO head go out and pay its remaining RTT.  Each queue
        is FIFO in request time, so checking heads is enough: if any
        entry is ready, the head is.  Without this, a freshly issued
        request (a script discovered late in a chain) stalls the pipe
        for a full RTT while long-queued responses sit ready behind it.
        """
        def head_ready(queue) -> bool:
            if not queue:
                return False
            head, _ = queue[0]
            waited = now - max(head.issued_at, self._streak_ready)
            return waited >= self.config.rtt
        if head_ready(self._high):
            return self._high.popleft()
        if head_ready(self._low):
            return self._low.popleft()
        return (self._high.popleft() if self._high
                else self._low.popleft())

    def _attempt_done(self, transfer: Transfer,
                      on_complete: Callable[[Transfer], None],
                      outcome: str) -> None:
        if outcome == _ATTEMPT_OK:
            transfer.completed_at = self._sim.now
        elif outcome == _ATTEMPT_LOST:
            transfer.lost_attempts += 1
        else:
            transfer.timeout_attempts += 1
        self._machine.tx_end()
        self._active = False
        retrying = (outcome != _ATTEMPT_OK and self._recovery is not None
                    and transfer.attempts < self._recovery.max_attempts)
        if retrying:
            if self._injector is not None:
                self._injector.note_retry()
            self._sim.schedule(self._recovery.backoff(transfer.attempts),
                               self._requeue, transfer, on_complete)
        elif outcome != _ATTEMPT_OK:
            transfer.failed = True
            if self._injector is not None:
                self._injector.note_transfer_failed()
        if not (self._high or self._low):
            self._streak_ready = None
        # Start the next queued transfer before user code runs so that
        # back-to-back transfers never arm T1 spuriously for a full tick.
        self._dispatch()
        if not retrying:
            on_complete(transfer)

    def _requeue(self, transfer: Transfer,
                 on_complete: Callable[[Transfer], None]) -> None:
        """Put a lost/timed-out transfer back in its queue after backoff."""
        transfer.retry_issued_at = self._sim.now
        queue = self._high if transfer.high_priority else self._low
        queue.append((transfer, on_complete))
        self._dispatch()
