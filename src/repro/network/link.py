"""The 3G link: a bandwidth/RTT pipe gated by the RRC state machine.

Transfers are serialised.  On a 3G downlink the handset's parallel
HTTP connections share one dedicated channel, so aggregate throughput —
which is what the energy accounting depends on — is the same whether the
byte streams interleave or queue; serialising keeps the simulation
deterministic.  Within the serial order, documents/stylesheets/scripts
take priority over media, and a request whose round trip has already
elapsed (response bytes ready to stream) goes out before one that would
stall the downlink for its remaining RTT — the serial stand-in for the
parallel connections real browsers use.

Every transfer acquires the dedicated channel first (paying the promotion
latency when the radio is in FACH or IDLE) and brackets its wire time with
``tx_begin``/``tx_end`` so the radio draws transmission-level power for
exactly the bytes-in-flight interval.

Default calibration follows Fig. 4 of the paper: a bulk socket download
of 760 KB completes in ~11 s wire time (~70 KB/s effective downlink
goodput on the 2012-era T-Mobile UMTS network) with a 400 ms round trip,
and the browsing workloads then reproduce the loading-time ratios of
Figs. 8–10.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, List, Optional, Tuple

from repro.network.transfer import Transfer
from repro.rrc.machine import RrcMachine
from repro.sim.kernel import Simulator
from repro.units import require_non_negative, require_positive


@dataclass(frozen=True)
class NetworkConfig:
    """Link parameters for the simulated UMTS data path."""

    #: Effective downlink goodput in bytes/second.
    downlink_bandwidth: float = 70_000.0
    #: Effective uplink goodput in bytes/second (requests are small).
    uplink_bandwidth: float = 40_000.0
    #: Round-trip time between handset and server, seconds.
    rtt: float = 0.4
    #: Size of an HTTP request (headers), bytes.
    request_bytes: float = 400.0
    #: Per-request server/HTTP overhead that cannot be pipelined away.
    pipeline_overhead: float = 0.13

    def __post_init__(self) -> None:
        require_positive("downlink_bandwidth", self.downlink_bandwidth)
        require_positive("uplink_bandwidth", self.uplink_bandwidth)
        require_non_negative("rtt", self.rtt)
        require_non_negative("request_bytes", self.request_bytes)
        require_non_negative("pipeline_overhead", self.pipeline_overhead)

    def wire_time(self, size_bytes: float, queue_delay: float = 0.0) -> float:
        """Wire time of one request/response of ``size_bytes`` payload.

        ``queue_delay`` is how long the request has already been queued
        behind other transfers.  Browsers issue queued requests
        immediately on parallel/pipelined connections, so their RTT
        overlaps the ongoing downloads: by the time the downlink frees,
        up to ``queue_delay`` of the round trip has already elapsed.
        A request hitting an idle link pays the full RTT.
        """
        effective_rtt = max(0.0, self.rtt - queue_delay)
        return (effective_rtt + self.pipeline_overhead
                + self.request_bytes / self.uplink_bandwidth
                + size_bytes / self.downlink_bandwidth)


class Link:
    """FIFO transfer scheduler over the RRC-gated 3G pipe."""

    def __init__(self, sim: Simulator, machine: RrcMachine,
                 config: Optional[NetworkConfig] = None):
        self._sim = sim
        self._machine = machine
        self.config = config or NetworkConfig()
        # Two-level priority: documents, stylesheets and scripts jump
        # ahead of images/flash, as real browsers schedule them.
        self._high: Deque[Tuple[Transfer, Callable[[Transfer], None]]] = \
            deque()
        self._low: Deque[Tuple[Transfer, Callable[[Transfer], None]]] = \
            deque()
        self._active = False
        #: When the current DCH busy streak's channel came up; requests
        #: cannot overlap their RTT with anything before this instant.
        self._streak_ready: Optional[float] = None
        self.transfers: List[Transfer] = []

    # ------------------------------------------------------------------
    @property
    def busy(self) -> bool:
        """True while bytes are moving or transfers are queued."""
        return self._active or bool(self._high) or bool(self._low)

    @property
    def bytes_transferred(self) -> float:
        """Payload bytes of all completed transfers."""
        return sum(t.size_bytes for t in self.transfers if t.complete)

    def fetch(self, size_bytes: float, on_complete: Callable[[Transfer],
              None], label: str = "", high_priority: bool = True
              ) -> Transfer:
        """Request a download of ``size_bytes``; ``on_complete(transfer)``
        fires when the last byte arrives.  ``high_priority`` transfers
        (documents, stylesheets, scripts) are scheduled before
        low-priority ones (images, flash)."""
        require_non_negative("size_bytes", size_bytes)
        transfer = Transfer(label=label, size_bytes=size_bytes,
                            requested_at=self._sim.now)
        self.transfers.append(transfer)
        queue = self._high if high_priority else self._low
        queue.append((transfer, on_complete))
        self._dispatch()
        return transfer

    # ------------------------------------------------------------------
    def _dispatch(self) -> None:
        if self._active or not (self._high or self._low):
            return
        self._active = True
        self._machine.acquire_channel(self._channel_granted)

    def _channel_granted(self) -> None:
        if not (self._high or self._low):  # all requests were drained
            self._active = False
            return
        now = self._sim.now
        if self._streak_ready is None:
            self._streak_ready = now
        transfer, on_complete = self._pop_next(now)
        transfer.started_at = now
        self._machine.tx_begin()
        # The RTT can only overlap time during which the request could
        # actually have been in flight: after it was issued AND after the
        # channel came up (a promotion wait buys no overlap).
        overlap = now - max(transfer.requested_at, self._streak_ready)
        wire = self.config.wire_time(transfer.size_bytes,
                                     queue_delay=overlap)
        self._sim.schedule(wire, self._transfer_done, transfer, on_complete)

    def _pop_next(self, now: float
                  ) -> Tuple[Transfer, Callable[[Transfer], None]]:
        """Pick the next transfer to put on the downlink.

        Prefer a request whose round trip has already elapsed — its
        response bytes are at the handset, ready to stream, so the
        downlink pays no dead air — documents before media as usual.
        Only when *no* queued response is ready does the strict
        priority-FIFO head go out and pay its remaining RTT.  Each queue
        is FIFO in request time, so checking heads is enough: if any
        entry is ready, the head is.  Without this, a freshly issued
        request (a script discovered late in a chain) stalls the pipe
        for a full RTT while long-queued responses sit ready behind it.
        """
        def head_ready(queue) -> bool:
            if not queue:
                return False
            head, _ = queue[0]
            waited = now - max(head.requested_at, self._streak_ready)
            return waited >= self.config.rtt
        if head_ready(self._high):
            return self._high.popleft()
        if head_ready(self._low):
            return self._low.popleft()
        return (self._high.popleft() if self._high
                else self._low.popleft())

    def _transfer_done(self, transfer: Transfer,
                       on_complete: Callable[[Transfer], None]) -> None:
        transfer.completed_at = self._sim.now
        self._machine.tx_end()
        self._active = False
        if not (self._high or self._low):
            self._streak_ready = None
        # Start the next queued transfer before user code runs so that
        # back-to-back transfers never arm T1 spuriously for a full tick.
        self._dispatch()
        on_complete(transfer)
