"""3G network link substrate.

Models the UMTS data path between the handset and the web servers: a
bandwidth/RTT pipe whose transfers are serialised FIFO (aggregate
throughput of the shared downlink), bracketed by RRC channel acquisition
so every byte moved keeps the radio in DCH.  Also provides the traffic
bucketing used to reproduce Fig. 4.
"""

from repro.network.link import Link, NetworkConfig
from repro.network.transfer import Transfer
from repro.network.traffic import bucket_traffic, TrafficSample

__all__ = ["Link", "NetworkConfig", "Transfer", "bucket_traffic",
           "TrafficSample"]
