"""Traffic-over-time bucketing (Fig. 4 of the paper).

The paper plots downloaded KB per 0.5 s bucket while opening a page, and
contrasts it with a bulk socket download of the same byte count.  This
module reconstructs that series from the link's transfer records by
spreading each transfer's payload uniformly over its wire time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List

from repro.network.transfer import Transfer
from repro.units import as_kb, require_positive


@dataclass(frozen=True)
class TrafficSample:
    """Downloaded kilobytes within one time bucket."""

    bucket_start: float
    kilobytes: float


def bucket_traffic(transfers: Iterable[Transfer],
                   bucket_seconds: float = 0.5,
                   horizon: float = None) -> List[TrafficSample]:
    """Bucket completed transfers into KB-per-interval samples.

    Each transfer's bytes are attributed uniformly across its
    ``[started_at, completed_at)`` interval.  ``horizon`` (seconds) pads
    the series with empty buckets up to a fixed length so that two runs
    can be plotted on the same axis.
    """
    require_positive("bucket_seconds", bucket_seconds)
    completed = [t for t in transfers if t.complete and t.size_bytes > 0]
    end = max((t.completed_at for t in completed), default=0.0)
    if horizon is not None:
        end = max(end, horizon)
    n_buckets = max(1, int(math.ceil(end / bucket_seconds)))
    totals = [0.0] * n_buckets

    for transfer in completed:
        start, stop = transfer.started_at, transfer.completed_at
        duration = stop - start
        if duration <= 0:
            index = min(int(start / bucket_seconds), n_buckets - 1)
            totals[index] += transfer.size_bytes
            continue
        rate = transfer.size_bytes / duration
        first = int(start / bucket_seconds)
        last = min(int(stop / bucket_seconds), n_buckets - 1)
        for index in range(first, last + 1):
            lo = max(start, index * bucket_seconds)
            hi = min(stop, (index + 1) * bucket_seconds)
            if hi > lo:
                totals[index] += rate * (hi - lo)

    return [TrafficSample(i * bucket_seconds, as_kb(total))
            for i, total in enumerate(totals)]
