"""Unit conventions and validation helpers used across the library.

All quantities in this library use a single canonical unit per dimension:

- time:   seconds (``float``)
- size:   bytes (``int`` or ``float``)
- power:  watts
- energy: joules

These helpers exist so that call sites can express literals in the unit the
paper uses (kilobytes, milliseconds) without sprinkling magic conversion
factors around, and so that constructors can validate their inputs early.
"""

from __future__ import annotations

import math

#: Bytes per kilobyte.  The paper reports page sizes in KB; we follow the
#: networking convention of 1 KB = 1000 bytes throughout.
BYTES_PER_KB = 1000.0
BYTES_PER_MB = 1000.0 * BYTES_PER_KB


def kb(value: float) -> float:
    """Convert kilobytes to bytes."""
    return value * BYTES_PER_KB


def mb(value: float) -> float:
    """Convert megabytes to bytes."""
    return value * BYTES_PER_MB


def as_kb(num_bytes: float) -> float:
    """Convert bytes to kilobytes."""
    return num_bytes / BYTES_PER_KB


def ms(value: float) -> float:
    """Convert milliseconds to seconds."""
    return value / 1000.0


def minutes(value: float) -> float:
    """Convert minutes to seconds."""
    return value * 60.0


def hours(value: float) -> float:
    """Convert hours to seconds."""
    return value * 3600.0


def require_finite(name: str, value: float) -> float:
    """Validate that ``value`` is a finite number (rejects NaN and ±inf).

    NaN is especially dangerous for anything ordered: every comparison
    with NaN is false, so ``value < 0`` checks pass and heap invariants
    silently break downstream.  Callers that order values must reject it
    explicitly rather than relying on range checks.
    """
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
    return value


def require_non_negative(name: str, value: float) -> float:
    """Validate that ``value`` is a finite, non-negative number."""
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")
    return value


def require_positive(name: str, value: float) -> float:
    """Validate that ``value`` is a finite, strictly positive number."""
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    return value


def require_fraction(name: str, value: float) -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return value
