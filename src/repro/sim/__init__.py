"""Discrete-event simulation kernel.

Every time-dependent substrate in this reproduction — the 3G RRC state
machine, the network link, the browser engines, the capacity simulator —
runs on this kernel.  It provides a simulated clock, an event queue with
stable ordering and O(log n) scheduling/cancellation, and a small helper
for modelling a single-core CPU executing sequential tasks.
"""

from repro.sim.events import Event, EventQueue
from repro.sim.kernel import Simulator
from repro.sim.process import CpuProcess, CpuTask

__all__ = ["Event", "EventQueue", "Simulator", "CpuProcess", "CpuTask"]
