"""The simulation kernel: a clock plus an event loop.

The kernel is deliberately minimal — substrates are plain Python objects
that hold a reference to the :class:`Simulator` and schedule callbacks on
it.  There is no coroutine machinery; sequential behaviour is expressed by
a callback scheduling its continuation (see :mod:`repro.sim.process` for a
helper that does this for CPU task chains).

Every simulator instruments itself: counters for events processed,
cancellations, and peak queue depth, plus wall-clock accounting inside
:meth:`Simulator.run`.  Completed runs are reported to the process-wide
:data:`repro.runtime.observability.KERNEL_STATS` collector so harnesses
(the parallel experiment runner, the benchmarks) can attribute kernel
work to the experiment that caused it without reaching into substrates.
"""

from __future__ import annotations

import heapq
import math
import os
import time as _time
from typing import Any, Callable, Iterable, List, Optional, Tuple

from repro.runtime.observability import KERNEL_STATS, SimRunStats
from repro.sim.events import Event, EventQueue
from repro.units import require_non_negative

#: Set to any non-empty value to route ``Simulator.run`` through the
#: original peek/step loop instead of the inlined drain loop.  The two
#: are byte-identical in observable behaviour (golden tests assert it);
#: the gate exists so the equivalence stays testable.
_SLOW_KERNEL_ENV = "REPRO_KERNEL_SLOW"


class SimulationError(RuntimeError):
    """Raised when the kernel is used incorrectly."""


class Simulator:
    """A discrete-event simulator with a floating-point clock in seconds."""

    def __init__(self, start_time: float = 0.0) -> None:
        self.now = float(start_time)
        self._start_time = float(start_time)
        self._queue = EventQueue()
        self._running = False
        self._events_processed = 0
        self._cancellations = 0
        self._peak_queue_depth = 0
        self._run_peak_depth = 0
        self._wall_time = 0.0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., Any],
                 *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        ``delay`` must be a finite, non-negative number.  NaN and ±inf
        raise :class:`SimulationError`: every comparison with NaN is
        false, so a NaN timestamp would pass the ``< 0`` range check yet
        silently corrupt the heap ordering invariant.
        """
        if not math.isfinite(delay):
            raise SimulationError(
                f"delay must be finite, got {delay!r}")
        require_non_negative("delay", delay)
        return self._push(self.now + delay, callback, args)

    def schedule_at(self, time: float, callback: Callable[..., Any],
                    *args: Any) -> Event:
        """Schedule ``callback(*args)`` at an absolute simulation time.

        ``time`` must be finite (NaN compares false against the clock
        and would slip past the past-time check below) and not earlier
        than the current clock.
        """
        if not math.isfinite(time):
            raise SimulationError(
                f"schedule_at time must be finite, got {time!r}")
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time:.6f}, clock is at {self.now:.6f}")
        return self._push(time, callback, args)

    def schedule_many(self,
                      requests: Iterable[Tuple[float, Callable[..., Any],
                                               tuple]]) -> List[Event]:
        """Schedule a batch of ``(delay, callback, args)`` requests.

        Equivalent to calling :meth:`schedule` once per request, in
        order — same events, same sequence numbers, same FIFO ties —
        but validates up front and pushes through the queue's bulk
        path, which matters for callers that enqueue back-to-back
        transfers (see :meth:`repro.network.link.Link.fetch_many`).
        """
        now = self.now
        items: List[Tuple[float, Callable[..., Any], tuple]] = []
        for delay, callback, args in requests:
            if not math.isfinite(delay):
                raise SimulationError(
                    f"delay must be finite, got {delay!r}")
            require_non_negative("delay", delay)
            items.append((now + delay, callback, args))
        events = self._queue.push_many(items)
        depth = len(self._queue)
        if depth > self._peak_queue_depth:
            self._peak_queue_depth = depth
        if depth > self._run_peak_depth:
            self._run_peak_depth = depth
        return events

    def _push(self, time: float, callback: Callable[..., Any],
              args: tuple) -> Event:
        event = self._queue.push(time, callback, args)
        depth = len(self._queue)
        if depth > self._peak_queue_depth:
            self._peak_queue_depth = depth
        if depth > self._run_peak_depth:
            self._run_peak_depth = depth
        return event

    def cancel(self, event: Optional[Event]) -> None:
        """Cancel a previously scheduled event (``None`` is a no-op)."""
        if event is not None and not event.cancelled:
            event.cancel()
            self._queue.note_cancelled()
            self._cancellations += 1

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the single earliest event.  Returns ``False`` when idle."""
        event = self._queue.pop()
        if event is None:
            return False
        if event.time < self.now:
            raise SimulationError("event queue went backwards in time")
        self.now = event.time
        self._events_processed += 1
        event.callback(*event.args)
        return True

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Run events until the queue drains or the horizon is reached.

        ``until`` is an absolute simulation time; events scheduled beyond
        it remain queued and the clock is advanced exactly to ``until``.
        ``max_events`` bounds the number of callbacks (a runaway guard for
        tests).

        The event loop is inlined over the queue's heap (one pop per
        live event, no per-event ``peek_time``/``step`` indirection).
        Setting ``REPRO_KERNEL_SLOW`` in the environment routes through
        the original peek/step loop instead; the golden-equivalence
        tests run every experiment both ways and diff the reports.
        """
        if self._running:
            raise SimulationError("run() re-entered; the kernel is not "
                                  "reentrant")
        self._running = True
        run_started_at = self.now
        events_before = self._events_processed
        cancellations_before = self._cancellations
        # Per-run peak starts at the depth already queued when the run
        # begins; _push / schedule_many raise it as callbacks schedule.
        self._run_peak_depth = len(self._queue)
        wall_start = _time.perf_counter()
        try:
            if os.environ.get(_SLOW_KERNEL_ENV):
                self._run_slow(until, max_events)
            else:
                self._run_fast(until, max_events)
            if until is not None and until > self.now:
                self.now = until
        finally:
            self._running = False
            wall_time = _time.perf_counter() - wall_start
            self._wall_time += wall_time
            KERNEL_STATS.record_run(
                events_processed=self._events_processed - events_before,
                cancellations=self._cancellations - cancellations_before,
                peak_queue_depth=self._run_peak_depth,
                sim_time=self.now - run_started_at,
                wall_time=wall_time)

    def _run_fast(self, until: Optional[float],
                  max_events: Optional[int]) -> None:
        """Drain loop with the queue internals bound locally.

        Safe against everything callbacks may do: pushes go through
        ``heapq.heappush`` on the same list object, and compaction
        (triggered by cancellations) rebuilds that list in place, so the
        local ``heap`` binding never goes stale.
        """
        queue = self._queue
        heap = queue._heap
        heappop = heapq.heappop
        processed = 0
        try:
            while heap:
                event = heap[0]
                if event.cancelled:
                    heappop(heap)
                    queue._stale -= 1
                    continue
                event_time = event.time
                if until is not None and event_time > until:
                    break
                if max_events is not None and processed >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}")
                heappop(heap)
                queue._live -= 1
                if event_time < self.now:
                    raise SimulationError(
                        "event queue went backwards in time")
                self.now = event_time
                processed += 1
                event.callback(*event.args)
        finally:
            self._events_processed += processed

    def _run_slow(self, until: Optional[float],
                  max_events: Optional[int]) -> None:
        """Original peek/step loop, kept as the equivalence reference."""
        processed = 0
        while True:
            next_time = self._queue.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                break
            if max_events is not None and processed >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events}")
            self.step()
            processed += 1

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return len(self._queue)

    @property
    def events_processed(self) -> int:
        """Total number of callbacks executed so far."""
        return self._events_processed

    @property
    def cancellations(self) -> int:
        """Total number of events cancelled via :meth:`cancel`."""
        return self._cancellations

    @property
    def peak_queue_depth(self) -> int:
        """Largest number of live events ever queued at once."""
        return self._peak_queue_depth

    @property
    def wall_time(self) -> float:
        """Cumulative real seconds spent inside :meth:`run`."""
        return self._wall_time

    def stats(self) -> SimRunStats:
        """Lifetime counters for this simulator as one record."""
        return SimRunStats(
            events_processed=self._events_processed,
            cancellations=self._cancellations,
            peak_queue_depth=self._peak_queue_depth,
            sim_time=self.now - self._start_time,
            wall_time=self._wall_time)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Simulator(now={self.now:.6f}, "
                f"pending={self.pending_events})")
