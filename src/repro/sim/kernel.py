"""The simulation kernel: a clock plus an event loop.

The kernel is deliberately minimal — substrates are plain Python objects
that hold a reference to the :class:`Simulator` and schedule callbacks on
it.  There is no coroutine machinery; sequential behaviour is expressed by
a callback scheduling its continuation (see :mod:`repro.sim.process` for a
helper that does this for CPU task chains).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.events import Event, EventQueue
from repro.units import require_non_negative


class SimulationError(RuntimeError):
    """Raised when the kernel is used incorrectly."""


class Simulator:
    """A discrete-event simulator with a floating-point clock in seconds."""

    def __init__(self, start_time: float = 0.0) -> None:
        self.now = float(start_time)
        self._queue = EventQueue()
        self._running = False
        self._events_processed = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., Any],
                 *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        require_non_negative("delay", delay)
        return self._queue.push(self.now + delay, callback, args)

    def schedule_at(self, time: float, callback: Callable[..., Any],
                    *args: Any) -> Event:
        """Schedule ``callback(*args)`` at an absolute simulation time."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time:.6f}, clock is at {self.now:.6f}")
        return self._queue.push(time, callback, args)

    def cancel(self, event: Optional[Event]) -> None:
        """Cancel a previously scheduled event (``None`` is a no-op)."""
        if event is not None and not event.cancelled:
            event.cancel()
            self._queue.note_cancelled()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the single earliest event.  Returns ``False`` when idle."""
        event = self._queue.pop()
        if event is None:
            return False
        if event.time < self.now:
            raise SimulationError("event queue went backwards in time")
        self.now = event.time
        self._events_processed += 1
        event.callback(*event.args)
        return True

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Run events until the queue drains or the horizon is reached.

        ``until`` is an absolute simulation time; events scheduled beyond
        it remain queued and the clock is advanced exactly to ``until``.
        ``max_events`` bounds the number of callbacks (a runaway guard for
        tests).
        """
        if self._running:
            raise SimulationError("run() re-entered; the kernel is not "
                                  "reentrant")
        self._running = True
        processed = 0
        try:
            while True:
                next_time = self._queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                if max_events is not None and processed >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}")
                self.step()
                processed += 1
            if until is not None and until > self.now:
                self.now = until
        finally:
            self._running = False

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return len(self._queue)

    @property
    def events_processed(self) -> int:
        """Total number of callbacks executed so far."""
        return self._events_processed

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Simulator(now={self.now:.6f}, "
                f"pending={self.pending_events})")
