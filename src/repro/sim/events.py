"""Event objects and the priority queue that orders them.

Events are ordered by ``(time, sequence)`` where ``sequence`` is a
monotonically increasing counter assigned at schedule time.  This gives the
kernel two properties the substrates rely on:

- **determinism**: two runs with the same inputs produce the same event
  order, independent of hash seeds or insertion patterns;
- **FIFO ties**: events scheduled for the same instant fire in the order
  they were scheduled, which matches the intuition of sequential code.

Cancellation is lazy: a cancelled event stays in the heap and is skipped
when popped, which keeps :meth:`Event.cancel` O(1).  Pure laziness,
however, leaks: a long session that keeps re-arming timers (the RRC tail
timers are cancelled and rescheduled on every transmission) accumulates
cancelled entries and the heap grows without bound.  The queue therefore
compacts — rebuilds the heap from only the live events — whenever
cancelled entries outnumber live ones.  Each compaction is O(n) but
removes at least half the heap, so the cost amortises to O(1) per
cancellation and the heap never holds more than ``2 * live + O(1)``
entries.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional

#: Heaps at or below this size are never compacted: the O(n) rebuild buys
#: nothing measurable and skipping it keeps micro-simulations allocation
#: free.
_COMPACT_MIN_SIZE = 16


class Event:
    """A scheduled callback.

    Instances are created by :meth:`EventQueue.push` /
    :meth:`repro.sim.kernel.Simulator.schedule`; user code only holds them
    to query :attr:`time` or to :meth:`cancel` them.
    """

    __slots__ = ("time", "sequence", "callback", "args", "cancelled")

    def __init__(self, time: float, sequence: int,
                 callback: Callable[..., Any], args: tuple):
        self.time = time
        self.sequence = sequence
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark this event so the kernel skips it when its time comes."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.sequence) < (other.time, other.sequence)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.callback, "__name__", repr(self.callback))
        return f"Event(t={self.time:.6f}, #{self.sequence}, {name}, {state})"


class EventQueue:
    """Min-heap of :class:`Event` objects keyed by ``(time, sequence)``."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._live = 0
        #: Cancelled events still physically present in the heap.
        self._stale = 0

    def push(self, time: float, callback: Callable[..., Any],
             args: tuple = ()) -> Event:
        """Insert a new event and return it (for later cancellation)."""
        event = Event(time, next(self._counter), callback, args)
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def push_many(self, items: "list[tuple[float, Callable[..., Any], tuple]]"
                  ) -> "list[Event]":
        """Insert a batch of ``(time, callback, args)`` entries.

        Sequence numbers are assigned in iteration order, so the batch is
        indistinguishable from the equivalent sequence of :meth:`push`
        calls — same events, same FIFO ties, same pop order.
        """
        heappush = heapq.heappush
        heap = self._heap
        counter = self._counter
        events = []
        for time, callback, args in items:
            event = Event(time, next(counter), callback, args)
            heappush(heap, event)
            events.append(event)
        self._live += len(events)
        return events

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or ``None`` if empty.

        Cancelled events are discarded silently.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                self._stale -= 1
                continue
            self._live -= 1
            return event
        return None

    def peek_time(self) -> Optional[float]:
        """Return the time of the earliest live event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
            self._stale -= 1
        if not self._heap:
            return None
        return self._heap[0].time

    def note_cancelled(self) -> None:
        """Bookkeeping hook: an event in the heap was cancelled externally."""
        self._live -= 1
        self._stale += 1
        if (self._stale > len(self._heap) // 2
                and len(self._heap) > _COMPACT_MIN_SIZE):
            self.compact()

    def compact(self) -> None:
        """Rebuild the heap from only the live events.

        Heapify over the surviving ``(time, sequence)`` keys preserves
        pop order exactly — sequence numbers are assigned at push time
        and never reused — so compaction is invisible to callers.

        The rebuild mutates the heap list *in place* (slice assignment,
        not rebinding): the kernel's drain loop holds a local reference
        to this list across callbacks, and a callback that cancels enough
        events to trigger compaction must not strand that reference on a
        dead copy.
        """
        self._heap[:] = [event for event in self._heap
                         if not event.cancelled]
        heapq.heapify(self._heap)
        self._stale = 0

    @property
    def heap_size(self) -> int:
        """Physical heap length, including stale cancelled entries."""
        return len(self._heap)

    def __len__(self) -> int:
        return max(self._live, 0)

    def __bool__(self) -> bool:
        return self.peek_time() is not None
