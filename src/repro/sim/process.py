"""A single-core CPU executing a queue of sequential tasks.

The browser engines model a smartphone's application processor: one task
runs at a time, tasks queue FIFO, and observers are told when the CPU goes
busy/idle so the power meter can account for compute energy.  Task
durations are already scaled for device speed by the cost model
(:mod:`repro.browser.costs`), so the process itself is device-agnostic.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, List, Optional

from repro.sim.kernel import Simulator
from repro.units import require_non_negative


@dataclass
class CpuTask:
    """One unit of sequential computation.

    ``on_done`` runs when the task finishes (still at simulated time);
    ``category`` is free-form and used by the engines to attribute time to
    data-transmission vs layout computation.
    """

    name: str
    duration: float
    category: str = "generic"
    on_done: Optional[Callable[[], Any]] = None
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        require_non_negative("duration", self.duration)


@dataclass
class _BusyInterval:
    start: float
    end: float
    category: str
    name: str


class CpuProcess:
    """FIFO single-core task executor on top of the simulation kernel."""

    def __init__(self, sim: Simulator,
                 on_busy_change: Optional[Callable[[bool], None]] = None):
        self._sim = sim
        self._pending: Deque[CpuTask] = deque()
        self._current: Optional[CpuTask] = None
        self._on_busy_change = on_busy_change
        self._busy_since: Optional[float] = None
        self.intervals: List[_BusyInterval] = []
        self.time_by_category: dict = {}

    # ------------------------------------------------------------------
    @property
    def busy(self) -> bool:
        """True while a task is executing."""
        return self._current is not None

    @property
    def queued(self) -> int:
        """Number of tasks waiting behind the current one."""
        return len(self._pending)

    def submit(self, task: CpuTask) -> None:
        """Enqueue a task; starts immediately if the CPU is idle."""
        self._pending.append(task)
        if not self.busy:
            self._start_next()

    def submit_all(self, tasks) -> None:
        """Enqueue several tasks in order."""
        for task in tasks:
            self.submit(task)

    # ------------------------------------------------------------------
    def _start_next(self) -> None:
        if self.busy or not self._pending:
            return
        task = self._pending.popleft()
        self._current = task
        if self._busy_since is None:
            self._busy_since = self._sim.now
            if self._on_busy_change is not None:
                self._on_busy_change(True)
        self._sim.schedule(task.duration, self._finish, task)

    def _finish(self, task: CpuTask) -> None:
        start = self._sim.now - task.duration
        self.intervals.append(
            _BusyInterval(start, self._sim.now, task.category, task.name))
        self.time_by_category[task.category] = (
            self.time_by_category.get(task.category, 0.0) + task.duration)
        self._current = None
        if task.on_done is not None:
            # on_done may submit follow-up tasks, which restarts the CPU
            # synchronously; re-check busy afterwards.
            task.on_done()
        if not self.busy:
            if self._pending:
                self._start_next()
            elif self._busy_since is not None:
                self._busy_since = None
                if self._on_busy_change is not None:
                    self._on_busy_change(False)

    # ------------------------------------------------------------------
    def busy_time(self, category: Optional[str] = None) -> float:
        """Total executed seconds, optionally restricted to a category."""
        if category is None:
            return sum(self.time_by_category.values())
        return self.time_by_category.get(category, 0.0)
