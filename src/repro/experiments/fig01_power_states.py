"""Fig. 1 — power level of the 3G radio interface across RRC states.

The paper drives the radio through IDLE → (promotion) → DCH with a
transmission → DCH tail → FACH → IDLE while sampling power at 4 Hz.  We
script the same scenario: idle for a while, send a small burst, then let
the timers demote the radio, and report the sampled mean power per state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.tables import format_table
from repro.core.config import ExperimentConfig
from repro.core.session import Handset
from repro.measurement.sampler import PowerTrace
from repro.units import kb

#: The paper's Table 5 values, for the report's paper-vs-measured column.
PAPER_POWER = {"IDLE": 0.15, "FACH": 0.63, "DCH": 1.25}


@dataclass
class Fig01Result:
    trace: PowerTrace
    mean_power_by_state: Dict[str, float]
    timeline: List[str]

    def report(self) -> str:
        rows = [(state, PAPER_POWER.get(state, float("nan")),
                 round(self.mean_power_by_state.get(state, 0.0), 3))
                for state in ("IDLE", "FACH", "DCH")]
        table = format_table(
            ("state", "paper W", "measured W"), rows,
            title="Fig. 1: power level per RRC state (4 Hz samples)")
        return table + "\n" + "\n".join(self.timeline)


def run(config: Optional[ExperimentConfig] = None,
        idle_lead: float = 5.0, payload_kb: float = 30.0) -> Fig01Result:
    """Drive the scripted state tour and sample the power trace."""
    handset = Handset(config)
    sim = handset.sim

    done: List[float] = []
    sim.schedule(idle_lead, lambda: handset.link.fetch(
        kb(payload_kb), lambda t: done.append(t.completed_at),
        label="fig1-burst"))
    sim.run()
    # Let the timers fully demote (T1 + T2 after the transfer).
    tail = handset.config.rrc.tail_time + 2.0
    sim.run(until=sim.now + tail)
    handset.machine.finalize()

    trace = handset.sampler.trace()
    by_state: Dict[str, List[float]] = {}
    for sample in trace.samples:
        if sample.mode.value.startswith("promo"):
            # Promotion signalling bursts are spikes, not a dwell state;
            # Fig. 1 labels the steady levels.
            continue
        by_state.setdefault(sample.mode.state.value, []).append(sample.watts)
    mean_by_state = {state: sum(watts) / len(watts)
                     for state, watts in by_state.items()}

    timeline = [
        f"  t={segment.start:7.2f}s .. {segment.end:7.2f}s  "
        f"{segment.mode.value}"
        for segment in handset.machine.segments]
    if not done:
        raise RuntimeError("the scripted transfer never completed")
    return Fig01Result(trace=trace, mean_power_by_state=mean_by_state,
                       timeline=timeline)
