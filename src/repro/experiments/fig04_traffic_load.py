"""Fig. 4 — traffic load of web browsing vs a bulk socket download.

The paper opens ``espn.go.com/sports`` (760 KB) with the stock browser
and watches the data trickle in across the whole ~47 s load, then
downloads the same byte count over a plain socket in ~8 s.  We replay
both on the simulator and report the KB-per-0.5 s series plus summary
durations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.browser.original import OriginalEngine
from repro.core.config import ExperimentConfig
from repro.core.session import Handset, load_page
from repro.network.traffic import TrafficSample, bucket_traffic
from repro.webpages.corpus import find_page


@dataclass
class Fig04Result:
    browsing_series: List[TrafficSample]
    bulk_series: List[TrafficSample]
    browsing_duration: float
    bulk_duration: float
    total_kb: float

    def report(self) -> str:
        lines = [
            "Fig. 4: traffic load, browsing vs bulk socket download",
            f"  page bytes: {self.total_kb:.0f} KB "
            f"(paper: 760 KB espn.go.com/sports)",
            f"  browsing: all data in {self.browsing_duration:.1f} s "
            f"(paper: ~47 s)",
            f"  bulk socket: same bytes in {self.bulk_duration:.1f} s "
            f"(paper: ~8 s)",
            f"  slowdown factor: "
            f"{self.browsing_duration / self.bulk_duration:.1f}x "
            f"(paper: ~5.9x)",
            "  browsing KB per 0.5 s bucket:",
        ]
        chunks = [f"{s.kilobytes:5.1f}" for s in self.browsing_series]
        for start in range(0, len(chunks), 16):
            lines.append("    " + " ".join(chunks[start:start + 16]))
        return "\n".join(lines)


def run(config: Optional[ExperimentConfig] = None,
        page_name: str = "espn.go.com/sports") -> Fig04Result:
    """Measure browsing traffic spread and the bulk-download reference."""
    page = find_page(page_name)

    browse = load_page(page, OriginalEngine, config=config)
    transfers = browse.load.transfers
    first_byte = min(t.started_at for t in transfers)
    last_byte = max(t.completed_at for t in transfers)
    browsing_series = bucket_traffic(transfers)

    bulk_handset = Handset(config)
    done: List[float] = []
    bulk_handset.link.fetch(page.total_bytes,
                            lambda t: done.append(t.duration),
                            label="bulk-socket")
    bulk_handset.sim.run()
    bulk_series = bucket_traffic(bulk_handset.link.transfers)

    return Fig04Result(
        browsing_series=browsing_series,
        bulk_series=bulk_series,
        browsing_duration=last_byte - first_byte,
        bulk_duration=done[0],
        total_kb=page.total_kb,
    )
