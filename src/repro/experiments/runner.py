"""Run every reproduced table and figure and render the full record.

``python -m repro.experiments.runner`` prints each experiment's report;
the same entry points drive the pytest-benchmark harness under
``benchmarks/``.  ``--parallel N`` delegates to the process-pool runner
in :mod:`repro.runtime.parallel` (the ``repro experiments`` subcommand
exposes the full option set: caching, report export, seeding).
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.experiments import (
    fig01_power_states,
    fig03_intuitive_switching,
    fig04_traffic_load,
    fig07_reading_cdf,
    fig08_transmission_time,
    fig09_power_trace,
    fig10_power_consumption,
    fig11_capacity,
    fig12_13_display_snapshots,
    fig14_display_time,
    fig15_prediction_accuracy,
    fig16_six_cases,
    table04_correlation,
    table05_state_power,
    table07_prediction_cost,
)

#: (experiment id, title, zero-argument runner) for the whole evaluation.
ALL_EXPERIMENTS: Tuple[Tuple[str, str, Callable], ...] = (
    ("fig01", "Power level per RRC state", fig01_power_states.run),
    ("fig03", "Intuitive immediate-IDLE switching",
     fig03_intuitive_switching.run),
    ("fig04", "Traffic load: browsing vs bulk", fig04_traffic_load.run),
    ("fig07", "Reading-time CDF", fig07_reading_cdf.run),
    ("fig08", "Data transmission time", fig08_transmission_time.run),
    ("fig09", "Power trace, espn sports", fig09_power_trace.run),
    ("fig10", "Energy with 20 s reading", fig10_power_consumption.run),
    ("fig11", "Network capacity", fig11_capacity.run),
    ("fig12_13", "Display snapshots timing",
     fig12_13_display_snapshots.run),
    ("fig14", "Average screen display time", fig14_display_time.run),
    ("fig15", "Prediction accuracy", fig15_prediction_accuracy.run),
    ("fig16", "Six switching policies", fig16_six_cases.run),
    ("table04", "Feature/reading-time correlation",
     table04_correlation.run),
    ("table05", "Power per state", table05_state_power.run),
    ("table07", "Prediction cost", table07_prediction_cost.run),
)


@dataclass
class SuiteRun:
    reports: Dict[str, str]

    def render(self) -> str:
        blocks: List[str] = []
        for experiment_id, title, _ in ALL_EXPERIMENTS:
            if experiment_id not in self.reports:
                continue
            blocks.append(f"== {experiment_id}: {title} ==")
            blocks.append(self.reports[experiment_id])
            blocks.append("")
        return "\n".join(blocks)


def run_all(only: Tuple[str, ...] = ()) -> SuiteRun:
    """Execute all (or selected) experiments; returns rendered reports."""
    reports: Dict[str, str] = {}
    for experiment_id, _, runner in ALL_EXPERIMENTS:
        if only and experiment_id not in only:
            continue
        reports[experiment_id] = runner().report()
    return SuiteRun(reports=reports)


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments.runner",
        description="regenerate the paper's tables and figures")
    parser.add_argument("ids", nargs="*",
                        help="experiment ids (default: all)")
    parser.add_argument("--parallel", type=int, default=1, metavar="N",
                        help="worker processes (default: 1, sequential)")
    parser.add_argument("--stream",
                        action=argparse.BooleanOptionalAction,
                        default=None,
                        help="route capacity sweeps through the "
                             "bounded-memory block pipeline (results "
                             "are identical; default: inherit "
                             "REPRO_STREAM)")
    args = parser.parse_args(argv[1:])
    if args.stream is not None:
        import os

        from repro.stream import STREAM_ENV

        if args.stream:
            os.environ[STREAM_ENV] = "1"
        else:
            os.environ.pop(STREAM_ENV, None)
    only = tuple(args.ids)
    if args.parallel > 1:
        # Imported here: repro.runtime.parallel imports this module.
        from repro.runtime.parallel import run_experiments

        suite = run_experiments(only or None, processes=args.parallel)
        print(suite.render())
        print(suite.render_summary())
        return 0
    suite = run_all(only=only)
    for experiment_id, title, _ in ALL_EXPERIMENTS:
        if experiment_id in suite.reports:
            print(f"== {experiment_id}: {title} ==")
            print(suite.reports[experiment_id])
            print()
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
