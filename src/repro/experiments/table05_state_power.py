"""Table 5 — device power per radio state.

Measured (not just configured): each state is *reached* on a simulated
handset — IDLE at rest, FACH via channel release, DCH via an armed tail,
DCH-with-transmission via a long transfer, and a fully busy CPU at IDLE
— and the sampler's mean power over the dwell is reported against the
paper's bench-supply measurements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.analysis.tables import format_table
from repro.core.config import ExperimentConfig
from repro.core.session import Handset
from repro.sim.process import CpuTask
from repro.units import kb

PAPER = {
    "IDLE state": 0.15,
    "FACH state": 0.63,
    "DCH state without transmission": 1.15,
    "DCH state with transmission": 1.25,
    "Fully running CPU (IDLE state)": 0.60,
}


@dataclass
class Table05Result:
    measured: Dict[str, float]

    def report(self) -> str:
        rows = [(label, PAPER[label], round(self.measured[label], 3))
                for label in PAPER]
        return format_table(("state", "paper W", "measured W"), rows,
                            title="Table 5: power per state (display and "
                                  "system power included)")


def _mean_power(config: Optional[ExperimentConfig], prepare,
                start: float, end: float) -> float:
    """Build a handset, run ``prepare`` on it, and average power over
    [start, end)."""
    handset = Handset(config)
    prepare(handset)
    handset.sim.run(until=end + 1.0)
    return handset.accountant.mean_power(start, end)


def run(config: Optional[ExperimentConfig] = None) -> Table05Result:
    """Measure each Table-5 row on a scripted handset."""
    measured: Dict[str, float] = {}

    # IDLE: a handset doing nothing.
    measured["IDLE state"] = _mean_power(
        config, lambda handset: None, 0.0, 10.0)

    # DCH with transmission: a long transfer; measure mid-stream.
    def long_transfer(handset: Handset) -> None:
        handset.link.fetch(kb(2000), lambda t: None, label="stream")

    measured["DCH state with transmission"] = _mean_power(
        config, long_transfer, 5.0, 15.0)

    # DCH without transmission: after a short transfer, inside T1.
    def short_transfer(handset: Handset) -> None:
        handset.link.fetch(kb(1), lambda t: None, label="ping")

    handset = Handset(config)
    short_transfer(handset)
    handset.sim.run()  # transfer + full tail
    segments = handset.machine.segments
    dch_tail = next(s for s in segments if s.mode.value == "dch")
    measured["DCH state without transmission"] = \
        handset.accountant.mean_power(dch_tail.start, dch_tail.end)

    # FACH: same run, the T2 dwell.
    fach = next(s for s in segments if s.mode.value == "fach")
    measured["FACH state"] = handset.accountant.mean_power(
        fach.start, fach.end)

    # Fully running CPU at IDLE: a long compute task, radio untouched.
    def busy_cpu(handset: Handset) -> None:
        handset.cpu.submit(CpuTask(name="spin", duration=10.0,
                                   category="layout"))

    measured["Fully running CPU (IDLE state)"] = _mean_power(
        config, busy_cpu, 0.0, 10.0)

    return Table05Result(measured=measured)
