"""One module per table and figure of the paper's evaluation.

Every module exposes ``run(...)`` returning a result object with the
measured series/rows plus a ``report()`` string that prints the same
rows the paper plots, alongside the paper's own numbers for comparison.
``repro.experiments.runner`` executes the whole suite and renders the
paper-vs-measured record used in EXPERIMENTS.md.
"""

from repro.experiments.runner import ALL_EXPERIMENTS, run_all

__all__ = ["ALL_EXPERIMENTS", "run_all"]
