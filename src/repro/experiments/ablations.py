"""Ablation studies for the design choices DESIGN.md calls out.

Five studies, none of which appear as figures in the paper but each of
which tests one of its design arguments:

- :func:`reorganisation_ablation` — decompose the energy-aware browser's
  saving into its two mechanisms: grouping the transmissions (the
  computation reorganisation itself) and releasing the channels at the
  last byte (Section 4.1's radio action).
- :func:`timer_ablation` — Section 1's claim that "simply adjusting the
  timer may not be a good solution": sweep T1/T2 under the *stock*
  browser and watch energy fall while the next click's promotion penalty
  rises.
- :func:`predictor_ablation` — Section 5.1.3's claim that linear models
  cannot predict reading time, plus the M (boosting rounds) sweep behind
  Section 5.6.3's overfitting remark.
- :func:`interest_threshold_ablation` — Section 4.3.4's α: sweep the
  interest threshold and watch the accuracy/coverage trade-off.
- :func:`carrier_ablation` — robustness: the savings are not an artefact
  of T-Mobile's particular T1/T2 values.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional

import numpy as np

from repro.analysis.tables import format_table
from repro.browser.config import BrowserConfig
from repro.browser.energy_aware import EnergyAwareEngine
from repro.browser.original import OriginalEngine
from repro.core.comparison import mean
from repro.core.config import ExperimentConfig
from repro.core.session import browse_and_read
from repro.ml.linear import LinearRegressor
from repro.ml.metrics import threshold_accuracy
from repro.ml.validation import train_test_split
from repro.prediction.predictor import ReadingTimePredictor
from repro.rrc.config import RrcConfig
from repro.rrc.tail import promotion_latency, tail_state_after_tx
from repro.traces.generator import TraceConfig, generate_trace
from repro.webpages.corpus import benchmark_pages


# ----------------------------------------------------------------------
# 1. Which mechanism saves what?
# ----------------------------------------------------------------------
@dataclass
class ReorganisationRow:
    variant: str
    tx_time: float
    load_time: float
    loading_energy: float


@dataclass
class ReorganisationAblation:
    rows: List[ReorganisationRow]

    def row(self, variant: str) -> ReorganisationRow:
        for row in self.rows:
            if row.variant == variant:
                return row
        raise KeyError(variant)

    def report(self) -> str:
        table_rows = [(row.variant, round(row.tx_time, 1),
                       round(row.load_time, 1),
                       round(row.loading_energy, 1))
                      for row in self.rows]
        return format_table(
            ("variant", "tx s", "load s", "load energy J"), table_rows,
            title="Ablation: reorganisation vs channel release "
                  "(full benchmark averages)")


def reorganisation_ablation(config: Optional[ExperimentConfig] = None
                            ) -> ReorganisationAblation:
    """Original vs reorganisation-only vs full energy-aware browser.

    Delegates to the declarative registry port
    (:mod:`repro.ablation.legacy`); ``_reference_reorganisation_ablation``
    keeps the original implementation for the golden equivalence test.
    """
    from repro.ablation.legacy import run_legacy

    return run_legacy("reorganisation", config=config)


def _reference_reorganisation_ablation(
        config: Optional[ExperimentConfig] = None) -> ReorganisationAblation:
    """Original vs reorganisation-only vs full energy-aware browser."""
    base = config or ExperimentConfig()
    variants = (
        ("original", OriginalEngine, base),
        ("reorganised, no release", EnergyAwareEngine,
         replace(base, browser=BrowserConfig(dormancy_after_tx=False))),
        ("reorganised, no intermediate display", EnergyAwareEngine,
         replace(base, browser=BrowserConfig(intermediate_display=False))),
        ("energy-aware (full)", EnergyAwareEngine, base),
    )
    rows: List[ReorganisationRow] = []
    pages = benchmark_pages(mobile=False)
    for name, engine_cls, variant_config in variants:
        sessions = [browse_and_read(page, engine_cls, reading_time=0.0,
                                    config=variant_config)
                    for page in pages]
        rows.append(ReorganisationRow(
            variant=name,
            tx_time=mean([s.load.data_transmission_time
                          for s in sessions]),
            load_time=mean([s.load.load_complete_time for s in sessions]),
            loading_energy=mean([s.loading_energy.total
                                 for s in sessions])))
    return ReorganisationAblation(rows=rows)


# ----------------------------------------------------------------------
# 2. Why not just shorten the timers?
# ----------------------------------------------------------------------
@dataclass
class TimerRow:
    t1: float
    t2: float
    total_energy: float
    next_click_delay: float


@dataclass
class TimerAblation:
    rows: List[TimerRow]
    reading_time: float

    def report(self) -> str:
        table_rows = [(row.t1, row.t2, round(row.total_energy, 1),
                       round(row.next_click_delay, 2))
                      for row in self.rows]
        return format_table(
            ("T1 s", "T2 s", "energy J", "next-click promo s"),
            table_rows,
            title=f"Ablation: RRC timer tuning under the stock browser "
                  f"({self.reading_time:.0f} s reading)") + (
            "\n  the paper's point: cutting timers trades energy against "
            "promotion delay on every short read")


def timer_ablation(reading_time: float = 10.0,
                   page_name: str = "www.motors.ebay.com") -> TimerAblation:
    """Sweep T1/T2 under the stock browser on one full-version page."""
    from repro.ablation.legacy import run_legacy

    return run_legacy("timers", reading_time=reading_time,
                      page_name=page_name)


def _reference_timer_ablation(reading_time: float = 10.0,
                              page_name: str = "www.motors.ebay.com"
                              ) -> TimerAblation:
    """Reference implementation kept for the golden equivalence test."""
    from repro.webpages.corpus import find_page
    page = find_page(page_name)
    rows: List[TimerRow] = []
    for t1, t2 in ((1.0, 5.0), (2.0, 10.0), (4.0, 15.0), (8.0, 15.0)):
        rrc = RrcConfig(t1=t1, t2=t2)
        config = replace(ExperimentConfig(), rrc=rrc)
        session = browse_and_read(page, OriginalEngine, reading_time,
                                  config=config)
        last_byte = max(t.completed_at for t in session.load.transfers)
        load_end = (session.load.started_at
                    + session.load.load_complete_time)
        offset = load_end - last_byte + reading_time
        state = tail_state_after_tx(offset, rrc)
        rows.append(TimerRow(
            t1=t1, t2=t2,
            total_energy=session.total_energy,
            next_click_delay=promotion_latency(state, rrc)))
    return TimerAblation(rows=rows, reading_time=reading_time)


# ----------------------------------------------------------------------
# 3. Trees vs linear; how many boosting rounds?
# ----------------------------------------------------------------------
@dataclass
class PredictorRow:
    model: str
    accuracy_tp: float
    accuracy_td: float


@dataclass
class PredictorAblation:
    rows: List[PredictorRow]

    def accuracy(self, model: str, threshold: float) -> float:
        for row in self.rows:
            if row.model == model:
                return (row.accuracy_tp if threshold == 9.0
                        else row.accuracy_td)
        raise KeyError(model)

    def report(self) -> str:
        table_rows = [(row.model, f"{100 * row.accuracy_tp:.1f}%",
                       f"{100 * row.accuracy_td:.1f}%")
                      for row in self.rows]
        return format_table(
            ("model", "acc Tp=9", "acc Td=20"), table_rows,
            title="Ablation: predictor family and capacity "
                  "(trained/evaluated above the interest threshold)")


def predictor_ablation(trace_config: Optional[TraceConfig] = None,
                       split_seed: int = 7) -> PredictorAblation:
    """Linear baseline vs GBRT at several boosting budgets."""
    from repro.ablation.legacy import run_legacy

    return run_legacy("predictor", trace_config=trace_config,
                      split_seed=split_seed)


def _reference_predictor_ablation(
        trace_config: Optional[TraceConfig] = None,
        split_seed: int = 7) -> PredictorAblation:
    """Reference implementation kept for the golden equivalence test."""
    dataset = generate_trace(trace_config).filter_reading_time() \
        .exclude_quick_bounces(2.0)
    x, y = dataset.to_arrays()
    x_train, x_test, y_train, y_test = train_test_split(
        x, y, test_fraction=0.3, random_state=split_seed)

    rows: List[PredictorRow] = []

    linear = LinearRegressor().fit(x_train, np.log1p(y_train))
    linear_pred = np.expm1(linear.predict(x_test))
    rows.append(PredictorRow(
        model="linear (ridge)",
        accuracy_tp=threshold_accuracy(y_test, linear_pred, 9.0),
        accuracy_td=threshold_accuracy(y_test, linear_pred, 20.0)))

    for n_estimators in (25, 100, 300):
        predictor = ReadingTimePredictor(
            n_estimators=n_estimators, interest_threshold=None)
        predictor.fit_arrays(x_train, y_train)
        predicted = predictor.predict(x_test)
        rows.append(PredictorRow(
            model=f"GBRT M={n_estimators}",
            accuracy_tp=threshold_accuracy(y_test, predicted, 9.0),
            accuracy_td=threshold_accuracy(y_test, predicted, 20.0)))
    return PredictorAblation(rows=rows)


# ----------------------------------------------------------------------
# 4. The interest threshold α
# ----------------------------------------------------------------------
@dataclass
class AlphaRow:
    alpha: float
    accuracy_tp: float
    #: Fraction of pageviews the predictor is ever consulted for.
    coverage: float


@dataclass
class AlphaAblation:
    rows: List[AlphaRow]

    def report(self) -> str:
        table_rows = [(row.alpha, f"{100 * row.accuracy_tp:.1f}%",
                       f"{100 * row.coverage:.1f}%")
                      for row in self.rows]
        return format_table(
            ("alpha s", "acc Tp=9", "coverage"), table_rows,
            title="Ablation: interest threshold "
                  "(accuracy up, coverage down)") + (
            "\n  the paper picks alpha = 2 s: 30% of visits filtered "
            "for ~10% accuracy")


def interest_threshold_ablation(trace_config: Optional[TraceConfig] = None,
                                split_seed: int = 7) -> AlphaAblation:
    """Sweep α and measure the accuracy/coverage trade-off."""
    from repro.ablation.legacy import run_legacy

    return run_legacy("alpha", trace_config=trace_config,
                      split_seed=split_seed)


def _reference_interest_threshold_ablation(
        trace_config: Optional[TraceConfig] = None,
        split_seed: int = 7) -> AlphaAblation:
    """Reference implementation kept for the golden equivalence test."""
    dataset = generate_trace(trace_config).filter_reading_time()
    total = len(dataset)
    rows: List[AlphaRow] = []
    for alpha in (0.0, 1.0, 2.0, 4.0, 8.0):
        kept = dataset.exclude_quick_bounces(alpha) if alpha > 0 \
            else dataset
        x, y = kept.to_arrays()
        x_train, x_test, y_train, y_test = train_test_split(
            x, y, test_fraction=0.3, random_state=split_seed)
        predictor = ReadingTimePredictor(n_estimators=150,
                                         interest_threshold=None)
        predictor.fit_arrays(x_train, y_train)
        accuracy = threshold_accuracy(y_test,
                                      predictor.predict(x_test), 9.0)
        rows.append(AlphaRow(alpha=alpha, accuracy_tp=accuracy,
                             coverage=len(kept) / total))
    return AlphaAblation(rows=rows)


# ----------------------------------------------------------------------
# 5. Does the saving survive other carriers' timer settings?
# ----------------------------------------------------------------------
#: RRC inactivity-timer presets seen in the measurement literature
#: (Qian et al. report per-carrier values in this range; the paper's
#: T-Mobile network uses 4 s / 15 s).
CARRIER_PRESETS = (
    ("t-mobile (paper)", 4.0, 15.0),
    ("carrier B", 5.0, 12.0),
    ("aggressive", 2.0, 8.0),
    ("conservative", 6.0, 20.0),
)


@dataclass
class CarrierRow:
    carrier: str
    t1: float
    t2: float
    energy_saving: float


@dataclass
class CarrierAblation:
    rows: List[CarrierRow]
    reading_time: float

    def report(self) -> str:
        table_rows = [(row.carrier, row.t1, row.t2,
                       f"{100 * row.energy_saving:.1f}%")
                      for row in self.rows]
        return format_table(
            ("carrier", "T1 s", "T2 s", "energy saving"), table_rows,
            title=f"Ablation: energy saving across carrier timer "
                  f"presets ({self.reading_time:.0f} s reading)") + (
            "\n  the technique is not a timer artefact: savings persist "
            "under every preset")


def carrier_ablation(reading_time: float = 20.0,
                     page_name: str = "espn.go.com/sports"
                     ) -> CarrierAblation:
    """Energy saving of the full system under different RRC timers."""
    from repro.ablation.legacy import run_legacy

    return run_legacy("carriers", reading_time=reading_time,
                      page_name=page_name)


def _reference_carrier_ablation(reading_time: float = 20.0,
                                page_name: str = "espn.go.com/sports"
                                ) -> CarrierAblation:
    """Reference implementation kept for the golden equivalence test."""
    from repro.core.comparison import compare_engines
    from repro.webpages.corpus import find_page
    page = find_page(page_name)
    rows: List[CarrierRow] = []
    for carrier, t1, t2 in CARRIER_PRESETS:
        config = replace(ExperimentConfig(), rrc=RrcConfig(t1=t1, t2=t2))
        comparison = compare_engines(page, reading_time=reading_time,
                                     config=config)
        rows.append(CarrierRow(carrier=carrier, t1=t1, t2=t2,
                               energy_saving=comparison.energy_saving))
    return CarrierAblation(rows=rows, reading_time=reading_time)


#: Canonical name → zero-argument runner registry, shared by the CLI and
#: the parallel runner (:mod:`repro.runtime.parallel`).
ALL_ABLATIONS = {
    "reorganisation": reorganisation_ablation,
    "timers": timer_ablation,
    "predictor": predictor_ablation,
    "alpha": interest_threshold_ablation,
    "carriers": carrier_ablation,
}
