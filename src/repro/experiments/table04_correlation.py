"""Table 4 — Pearson correlation between reading time and each feature.

The paper's point: no feature correlates linearly with reading time
(every |r| well under 0.1), which is why a linear predictor is hopeless
and trees are needed.  We report r per Table-1 feature on the synthetic
trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.analysis.stats import pearson
from repro.analysis.tables import format_table
from repro.traces.generator import TraceConfig, generate_trace
from repro.traces.records import FEATURE_NAMES

#: The paper's Table 4 row, keyed by our feature names.
PAPER_R = {
    "transmission_time": 0.0009,
    "page_size_kb": 0.059,
    "download_objects": 0.023,
    "download_js_files": 0.042,
    "download_figures": 0.013,
    "figure_size_kb": 0.015,
    "js_running_time": 0.021,
    "second_urls": 0.038,
    "page_height": 0.067,
    "page_width": 0.016,
}


@dataclass
class Table04Result:
    correlations: Dict[str, float]

    @property
    def max_abs(self) -> float:
        return max(abs(value) for value in self.correlations.values())

    def report(self) -> str:
        rows = [(name, PAPER_R[name], round(value, 4))
                for name, value in self.correlations.items()]
        table = format_table(("feature", "paper r", "measured r"), rows,
                             title="Table 4: Pearson correlation with "
                                   "reading time")
        return table + (f"\nmax |r| = {self.max_abs:.3f} "
                        "(paper: no notable correlation, all < 0.07)")


def run(trace_config: Optional[TraceConfig] = None) -> Table04Result:
    """Compute the per-feature correlations on the synthetic trace."""
    dataset = generate_trace(trace_config).filter_reading_time()
    x, y = dataset.to_arrays()
    correlations = {name: pearson(x[:, index], y)
                    for index, name in enumerate(FEATURE_NAMES)}
    return Table04Result(correlations=correlations)
