"""Fig. 16 — power and delay savings of the six Table-6 policies.

Trace-driven comparison of: Original Always-off, Energy-aware
Always-off, Accurate-9 / Predict-9 (power-driven) and Accurate-20 /
Predict-20 (delay-driven), all relative to the stock browser with no
switching.

Paper's shape: Original Always-off saves the least power and *loses*
delay (−1.47 %); Accurate-9 saves the most power (26.1 %); Accurate-20
saves the most delay (13.6 %); each Predict-x lands slightly below its
Accurate-x upper bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.analysis.tables import format_table
from repro.core.config import ExperimentConfig
from repro.core.policy_eval import CaseResult, PolicyEvaluator
from repro.traces.generator import TraceConfig

PAPER = {
    "original-always-off": {"power": 4.0, "delay": -1.47},
    "energy-aware-always-off": {"power": 22.0, "delay": 9.2},
    "accurate-9": {"power": 26.1, "delay": 11.0},
    "predict-9": {"power": 24.0, "delay": 10.5},
    "accurate-20": {"power": 24.0, "delay": 13.6},
    "predict-20": {"power": 23.0, "delay": 12.5},
}


@dataclass
class Fig16Result:
    cases: List[CaseResult]

    def case(self, name: str) -> CaseResult:
        for case in self.cases:
            if case.name == name:
                return case
        raise KeyError(name)

    def report(self) -> str:
        rows = []
        for case in self.cases:
            if case.name == "original":
                continue
            paper = PAPER.get(case.name, {})
            rows.append((
                case.name,
                f"{100 * case.power_saving:.1f}%",
                f"{paper.get('power', float('nan')):.1f}%",
                f"{100 * case.delay_saving:.1f}%",
                f"{paper.get('delay', float('nan')):.1f}%",
                f"{100 * case.switch_rate:.0f}%",
            ))
        return format_table(
            ("case", "power save", "paper", "delay save", "paper",
             "switch rate"),
            rows, title="Fig. 16: six switching policies vs original")


def run(trace_config: Optional[TraceConfig] = None,
        experiment_config: Optional[ExperimentConfig] = None
        ) -> Fig16Result:
    """Evaluate all six policies over the held-out users of the trace."""
    evaluator = PolicyEvaluator(trace_config=trace_config,
                                experiment_config=experiment_config)
    return Fig16Result(cases=evaluator.evaluate())
