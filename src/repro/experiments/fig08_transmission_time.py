"""Fig. 8 — data transmission time, original vs energy-aware.

(a) averages over the mobile-version and full-version benchmarks;
(b) two representative pages, ``m.cnn.com`` and ``www.motors.ebay.com``.

The paper's accounting (Section 5.2): the original browser's data
transmission time *is* its loading time (transmissions spread across the
whole load); the energy-aware browser's loading time decomposes into the
transmission phase plus the layout phase.

Paper numbers: transmission-time saving ≈15 % mobile / ≈27 % full;
total-loading-time saving ≈2.5 % mobile / ≈17 % full; per-page ≈15 %
(m.cnn) and ≈31 % (ebay motors) transmission savings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.tables import format_table
from repro.core.comparison import (
    EngineComparison,
    benchmark_comparison,
    compare_engines,
    mean,
)
from repro.core.config import ExperimentConfig
from repro.webpages.corpus import find_page

PAPER = {
    "mobile": {"tx_saving": 15.0, "loading_saving": 2.5},
    "full": {"tx_saving": 27.0, "loading_saving": 17.0},
    "cnn": {"tx_saving": 15.0, "loading_saving": 2.2},
    "www.motors.ebay.com": {"tx_saving": 31.0, "loading_saving": 20.0},
}


@dataclass
class BarGroup:
    """One bar pair of Fig. 8."""

    label: str
    original_tx: float
    energy_aware_tx: float
    energy_aware_layout: float
    tx_saving: float
    loading_saving: float


@dataclass
class Fig08Result:
    groups: List[BarGroup]
    comparisons: Dict[str, List[EngineComparison]]

    def report(self) -> str:
        rows = []
        for group in self.groups:
            paper = PAPER.get(group.label, {})
            rows.append((
                group.label,
                round(group.original_tx, 1),
                round(group.energy_aware_tx, 1),
                round(group.energy_aware_layout, 1),
                f"{100 * group.tx_saving:.1f}%",
                f"{paper.get('tx_saving', float('nan')):.0f}%",
                f"{100 * group.loading_saving:.1f}%",
                f"{paper.get('loading_saving', float('nan')):.1f}%",
            ))
        return format_table(
            ("benchmark", "orig tx s", "ours tx s", "ours layout s",
             "tx save", "paper", "load save", "paper"),
            rows, title="Fig. 8: data transmission time")


def _group(label: str, comps: List[EngineComparison]) -> BarGroup:
    return BarGroup(
        label=label,
        original_tx=mean([c.original.load.data_transmission_time
                          for c in comps]),
        energy_aware_tx=mean([c.energy_aware.load.data_transmission_time
                              for c in comps]),
        energy_aware_layout=mean([c.energy_aware.load.layout_phase_time
                                  for c in comps]),
        tx_saving=mean([c.tx_time_saving for c in comps]),
        loading_saving=mean([c.loading_time_saving for c in comps]),
    )


def run(config: Optional[ExperimentConfig] = None) -> Fig08Result:
    """Compare engines on both benchmark halves and the two Fig. 8(b)
    pages."""
    comparisons = {
        "mobile": benchmark_comparison(mobile=True, config=config),
        "full": benchmark_comparison(mobile=False, config=config),
        "cnn": [compare_engines(find_page("cnn"), config=config)],
        "www.motors.ebay.com": [
            compare_engines(find_page("www.motors.ebay.com"),
                            config=config)],
    }
    groups = [_group(label, comps)
              for label, comps in comparisons.items()]
    return Fig08Result(groups=groups, comparisons=comparisons)
