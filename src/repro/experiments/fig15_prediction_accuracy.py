"""Fig. 15 — prediction accuracy with and without the interest threshold.

The paper trains GBRT on the collected trace twice: on all data
("without interest threshold") and on the data with sub-α visits
removed ("with"), then reports threshold accuracy at Tp = 9 s and
Td = 20 s.  The interest threshold lifts accuracy by roughly ten
percent — quick bounces are driven by user interest, which no Table-1
feature observes, so they only add noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.analysis.tables import format_table
from repro.ml.metrics import threshold_accuracy
from repro.ml.validation import train_test_split
from repro.prediction.predictor import ReadingTimePredictor
from repro.traces.generator import TraceConfig, generate_trace


@dataclass
class AccuracyPoint:
    threshold: float
    with_interest_threshold: bool
    accuracy: float


@dataclass
class Fig15Result:
    points: List[AccuracyPoint]

    def accuracy(self, threshold: float, with_threshold: bool) -> float:
        for point in self.points:
            if (point.threshold == threshold
                    and point.with_interest_threshold is with_threshold):
                return point.accuracy
        raise KeyError((threshold, with_threshold))

    def improvement(self, threshold: float) -> float:
        """Accuracy gain (percentage points) from the interest
        threshold."""
        return (self.accuracy(threshold, True)
                - self.accuracy(threshold, False))

    def report(self) -> str:
        rows = []
        for threshold in (9.0, 20.0):
            rows.append((
                f"Tp={threshold:.0f}" if threshold == 9.0
                else f"Td={threshold:.0f}",
                f"{100 * self.accuracy(threshold, False):.1f}%",
                f"{100 * self.accuracy(threshold, True):.1f}%",
                f"+{100 * self.improvement(threshold):.1f}pp",
            ))
        return format_table(
            ("threshold", "without α", "with α", "gain"), rows,
            title="Fig. 15: prediction accuracy (paper: α adds ~10%)")


def run(trace_config: Optional[TraceConfig] = None,
        alpha: float = 2.0, test_fraction: float = 0.3,
        split_seed: int = 7) -> Fig15Result:
    """Train/evaluate GBRT with and without the interest threshold."""
    dataset = generate_trace(trace_config).filter_reading_time()
    points: List[AccuracyPoint] = []
    for with_threshold in (False, True):
        data = (dataset.exclude_quick_bounces(alpha) if with_threshold
                else dataset)
        x, y = data.to_arrays()
        x_train, x_test, y_train, y_test = train_test_split(
            x, y, test_fraction=test_fraction, random_state=split_seed)
        predictor = ReadingTimePredictor(interest_threshold=None)
        predictor.fit_arrays(x_train, y_train)
        predicted = predictor.predict(x_test)
        for threshold in (9.0, 20.0):
            points.append(AccuracyPoint(
                threshold=threshold,
                with_interest_threshold=with_threshold,
                accuracy=threshold_accuracy(y_test, predicted, threshold)))
    return Fig15Result(points=points)
