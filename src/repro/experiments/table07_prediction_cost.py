"""Table 7 — computational cost of prediction vs model size.

The paper walks 1 000 / 10 000 / 20 000 decision trees of ~8 nodes each
on the phone and reports execution time and energy (time × the 0.6 W
fully-busy-CPU power).  We time our ``predict_one`` traversal path on
the same model sizes.  Absolute times reflect the host CPU, not an
Android Dev Phone 2; the paper-matching property is *linear scaling* in
the tree count and a per-prediction cost far below the page-load time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.analysis.tables import format_table
from repro.ml.gbrt import GradientBoostedRegressor
from repro.traces.generator import TraceConfig, generate_trace

#: The paper's model sizes and measurements (time s, energy J).
PAPER: Tuple[Tuple[int, float, float], ...] = (
    (1_000, 0.027, 0.016),
    (10_000, 0.295, 0.177),
    (20_000, 0.543, 0.326),
)

#: Fully-running-CPU power (Table 5) used for the energy column.
CPU_POWER = 0.60


@dataclass
class CostRow:
    n_trees: int
    nodes_per_tree: float
    execution_time: float
    energy: float


@dataclass
class Table07Result:
    rows: List[CostRow]

    def report(self) -> str:
        table_rows = []
        for row, (n, paper_time, paper_energy) in zip(self.rows, PAPER):
            table_rows.append((
                row.n_trees, round(row.nodes_per_tree, 1),
                f"{row.execution_time * 1000:.1f} ms",
                f"{paper_time * 1000:.0f} ms",
                f"{row.energy * 1000:.2f} mJ",
                f"{paper_energy * 1000:.0f} mJ"))
        table = format_table(
            ("trees", "nodes/tree", "time", "paper", "energy", "paper"),
            table_rows,
            title="Table 7: prediction cost vs number of decision trees")
        ratio = (self.rows[-1].execution_time
                 / max(self.rows[0].execution_time, 1e-12))
        return table + (f"\nscaling {self.rows[0].n_trees}→"
                        f"{self.rows[-1].n_trees} trees: {ratio:.1f}x "
                        f"(ideal {self.rows[-1].n_trees // self.rows[0].n_trees}x; "
                        "absolute times are host-CPU, not phone)")


def run(trace_config: Optional[TraceConfig] = None,
        repetitions: int = 20,
        train_samples: int = 150) -> Table07Result:
    """Train models of the Table-7 sizes and time single predictions.

    Training data is a small subsample of the trace — Table 7 measures
    *prediction* cost, which depends only on model size.
    """
    dataset = generate_trace(trace_config).filter_reading_time()
    x, y = dataset.to_arrays()
    x, y = x[:train_samples], np.log1p(y[:train_samples])

    rows: List[CostRow] = []
    sizes = [n for n, _, _ in PAPER]
    model = GradientBoostedRegressor(
        n_estimators=max(sizes), max_leaves=4, learning_rate=0.03,
        min_samples_leaf=5, subsample=0.8, random_state=3)
    model.fit(x, y)
    row = x[0]

    for size in sizes:
        truncated = GradientBoostedRegressor(
            n_estimators=size, max_leaves=4, learning_rate=0.03)
        truncated.init_ = model.init_
        truncated.n_features_ = model.n_features_
        truncated.trees_ = model.trees_[:size]

        # More repetitions for small models so timer overhead washes out.
        reps = max(repetitions, int(repetitions * max(sizes) / size))
        start = time.perf_counter()
        for _ in range(reps):
            truncated.predict_one(row)
        elapsed = (time.perf_counter() - start) / reps
        nodes = truncated.total_nodes / size
        rows.append(CostRow(n_trees=size, nodes_per_tree=nodes,
                            execution_time=elapsed,
                            energy=elapsed * CPU_POWER))
    return Table07Result(rows=rows)
