"""Fig. 14 — average screen display times across the benchmarks.

Paper: on full-version pages the energy-aware browser shows its first
(simplified) display 45.5 % earlier and the final display 16.8 %
earlier; on mobile pages it draws no intermediate display, and its final
display lands roughly when the original draws its *intermediate* one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.analysis.tables import format_table
from repro.core.comparison import benchmark_comparison, mean
from repro.core.config import ExperimentConfig

PAPER = {"full": {"first_saving": 45.5, "final_saving": 16.8}}


@dataclass
class DisplayRow:
    label: str
    original_first: float
    original_final: float
    ours_first: Optional[float]
    ours_final: float
    first_saving: Optional[float]
    final_saving: float


@dataclass
class Fig14Result:
    rows: List[DisplayRow]

    def report(self) -> str:
        table_rows = []
        for row in self.rows:
            paper = PAPER.get(row.label, {})
            table_rows.append((
                row.label,
                round(row.original_first, 1),
                round(row.original_final, 1),
                "-" if row.ours_first is None else round(row.ours_first, 1),
                round(row.ours_final, 1),
                "-" if row.first_saving is None
                else f"{100 * row.first_saving:.1f}%",
                f"{paper.get('first_saving', float('nan')):.1f}%",
                f"{100 * row.final_saving:.1f}%",
                f"{paper.get('final_saving', float('nan')):.1f}%",
            ))
        note = ("\nmobile: our engine draws no intermediate display; its "
                "final display should land near the original's "
                "intermediate one (paper's observation)")
        return format_table(
            ("benchmark", "orig first", "orig final", "ours first",
             "ours final", "first save", "paper", "final save", "paper"),
            table_rows, title="Fig. 14: average screen display time"
        ) + note


def run(config: Optional[ExperimentConfig] = None) -> Fig14Result:
    """Average display times over both benchmark halves."""
    rows: List[DisplayRow] = []
    for mobile, label in ((True, "mobile"), (False, "full")):
        comps = benchmark_comparison(mobile=mobile, config=config)
        original_first = mean(
            [c.original.load.first_display_time for c in comps
             if c.original.load.first_display_time is not None])
        original_final = mean([c.original.load.final_display_time
                               for c in comps])
        ours_final = mean([c.energy_aware.load.final_display_time
                           for c in comps])
        ours_firsts = [c.energy_aware.load.first_display_time
                       for c in comps]
        if any(value is None for value in ours_firsts):
            ours_first = None
            first_saving = None
        else:
            ours_first = mean(ours_firsts)
            first_saving = 1.0 - ours_first / original_first
        rows.append(DisplayRow(
            label=label,
            original_first=original_first,
            original_final=original_final,
            ours_first=ours_first,
            ours_final=ours_final,
            first_saving=first_saving,
            final_saving=1.0 - ours_final / original_final,
        ))
    return Fig14Result(rows=rows)
