"""Figs. 12 & 13 — intermediate and final display times on the espn page.

The paper's screenshots carry timing annotations: the original browser
draws its first (intermediate) display at 17.6 s and the final at
34.5 s; the energy-aware browser draws a simplified intermediate at
7 s (10.6 s earlier) and the same final layout at 28.6 s (5.9 s
earlier).  We reproduce the timings (the screenshots themselves are
photographs of a phone).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.tables import format_table
from repro.browser.energy_aware import EnergyAwareEngine
from repro.browser.original import OriginalEngine
from repro.core.config import ExperimentConfig
from repro.core.session import load_page
from repro.webpages.corpus import find_page

PAPER = {"original": (17.6, 34.5), "energy-aware": (7.0, 28.6)}


@dataclass
class Fig1213Result:
    original_first: float
    original_final: float
    energy_aware_first: float
    energy_aware_final: float

    @property
    def first_display_lead(self) -> float:
        """How much earlier our intermediate display appears (paper:
        10.6 s)."""
        return self.original_first - self.energy_aware_first

    @property
    def final_display_lead(self) -> float:
        """How much earlier our final display appears (paper: 5.9 s)."""
        return self.original_final - self.energy_aware_final

    def report(self) -> str:
        rows = [
            ("original", round(self.original_first, 1), PAPER["original"][0],
             round(self.original_final, 1), PAPER["original"][1]),
            ("energy-aware", round(self.energy_aware_first, 1),
             PAPER["energy-aware"][0], round(self.energy_aware_final, 1),
             PAPER["energy-aware"][1]),
        ]
        table = format_table(
            ("engine", "first s", "paper", "final s", "paper"), rows,
            title="Figs. 12-13: espn.go.com/sports display times")
        return (table
                + f"\nintermediate lead: {self.first_display_lead:.1f} s "
                  f"(paper 10.6 s); final lead: "
                  f"{self.final_display_lead:.1f} s (paper 5.9 s)")


def run(config: Optional[ExperimentConfig] = None,
        page_name: str = "espn.go.com/sports") -> Fig1213Result:
    """Measure display times for both engines on the espn page."""
    page = find_page(page_name)
    original = load_page(page, OriginalEngine, config=config).load
    ours = load_page(page, EnergyAwareEngine, config=config).load
    if original.first_display_time is None:
        raise RuntimeError("original engine drew no intermediate display")
    if ours.first_display_time is None:
        raise RuntimeError("energy-aware engine drew no intermediate "
                           "display on a full-version page")
    return Fig1213Result(
        original_first=original.first_display_time,
        original_final=original.final_display_time,
        energy_aware_first=ours.first_display_time,
        energy_aware_final=ours.final_display_time,
    )
