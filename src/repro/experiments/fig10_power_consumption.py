"""Fig. 10 — energy for opening a page plus 20 s of reading.

(a) benchmark averages; (b) ``m.cnn.com`` and ``espn.go.com/sports``.
The paper stacks "opening the webpage" and "20 seconds reading time"
energies; the energy-aware approach saves 35.7 % (mobile benchmark),
30.8 % (full benchmark), 35.5 % (m.cnn) and 43.6 % (espn).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.tables import format_table
from repro.core.comparison import (
    EngineComparison,
    benchmark_comparison,
    compare_engines,
    mean,
)
from repro.core.config import ExperimentConfig
from repro.webpages.corpus import find_page

PAPER_SAVINGS = {"mobile": 35.7, "full": 30.8, "cnn": 35.5,
                 "espn.go.com/sports": 43.6}

#: Reading period the paper assumes in this figure.
READING_TIME = 20.0


@dataclass
class EnergyBar:
    label: str
    original_open: float
    original_read: float
    energy_aware_open: float
    energy_aware_read: float
    saving: float


@dataclass
class Fig10Result:
    bars: List[EnergyBar]
    comparisons: Dict[str, List[EngineComparison]]

    def report(self) -> str:
        rows = [(bar.label,
                 round(bar.original_open, 1), round(bar.original_read, 1),
                 round(bar.energy_aware_open, 1),
                 round(bar.energy_aware_read, 1),
                 f"{100 * bar.saving:.1f}%",
                 f"{PAPER_SAVINGS.get(bar.label, float('nan')):.1f}%")
                for bar in self.bars]
        return format_table(
            ("benchmark", "orig open J", "orig read J", "ours open J",
             "ours read J", "saving", "paper"),
            rows,
            title=f"Fig. 10: energy for load + {READING_TIME:.0f}s reading")


def _bar(label: str, comps: List[EngineComparison]) -> EnergyBar:
    return EnergyBar(
        label=label,
        original_open=mean([c.original.loading_energy.total
                            for c in comps]),
        original_read=mean([c.original.reading_energy.total
                            for c in comps]),
        energy_aware_open=mean([c.energy_aware.loading_energy.total
                                for c in comps]),
        energy_aware_read=mean([c.energy_aware.reading_energy.total
                                for c in comps]),
        saving=mean([c.energy_saving for c in comps]),
    )


def run(config: Optional[ExperimentConfig] = None) -> Fig10Result:
    """Measure load+reading energy across the benchmark and two pages."""
    comparisons = {
        "mobile": benchmark_comparison(mobile=True,
                                       reading_time=READING_TIME,
                                       config=config),
        "full": benchmark_comparison(mobile=False,
                                     reading_time=READING_TIME,
                                     config=config),
        "cnn": [compare_engines(find_page("cnn"),
                                reading_time=READING_TIME, config=config)],
        "espn.go.com/sports": [
            compare_engines(find_page("espn.go.com/sports"),
                            reading_time=READING_TIME, config=config)],
    }
    bars = [_bar(label, comps) for label, comps in comparisons.items()]
    return Fig10Result(bars=bars, comparisons=comparisons)
