"""Fig. 11 — network capacity gain from shorter transmission times.

The paper feeds the measured per-page data transmission times into an
M/G/200 loss-system simulation (Poisson per-user sessions, λ = 25 s) and
asks how many users each browser supports at the same session-dropping
probability.  Shorter transmissions (energy-aware) ⇒ more users:
+14.3 % on the mobile benchmark, +19.6 % on the full benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.tables import format_table
from repro.capacity.finite_source import FiniteSourceCapacitySimulator
from repro.capacity.simulator import (
    CapacityConfig,
    CapacitySimulator,
    capacity_at_drop_target,
)
from repro.core.comparison import benchmark_comparison
from repro.core.config import ExperimentConfig
from repro.stream import stream_enabled
from repro.units import hours
from repro.webpages.corpus import warm_corpus

PAPER_GAIN = {"mobile": 14.3, "full": 19.6}


@dataclass
class CapacityCurve:
    engine: str
    user_counts: List[int]
    drop_probabilities: List[float]
    capacity_at_target: int


@dataclass
class BenchmarkCapacity:
    label: str
    original: CapacityCurve
    energy_aware: CapacityCurve

    @property
    def gain(self) -> float:
        base = self.original.capacity_at_target
        if base == 0:
            return 0.0
        return (self.energy_aware.capacity_at_target - base) / base


@dataclass
class Fig11Result:
    benchmarks: List[BenchmarkCapacity]
    #: Secondary analysis: the same gains under a finite-source (think-
    #: time-gated) arrival model, keyed by benchmark label.
    finite_source_gains: Dict[str, float]
    drop_target: float

    def report(self) -> str:
        rows = [(b.label,
                 b.original.capacity_at_target,
                 b.energy_aware.capacity_at_target,
                 f"{100 * b.gain:.1f}%",
                 f"{100 * self.finite_source_gains[b.label]:.1f}%",
                 f"{PAPER_GAIN[b.label]:.1f}%")
                for b in self.benchmarks]
        table = format_table(
            ("benchmark", "orig users", "ours users", "gain (M/G/N)",
             "gain (finite-src)", "paper"),
            rows,
            title=f"Fig. 11: users supported at "
                  f"{100 * self.drop_target:.0f}% session dropping")
        curves = []
        for b in self.benchmarks:
            for curve in (b.original, b.energy_aware):
                points = "  ".join(
                    f"{n}:{100 * p:.2f}%" for n, p in
                    zip(curve.user_counts, curve.drop_probabilities))
                curves.append(f"  {b.label}/{curve.engine}: {points}")
        note = ("  note: the paper's +14-20% gains sit between our M/G/N "
                "and finite-source models;\n  Erlang-B insensitivity "
                "pins the M/G/N gain at ~1/(1-txSaving)-1.")
        return table + "\n" + "\n".join(curves) + "\n" + note


def _service_times(comparisons, engine: str) -> List[float]:
    times = []
    for comparison in comparisons:
        result = (comparison.original if engine == "original"
                  else comparison.energy_aware)
        times.append(result.load.data_transmission_time)
    return times


def run(config: Optional[ExperimentConfig] = None,
        drop_target: float = 0.02,
        horizon: float = hours(2),
        seed: int = 7,
        stream: Optional[bool] = None) -> Fig11Result:
    """Run the capacity comparison for both benchmark halves.

    ``stream`` routes the M/G/N runs through the bounded-memory block
    pipeline (default: the ``REPRO_STREAM`` toggle).  Results are
    byte-identical either way — the golden test compares the reports.
    """
    use_stream = stream_enabled() if stream is None else stream
    if use_stream:
        from repro.stream.pipeline import StreamingCapacitySimulator
        simulator_cls = StreamingCapacitySimulator
    else:
        simulator_cls = CapacitySimulator
    # Page generation and the corpus-wide engine comparison are paid
    # once per process (warm memo), not once per capacity grid point;
    # only the per-point seeds differ below.
    warm_corpus()
    benchmarks: List[BenchmarkCapacity] = []
    finite_gains: Dict[str, float] = {}
    for mobile, label in ((True, "mobile"), (False, "full")):
        comparisons = benchmark_comparison(mobile=mobile, config=config)
        curves: Dict[str, CapacityCurve] = {}
        finite_capacity: Dict[str, int] = {}
        for engine in ("original", "energy-aware"):
            services = _service_times(comparisons, engine)
            simulator = simulator_cls(
                services, CapacityConfig(horizon=horizon, seed=seed))
            capacity = capacity_at_drop_target(simulator, drop_target,
                                               seed=seed)
            counts = sorted({max(10, int(round(capacity * f)))
                             for f in (0.8, 0.9, 1.0, 1.1, 1.2)})
            probabilities = [simulator.run(n, seed=seed).drop_probability
                             for n in counts]
            curves[engine] = CapacityCurve(
                engine=engine, user_counts=counts,
                drop_probabilities=probabilities,
                capacity_at_target=capacity)
            finite = FiniteSourceCapacitySimulator(
                services, CapacityConfig(horizon=horizon, seed=seed))
            finite_capacity[engine] = capacity_at_drop_target(
                finite, drop_target, seed=seed)
        benchmarks.append(BenchmarkCapacity(
            label=label, original=curves["original"],
            energy_aware=curves["energy-aware"]))
        finite_gains[label] = (finite_capacity["energy-aware"]
                               / finite_capacity["original"] - 1.0)
    return Fig11Result(benchmarks=benchmarks,
                       finite_source_gains=finite_gains,
                       drop_target=drop_target)
