"""Fig. 9 — power trace while loading ``espn.go.com/sports``.

The paper plots 4 Hz power samples for both browsers: the original keeps
the radio at DCH power until its load completes and then rides the tail;
the energy-aware browser finishes transmissions ~30 samples earlier,
releases the dedicated channels, and drops to IDLE at the page open.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.browser.energy_aware import EnergyAwareEngine
from repro.browser.original import OriginalEngine
from repro.core.config import ExperimentConfig
from repro.core.session import browse_and_read
from repro.measurement.sampler import PowerTrace
from repro.webpages.corpus import find_page


@dataclass
class EngineTrace:
    engine: str
    trace: PowerTrace
    tx_complete: float
    load_complete: float
    mean_power: float


@dataclass
class Fig09Result:
    original: EngineTrace
    energy_aware: EngineTrace

    def report(self) -> str:
        lines = ["Fig. 9: power while loading espn.go.com/sports "
                 "(0.25 s samples)"]
        for item in (self.original, self.energy_aware):
            lines.append(
                f"  {item.engine:12s} tx done {item.tx_complete:5.1f}s  "
                f"load done {item.load_complete:5.1f}s  "
                f"mean {item.mean_power:.2f} W over trace")
            lines.append("    " + _sparkline(item.trace))
        lines.append("  paper: original tx until sample ~130 (32.5 s), "
                     "energy-aware until ~100 (25 s), IDLE by ~110")
        return "\n".join(lines)


_BLOCKS = " .:-=+*#%@"


def _sparkline(trace: PowerTrace, stride: int = 4) -> str:
    top = max(trace.watts) or 1.0
    chars = []
    for sample in trace.samples[::stride]:
        level = int(round((len(_BLOCKS) - 1) * sample.watts / top))
        chars.append(_BLOCKS[level])
    return "".join(chars)


def run(config: Optional[ExperimentConfig] = None,
        page_name: str = "espn.go.com/sports",
        reading_time: float = 20.0) -> Fig09Result:
    """Sample both engines' power traces on the headline page."""
    page = find_page(page_name)
    traces = {}
    for engine_cls, idle_at_open in ((OriginalEngine, False),
                                     (EnergyAwareEngine, True)):
        session = browse_and_read(page, engine_cls, reading_time,
                                  config=config, idle_at_open=idle_at_open)
        load = session.load
        horizon = load.started_at + load.load_complete_time + reading_time
        trace = session.handset.sampler.trace(start=load.started_at,
                                              end=horizon)
        traces[engine_cls.name] = EngineTrace(
            engine=engine_cls.name, trace=trace,
            tx_complete=load.data_transmission_time,
            load_complete=load.load_complete_time,
            mean_power=trace.mean_power())
    return Fig09Result(original=traces["original"],
                       energy_aware=traces["energy-aware"])
