"""Fig. 7 — cumulative distribution of webpage reading times.

Reproduced from the synthetic 40-user trace.  The calibration anchors
are the three fractions the paper's analysis depends on: 30 % of reads
under the interest threshold (2 s), 53 % under Tp = 9 s, and 68 % under
Td = 20 s, after discarding reads over 10 minutes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.analysis.stats import cdf_points
from repro.analysis.weibull import WeibullFit, fit_weibull
from repro.analysis.tables import format_table
from repro.fleet import fleet_enabled
from repro.fleet.policy import threshold_fractions
from repro.traces.generator import TraceConfig, generate_trace

#: (threshold seconds, paper's CDF %) anchors.
PAPER_ANCHORS: Tuple[Tuple[float, float], ...] = (
    (2.0, 30.0), (9.0, 53.0), (20.0, 68.0))


@dataclass
class Fig07Result:
    grid: List[Tuple[float, float]]
    anchors: List[Tuple[float, float, float]]  # (threshold, paper%, ours%)
    n_records: int
    weibull: WeibullFit

    def report(self) -> str:
        anchor_rows = [(f"{t:.0f} s", paper, round(ours, 1))
                       for t, paper, ours in self.anchors]
        table = format_table(("reading time <", "paper %", "measured %"),
                             anchor_rows,
                             title=f"Fig. 7: reading-time CDF "
                                   f"({self.n_records} pageviews)")
        curve = "  " + "  ".join(f"{v:.0f}s:{100*f:.0f}%"
                                 for v, f in self.grid)
        weibull = (f"Weibull MLE fit: k={self.weibull.shape:.2f}, "
                   f"lambda={self.weibull.scale:.1f}s "
                   f"(k<1 negative aging, as Liu et al. [12] report "
                   f"for web dwell times)")
        return table + "\ncurve: " + curve + "\n" + weibull


def run(trace_config: Optional[TraceConfig] = None) -> Fig07Result:
    """Generate the trace and evaluate its reading-time CDF."""
    dataset = generate_trace(trace_config).filter_reading_time()
    times = dataset.reading_times()
    grid = cdf_points(times, np.arange(0.0, 21.0, 2.0))
    if fleet_enabled():
        # One sort answers every anchor; bitwise the per-anchor means.
        fractions = threshold_fractions(
            times, [threshold for threshold, _ in PAPER_ANCHORS])
        anchors = [(threshold, paper, ours)
                   for (threshold, paper), ours
                   in zip(PAPER_ANCHORS, fractions)]
    else:
        anchors = [(threshold, paper,
                    100.0 * float(np.mean(times < threshold)))
                   for threshold, paper in PAPER_ANCHORS]
    return Fig07Result(grid=grid, anchors=anchors, n_records=len(dataset),
                       weibull=fit_weibull(times))
