"""Sensitivity sweep — energy savings under impaired 3G channels.

The paper evaluates on a healthy 2012-era T-Mobile UMTS link (Fig. 4
calibration).  This sweep asks how robust the energy-aware browser's
advantage is when the channel is not healthy: each
:data:`repro.faults.profiles.PROFILES` preset (ideal → suburban →
congested → cell edge) is replayed over both Table 3 benchmark halves
with both engines, under common random numbers — the two engines face
the *same* seeded fades, losses and RIL failures — so the saving deltas
are attributable to the workflow, not to luck.

Per-page seeds derive from the task seed via
:func:`repro.runtime.seeding.spawn_seeds`, so the sweep is byte-identical
across ``--parallel 1`` and ``--parallel N`` and across reruns with the
same root seed.

Expected shape of the result: the saving shrinks as the channel degrades
(impairments stretch the transmission phase both engines share and the
tail energy of failed dormancy eats into the reorganisation's win) but
stays positive — grouping transmissions helps even at the cell edge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.analysis.tables import format_table
from repro.core.comparison import EngineComparison, compare_engines, mean
from repro.core.config import ExperimentConfig
from repro.faults.injector import FaultPlan, FaultStats
from repro.faults.profiles import PROFILE_ORDER, get_profile
from repro.runtime.seeding import DEFAULT_ROOT_SEED, spawn_seeds
from repro.webpages.corpus import benchmark_pages

#: Reading period after each load, seconds — past the switching threshold
#: so the Fig. 10 (read-then-click) scenario is what the sweep measures.
SWEEP_READING_TIME = 30.0


@dataclass
class PageSensitivity:
    """One page under one channel profile."""

    page_url: str
    comparison: EngineComparison
    #: Impairments injected across both handsets (original + ours).
    faults: FaultStats

    @property
    def degraded(self) -> bool:
        return (self.comparison.original.load.degraded
                or self.comparison.energy_aware.load.degraded)


@dataclass
class SensitivityResult:
    """One profile's sweep over both benchmark halves."""

    profile_name: str
    seed: int
    reading_time: float
    rows: List[PageSensitivity]

    @property
    def mean_energy_saving(self) -> float:
        return mean([r.comparison.energy_saving for r in self.rows])

    @property
    def mean_loading_saving(self) -> float:
        return mean([r.comparison.loading_time_saving for r in self.rows])

    @property
    def total_faults(self) -> FaultStats:
        total = FaultStats()
        for row in self.rows:
            total = total.merged(row.faults)
        return total

    def report(self) -> str:
        table_rows = []
        for row in self.rows:
            comp = row.comparison
            attempts = (comp.original.load.transfer_attempts
                        + comp.energy_aware.load.transfer_attempts)
            failed = (len(comp.original.load.failed_objects)
                      + len(comp.energy_aware.load.failed_objects))
            ril_errors = (len(comp.original.handset.ril.errors)
                          + len(comp.energy_aware.handset.ril.errors))
            table_rows.append((
                row.page_url,
                round(comp.original.total_energy, 2),
                round(comp.energy_aware.total_energy, 2),
                f"{100 * comp.energy_saving:.1f}%",
                attempts,
                row.faults.transfer_retries,
                failed,
                ril_errors,
            ))
        total = self.total_faults
        table_rows.append((
            "MEAN / TOTAL",
            round(mean([r.comparison.original.total_energy
                        for r in self.rows]), 2),
            round(mean([r.comparison.energy_aware.total_energy
                        for r in self.rows]), 2),
            f"{100 * self.mean_energy_saving:.1f}%",
            sum(r.comparison.original.load.transfer_attempts
                + r.comparison.energy_aware.load.transfer_attempts
                for r in self.rows),
            total.transfer_retries,
            total.transfers_failed,
            total.ril_drops + total.dormancy_failures,
        ))
        return format_table(
            ("page", "orig J", "ours J", "E save",
             "attempts", "retries", "failed", "ril errs"),
            table_rows,
            title=(f"Sensitivity: {self.profile_name} channel "
                   f"(read {self.reading_time:.0f}s, "
                   f"{total.faults_injected} faults injected)"))


def run_profile(profile_name: str,
                seed: int = DEFAULT_ROOT_SEED,
                config: Optional[ExperimentConfig] = None,
                reading_time: float = SWEEP_READING_TIME,
                pages: Optional[List] = None,
                ) -> SensitivityResult:
    """Sweep one channel profile over both benchmark halves.

    Each page gets its own child seed (positional, from ``seed``), and
    within a page both engines share the plan — common random numbers,
    so the engine comparison is fair under identical channel histories.

    ``pages`` substitutes an explicit page list for the full corpus —
    used by the golden-equivalence tests to sweep a small subset (child
    seeds are positional over whatever list is swept).
    """
    get_profile(profile_name)  # validate the name before any work
    if pages is None:
        pages = benchmark_pages(mobile=True) + benchmark_pages(mobile=False)
    seeds = spawn_seeds(seed, len(pages))
    rows: List[PageSensitivity] = []
    for page, page_seed in zip(pages, seeds):
        plan = FaultPlan.named(profile_name, seed=page_seed)
        comparison = compare_engines(page, reading_time, config=config,
                                     faults=plan)
        faults = FaultStats()
        for session in (comparison.original, comparison.energy_aware):
            injector = session.handset.injector
            if injector is not None:
                faults = faults.merged(injector.stats)
        rows.append(PageSensitivity(page_url=page.url,
                                    comparison=comparison, faults=faults))
    return SensitivityResult(profile_name=profile_name, seed=seed,
                             reading_time=reading_time, rows=rows)


def _make_runner(profile_name: str):
    def runner(seed: int = DEFAULT_ROOT_SEED) -> SensitivityResult:
        return run_profile(profile_name, seed=seed)
    runner.needs_seed = True
    runner.__name__ = f"run_{profile_name}"
    runner.__doc__ = f"Sensitivity sweep under the {profile_name} profile."
    return runner


#: Registry consumed by the parallel runner: one task per channel preset,
#: in severity order.  Runners are seed-aware (``needs_seed``) — the
#: runner hands each its task seed so per-page child seeds derive from it.
SWEEP_TASKS = tuple(
    (name, f"Sensitivity sweep: {name} channel", _make_runner(name))
    for name in PROFILE_ORDER)
