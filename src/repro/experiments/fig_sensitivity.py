"""Sensitivity sweep — energy savings under impaired 3G channels.

The paper evaluates on a healthy 2012-era T-Mobile UMTS link (Fig. 4
calibration).  This sweep asks how robust the energy-aware browser's
advantage is when the channel is not healthy: each
:data:`repro.faults.profiles.PROFILES` preset (ideal → suburban →
congested → cell edge) is replayed over both Table 3 benchmark halves
with both engines, under common random numbers — the two engines face
the *same* seeded fades, losses and RIL failures — so the saving deltas
are attributable to the workflow, not to luck.

Per-page seeds derive from the task seed via
:func:`repro.runtime.seeding.spawn_seeds`, so the sweep is byte-identical
across ``--parallel 1`` and ``--parallel N`` and across reruns with the
same root seed.

Expected shape of the result: the saving shrinks as the channel degrades
(impairments stretch the transmission phase both engines share and the
tail energy of failed dormancy eats into the reorganisation's win) but
stays positive — grouping transmissions helps even at the cell edge.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import List, Optional

from repro.analysis.tables import format_table
from repro.core.comparison import EngineComparison, compare_engines, mean
from repro.core.config import ExperimentConfig
from repro.faults.injector import FaultPlan, FaultStats
from repro.faults.profiles import PROFILE_ORDER, get_profile
from repro.runtime.seeding import DEFAULT_ROOT_SEED, spawn_seeds
from repro.stream import stream_enabled
from repro.webpages.corpus import benchmark_pages

#: Reading period after each load, seconds — past the switching threshold
#: so the Fig. 10 (read-then-click) scenario is what the sweep measures.
SWEEP_READING_TIME = 30.0


@dataclass(frozen=True)
class PageRow:
    """One page's sweep outcome, folded down to report-sized scalars.

    This is the streaming sweep's unit of carried state: everything the
    sensitivity report needs, with the handsets, traces and load graphs
    of the underlying :class:`EngineComparison` already released.  The
    floats are stored at full precision (rounding happens at render
    time), so a report built from rows is byte-identical to one built
    from live comparisons.
    """

    page_url: str
    original_energy: float
    energy_aware_energy: float
    energy_saving: float
    loading_saving: float
    #: Transfer attempts across both handsets (original + ours).
    transfer_attempts: int
    #: Failed objects across both handsets.
    failed_objects: int
    #: RIL errors across both handsets.
    ril_errors: int
    faults: FaultStats

    def to_state(self) -> dict:
        state = {f.name: getattr(self, f.name) for f in fields(self)
                 if f.name != "faults"}
        state["faults"] = {f.name: getattr(self.faults, f.name)
                           for f in fields(FaultStats)}
        return state

    @classmethod
    def from_state(cls, state: dict) -> "PageRow":
        payload = dict(state)
        payload["faults"] = FaultStats(**payload["faults"])
        return cls(**payload)


@dataclass
class PageSensitivity:
    """One page under one channel profile."""

    page_url: str
    comparison: EngineComparison
    #: Impairments injected across both handsets (original + ours).
    faults: FaultStats

    @property
    def degraded(self) -> bool:
        return (self.comparison.original.load.degraded
                or self.comparison.energy_aware.load.degraded)

    def to_row(self) -> PageRow:
        comp = self.comparison
        return PageRow(
            page_url=self.page_url,
            original_energy=comp.original.total_energy,
            energy_aware_energy=comp.energy_aware.total_energy,
            energy_saving=comp.energy_saving,
            loading_saving=comp.loading_time_saving,
            transfer_attempts=(comp.original.load.transfer_attempts
                               + comp.energy_aware.load
                               .transfer_attempts),
            failed_objects=(len(comp.original.load.failed_objects)
                            + len(comp.energy_aware.load
                                  .failed_objects)),
            ril_errors=(len(comp.original.handset.ril.errors)
                        + len(comp.energy_aware.handset.ril.errors)),
            faults=self.faults)


def _render_report(profile_name: str, reading_time: float,
                   rows: List[PageRow]) -> str:
    """The sensitivity table, from folded rows.

    Single rendering path for both sweep variants: the in-memory result
    folds its live comparisons down to rows first, so streamed and
    in-memory reports are the same bytes.
    """
    table_rows = []
    for row in rows:
        table_rows.append((
            row.page_url,
            round(row.original_energy, 2),
            round(row.energy_aware_energy, 2),
            f"{100 * row.energy_saving:.1f}%",
            row.transfer_attempts,
            row.faults.transfer_retries,
            row.failed_objects,
            row.ril_errors,
        ))
    total = FaultStats()
    for row in rows:
        total = total.merged(row.faults)
    table_rows.append((
        "MEAN / TOTAL",
        round(mean([r.original_energy for r in rows]), 2),
        round(mean([r.energy_aware_energy for r in rows]), 2),
        f"{100 * mean([r.energy_saving for r in rows]):.1f}%",
        sum(r.transfer_attempts for r in rows),
        total.transfer_retries,
        total.transfers_failed,
        total.ril_drops + total.dormancy_failures,
    ))
    return format_table(
        ("page", "orig J", "ours J", "E save",
         "attempts", "retries", "failed", "ril errs"),
        table_rows,
        title=(f"Sensitivity: {profile_name} channel "
               f"(read {reading_time:.0f}s, "
               f"{total.faults_injected} faults injected)"))


@dataclass
class SensitivityResult:
    """One profile's sweep over both benchmark halves."""

    profile_name: str
    seed: int
    reading_time: float
    rows: List[PageSensitivity]

    @property
    def mean_energy_saving(self) -> float:
        return mean([r.comparison.energy_saving for r in self.rows])

    @property
    def mean_loading_saving(self) -> float:
        return mean([r.comparison.loading_time_saving for r in self.rows])

    @property
    def total_faults(self) -> FaultStats:
        total = FaultStats()
        for row in self.rows:
            total = total.merged(row.faults)
        return total

    def report(self) -> str:
        return _render_report(self.profile_name, self.reading_time,
                              [row.to_row() for row in self.rows])


@dataclass
class StreamedSensitivityResult:
    """One profile's sweep, held as folded rows instead of live
    comparisons.

    Same reporting surface as :class:`SensitivityResult` (``report``,
    ``mean_energy_saving``, ``mean_loading_saving``, ``total_faults``),
    but the resident state per page is one :class:`PageRow` — the
    handsets and traces of each comparison are released as soon as the
    page is folded, so sweeping a corpus holds O(pages) scalars rather
    than O(pages) simulations.
    """

    profile_name: str
    seed: int
    reading_time: float
    rows: List[PageRow]

    @property
    def mean_energy_saving(self) -> float:
        return mean([r.energy_saving for r in self.rows])

    @property
    def mean_loading_saving(self) -> float:
        return mean([r.loading_saving for r in self.rows])

    @property
    def total_faults(self) -> FaultStats:
        total = FaultStats()
        for row in self.rows:
            total = total.merged(row.faults)
        return total

    def report(self) -> str:
        return _render_report(self.profile_name, self.reading_time,
                              self.rows)


def _sweep_page(page, page_seed: int, profile_name: str,
                reading_time: float,
                config: Optional[ExperimentConfig]) -> PageSensitivity:
    plan = FaultPlan.named(profile_name, seed=page_seed)
    comparison = compare_engines(page, reading_time, config=config,
                                 faults=plan)
    faults = FaultStats()
    for session in (comparison.original, comparison.energy_aware):
        injector = session.handset.injector
        if injector is not None:
            faults = faults.merged(injector.stats)
    return PageSensitivity(page_url=page.url, comparison=comparison,
                           faults=faults)


def run_profile(profile_name: str,
                seed: int = DEFAULT_ROOT_SEED,
                config: Optional[ExperimentConfig] = None,
                reading_time: float = SWEEP_READING_TIME,
                pages: Optional[List] = None,
                stream: Optional[bool] = None,
                shard_dir=None,
                ):
    """Sweep one channel profile over both benchmark halves.

    Each page gets its own child seed (positional, from ``seed``), and
    within a page both engines share the plan — common random numbers,
    so the engine comparison is fair under identical channel histories.

    ``pages`` substitutes an explicit page list for the full corpus —
    used by the golden-equivalence tests to sweep a small subset (child
    seeds are positional over whatever list is swept).

    ``stream`` (default: the ``REPRO_STREAM`` toggle) folds each page
    down to a :class:`PageRow` as soon as it completes and returns a
    :class:`StreamedSensitivityResult`; with ``shard_dir`` each row also
    spills to a shard, so a killed sweep rerun with the same directory
    resumes past the pages already done.  Reports are byte-identical
    between the two modes.
    """
    get_profile(profile_name)  # validate the name before any work
    if pages is None:
        pages = benchmark_pages(mobile=True) + benchmark_pages(mobile=False)
    seeds = spawn_seeds(seed, len(pages))
    use_stream = stream_enabled() if stream is None else stream
    if not use_stream:
        rows = [_sweep_page(page, page_seed, profile_name,
                            reading_time, config)
                for page, page_seed in zip(pages, seeds)]
        return SensitivityResult(profile_name=profile_name, seed=seed,
                                 reading_time=reading_time, rows=rows)

    from repro.runtime.observability import KERNEL_STATS
    store = None
    if shard_dir is not None:
        from repro.stream.shard import ShardStore, params_fingerprint
        store = ShardStore(shard_dir, params_fingerprint({
            "profile": profile_name,
            "seed": int(seed),
            "reading_time": reading_time,
            "pages": [page.url for page in pages],
        }))
    stream_rows: List[PageRow] = []
    for index, (page, page_seed) in enumerate(zip(pages, seeds)):
        key = f"page-{index:03d}"
        if store is not None:
            cached = store.get(key)
            if cached is not None:
                stream_rows.append(PageRow.from_state(cached[1]))
                continue
        row = _sweep_page(page, page_seed, profile_name, reading_time,
                          config).to_row()
        stream_rows.append(row)
        KERNEL_STATS.record_stream(blocks=1, merges=1)
        if store is not None:
            nbytes = store.put(key, {}, row.to_state())
            KERNEL_STATS.record_stream(spills=1, shard_bytes=nbytes)
    return StreamedSensitivityResult(profile_name=profile_name,
                                     seed=seed,
                                     reading_time=reading_time,
                                     rows=stream_rows)


def _make_runner(profile_name: str):
    def runner(seed: int = DEFAULT_ROOT_SEED) -> SensitivityResult:
        return run_profile(profile_name, seed=seed)
    runner.needs_seed = True
    runner.__name__ = f"run_{profile_name}"
    runner.__doc__ = f"Sensitivity sweep under the {profile_name} profile."
    return runner


#: Registry consumed by the parallel runner: one task per channel preset,
#: in severity order.  Runners are seed-aware (``needs_seed``) — the
#: runner hands each its task seed so per-page child seeds derive from it.
SWEEP_TASKS = tuple(
    (name, f"Sensitivity sweep: {name} channel", _make_runner(name))
    for name in PROFILE_ORDER)
