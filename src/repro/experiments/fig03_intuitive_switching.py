"""Fig. 3 — power saved by the intuitive immediate-IDLE scheme vs the
inter-transmission interval.

Section 3.1's strawman: switch the radio to IDLE right after every
transmission.  For a gap of t seconds between transmissions,

- the *original* radio rides the tail (DCH for T1, FACH for T2, IDLE
  after) and pays whatever promotion its state at t requires;
- the *intuitive* radio idles for t and always pays the expensive
  IDLE→DCH promotion (signalling energy plus >1 s of latency).

Saving(t) = E_original(t) − E_intuitive(t).  The paper measures a
break-even at t ≈ 9 s (this is where Tp comes from) and an extra delay
of ~1.75 s per transmission.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.analysis.tables import format_table
from repro.rrc.config import RrcConfig
from repro.rrc.tail import (
    promotion_energy,
    promotion_latency,
    tail_energy_after_tx,
    tail_state_after_tx,
)
from repro.rrc.states import RrcState

#: The paper's x-axis.
DEFAULT_INTERVALS: Tuple[float, ...] = (
    1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 14, 16, 18, 20, 22, 24)


@dataclass
class IntervalPoint:
    interval: float
    original_energy: float
    intuitive_energy: float

    @property
    def saving(self) -> float:
        return self.original_energy - self.intuitive_energy


@dataclass
class Fig03Result:
    points: List[IntervalPoint]
    crossover: Optional[float]
    extra_delay: float

    def report(self) -> str:
        rows = [(p.interval, round(p.original_energy, 2),
                 round(p.intuitive_energy, 2), round(p.saving, 2))
                for p in self.points]
        table = format_table(
            ("interval s", "original J", "intuitive J", "saving J"), rows,
            title="Fig. 3: intuitive immediate-IDLE switching")
        footer = (f"\nbreak-even interval: {self.crossover} s "
                  f"(paper: 9 s); extra delay per transmission: "
                  f"{self.extra_delay:.2f} s (paper: ~1.75 s)")
        return table + footer


def run(config: Optional[RrcConfig] = None,
        intervals: Tuple[float, ...] = DEFAULT_INTERVALS) -> Fig03Result:
    """Compute the Fig. 3 curve analytically from the radio model."""
    rrc = config or RrcConfig()
    points: List[IntervalPoint] = []
    for interval in intervals:
        original = (tail_energy_after_tx(0.0, interval, rrc)
                    + promotion_energy(
                        tail_state_after_tx(interval, rrc), rrc))
        intuitive = (rrc.power.idle * interval
                     + promotion_energy(RrcState.IDLE, rrc))
        points.append(IntervalPoint(interval, original, intuitive))

    crossover = next((p.interval for p in points if p.saving > 0), None)
    extra_delay = (promotion_latency(RrcState.IDLE, rrc)
                   - promotion_latency(RrcState.FACH, rrc))
    return Fig03Result(points=points, crossover=crossover,
                       extra_delay=extra_delay)
