"""Command-line interface.

Subcommands::

    repro compare --page espn.go.com/sports --reading 20
    repro experiments [fig08 table04 ...] [--parallel N] [--cache]
                      [--report out.json]
    repro ablations [reorganisation timers predictor alpha] [--parallel N]
    repro faults-sweep [ideal suburban ...] [--parallel N] [--report out.json]
    repro ablate [--matrix loo] [--profile cell_edge] [--rank-out rank.csv]
    repro tune [--algorithm halving] [--profile cell_edge]
               [--budget-delay 1.2] [--trace search.jsonl]
    repro profile fig11 [--kind experiment] [--top 25] [--report prof.json]
    repro fleet-bench [--scale 10] [--handsets 1500]
    repro stream-sweep [--scale 10] [--horizon 28800] [--out shards/]
                       [--work-dir D --worker-id k/K [--unit-blocks 8]]
    repro trace --out trace.csv
    repro train --trace trace.csv --out model.json
    repro predict --model model.json --trace trace.csv --threshold 9
    repro session --user 35
    repro serve [--port 8323] [--batch-window 0.005] [--job-dir jobs/]
    repro serve-bench [--url http://...] [--clients 8] [--requests 25]

Also reachable as ``python -m repro``.
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
from typing import List, Optional

from repro.core.comparison import compare_engines
from repro.fleet import FLEET_SLOW_ENV
from repro.stream import STREAM_ENV
from repro.experiments.ablations import ALL_ABLATIONS
from repro.experiments.runner import ALL_EXPERIMENTS
from repro.faults.profiles import PROFILES
from repro.prediction.predictor import ReadingTimePredictor
from repro.runtime import parallel as runtime_parallel
from repro.runtime.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.runtime.report import write_report
from repro.runtime.seeding import DEFAULT_ROOT_SEED
from repro.traces.generator import TraceConfig, generate_trace
from repro.traces.records import TraceDataset
from repro.webpages.corpus import find_page


def _cmd_compare(args: argparse.Namespace) -> int:
    page = find_page(args.page)
    comparison = compare_engines(page, reading_time=args.reading)
    original, ours = comparison.original, comparison.energy_aware
    print(f"page: {page.url} ({page.total_kb:.0f} KB, "
          f"{page.object_count} objects)")
    print(f"original:     tx {original.load.data_transmission_time:6.1f}s  "
          f"load {original.load.load_complete_time:6.1f}s  "
          f"energy {original.total_energy:6.1f}J")
    print(f"energy-aware: tx {ours.load.data_transmission_time:6.1f}s  "
          f"load {ours.load.load_complete_time:6.1f}s  "
          f"energy {ours.total_energy:6.1f}J")
    print(f"savings: tx {comparison.tx_time_saving:.1%}, "
          f"load {comparison.loading_time_saving:.1%}, "
          f"energy {comparison.energy_saving:.1%}")
    return 0


def _apply_fleet_flag(args: argparse.Namespace) -> None:
    """Translate ``--fleet/--no-fleet`` into the env toggle.

    The library reads ``REPRO_FLEET_SLOW`` at call time (and forked
    workers inherit the environment), so setting it here covers the
    whole run.  Without either flag the inherited environment stands.
    """
    fleet = getattr(args, "fleet", None)
    if fleet is None:
        return
    if fleet:
        os.environ.pop(FLEET_SLOW_ENV, None)
    else:
        os.environ[FLEET_SLOW_ENV] = "1"


def _apply_stream_flag(args: argparse.Namespace) -> None:
    """Translate ``--stream/--no-stream`` into the env toggle.

    Opposite polarity to the fleet flag: streaming is opt-in, so
    ``--stream`` *sets* ``REPRO_STREAM`` and ``--no-stream`` clears it.
    Without either flag the inherited environment stands.
    """
    stream = getattr(args, "stream", None)
    if stream is None:
        return
    if stream:
        os.environ[STREAM_ENV] = "1"
    else:
        os.environ.pop(STREAM_ENV, None)


def _run_suite(kind: str, ids: List[str],
               args: argparse.Namespace) -> int:
    _apply_fleet_flag(args)
    _apply_stream_flag(args)
    cache = None
    if getattr(args, "cache", False) or getattr(args, "cache_dir", None):
        cache = ResultCache(args.cache_dir or DEFAULT_CACHE_DIR)
    try:
        suite = runtime_parallel.run_tasks(
            kind, ids or None, processes=args.parallel, cache=cache,
            root_seed=args.seed)
    except (KeyError, ValueError) as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    print(suite.render())
    print(suite.render_summary())
    if getattr(args, "report", None):
        write_report(suite.to_dict(), args.report)
        print(f"report -> {args.report}")
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    known = {experiment_id for experiment_id, _, _ in ALL_EXPERIMENTS}
    unknown = set(args.ids) - known
    if unknown:
        print(f"unknown experiment ids: {sorted(unknown)}; "
              f"known: {sorted(known)}", file=sys.stderr)
        return 2
    return _run_suite(runtime_parallel.KIND_EXPERIMENT, args.ids, args)


def _cmd_ablations(args: argparse.Namespace) -> int:
    unknown = set(args.names) - set(ALL_ABLATIONS)
    if unknown:
        print(f"unknown ablations: {sorted(unknown)}; "
              f"known: {sorted(ALL_ABLATIONS)}", file=sys.stderr)
        return 2
    return _run_suite(runtime_parallel.KIND_ABLATION, args.names, args)


def _cmd_faults_sweep(args: argparse.Namespace) -> int:
    unknown = set(args.profiles) - set(PROFILES)
    if unknown:
        print(f"unknown channel profiles: {sorted(unknown)}; "
              f"known: {sorted(PROFILES)}", file=sys.stderr)
        return 2
    return _run_suite(runtime_parallel.KIND_FAULTS, args.profiles, args)


def _ablation_scenario(args: argparse.Namespace):
    """Build the evaluation :class:`~repro.ablation.Scenario` from the
    shared ``ablate``/``tune`` options."""
    from repro.ablation import PopulationSpec, Scenario

    population = None
    if args.population:
        population = PopulationSpec(n_users=args.population,
                                    n_channels=args.channels)
    kwargs = {"profile": args.profile, "seed": args.seed,
              "population": population}
    if args.pages:
        kwargs["pages"] = tuple(args.pages)
    if args.readings:
        kwargs["reading_times"] = tuple(args.readings)
    return Scenario(**kwargs)


def _cmd_ablate(args: argparse.Namespace) -> int:
    """Run a declarative ablation matrix and rank component importance."""
    from repro.ablation import rank_components, run_matrix, write_ranking

    cache = None
    if args.cache or args.cache_dir:
        cache = ResultCache(args.cache_dir or DEFAULT_CACHE_DIR)
    try:
        scenario = _ablation_scenario(args)
        result = run_matrix(args.matrix, scenario,
                            registry_name=args.registry,
                            components=args.components or None,
                            fraction=args.fraction,
                            processes=args.parallel, cache=cache)
    except (KeyError, ValueError) as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    print(result.report())
    ranking = None
    if args.matrix != "baseline":
        try:
            ranking = rank_components(result, metric=args.metric)
        except (KeyError, ValueError) as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        print(ranking.report())
    print(result.render_summary())
    if args.report:
        write_report(result.to_dict(), args.report)
        print(f"report -> {args.report}")
    if args.rank_out:
        if ranking is None:
            print("--rank-out needs a matrix with a baseline cell "
                  "(loo/ofat/pairs/factorial)", file=sys.stderr)
            return 2
        write_ranking(ranking, args.rank_out)
        print(f"ranking -> {args.rank_out}")
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    """Constrained search over T1/T2 and α/Tp per channel profile."""
    from pathlib import Path

    from repro.ablation import ALGORITHMS, Constraint

    search = ALGORITHMS[args.algorithm]
    if args.objective == "drop_probability" and not args.population:
        print("--objective drop_probability needs --population N (the "
              "metric is an M/G/N capacity run over the variant's own "
              "channel-hold times)", file=sys.stderr)
        return 2
    constraints = []
    if args.budget_delay is not None:
        constraints.append(Constraint("delay", args.budget_delay))
    if args.budget_drop is not None:
        if not args.population:
            print("--budget-drop needs --population N", file=sys.stderr)
            return 2
        constraints.append(Constraint("drop_probability",
                                      args.budget_drop))
    cache = None
    if args.cache or args.cache_dir:
        cache = ResultCache(args.cache_dir or DEFAULT_CACHE_DIR)
    kwargs = {
        "constraints": tuple(constraints),
        "objective": args.objective,
        "processes": args.parallel,
        "cache": cache,
        "trace_path": Path(args.trace) if args.trace else None,
    }
    if args.algorithm == "grid":
        kwargs["points"] = args.points
    else:
        kwargs["n_trials"] = args.trials
        kwargs["seed"] = args.seed
    if args.algorithm == "halving":
        kwargs["eta"] = args.eta
    try:
        scenario = _ablation_scenario(args)
        result = search(scenario, **kwargs)
    except (KeyError, ValueError) as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    print(result.report())
    print(result.render_summary())
    if args.report:
        write_report(result.to_dict(), args.report)
        print(f"report -> {args.report}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.runtime.profiling import profile_task, render_profile

    try:
        payload = profile_task(args.kind, args.task, seed=args.seed,
                               top_n=args.top, sort=args.sort)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    print(render_profile(payload))
    if args.report:
        write_report(payload, args.report)
        print(f"report -> {args.report}")
    return 0


def _cmd_fleet_bench(args: argparse.Namespace) -> int:
    """Head-to-head timing: fleet engine vs the scalar golden paths.

    Two sections: the fig11-shaped capacity sweep at ``--scale`` times
    the paper's channel count, and batched RRC accounting over
    ``--handsets`` random traces.  Every timed pair is also checked for
    agreement, so the printout doubles as a live equivalence probe.
    ``--backend`` other than ``numpy`` appends a third section timing
    the array-API kernel ports on that namespace against the NumPy
    reference, with element-identical parity checks.
    """
    import time as _time

    import numpy as np

    from repro.capacity.simulator import CapacityConfig, CapacitySimulator
    from repro.fleet import backend as fleet_backend
    from repro.fleet.rrc import account, account_scalar, random_fleet

    xp = None
    if args.backend != "numpy":
        try:
            xp = fleet_backend.get_namespace(args.backend)
        except fleet_backend.BackendUnavailableError as exc:
            print(f"backend {args.backend!r} unavailable: {exc}",
                  file=sys.stderr)
            return 2
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2

    def _timed(fn):
        started = _time.perf_counter()
        result = fn()
        return result, _time.perf_counter() - started

    saved = os.environ.get(FLEET_SLOW_ENV)
    n_channels = 200 * args.scale
    rng = np.random.default_rng(args.seed)
    pool = rng.lognormal(np.log(14.0), 0.5, size=400)
    config = CapacityConfig(n_channels=n_channels, horizon=900.0,
                            seed=args.seed)
    simulator = CapacitySimulator(pool, config)
    per_user = config.mean_interval / simulator.mean_service_time
    print(f"capacity sweep: M/G/{n_channels}, horizon "
          f"{config.horizon:.0f}s, load factors 0.8..1.2")
    print(f"{'users':>8s} {'scalar s':>9s} {'fleet s':>9s} "
          f"{'speedup':>8s}  drops")
    scalar_total = fleet_total = 0.0
    try:
        for rho in (0.8, 0.9, 1.0, 1.1, 1.2):
            n_users = int(round(rho * n_channels * per_user))
            os.environ[FLEET_SLOW_ENV] = "1"
            slow, scalar_s = _timed(lambda: simulator.run(n_users))
            os.environ.pop(FLEET_SLOW_ENV, None)
            fast, fleet_s = _timed(lambda: simulator.run(n_users))
            if slow != fast:
                print(f"MISMATCH at {n_users} users: {slow} != {fast}",
                      file=sys.stderr)
                return 1
            scalar_total += scalar_s
            fleet_total += fleet_s
            print(f"{n_users:8d} {scalar_s:9.3f} {fleet_s:9.3f} "
                  f"{scalar_s / fleet_s:7.2f}x  {fast.dropped}"
                  f"/{fast.sessions}")
    finally:
        if saved is None:
            os.environ.pop(FLEET_SLOW_ENV, None)
        else:
            os.environ[FLEET_SLOW_ENV] = saved
    print(f"{'TOTAL':>8s} {scalar_total:9.3f} {fleet_total:9.3f} "
          f"{scalar_total / fleet_total:7.2f}x")

    trace = random_fleet(np.random.default_rng(args.seed + 1),
                         n_handsets=args.handsets)
    fleet_ledger, fleet_s = _timed(lambda: account(trace))
    scalar_ledger, scalar_s = _timed(lambda: account_scalar(trace))
    worst = max(
        float(np.abs(getattr(fleet_ledger, field)
                     - getattr(scalar_ledger, field)).max())
        for field in ("time_idle", "time_fach", "time_dch",
                      "time_dch_tx", "end_time"))
    print(f"\nrrc accounting: {args.handsets} handsets x "
          f"{trace.max_bursts} bursts")
    print(f"{'':8s} {scalar_s:9.3f} {fleet_s:9.3f} "
          f"{scalar_s / fleet_s:7.2f}x  max dwell delta {worst:.2e}s")
    if worst > 1e-9:
        print("MISMATCH: dwell ledgers diverged", file=sys.stderr)
        return 1
    if xp is None:
        return 0

    # Backend section: the array-API kernel ports on --backend, parity
    # plus timing against the NumPy reference implementations.
    from repro.fleet.capacity import resolve_drops, resolve_drops_block
    from repro.fleet.rrc import account_xp

    name = fleet_backend.namespace_name(xp)
    print(f"\nbackend: {name}")
    bench_rng = np.random.default_rng(args.seed + 2)
    arrivals = np.sort(bench_rng.uniform(
        0.0, 900.0, size=50 * n_channels))
    services = bench_rng.lognormal(np.log(14.0), 0.5,
                                   size=arrivals.size)
    ref_mask, ref_s = _timed(
        lambda: resolve_drops(arrivals, services, n_channels))
    arrivals_xp = fleet_backend.as_namespace_array(arrivals, xp)
    services_xp = fleet_backend.as_namespace_array(services, xp)
    (port_mask, _), port_s = _timed(
        lambda: resolve_drops_block(arrivals_xp, services_xp,
                                    n_channels, xp=xp))
    if not np.array_equal(ref_mask, fleet_backend.to_numpy(port_mask)):
        print(f"MISMATCH: {name} drop mask diverged from numpy",
              file=sys.stderr)
        return 1
    print(f"{'drops':>8s} {ref_s:9.3f} {port_s:9.3f} "
          f"{ref_s / port_s:7.2f}x  {arrivals.size} sessions")

    port_ledger, port_s = _timed(lambda: account_xp(trace, xp=xp))
    ref_ledger, ref_s = _timed(lambda: account(trace))
    for field in ("time_idle", "time_fach", "time_dch", "time_dch_tx",
                  "promotions_idle", "promotions_fach",
                  "fast_dormancy", "end_time"):
        if not np.array_equal(getattr(ref_ledger, field),
                              getattr(port_ledger, field)):
            print(f"MISMATCH: {name} rrc ledger field {field} diverged",
                  file=sys.stderr)
            return 1
    print(f"{'rrc':>8s} {ref_s:9.3f} {port_s:9.3f} "
          f"{ref_s / port_s:7.2f}x  ledgers element-identical")
    return 0


def _cmd_stream_sweep(args: argparse.Namespace) -> int:
    """Run a fig11-shaped capacity sweep through the block pipeline.

    The report is mode-free (byte-identical between ``--stream`` and
    ``--no-stream``, and between serial and ``--work-dir``
    distributed runs); the runtime counters line below it is where the
    execution mode shows.

    ``--work-dir`` switches to the coordinator-free distributed
    executor: launch the same command with the same work directory
    from any number of processes (or hosts sharing the filesystem),
    giving each a distinct ``--worker-id k/K``; every worker finishes
    with the identical report.
    """
    from repro.capacity.simulator import CapacityConfig
    from repro.runtime.observability import collecting
    from repro.stream import DEFAULT_BLOCK_ARRIVALS
    from repro.stream.sweep import (default_user_counts, lognormal_pool,
                                    run_stream_sweep)

    bad = [name for name, value, floor in (
        ("--scale", args.scale, 1),
        ("--horizon", args.horizon, 1e-9),
        ("--block", args.block or 1, 1),
        ("--checkpoint-every", args.checkpoint_every, 1),
        ("--parallel", args.parallel, 1),
        ("--unit-blocks", args.unit_blocks, 1),
        ("--stale-after", args.stale_after, 1e-9),
        *((f"--users {n}", n, 1) for n in args.users or ()),
    ) if value < floor]
    if bad:
        print(f"stream-sweep arguments must be positive: "
              f"{', '.join(bad)}", file=sys.stderr)
        return 2
    worker_index, n_workers = 0, 1
    if args.work_dir is not None:
        if args.stream is False:
            print("--work-dir runs the streamed pipeline; it cannot "
                  "be combined with --no-stream", file=sys.stderr)
            return 2
        if args.parallel != 1:
            print("--work-dir and --parallel are different execution "
                  "models; pick one", file=sys.stderr)
            return 2
        try:
            worker_index, n_workers = map(int,
                                          args.worker_id.split("/"))
        except ValueError:
            worker_index, n_workers = -1, 0
        if not 0 <= worker_index < n_workers:
            print(f"--worker-id must look like k/K with 0 <= k < K, "
                  f"got {args.worker_id!r}", file=sys.stderr)
            return 2
    pool = lognormal_pool(seed=args.pool_seed)
    config = CapacityConfig(n_channels=200 * args.scale,
                            horizon=args.horizon, seed=args.seed)
    counts = args.users or default_user_counts(
        config, float(pool.mean()))
    stream = True if args.stream is None else args.stream
    block = args.block or DEFAULT_BLOCK_ARRIVALS
    with collecting() as stats:
        if args.work_dir is not None:
            from repro.sched import run_distributed_sweep
            result = run_distributed_sweep(
                pool, counts, config, seed=args.seed,
                work_dir=args.work_dir,
                worker_id=f"w{worker_index}of{n_workers}-{os.getpid()}",
                worker_index=worker_index, block_arrivals=block,
                unit_blocks=args.unit_blocks,
                stale_after=args.stale_after)
        else:
            result = run_stream_sweep(
                pool, counts, config, seed=args.seed, stream=stream,
                block_arrivals=block, shard_dir=args.out,
                checkpoint_every=args.checkpoint_every,
                processes=args.parallel)
    snap = stats.snapshot()
    print(result.report())
    mode = "streamed" if stream else "in-memory"
    print(f"-- {mode} runtime: {snap.stream_blocks} blocks, "
          f"{snap.stream_spills} spills, "
          f"{snap.stream_shard_bytes} shard bytes, "
          f"peak carried state {snap.stream_peak_carried_bytes} B --")
    if args.work_dir is not None:
        print(f"-- sched: {snap.sched_units} units, "
              f"{snap.sched_replay_blocks} replayed blocks, "
              f"{snap.sched_steals} steals --")
    if args.report:
        payload = result.to_dict()
        payload["kernel"] = snap.to_dict()
        if args.report.lower().endswith(".csv"):
            # The suite CSV schema is task-shaped; a sweep exports one
            # row per point instead.
            import csv

            rows = payload["points"]
            with open(args.report, "w", encoding="utf-8",
                      newline="") as handle:
                writer = csv.DictWriter(handle,
                                        fieldnames=list(rows[0]))
                writer.writeheader()
                writer.writerows(rows)
        else:
            write_report(payload, args.report)
        print(f"report -> {args.report}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    config = TraceConfig(n_users=args.users,
                         mean_views_per_user=args.views,
                         seed=args.seed)
    dataset = generate_trace(config).filter_reading_time()
    dataset.save_csv(args.out)
    print(f"wrote {len(dataset)} pageviews from {args.users} users "
          f"to {args.out}")
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    dataset = TraceDataset.load_csv(args.trace)
    threshold = None if args.no_interest_threshold else args.alpha
    predictor = ReadingTimePredictor(interest_threshold=threshold)
    predictor.fit(dataset)
    predictor.save_json(args.out)
    print(f"trained on {len(dataset)} pageviews "
          f"(interest threshold: {threshold}); model -> {args.out}")
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    predictor = ReadingTimePredictor.load_json(args.model)
    dataset = TraceDataset.load_csv(args.trace)
    if predictor.interest_threshold is not None:
        dataset = dataset.exclude_quick_bounces(
            predictor.interest_threshold)
    accuracy = predictor.accuracy(dataset, args.threshold)
    print(f"threshold accuracy at {args.threshold:.0f}s over "
          f"{len(dataset)} pageviews: {accuracy:.1%}")
    return 0


def _cmd_session(args: argparse.Namespace) -> int:
    """Replay one trace user's longest session with Algorithm 2."""
    from repro.browser.energy_aware import EnergyAwareEngine
    from repro.browser.original import OriginalEngine
    from repro.core.browsing import PageVisit, browse_session
    from repro.core.config import PolicyConfig
    from repro.prediction.policy import PredictivePolicy
    from repro.traces.generator import build_catalog
    from repro.webpages.generator import generate_page

    trace_config = TraceConfig(seed=args.seed)
    dataset = generate_trace(trace_config).filter_reading_time()
    sessions = [s for s in dataset.sessions() if s.user_id == args.user]
    if not sessions:
        print(f"user {args.user} not found (0..{trace_config.n_users - 1})",
              file=sys.stderr)
        return 2
    session = max(sessions, key=len)
    catalog = {c.name: c for c in build_catalog(trace_config)}
    visits = [PageVisit(generate_page(catalog[r.page_name].spec),
                        r.reading_time)
              for r in session.records]
    print(f"replaying user {args.user}'s longest session "
          f"({len(visits)} pageviews) under three setups...")

    predictor = ReadingTimePredictor(interest_threshold=2.0).fit(dataset)
    policy = PredictivePolicy(predictor, PolicyConfig(mode=args.mode))
    runs = (("original", OriginalEngine, None),
            ("energy-aware", EnergyAwareEngine, None),
            ("energy-aware + Algorithm 2", EnergyAwareEngine, policy))
    baseline = None
    for label, engine_cls, run_policy in runs:
        outcome = browse_session(visits, engine_cls, policy=run_policy)
        if baseline is None:
            baseline = outcome.total_energy
        saving = 1.0 - outcome.total_energy / baseline
        print(f"  {label:28s} {outcome.total_energy:8.1f} J "
              f"({saving:+6.1%})  {outcome.switch_count} switches, "
              f"{outcome.total_loading_time:6.1f} s loading")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the what-if service in the foreground until SIGINT/SIGTERM."""
    from repro.serve import JobManager, ServeApp, ServerThread, WhatIfService

    if not 0 <= args.port <= 65535:
        print(f"invalid port {args.port}: must be 0..65535",
              file=sys.stderr)
        return 2
    if args.batch_window < 0:
        print(f"invalid --batch-window {args.batch_window}: "
              "must be >= 0", file=sys.stderr)
        return 2
    if args.workers < 1 or args.max_jobs < 1:
        print("--workers and --max-jobs must be >= 1", file=sys.stderr)
        return 2

    service = WhatIfService(batch_window=args.batch_window,
                            max_batch=args.max_batch,
                            load_cache_dir=args.cache_dir)
    jobs = None
    if args.job_dir is not None:
        jobs = JobManager(args.job_dir, max_pending=args.max_jobs,
                          workers=args.workers)
    app = ServeApp(service, jobs)
    if not args.no_warmup:
        print("warming corpus and caches...", flush=True)
        service.warmup()
    try:
        thread = ServerThread(app, host=args.host, port=args.port)
    except OSError as exc:
        print(f"cannot bind {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 1
    thread.start()
    host, port = thread.address
    print(f"serving on http://{host}:{port} "
          f"(batch window {args.batch_window * 1000:.1f} ms, "
          f"jobs {'enabled' if jobs else 'disabled'})", flush=True)

    done = []

    def _stop(signum, frame) -> None:
        done.append(signum)

    signal.signal(signal.SIGINT, _stop)
    signal.signal(signal.SIGTERM, _stop)
    try:
        while not done:
            signal.pause()
    finally:
        print("draining in-flight work and shutting down...", flush=True)
        thread.stop()
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    """Closed-loop load test against a running `repro serve`."""
    import json

    from repro.serve import PredictRequest, ValidationError
    from repro.serve.bench import (DEFAULT_PAYLOADS, ServeBenchError,
                                   bench_report, run_serve_bench)

    if args.clients < 1 or args.requests < 1:
        print("--clients and --requests must be >= 1", file=sys.stderr)
        return 2
    payloads = list(DEFAULT_PAYLOADS)
    if args.payload is not None:
        try:
            loaded = json.loads(args.payload)
        except json.JSONDecodeError as exc:
            print(f"malformed --payload JSON: {exc}", file=sys.stderr)
            return 2
        payloads = loaded if isinstance(loaded, list) else [loaded]
    if args.profile is not None:
        if args.profile not in PROFILES:
            print(f"unknown profile {args.profile!r} "
                  f"(choose from {', '.join(sorted(PROFILES))})",
                  file=sys.stderr)
            return 2
        payloads = [dict(payload, profile=args.profile)
                    for payload in payloads]
    # Validate the request mix up front: a bench that 400s on every
    # request measures error latency, not the service.
    for payload in payloads:
        try:
            PredictRequest.from_payload(payload)
        except ValidationError as exc:
            print(f"invalid bench payload: {exc}", file=sys.stderr)
            return 2
    try:
        result = run_serve_bench(args.url, clients=args.clients,
                                 requests_per_client=args.requests,
                                 payloads=payloads,
                                 timeout=args.timeout)
    except ServeBenchError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    print(bench_report(result))
    if args.out is not None:
        write_report(result, args.out)
        print(f"wrote {args.out}")
    return 0


def _add_runtime_options(parser: argparse.ArgumentParser) -> None:
    """Options shared by the suite-running subcommands."""
    parser.add_argument(
        "--parallel", type=int, default=1, metavar="N",
        help="fan tasks out across N worker processes (default: 1)")
    parser.add_argument(
        "--cache", action="store_true",
        help=f"skip tasks already cached under {DEFAULT_CACHE_DIR}/")
    parser.add_argument(
        "--cache-dir", metavar="DIR",
        help="cache directory (implies --cache)")
    parser.add_argument(
        "--seed", type=int, default=DEFAULT_ROOT_SEED,
        help="root seed for per-task seed derivation "
             f"(default: {DEFAULT_ROOT_SEED})")
    parser.add_argument(
        "--fleet", action=argparse.BooleanOptionalAction, default=None,
        help="force the batched fleet paths on (--fleet) or the scalar "
             f"golden reference (--no-fleet, i.e. {FLEET_SLOW_ENV}=1); "
             "default: inherit the environment")
    parser.add_argument(
        "--stream", action=argparse.BooleanOptionalAction, default=None,
        help="route sweeps through the bounded-memory block pipelines "
             f"(--stream, i.e. {STREAM_ENV}=1) or the in-memory paths "
             "(--no-stream); default: inherit the environment")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Energy-aware 3G web browsing (ICDCS 2013) "
                    "reproduction toolkit")
    subparsers = parser.add_subparsers(dest="command", required=True)

    compare = subparsers.add_parser(
        "compare", help="compare both browsers on a benchmark page")
    compare.add_argument("--page", default="espn.go.com/sports",
                         help="Table 3 page name")
    compare.add_argument("--reading", type=float, default=20.0,
                         help="reading period after the load, seconds")
    compare.set_defaults(func=_cmd_compare)

    experiments = subparsers.add_parser(
        "experiments", help="regenerate the paper's tables and figures")
    experiments.add_argument("ids", nargs="*",
                             help="experiment ids (default: all)")
    _add_runtime_options(experiments)
    experiments.add_argument(
        "--report", metavar="PATH",
        help="write a structured run report (.json or .csv)")
    experiments.set_defaults(func=_cmd_experiments)

    ablation = subparsers.add_parser("ablations",
                                     help="run the ablation studies")
    ablation.add_argument("names", nargs="*",
                          help="reorganisation|timers|predictor|alpha|carriers")
    _add_runtime_options(ablation)
    ablation.add_argument(
        "--report", metavar="PATH",
        help="write a structured run report (.json or .csv)")
    ablation.set_defaults(func=_cmd_ablations)

    faults = subparsers.add_parser(
        "faults-sweep",
        help="sweep channel profiles: engine savings under faults")
    faults.add_argument("profiles", nargs="*",
                        help=f"channel profiles (default: all): "
                             f"{' '.join(PROFILES)}")
    _add_runtime_options(faults)
    faults.add_argument(
        "--report", metavar="PATH",
        help="write a structured run report (.json or .csv)")
    faults.set_defaults(func=_cmd_faults_sweep)

    def _add_scenario_options(sub: argparse.ArgumentParser) -> None:
        """Options shared by ``ablate`` and ``tune``."""
        sub.add_argument(
            "--profile", default="ideal", choices=tuple(PROFILES),
            help="channel profile the scenario runs under "
                 "(default: ideal)")
        sub.add_argument(
            "--pages", nargs="*", metavar="PAGE",
            help="Table 3 page names (default: a two-page set)")
        sub.add_argument(
            "--readings", type=float, nargs="*", metavar="SECONDS",
            help="reading-time grid (default: 2 5 9 15 30 60)")
        sub.add_argument(
            "--population", type=int, default=0, metavar="USERS",
            help="add a population-scale drop_probability metric for "
                 "USERS concurrent users (default: off)")
        sub.add_argument(
            "--channels", type=int, default=200,
            help="cell channels for --population (default: 200)")
        sub.add_argument(
            "--parallel", type=int, default=1, metavar="N",
            help="fan runs across N worker processes (default: 1)")
        sub.add_argument(
            "--cache", action="store_true",
            help=f"serve repeated runs from {DEFAULT_CACHE_DIR}/")
        sub.add_argument("--cache-dir", metavar="DIR",
                         help="cache directory (implies --cache)")
        sub.add_argument(
            "--seed", type=int, default=DEFAULT_ROOT_SEED,
            help="scenario/sampling seed (run seeds are spawned off "
                 f"content-addressed run IDs; default: "
                 f"{DEFAULT_ROOT_SEED})")

    ablate = subparsers.add_parser(
        "ablate",
        help="declarative ablation matrix + component importance")
    ablate.add_argument(
        "--matrix", default="loo",
        choices=("baseline", "loo", "ofat", "pairs", "factorial"),
        help="matrix generator (default: loo = leave-one-out)")
    ablate.add_argument(
        "--fraction", type=int, default=None, metavar="Q",
        help="run a deterministic 1/Q fractional factorial instead")
    ablate.add_argument(
        "--components", nargs="*", metavar="NAME",
        help="restrict to these declared components (default: all)")
    ablate.add_argument(
        "--registry", default="default",
        help="component registry name (default: default)")
    ablate.add_argument(
        "--metric", default="energy",
        help="metric the importance ranking folds (default: energy)")
    _add_scenario_options(ablate)
    ablate.add_argument(
        "--report", metavar="PATH",
        help="write the matrix results (.json or .csv)")
    ablate.add_argument(
        "--rank-out", metavar="PATH",
        help="write the importance ranking (.json or .csv)")
    ablate.set_defaults(func=_cmd_ablate)

    tune = subparsers.add_parser(
        "tune",
        help="constrained T1/T2 + α/Tp search per channel profile")
    tune.add_argument(
        "--algorithm", default="halving",
        choices=("grid", "random", "halving"),
        help="search algorithm (default: halving)")
    tune.add_argument(
        "--objective", default="energy",
        help="metric to minimise (default: energy; "
             "drop_probability needs --population N — per-trial "
             "capacity runs batched through the fleet block kernel)")
    tune.add_argument(
        "--budget-delay", type=float, default=None, metavar="SECONDS",
        help="constraint: mean next-click delay must stay <= SECONDS")
    tune.add_argument(
        "--budget-drop", type=float, default=None, metavar="P",
        help="constraint: drop_probability <= P (needs --population)")
    tune.add_argument(
        "--trials", type=int, default=16,
        help="random/halving trial budget (default: 16)")
    tune.add_argument(
        "--eta", type=int, default=2,
        help="halving promotion factor (default: 2)")
    tune.add_argument(
        "--points", type=int, default=3,
        help="grid points per parameter (default: 3)")
    tune.add_argument(
        "--trace", metavar="PATH",
        help="JSONL search trace; an existing trace resumes the search")
    _add_scenario_options(tune)
    tune.add_argument(
        "--report", metavar="PATH",
        help="write the full search result as JSON")
    tune.set_defaults(func=_cmd_tune)

    profile = subparsers.add_parser(
        "profile", help="run one task under cProfile and report hotspots")
    profile.add_argument("task", help="task id (e.g. fig11, alpha, ideal)")
    profile.add_argument(
        "--kind", default=runtime_parallel.KIND_EXPERIMENT,
        choices=(runtime_parallel.KIND_EXPERIMENT,
                 runtime_parallel.KIND_ABLATION,
                 runtime_parallel.KIND_FAULTS,
                 runtime_parallel.KIND_ABLATE),
        help="task registry to look in (default: experiment)")
    profile.add_argument("--top", type=int, default=25,
                         help="hotspot rows to keep (default: 25)")
    profile.add_argument("--sort", default="cumulative",
                         choices=("cumulative", "tottime", "ncalls"),
                         help="pstats sort order (default: cumulative)")
    profile.add_argument("--seed", type=int, default=None,
                         help="root seed for task-seed derivation "
                              f"(default: {DEFAULT_ROOT_SEED})")
    profile.add_argument("--report", metavar="PATH",
                         help="write hotspots + kernel metrics as JSON")
    profile.set_defaults(func=_cmd_profile)

    fleet_bench = subparsers.add_parser(
        "fleet-bench",
        help="time the batched fleet engine against the scalar paths")
    fleet_bench.add_argument(
        "--scale", type=int, default=10,
        help="channel-count multiple of the paper's N=200 (default: 10)")
    fleet_bench.add_argument(
        "--handsets", type=int, default=1500,
        help="handsets in the RRC accounting round (default: 1500)")
    fleet_bench.add_argument("--seed", type=int, default=7)
    fleet_bench.add_argument(
        "--backend", default="numpy",
        help="array namespace for the kernel ports: numpy (default, "
             "reference path), restricted, array_api_strict, torch, "
             "cupy; non-numpy adds a backend parity/timing section")
    fleet_bench.set_defaults(func=_cmd_fleet_bench)

    stream_sweep = subparsers.add_parser(
        "stream-sweep",
        help="capacity sweep through the bounded-memory block pipeline")
    stream_sweep.add_argument(
        "--scale", type=int, default=10,
        help="channel-count multiple of the paper's N=200 (default: 10)")
    stream_sweep.add_argument(
        "--horizon", type=float, default=28800.0,
        help="simulated horizon in seconds (default: 28800 = 8h)")
    stream_sweep.add_argument(
        "--users", type=int, nargs="*", default=None,
        help="explicit user counts (default: bracket the capacity knee)")
    stream_sweep.add_argument(
        "--block", type=int, default=None,
        help="arrivals per streamed block (default: 65536)")
    stream_sweep.add_argument("--seed", type=int, default=7,
                              help="sweep root seed (default: 7)")
    stream_sweep.add_argument(
        "--pool-seed", type=int, default=7,
        help="service-time pool seed (default: 7)")
    stream_sweep.add_argument(
        "--out", metavar="DIR", default=None,
        help="shard directory for checkpoint/resume spills")
    stream_sweep.add_argument(
        "--checkpoint-every", type=int, default=8, metavar="BLOCKS",
        help="blocks between checkpoint spills (default: 8)")
    stream_sweep.add_argument(
        "--parallel", type=int, default=1, metavar="N",
        help="fan sweep points across N worker processes (default: 1)")
    stream_sweep.add_argument(
        "--work-dir", metavar="DIR", default=None,
        help="shared work directory for the distributed "
             "work-stealing executor; run the same command from "
             "several processes/hosts to split the sweep")
    stream_sweep.add_argument(
        "--worker-id", metavar="K/N", default="0/1",
        help="this worker's index and the worker count, e.g. 1/4 "
             "(default: 0/1); only used with --work-dir")
    stream_sweep.add_argument(
        "--unit-blocks", type=int, default=8, metavar="BLOCKS",
        help="blocks per work unit in --work-dir mode (default: 8)")
    stream_sweep.add_argument(
        "--stale-after", type=float, default=30.0, metavar="SECONDS",
        help="heartbeat age after which a worker's claim is stolen "
             "in --work-dir mode (default: 30)")
    stream_sweep.add_argument(
        "--stream", action=argparse.BooleanOptionalAction, default=None,
        help="block pipeline (--stream, default) or the in-memory "
             "reference (--no-stream) — the reports are identical")
    stream_sweep.add_argument(
        "--report", metavar="PATH",
        help="write points + runtime counters (.json or .csv)")
    stream_sweep.set_defaults(func=_cmd_stream_sweep)

    trace = subparsers.add_parser(
        "trace", help="generate a synthetic browsing trace as CSV")
    trace.add_argument("--out", required=True)
    trace.add_argument("--users", type=int, default=40)
    trace.add_argument("--views", type=int, default=180)
    trace.add_argument("--seed", type=int, default=DEFAULT_ROOT_SEED,
                       help="root seed for trace generation "
                            f"(default: {DEFAULT_ROOT_SEED})")
    trace.set_defaults(func=_cmd_trace)

    train = subparsers.add_parser(
        "train", help="train the reading-time predictor from a trace CSV")
    train.add_argument("--trace", required=True)
    train.add_argument("--out", required=True)
    train.add_argument("--alpha", type=float, default=2.0)
    train.add_argument("--no-interest-threshold", action="store_true")
    train.set_defaults(func=_cmd_train)

    predict = subparsers.add_parser(
        "predict", help="evaluate a trained model's threshold accuracy")
    predict.add_argument("--model", required=True)
    predict.add_argument("--trace", required=True)
    predict.add_argument("--threshold", type=float, default=9.0)
    predict.set_defaults(func=_cmd_predict)

    session = subparsers.add_parser(
        "session", help="replay a trace user's session with Algorithm 2")
    session.add_argument("--user", type=int, default=35)
    session.add_argument("--mode", choices=("power", "delay"),
                         default="power")
    session.add_argument("--seed", type=int, default=DEFAULT_ROOT_SEED,
                         help="root seed for trace generation "
                              f"(default: {DEFAULT_ROOT_SEED})")
    session.set_defaults(func=_cmd_session)

    serve = subparsers.add_parser(
        "serve", help="run the what-if capacity-planning HTTP service")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8323,
                       help="listen port; 0 binds an ephemeral port "
                            "(default: 8323)")
    serve.add_argument("--batch-window", type=float, default=0.005,
                       metavar="S",
                       help="micro-batch collection window in seconds; "
                            "0 disables batching (default: 0.005)")
    serve.add_argument("--max-batch", type=int, default=64,
                       help="max predictions per batch (default: 64)")
    serve.add_argument("--job-dir", metavar="DIR",
                       help="enable async /sweep jobs rooted at DIR "
                            "(resumable across restarts)")
    serve.add_argument("--max-jobs", type=int, default=4,
                       help="pending sweep-job queue bound; a full "
                            "queue answers 429 (default: 4)")
    serve.add_argument("--workers", type=int, default=1,
                       help="background sweep worker threads "
                            "(default: 1)")
    serve.add_argument("--cache-dir", metavar="DIR",
                       help="persist page-load results under DIR")
    serve.add_argument("--no-warmup", action="store_true",
                       help="skip corpus warmup (first requests pay it)")
    serve.set_defaults(func=_cmd_serve)

    serve_bench = subparsers.add_parser(
        "serve-bench",
        help="closed-loop load test against a running `repro serve`")
    serve_bench.add_argument("--url", default="http://127.0.0.1:8323",
                             help="server base URL "
                                  "(default: http://127.0.0.1:8323)")
    serve_bench.add_argument("--clients", type=int, default=8,
                             help="concurrent closed-loop clients "
                                  "(default: 8)")
    serve_bench.add_argument("--requests", type=int, default=25,
                             help="requests per client (default: 25)")
    serve_bench.add_argument("--payload", metavar="JSON",
                             help="predict payload (or JSON list of "
                                  "payloads) instead of the default mix")
    serve_bench.add_argument("--profile",
                             help="override the fault profile in every "
                                  "bench payload")
    serve_bench.add_argument("--timeout", type=float, default=60.0,
                             help="per-request timeout in seconds "
                                  "(default: 60)")
    serve_bench.add_argument("--out", metavar="PATH",
                             help="write the result row as JSON/CSV")
    serve_bench.set_defaults(func=_cmd_serve_bench)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    # Die quietly on SIGPIPE so `repro experiments | head` doesn't
    # traceback: the suite reports are long and made to be piped.
    if hasattr(signal, "SIGPIPE"):
        signal.signal(signal.SIGPIPE, signal.SIG_DFL)
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
