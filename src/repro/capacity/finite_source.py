"""Finite-source (Engset-style) capacity model.

The paper's Fig. 11 gains (+14.3 % / +19.6 %) are *smaller* than an
M/G/N loss system permits: at fixed blocking, Erlang-B insensitivity
makes capacity inversely proportional to the holding time, which for a
26 % shorter transmission would be ≈ +35 %.  A finite-source model
explains the difference: if each user only *starts thinking about* the
next page after the previous session ends (think time ~ Exp(λ = 25 s)
following service), long holding times also throttle each user's own
arrival rate, damping the capacity benefit of shortening them.

This simulator implements that alternative reading of "each user
generates data transmission sessions with Poisson distribution interval
λ = 25 seconds": per-user renewal cycles of think → hold (or drop).
"""

from __future__ import annotations

import heapq
from typing import Optional, Sequence

import numpy as np

from repro.capacity.simulator import CapacityConfig, CapacityResult, CapacitySimulator
from repro.units import require_positive


class FiniteSourceCapacitySimulator:
    """Engset-style loss simulation: think time gates each user's next
    session."""

    def __init__(self, service_times: Sequence[float],
                 config: Optional[CapacityConfig] = None):
        times = np.asarray(list(service_times), dtype=float)
        if times.size == 0:
            raise ValueError("need at least one service-time sample")
        if (times <= 0).any():
            raise ValueError("service times must be positive")
        self.service_times = times
        self.config = config or CapacityConfig()

    @property
    def mean_service_time(self) -> float:
        return float(self.service_times.mean())

    def run(self, n_users: int, seed: Optional[int] = None
            ) -> CapacityResult:
        """Simulate ``n_users`` cycling think → request → hold/drop."""
        require_positive("n_users", n_users)
        config = self.config
        rng = np.random.default_rng(config.seed if seed is None else seed)

        # Per-user next-request instants, processed in time order.
        requests = [(float(t), index) for index, t in enumerate(
            rng.exponential(config.mean_interval, size=n_users))]
        heapq.heapify(requests)
        busy: list = []  # channel release times
        sessions = dropped = 0

        while requests:
            at, user = heapq.heappop(requests)
            if at >= config.horizon:
                continue
            while busy and busy[0] <= at:
                heapq.heappop(busy)
            sessions += 1
            think = float(rng.exponential(config.mean_interval))
            if len(busy) >= config.n_channels:
                dropped += 1
                next_at = at + think  # dropped session: think again
            else:
                service = float(rng.choice(self.service_times))
                heapq.heappush(busy, at + service)
                next_at = at + service + think
            heapq.heappush(requests, (next_at, user))
        return CapacityResult(n_users=n_users, sessions=sessions,
                              dropped=dropped)

    # Same decorrelated-by-default sweep seeding as the M/G/N model;
    # both only need ``self.config`` and ``self.run``.
    sweep_seeds = CapacitySimulator.sweep_seeds
    sweep = CapacitySimulator.sweep
