"""Finite-source (Engset-style) capacity model.

The paper's Fig. 11 gains (+14.3 % / +19.6 %) are *smaller* than an
M/G/N loss system permits: at fixed blocking, Erlang-B insensitivity
makes capacity inversely proportional to the holding time, which for a
26 % shorter transmission would be ≈ +35 %.  A finite-source model
explains the difference: if each user only *starts thinking about* the
next page after the previous session ends (think time ~ Exp(λ = 25 s)
following service), long holding times also throttle each user's own
arrival rate, damping the capacity benefit of shortening them.

This simulator implements that alternative reading of "each user
generates data transmission sessions with Poisson distribution interval
λ = 25 seconds": per-user renewal cycles of think → hold (or drop).
"""

from __future__ import annotations

import heapq
from typing import Optional, Sequence

import numpy as np

from repro.capacity.simulator import CapacityConfig, CapacityResult, CapacitySimulator
from repro.units import require_positive


class FiniteSourceCapacitySimulator:
    """Engset-style loss simulation: think time gates each user's next
    session."""

    def __init__(self, service_times: Sequence[float],
                 config: Optional[CapacityConfig] = None):
        # asarray, not array: an ndarray input (e.g. a shared-memory
        # view from repro.runtime.shm) is used in place, not copied.
        times = np.asarray(service_times, dtype=float)
        if times.size == 0:
            raise ValueError("need at least one service-time sample")
        if (times <= 0).any():
            raise ValueError("service times must be positive")
        self.service_times = times
        self.config = config or CapacityConfig()

    @property
    def mean_service_time(self) -> float:
        return float(self.service_times.mean())

    def run(self, n_users: int, seed: Optional[int] = None
            ) -> CapacityResult:
        """Simulate ``n_users`` cycling think → request → hold/drop.

        The loop is the library's single hottest path (millions of
        sessions per Fig. 11 point), so it runs on plain floats with
        locally-bound heap ops.  Two identities keep the RNG stream and
        results exactly those of the straightforward version: a scalar
        ``rng.choice(a)`` consumes the generator identically to
        ``a[rng.integers(0, a.size)]`` (without the array-handling
        overhead), and the per-user heap needs no user identity — users
        are statistically interchangeable, every draw is
        identity-independent, so a heap of bare request times yields the
        same session/drop counts as a heap of ``(time, user)`` pairs.
        """
        require_positive("n_users", n_users)
        config = self.config
        rng = np.random.default_rng(config.seed if seed is None else seed)

        horizon = config.horizon
        n_channels = config.n_channels
        mean_interval = config.mean_interval
        service_list = self.service_times.tolist()
        n_service = self.service_times.size
        exponential = rng.exponential
        integers = rng.integers
        heappush = heapq.heappush
        heappop = heapq.heappop

        # Per-user next-request instants, processed in time order.
        requests = rng.exponential(mean_interval, size=n_users).tolist()
        heapq.heapify(requests)
        busy: list = []  # channel release times
        sessions = dropped = 0

        while requests:
            at = heappop(requests)
            if at >= horizon:
                continue
            while busy and busy[0] <= at:
                heappop(busy)
            sessions += 1
            think = exponential(mean_interval)
            if len(busy) >= n_channels:
                dropped += 1
                next_at = at + think  # dropped session: think again
            else:
                service = service_list[integers(0, n_service)]
                heappush(busy, at + service)
                next_at = at + service + think
            heappush(requests, next_at)
        return CapacityResult(n_users=n_users, sessions=sessions,
                              dropped=dropped)

    # Same decorrelated-by-default sweep seeding as the M/G/N model;
    # both only need ``self.config`` and ``self.run``.
    sweep_seeds = CapacitySimulator.sweep_seeds
    sweep = CapacitySimulator.sweep
