"""Discrete-event M/G/N/N capacity simulator.

Replicates the paper's experiment: N = 200 dedicated channel pairs, each
of ``n_users`` generating browsing sessions with Poisson(λ = 25 s)
inter-arrival times over a 4-hour horizon; each session holds a channel
for one page's data transmission time (drawn from an empirical
distribution measured on the benchmark); a session arriving when all
channels are busy is dropped.

Shorter transmission times — the energy-aware browser's effect — mean
more supportable users at the same dropping probability (Fig. 11).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.fleet import fleet_enabled
from repro.fleet.capacity import resolve_drops
from repro.runtime.seeding import spawn_seeds
from repro.units import hours, require_positive


@dataclass(frozen=True)
class CapacityConfig:
    """Parameters of the capacity experiment (Section 5.4)."""

    n_channels: int = 200
    #: Mean inter-session interval per user, seconds (the paper's λ).
    mean_interval: float = 25.0
    #: Simulated horizon, seconds (the paper uses 4 hours).
    horizon: float = hours(4)
    seed: int = 42

    def __post_init__(self) -> None:
        if self.n_channels < 1:
            raise ValueError("n_channels must be at least 1")
        require_positive("mean_interval", self.mean_interval)
        require_positive("horizon", self.horizon)


@dataclass(frozen=True)
class CapacityResult:
    """Outcome of one capacity run."""

    n_users: int
    sessions: int
    dropped: int

    @property
    def drop_probability(self) -> float:
        if self.sessions == 0:
            return 0.0
        return self.dropped / self.sessions


def arrival_draw_count(rate: float, horizon: float) -> int:
    """Exponential gaps drawn for one run (mean + 6 sigma headroom).

    Shared between the materialising :meth:`CapacitySimulator.draw` and
    the chunked :class:`repro.stream.source.ArrivalBlockSource` — both
    must consume exactly this many draws for their RNG streams to stay
    aligned draw-for-draw.
    """
    n_expected = rate * horizon
    return int(n_expected + 6 * np.sqrt(n_expected) + 10)


def heap_drop_count(arrivals: np.ndarray, services: np.ndarray,
                    n_channels: int) -> int:
    """Dropped-session count via the scalar min-heap reference loop."""
    busy: list = []  # min-heap of channel release times
    dropped = 0
    heappush = heapq.heappush
    heappop = heapq.heappop
    # Iterate plain floats: numpy-scalar comparisons inside the heap
    # would dominate this loop's cost.
    for arrival, service in zip(arrivals.tolist(), services.tolist()):
        while busy and busy[0] <= arrival:
            heappop(busy)
        if len(busy) >= n_channels:
            dropped += 1
            continue
        heappush(busy, arrival + service)
    return dropped


class CapacitySimulator:
    """Erlang-loss simulation with empirical service times."""

    def __init__(self, service_times: Sequence[float],
                 config: Optional[CapacityConfig] = None):
        # asarray, not array: an ndarray input (e.g. a shared-memory
        # view from repro.runtime.shm) is used in place, not copied.
        times = np.asarray(service_times, dtype=float)
        if times.size == 0:
            raise ValueError("need at least one service-time sample")
        if (times <= 0).any():
            raise ValueError("service times must be positive")
        self.service_times = times
        self.config = config or CapacityConfig()

    @property
    def mean_service_time(self) -> float:
        return float(self.service_times.mean())

    def draw(self, n_users: int, rng: np.random.Generator):
        """Draw one run's ``(arrivals, services)`` arrays from ``rng``.

        This is the canonical draw order every equivalent path must
        reproduce: all gaps, cumulative-summed and truncated at the
        horizon, then one ``choice`` for the services.
        """
        config = self.config
        # Superposition of the users' Poisson processes is Poisson with
        # aggregate rate n_users / mean_interval.
        rate = n_users / config.mean_interval
        n_draw = arrival_draw_count(rate, config.horizon)
        gaps = rng.exponential(1.0 / rate, size=n_draw)
        arrivals = np.cumsum(gaps)
        arrivals = arrivals[arrivals < config.horizon]
        services = rng.choice(self.service_times, size=arrivals.size)
        return arrivals, services

    def run(self, n_users: int, seed: Optional[int] = None
            ) -> CapacityResult:
        """Simulate ``n_users`` browsing for the configured horizon."""
        require_positive("n_users", n_users)
        config = self.config
        rng = np.random.default_rng(config.seed if seed is None else seed)
        arrivals, services = self.draw(n_users, rng)

        if fleet_enabled():
            # Same draws, same loss process: the sorted-count sweep of
            # repro.fleet.capacity resolves the identical drop set
            # without walking the heap session by session.
            dropped = int(resolve_drops(
                arrivals, services, config.n_channels).sum())
        else:
            dropped = heap_drop_count(arrivals, services,
                                      config.n_channels)
        return CapacityResult(n_users=n_users, sessions=int(arrivals.size),
                              dropped=dropped)

    def sweep_seeds(self, n_points: int,
                    seed: Optional[int] = None,
                    common_random_numbers: bool = False) -> list:
        """Per-point seeds for a sweep of ``n_points`` user counts.

        By default each point gets an independent child of one
        ``SeedSequence`` root, so adjacent sweep points are statistically
        decorrelated (sharing one seed biases the whole curve up or down
        together).  ``common_random_numbers=True`` opts back into a
        single shared seed — the classic variance-reduction trick for
        *comparing* two systems point-by-point on the same arrival luck.
        """
        base = self.config.seed if seed is None else seed
        if common_random_numbers:
            return [base] * n_points
        return spawn_seeds(base, n_points)

    def sweep(self, user_counts: Sequence[int],
              seed: Optional[int] = None,
              common_random_numbers: bool = False) -> list:
        """Run a user-count sweep; returns a list of results."""
        seeds = self.sweep_seeds(len(user_counts), seed=seed,
                                 common_random_numbers=common_random_numbers)
        return [self.run(n, seed=s)
                for n, s in zip(user_counts, seeds)]


def capacity_at_drop_target(simulator: CapacitySimulator, target: float,
                            lo: int = 10, hi: int = 5000,
                            seed: Optional[int] = None) -> int:
    """Largest user count whose drop probability stays ≤ ``target``.

    Binary search over a monotone (in expectation) dropping curve.
    """
    if not 0.0 < target < 1.0:
        raise ValueError("target must be in (0, 1)")
    if simulator.run(hi, seed=seed).drop_probability <= target:
        return hi
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if simulator.run(mid, seed=seed).drop_probability <= target:
            lo = mid
        else:
            hi = mid - 1
    return lo
