"""Backbone network capacity substrate (Section 5.4).

The paper models the pool of dedicated transmission channels as an
M/G/N multi-server queue with zero queueing room (an Erlang loss
system): each web-browsing session needs one channel pair for its data
transmission time and is dropped if none is free.  This package provides
both a discrete-event simulator of that system (the paper's methodology)
and the analytic Erlang-B formula as a cross-check.
"""

from repro.capacity.erlang import erlang_b, offered_load
from repro.capacity.simulator import (
    CapacityConfig,
    CapacityResult,
    CapacitySimulator,
    capacity_at_drop_target,
)
from repro.capacity.finite_source import FiniteSourceCapacitySimulator

__all__ = [
    "erlang_b",
    "offered_load",
    "CapacityConfig",
    "CapacityResult",
    "CapacitySimulator",
    "capacity_at_drop_target",
    "FiniteSourceCapacitySimulator",
]
