"""Analytic Erlang-B blocking probability.

For an M/G/N/N loss system the blocking probability depends on the
service-time distribution only through its mean (insensitivity), so
Erlang-B is an exact reference for the simulator:

    B(N, A) with offered load A = arrival rate × mean service time.

Computed with the numerically stable recurrence
B(0) = 1;  B(k) = A·B(k−1) / (k + A·B(k−1)).
"""

from __future__ import annotations

from repro.units import require_non_negative, require_positive


def offered_load(n_users: int, mean_interval: float,
                 mean_service: float) -> float:
    """Offered load in erlangs for ``n_users`` each generating sessions
    with exponential inter-arrival mean ``mean_interval`` seconds and
    mean service time ``mean_service`` seconds."""
    require_positive("n_users", n_users)
    require_positive("mean_interval", mean_interval)
    require_non_negative("mean_service", mean_service)
    return n_users / mean_interval * mean_service


def erlang_b(n_channels: int, load_erlangs: float) -> float:
    """Blocking probability of an Erlang loss system."""
    if n_channels < 1:
        raise ValueError("n_channels must be at least 1")
    require_non_negative("load_erlangs", load_erlangs)
    if load_erlangs == 0:
        return 0.0
    blocking = 1.0
    for k in range(1, n_channels + 1):
        blocking = load_erlangs * blocking / (k + load_erlangs * blocking)
    return blocking
