"""Optional FastAPI front-end over the same :class:`ServeApp` router.

FastAPI is **not** a dependency of this repo — the stdlib
``ThreadingHTTPServer`` in :mod:`repro.serve.http` is the production
path and the only one tier-1 tests exercise.  This module exists for
deployments that already live behind an ASGI stack: if ``fastapi`` is
importable, :func:`create_fastapi_app` returns an app whose endpoints
delegate verbatim to ``ServeApp.handle`` — same validation, same error
bodies, same status codes — so the two transports cannot drift.

If ``fastapi`` is missing, importing this module still succeeds;
calling :func:`create_fastapi_app` raises a clear ``RuntimeError``.
"""

from __future__ import annotations

from repro.serve.http import ServeApp

try:  # pragma: no cover - absent in the pinned environment
    import fastapi as _fastapi
except ImportError:  # pragma: no cover
    _fastapi = None


def fastapi_available() -> bool:
    """True when the optional ``fastapi`` extra is importable."""
    return _fastapi is not None


def create_fastapi_app(app: ServeApp):
    """Wrap a :class:`ServeApp` in a FastAPI application.

    Raises ``RuntimeError`` when fastapi is not installed — install the
    extra or use ``repro serve`` (stdlib server, zero dependencies).
    """
    if _fastapi is None:
        raise RuntimeError(
            "fastapi is not installed; `repro serve` uses the stdlib "
            "server and needs no extras — install fastapi only if you "
            "specifically want the ASGI front-end")

    from fastapi import Request
    from fastapi.responses import JSONResponse

    api = _fastapi.FastAPI(title="repro-serve", docs_url=None,
                           redoc_url=None)

    def _reply(result) -> JSONResponse:
        status, body, headers = result
        return JSONResponse(body, status_code=status, headers=headers)

    @api.get("/health")
    def health() -> JSONResponse:
        return _reply(app.handle("GET", "/health"))

    @api.get("/metrics")
    def metrics() -> JSONResponse:
        return _reply(app.handle("GET", "/metrics"))

    @api.post("/predict")
    async def predict(request: Request) -> JSONResponse:
        payload = await request.json()
        return _reply(app.handle("POST", "/predict", payload))

    @api.post("/sweep")
    async def sweep(request: Request) -> JSONResponse:
        payload = await request.json()
        return _reply(app.handle("POST", "/sweep", payload))

    @api.get("/jobs/{job_id}")
    def job_status(job_id: str) -> JSONResponse:
        return _reply(app.handle("GET", f"/jobs/{job_id}"))

    return api
