"""Micro-batching across concurrent request threads.

The fleet engines are batch-native: one ``evaluate_setups`` call over N
trials costs far less than N calls over one trial each (one unit-grid
pass, one set of namespace transfers).  A serving process receives
those N trials as N *concurrent HTTP requests*, so the batcher's job is
to re-assemble them: the first request thread to arrive becomes the
round's **leader**, waits a small collection window for peers, then
executes everyone's work as one batch and distributes the results.

Duplicate requests (same canonical key) inside one window coalesce onto
a single slot — one computation fans out to every waiter, which is what
makes hot what-if scenarios nearly free under load.

``window=0`` disables batching entirely: every caller computes its own
single-item batch inline.  That degenerate mode is the honest
"unbatched" baseline the BENCH_8 gate compares against — same code
path, no coalescing, no shared fleet call.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

#: Default collection window, seconds.  Long enough that a burst of
#: closed-loop clients lands in one round, short enough to be invisible
#: next to a cold page-load (hundreds of ms).
DEFAULT_BATCH_WINDOW = 0.005

#: Default cap on distinct keys per round; a full round executes early.
DEFAULT_MAX_BATCH = 64


class BatcherClosed(RuntimeError):
    """submit() after close(): the server is draining for shutdown."""


class _Entry:
    __slots__ = ("key", "item", "event", "result", "error", "waiters")

    def __init__(self, key: Hashable, item):
        self.key = key
        self.item = item
        self.event = threading.Event()
        self.result = None
        self.error: Optional[BaseException] = None
        #: Extra callers riding this slot (duplicates coalesced).
        self.waiters = 0


class MicroBatcher:
    """Coalesce concurrent ``submit`` calls into windowed batches.

    ``compute`` receives the round's unique items (in arrival order)
    and must return one result per item, same order.  If it raises, the
    whole round observes the exception — deterministic computations
    will fail identically per-item anyway, and a transient fault is the
    caller's to retry.

    ``on_round(n_items, n_coalesced)`` fires after each executed round
    (and after each inline single-item computation when ``window=0``),
    so the owner can fold batching effectiveness into its metrics.
    """

    def __init__(self, compute: Callable[[List[object]], Sequence[object]],
                 window: float = DEFAULT_BATCH_WINDOW,
                 max_batch: int = DEFAULT_MAX_BATCH,
                 on_round: Optional[Callable[[int, int], None]] = None):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self._compute = compute
        self.window = float(window)
        self.max_batch = int(max_batch)
        self._on_round = on_round
        self._cond = threading.Condition()
        self._pending: Dict[Hashable, _Entry] = {}
        self._leader_active = False
        self._closed = False

    # -- hot path --------------------------------------------------------

    def submit(self, key: Hashable, item):
        """Compute ``item`` (or join an identical in-flight one)."""
        if self.window <= 0:
            return self._run_inline(key, item)
        with self._cond:
            if self._closed:
                raise BatcherClosed("batcher is closed")
            entry = self._pending.get(key)
            lead = False
            if entry is not None:
                entry.waiters += 1
            else:
                entry = _Entry(key, item)
                self._pending[key] = entry
                if not self._leader_active:
                    self._leader_active = True
                    lead = True
                elif len(self._pending) >= self.max_batch:
                    self._cond.notify_all()  # wake the leader early
        if lead:
            self._lead_round()
        entry.event.wait()
        if entry.error is not None:
            raise entry.error
        return entry.result

    def _run_inline(self, key: Hashable, item):
        with self._cond:
            if self._closed:
                raise BatcherClosed("batcher is closed")
        results = self._compute([item])
        if len(results) != 1:
            raise RuntimeError(
                f"batch compute returned {len(results)} results "
                "for 1 item")
        if self._on_round is not None:
            self._on_round(1, 0)
        return results[0]

    def _lead_round(self) -> None:
        deadline = time.monotonic() + self.window
        with self._cond:
            while (len(self._pending) < self.max_batch
                   and not self._closed):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(remaining)
            batch = list(self._pending.values())
            self._pending = {}
            self._leader_active = False
            self._cond.notify_all()
        coalesced = sum(entry.waiters for entry in batch)
        try:
            results = self._compute([entry.item for entry in batch])
            if len(results) != len(batch):
                raise RuntimeError(
                    f"batch compute returned {len(results)} results "
                    f"for {len(batch)} items")
            for entry, result in zip(batch, results):
                entry.result = result
        except BaseException as exc:
            for entry in batch:
                entry.error = exc
        finally:
            for entry in batch:
                entry.event.set()
            if self._on_round is not None:
                self._on_round(len(batch), coalesced)

    # -- lifecycle -------------------------------------------------------

    def close(self, timeout: float = 30.0) -> None:
        """Refuse new work, then wait for in-flight rounds to drain.

        Entries already registered keep their promise: the active
        leader still executes them (its collection wait is cut short by
        the notify), so a graceful shutdown answers everything it
        accepted.
        """
        deadline = time.monotonic() + timeout
        with self._cond:
            self._closed = True
            self._cond.notify_all()
            while self._pending or self._leader_active:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(min(remaining, 0.05))

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed
