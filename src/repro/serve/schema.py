"""Request schemas for the what-if service: hand-rolled validation.

The service speaks plain JSON dicts so the stdlib HTTP front-end works
with zero dependencies; these dataclasses give the payloads a typed,
validated shape (pydantic-style, without pydantic).  Every defect in a
payload raises :class:`ValidationError` naming the offending field —
the HTTP layer turns that into a 400 whose body tells the operator
exactly what to fix.

Validation is *eager and closed*: unknown fields are rejected (a typo
like ``"readingtimes"`` must not silently fall back to the default),
and domain rules (known channel profile, known benchmark page, positive
population) are enforced here rather than as a 500 deep inside an
engine.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.ablation.components import VariantSetup
from repro.ablation.objective import (DEFAULT_PAGES,
                                      DEFAULT_READING_TIMES,
                                      PopulationSpec, Scenario)
from repro.capacity.simulator import CapacityConfig
from repro.faults.profiles import PROFILES
from repro.runtime.seeding import DEFAULT_ROOT_SEED
from repro.sched import spec_payload
from repro.stream import DEFAULT_BLOCK_ARRIVALS
from repro.stream.sweep import lognormal_pool
from repro.sched.units import DEFAULT_UNIT_BLOCKS
from repro.webpages.corpus import FULL_BENCHMARK, MOBILE_BENCHMARK


class ValidationError(ValueError):
    """A request payload defect, attributed to one field."""

    def __init__(self, field_name: str, message: str):
        super().__init__(f"{field_name}: {message}")
        self.field = field_name
        self.message = message

    def to_dict(self) -> Dict[str, str]:
        return {"field": self.field, "message": self.message}


def known_page_names() -> Tuple[str, ...]:
    """Every valid ``pages`` entry (Table 3 paper names)."""
    return tuple(entry.paper_name
                 for entry in MOBILE_BENCHMARK + FULL_BENCHMARK)


def _require_mapping(payload) -> dict:
    if not isinstance(payload, dict):
        raise ValidationError(
            "body", f"expected a JSON object, got "
            f"{type(payload).__name__}")
    return payload


def _reject_unknown(payload: dict, allowed) -> None:
    unknown = sorted(set(payload) - set(allowed))
    if unknown:
        raise ValidationError(
            unknown[0], f"unknown field {unknown[0]!r}; allowed: "
            f"{sorted(allowed)}")


def _int_field(payload: dict, name: str, default, *,
               minimum: Optional[int] = None) -> int:
    value = payload.get(name, default)
    if value is None:
        raise ValidationError(name, "is required")
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValidationError(
            name, f"expected an integer, got {value!r}")
    if minimum is not None and value < minimum:
        raise ValidationError(name, f"must be >= {minimum}, got {value}")
    return int(value)


def _float_field(payload: dict, name: str, default, *,
                 positive: bool = False) -> float:
    value = payload.get(name, default)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValidationError(name, f"expected a number, got {value!r}")
    value = float(value)
    if positive and value <= 0:
        raise ValidationError(name, f"must be positive, got {value}")
    return value


def _str_field(payload: dict, name: str, default) -> str:
    value = payload.get(name, default)
    if not isinstance(value, str):
        raise ValidationError(name, f"expected a string, got {value!r}")
    return value


def _profile_field(payload: dict, name: str = "profile") -> str:
    profile = _str_field(payload, name, "ideal")
    if profile not in PROFILES:
        raise ValidationError(
            name, f"unknown channel profile {profile!r}; known: "
            f"{sorted(PROFILES)}")
    return profile


def _pages_field(payload: dict) -> Tuple[str, ...]:
    pages = payload.get("pages", list(DEFAULT_PAGES))
    if not isinstance(pages, (list, tuple)) or not pages:
        raise ValidationError(
            "pages", f"expected a non-empty list of page names, got "
            f"{pages!r}")
    known = known_page_names()
    out = []
    for page in pages:
        if not isinstance(page, str):
            raise ValidationError(
                "pages", f"expected page names, got {page!r}")
        if page not in known:
            raise ValidationError(
                "pages", f"unknown benchmark page {page!r}; known: "
                f"{sorted(known)}")
        out.append(page)
    return tuple(out)


def _readings_field(payload: dict) -> Tuple[float, ...]:
    readings = payload.get("reading_times", list(DEFAULT_READING_TIMES))
    if not isinstance(readings, (list, tuple)) or not readings:
        raise ValidationError(
            "reading_times", f"expected a non-empty list of seconds, "
            f"got {readings!r}")
    out = []
    for value in readings:
        if isinstance(value, bool) or not isinstance(value,
                                                     (int, float)):
            raise ValidationError(
                "reading_times", f"expected numbers, got {value!r}")
        if value < 0:
            raise ValidationError(
                "reading_times", f"must be non-negative, got {value}")
        out.append(float(value))
    return tuple(out)


def _setup_field(payload: dict) -> Tuple[Tuple[str, object], ...]:
    overrides = payload.get("setup", {})
    if not isinstance(overrides, dict):
        raise ValidationError(
            "setup", f"expected an object of VariantSetup overrides, "
            f"got {overrides!r}")
    try:
        VariantSetup().apply(overrides)
    except KeyError as exc:
        raise ValidationError("setup", str(exc).strip("'\""))
    except (TypeError, ValueError) as exc:
        raise ValidationError("setup", str(exc))
    return tuple(sorted(overrides.items()))


@dataclass(frozen=True)
class PredictRequest:
    """One ``POST /predict`` scenario: profile + pages + timers + users.

    Defaults mirror the ablation layer's canonical scenario, so an
    empty ``{"n_users": 300}`` body asks the paper's own question.
    """

    n_users: int
    profile: str = "ideal"
    pages: Tuple[str, ...] = DEFAULT_PAGES
    reading_times: Tuple[float, ...] = DEFAULT_READING_TIMES
    seed: int = DEFAULT_ROOT_SEED
    n_channels: int = 200
    horizon: float = 3600.0
    mean_interval: float = 25.0
    setup_overrides: Tuple[Tuple[str, object], ...] = ()

    _FIELDS = ("n_users", "profile", "pages", "reading_times", "seed",
               "n_channels", "horizon", "mean_interval", "setup")

    @classmethod
    def from_payload(cls, payload) -> "PredictRequest":
        payload = _require_mapping(payload)
        _reject_unknown(payload, cls._FIELDS)
        return cls(
            n_users=_int_field(payload, "n_users", None, minimum=1),
            profile=_profile_field(payload),
            pages=_pages_field(payload),
            reading_times=_readings_field(payload),
            seed=_int_field(payload, "seed", DEFAULT_ROOT_SEED),
            n_channels=_int_field(payload, "n_channels", 200,
                                  minimum=1),
            horizon=_float_field(payload, "horizon", 3600.0,
                                 positive=True),
            mean_interval=_float_field(payload, "mean_interval", 25.0,
                                       positive=True),
            setup_overrides=_setup_field(payload))

    def setup(self) -> VariantSetup:
        return VariantSetup().apply(dict(self.setup_overrides))

    def population(self) -> PopulationSpec:
        return PopulationSpec(n_users=self.n_users,
                              n_channels=self.n_channels,
                              horizon=self.horizon,
                              mean_interval=self.mean_interval)

    def scenario(self, with_population: bool = False) -> Scenario:
        return Scenario(
            profile=self.profile, pages=self.pages,
            reading_times=self.reading_times, seed=self.seed,
            population=self.population() if with_population else None)

    def canonical(self) -> Tuple:
        """Hashable identity — the micro-batcher's dedup key."""
        return (self.profile, self.pages, self.reading_times, self.seed,
                self.n_users, self.n_channels, self.horizon,
                self.mean_interval, self.setup_overrides)

    def scenario_key(self) -> Tuple:
        """Identity of the evaluation scenario only (batch grouping)."""
        return (self.profile, self.pages, self.reading_times, self.seed)

    def to_dict(self) -> dict:
        return {
            "n_users": self.n_users,
            "profile": self.profile,
            "pages": list(self.pages),
            "reading_times": list(self.reading_times),
            "seed": self.seed,
            "n_channels": self.n_channels,
            "horizon": self.horizon,
            "mean_interval": self.mean_interval,
            "setup": dict(self.setup_overrides),
        }


@dataclass(frozen=True)
class SweepRequest:
    """One ``POST /sweep``: a population sweep handed to ``repro.sched``.

    The service pool is the synthetic lognormal benchmark pool (the
    fleet benchmarks' shape) so the job spec is fully content-addressed
    from the payload alone — the job ID *is* the spec fingerprint, and
    resubmitting the same sweep rejoins the same work directory.
    """

    users: Tuple[int, ...]
    n_channels: int = 200
    mean_interval: float = 25.0
    horizon: float = 3600.0
    config_seed: int = 42
    seed: Optional[int] = None
    pool_size: int = 400
    pool_median: float = 14.0
    pool_sigma: float = 0.5
    pool_seed: int = 7
    block_arrivals: int = DEFAULT_BLOCK_ARRIVALS
    unit_blocks: int = DEFAULT_UNIT_BLOCKS
    quantile_k: int = 256

    _FIELDS = ("users", "n_channels", "mean_interval", "horizon",
               "config_seed", "seed", "pool_size", "pool_median",
               "pool_sigma", "pool_seed", "block_arrivals",
               "unit_blocks", "quantile_k")

    @classmethod
    def from_payload(cls, payload) -> "SweepRequest":
        payload = _require_mapping(payload)
        _reject_unknown(payload, cls._FIELDS)
        users = payload.get("users")
        if not isinstance(users, (list, tuple)) or not users:
            raise ValidationError(
                "users", f"expected a non-empty list of user counts, "
                f"got {users!r}")
        counts = []
        for value in users:
            if isinstance(value, bool) or not isinstance(value, int) \
                    or value < 1:
                raise ValidationError(
                    "users", f"expected positive integers, got "
                    f"{value!r}")
            counts.append(int(value))
        seed = payload.get("seed")
        if seed is not None and (isinstance(seed, bool)
                                 or not isinstance(seed, int)):
            raise ValidationError(
                "seed", f"expected an integer or null, got {seed!r}")
        return cls(
            users=tuple(counts),
            n_channels=_int_field(payload, "n_channels", 200,
                                  minimum=1),
            mean_interval=_float_field(payload, "mean_interval", 25.0,
                                       positive=True),
            horizon=_float_field(payload, "horizon", 3600.0,
                                 positive=True),
            config_seed=_int_field(payload, "config_seed", 42),
            seed=seed,
            pool_size=_int_field(payload, "pool_size", 400, minimum=1),
            pool_median=_float_field(payload, "pool_median", 14.0,
                                     positive=True),
            pool_sigma=_float_field(payload, "pool_sigma", 0.5,
                                    positive=True),
            pool_seed=_int_field(payload, "pool_seed", 7),
            block_arrivals=_int_field(payload, "block_arrivals",
                                      DEFAULT_BLOCK_ARRIVALS,
                                      minimum=1),
            unit_blocks=_int_field(payload, "unit_blocks",
                                   DEFAULT_UNIT_BLOCKS, minimum=1),
            quantile_k=_int_field(payload, "quantile_k", 256,
                                  minimum=8))

    def pool(self) -> np.ndarray:
        return lognormal_pool(size=self.pool_size,
                              median=self.pool_median,
                              sigma=self.pool_sigma,
                              seed=self.pool_seed)

    def config(self) -> CapacityConfig:
        return CapacityConfig(n_channels=self.n_channels,
                              mean_interval=self.mean_interval,
                              horizon=self.horizon,
                              seed=self.config_seed)

    def spec(self) -> dict:
        """The ``repro.sched`` sweep spec (carries its fingerprint)."""
        return spec_payload(self.pool(), list(self.users),
                            self.config(), seed=self.seed,
                            block_arrivals=self.block_arrivals,
                            unit_blocks=self.unit_blocks,
                            quantile_k=self.quantile_k)

    def to_dict(self) -> dict:
        out = asdict(self)
        out["users"] = list(self.users)
        return out
