"""The transport-agnostic what-if core: scenario in, prediction out.

One :class:`WhatIfService` owns the process-wide warm state (corpus,
load memo, benchmark memo — all thread-safe single-flight caches after
this PR) and a :class:`~repro.serve.batcher.MicroBatcher` that turns
concurrent ``predict`` calls into batched ``evaluate_setups`` fleet
calls.  Determinism is the contract:

- the request's evaluation seed is spawned from a content-addressed
  run ID (``serve-predict-v1`` + scenario fingerprint + setup fields),
  exactly the way the ablation engine seeds a matrix cell — so the
  same request always answers with the same bytes, across restarts,
  batch compositions and worker counts;
- scenario metrics come from the same :func:`~repro.ablation.objective.
  evaluate_setups` path ``repro tune`` uses, and the capacity section
  reuses its seed recipe (``CapacityConfig(seed=eval_seed)`` +
  ``SeedSequence(eval_seed, spawn_key=(1,))``), so the response's
  ``drop_probability`` is byte-identical to the evaluator's
  population objective while a *single* M/G/N run also yields the
  service-time quantiles (``tests/serve/test_service_golden.py``).
"""

from __future__ import annotations

import time
from dataclasses import asdict
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.ablation.engine import spec_seed, warm_process
from repro.ablation.objective import evaluate_setups, variant_hold_pool
from repro.capacity.simulator import CapacityConfig, CapacitySimulator
from repro.runtime.cache import ResultCache
from repro.runtime.observability import KERNEL_STATS
from repro.serve.batcher import (DEFAULT_BATCH_WINDOW, DEFAULT_MAX_BATCH,
                                 MicroBatcher)
from repro.serve.metrics import ServeMetrics
from repro.serve.schema import PredictRequest
from repro.stream.shard import params_fingerprint
from repro.stream.sweep import sweep_point

#: Versioned namespace of the prediction seed derivation.  Bumping it
#: is a deliberate statement that responses may change.
PREDICT_LAYER = "serve-predict-v1"


def predict_run_id(request: PredictRequest) -> str:
    """Content-addressed identity of one prediction."""
    return params_fingerprint({
        "layer": PREDICT_LAYER,
        "scenario": request.scenario(with_population=True).fingerprint(),
        "setup": asdict(request.setup()),
    })


def predict_eval_seed(request: PredictRequest) -> int:
    """The evaluation seed a request deterministically maps to."""
    return spec_seed(predict_run_id(request))


class WhatIfService:
    """Answers ``predict`` calls; owns the batcher and warm caches."""

    def __init__(self, *,
                 batch_window: float = DEFAULT_BATCH_WINDOW,
                 max_batch: int = DEFAULT_MAX_BATCH,
                 load_cache_dir: Optional[str] = None,
                 metrics: Optional[ServeMetrics] = None):
        self.metrics = metrics or ServeMetrics()
        self._load_cache = (ResultCache(load_cache_dir)
                            if load_cache_dir is not None else None)
        self._batcher = MicroBatcher(self._compute_batch,
                                     window=batch_window,
                                     max_batch=max_batch,
                                     on_round=self._record_round)
        self._warm = False

    # -- lifecycle -------------------------------------------------------

    def warmup(self) -> None:
        """Pay the corpus generation cost now, not in a request."""
        warm_process()
        self._warm = True

    @property
    def warm(self) -> bool:
        return self._warm

    def close(self) -> None:
        """Drain in-flight prediction rounds; refuse new ones."""
        self._batcher.close()

    # -- the request path ------------------------------------------------

    def predict(self, request: PredictRequest) -> dict:
        """One what-if answer, batched with concurrent peers."""
        started = time.perf_counter()
        try:
            response = self._batcher.submit(request.canonical(), request)
        except Exception:
            self.metrics.observe("predict",
                                 time.perf_counter() - started,
                                 error=True)
            raise
        self.metrics.observe("predict", time.perf_counter() - started)
        KERNEL_STATS.record_serve(requests=1)
        return response

    def predict_payload(self, payload) -> dict:
        """Parse + predict (the HTTP front-ends' entry point)."""
        return self.predict(PredictRequest.from_payload(payload))

    # -- batch execution -------------------------------------------------

    def _record_round(self, n_items: int, n_coalesced: int) -> None:
        KERNEL_STATS.record_serve(batches=1, coalesced=n_coalesced)

    def _compute_batch(self, requests: List[PredictRequest]
                       ) -> List[dict]:
        """Answer every request in the round; one fleet call per
        distinct scenario.

        Requests sharing a scenario (profile/pages/readings/seed) ride
        one ``evaluate_setups`` grid regardless of how their setups or
        populations differ; the capacity run stays per-request because
        its identity (pool × population × seed) is per-request.
        """
        groups: Dict[Tuple, List[int]] = {}
        for index, request in enumerate(requests):
            groups.setdefault(request.scenario_key(), []).append(index)

        responses: List[Optional[dict]] = [None] * len(requests)
        for indices in groups.values():
            scenario = requests[indices[0]].scenario()
            pairs = []
            identities = []
            for index in indices:
                request = requests[index]
                run_id = predict_run_id(request)
                eval_seed = spec_seed(run_id)
                identities.append((run_id, eval_seed))
                pairs.append((request.setup(), eval_seed))
            metrics_list = evaluate_setups(pairs, scenario,
                                           load_cache=self._load_cache)
            for index, (run_id, eval_seed), metrics in zip(
                    indices, identities, metrics_list):
                request = requests[index]
                capacity = self._capacity_section(request, eval_seed)
                metrics = dict(metrics)
                metrics["drop_probability"] = \
                    capacity["drop_probability"]
                responses[index] = {
                    "run_id": run_id,
                    "eval_seed": eval_seed,
                    "request": request.to_dict(),
                    "metrics": metrics,
                    "capacity": capacity,
                }
        return responses  # type: ignore[return-value]

    def _capacity_section(self, request: PredictRequest,
                          eval_seed: int) -> dict:
        """One M/G/N run: drop probability *and* service quantiles.

        Seeded exactly like the evaluator's ``_drop_probability`` —
        same config seed, same ``spawn_key=(1,)`` capacity stream —
        and executed through :func:`~repro.stream.sweep.sweep_point`,
        whose sessions/dropped are golden-gated byte-identical to
        ``CapacitySimulator.run``.
        """
        pool = variant_hold_pool(request.setup(), request.scenario(),
                                 load_cache=self._load_cache)
        config = CapacityConfig(n_channels=request.n_channels,
                                mean_interval=request.mean_interval,
                                horizon=request.horizon,
                                seed=eval_seed)
        simulator = CapacitySimulator(pool, config)
        capacity_seed = int(np.random.SeedSequence(
            eval_seed, spawn_key=(1,)).generate_state(1)[0])
        point = sweep_point(simulator, request.n_users, capacity_seed,
                            stream=False)
        return point.to_dict()
