"""Closed-loop load harness: N clients hammering ``/predict``.

Each client thread runs a closed loop — send, wait for the answer,
send the next — cycling through a small set of what-if payloads.  That
shape (not an open-loop arrival process) is deliberate: it matches the
operator-dashboard traffic the service is for, and it makes the
batching comparison honest — a closed-loop client population gives the
micro-batcher exactly ``clients`` concurrent requests to coalesce, no
more, so a batched p99 win cannot come from queue-length artifacts.

The harness speaks plain ``urllib`` so it runs anywhere the server
does, and it reports the same p50/p99 quantile keys the server's own
``/metrics`` endpoint uses.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional

#: Default request mix: four distinct what-ifs over the default corpus
#: pages, so the batcher sees both duplicate and distinct keys.
DEFAULT_PAYLOADS = (
    {"n_users": 300, "profile": "ideal"},
    {"n_users": 360, "profile": "ideal",
     "setup": {"predictor": "gbrt-like"}},
    {"n_users": 300, "profile": "congested"},
    {"n_users": 240, "profile": "ideal",
     "setup": {"fast_dormancy": False}},
)


class ServeBenchError(RuntimeError):
    """The target server could not be reached or answered non-200."""


def _post_json(url: str, payload: dict, timeout: float) -> dict:
    data = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"},
        method="POST")
    try:
        with urllib.request.urlopen(request, timeout=timeout) as reply:
            body = reply.read().decode("utf-8")
            status = reply.status
    except urllib.error.HTTPError as exc:
        raise ServeBenchError(
            f"{url} answered {exc.code}: "
            f"{exc.read().decode('utf-8', 'replace')[:200]}") from None
    except (urllib.error.URLError, OSError, TimeoutError) as exc:
        raise ServeBenchError(f"cannot reach {url}: {exc}") from None
    if status != 200:
        raise ServeBenchError(f"{url} answered {status}: {body[:200]}")
    return json.loads(body)


def check_health(base_url: str, timeout: float = 5.0) -> dict:
    """GET /health or raise :class:`ServeBenchError`."""
    url = base_url.rstrip("/") + "/health"
    try:
        with urllib.request.urlopen(url, timeout=timeout) as reply:
            return json.loads(reply.read().decode("utf-8"))
    except (urllib.error.URLError, OSError, ValueError) as exc:
        raise ServeBenchError(f"cannot reach {url}: {exc}") from None


def _quantile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank quantile over an already-sorted sample."""
    if not sorted_values:
        return float("nan")
    rank = min(len(sorted_values),
               max(1, int(round(q * (len(sorted_values) - 1))) + 1))
    return sorted_values[rank - 1]


def run_serve_bench(base_url: str, *, clients: int = 8,
                    requests_per_client: int = 25,
                    payloads=DEFAULT_PAYLOADS,
                    timeout: float = 60.0) -> dict:
    """Closed-loop benchmark; returns latency/throughput facts.

    Raises :class:`ServeBenchError` if the server is unreachable or
    any request fails — a load number over silent errors is worthless.
    """
    if clients < 1 or requests_per_client < 1:
        raise ValueError("clients and requests_per_client must be >= 1")
    check_health(base_url, timeout=min(timeout, 10.0))
    predict_url = base_url.rstrip("/") + "/predict"
    payloads = list(payloads)
    latencies: List[List[float]] = [[] for _ in range(clients)]
    errors: List[Optional[ServeBenchError]] = [None] * clients
    barrier = threading.Barrier(clients + 1)

    def client(index: int) -> None:
        try:
            barrier.wait()
            for turn in range(requests_per_client):
                payload = payloads[(index + turn) % len(payloads)]
                started = time.perf_counter()
                _post_json(predict_url, payload, timeout)
                latencies[index].append(
                    time.perf_counter() - started)
        except ServeBenchError as exc:
            errors[index] = exc
        except threading.BrokenBarrierError:
            pass

    threads = [threading.Thread(target=client, args=(index,),
                                name=f"bench-client-{index}")
               for index in range(clients)]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    for error in errors:
        if error is not None:
            raise error

    flat = sorted(value for perclient in latencies for value in perclient)
    total = len(flat)
    return {
        "clients": clients,
        "requests_per_client": requests_per_client,
        "requests": total,
        "elapsed_s": elapsed,
        "throughput_rps": total / elapsed if elapsed > 0 else 0.0,
        "latency_ms": {
            "p50": _quantile(flat, 0.50) * 1000.0,
            "p90": _quantile(flat, 0.90) * 1000.0,
            "p99": _quantile(flat, 0.99) * 1000.0,
            "mean": (sum(flat) / total * 1000.0) if total else
            float("nan"),
        },
    }


def bench_report(result: Dict) -> str:
    """One human-readable block for the CLI."""
    latency = result["latency_ms"]
    return (
        f"serve-bench: {result['clients']} clients x "
        f"{result['requests_per_client']} requests "
        f"({result['requests']} total) in {result['elapsed_s']:.2f}s\n"
        f"  throughput: {result['throughput_rps']:.1f} req/s\n"
        f"  latency: p50={latency['p50']:.1f}ms "
        f"p90={latency['p90']:.1f}ms p99={latency['p99']:.1f}ms "
        f"mean={latency['mean']:.1f}ms")
