"""Service observability: request counters, latency sketches, cache rates.

``GET /metrics`` answers from one :class:`ServeMetrics` instance shared
by every request thread.  Latency quantiles come from the streaming
layer's deterministic MRL :class:`~repro.stream.aggregate.
QuantileSketch` — the same mergeable sketch the sweep points use — so
the p50/p99 the load harness gates on and the p50/p99 the server
reports are computed by one implementation.
"""

from __future__ import annotations

import threading
from typing import Dict, Tuple

from repro.core.comparison import benchmark_cache_stats
from repro.ablation.objective import load_cache_stats
from repro.runtime.observability import KERNEL_STATS
from repro.stream.aggregate import QuantileSketch
from repro.webpages.corpus import page_cache_stats

#: Quantiles the endpoint reports, keyed p50/p90/p99 in the snapshot.
LATENCY_QUANTILES: Tuple[float, ...] = (0.5, 0.9, 0.99)


class ServeMetrics:
    """Thread-safe request/latency/error accounting for one server."""

    def __init__(self, quantile_k: int = 256):
        self._lock = threading.Lock()
        self._quantile_k = int(quantile_k)
        self._requests: Dict[str, int] = {}
        self._errors: Dict[str, int] = {}
        self._sketches: Dict[str, QuantileSketch] = {}

    def observe(self, endpoint: str, seconds: float,
                error: bool = False) -> None:
        """Fold one handled request into the aggregate."""
        with self._lock:
            self._requests[endpoint] = \
                self._requests.get(endpoint, 0) + 1
            if error:
                self._errors[endpoint] = \
                    self._errors.get(endpoint, 0) + 1
            sketch = self._sketches.get(endpoint)
            if sketch is None:
                sketch = self._sketches[endpoint] = QuantileSketch(
                    k=self._quantile_k)
            sketch.add_block([float(seconds) * 1000.0])

    def snapshot(self) -> dict:
        """The ``/metrics`` body: counters, latencies, cache rates."""
        with self._lock:
            requests = dict(self._requests)
            errors = dict(self._errors)
            latency = {
                endpoint: dict(
                    count=sketch.count,
                    **sketch.quantiles(LATENCY_QUANTILES))
                for endpoint, sketch in self._sketches.items()}
        kernel = KERNEL_STATS.snapshot()
        return {
            "requests": requests,
            "errors": errors,
            "latency_ms": latency,
            "caches": {
                "benchmark_comparison": benchmark_cache_stats(),
                "pages": page_cache_stats(),
                "ablate_loads": load_cache_stats(),
            },
            "serving": {
                "requests": kernel.serve_requests,
                "batches": kernel.serve_batches,
                "coalesced": kernel.serve_coalesced,
            },
        }
