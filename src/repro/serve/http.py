"""HTTP front-end: a transport-agnostic router + the stdlib server.

:class:`ServeApp` maps ``(method, path, payload)`` to ``(status, body,
headers)`` with every error already shaped — the stdlib handler below
and the optional FastAPI app (:mod:`repro.serve.fastapi_app`) are both
thin skins over it, so tier-1 tests exercise the full routing logic
with zero third-party dependencies.

The stdlib server is a ``ThreadingHTTPServer``: one thread per request,
which is exactly what the micro-batcher wants — concurrent request
threads are the raw material it coalesces.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple

from repro.serve.jobs import JobManager, JobQueueFull, UnknownJob
from repro.serve.schema import ValidationError
from repro.serve.service import WhatIfService

Response = Tuple[int, dict, Dict[str, str]]


class ServeApp:
    """Routes requests to the service core and the job manager."""

    def __init__(self, service: WhatIfService,
                 jobs: Optional[JobManager] = None):
        self.service = service
        self.jobs = jobs

    # -- endpoint bodies -------------------------------------------------

    def health(self) -> dict:
        return {"status": "ok", "warm": self.service.warm,
                "jobs_enabled": self.jobs is not None}

    def metrics(self) -> dict:
        return self.service.metrics.snapshot()

    # -- routing ---------------------------------------------------------

    def handle(self, method: str, path: str,
               payload=None) -> Response:
        """One request in, one ``(status, body, headers)`` out."""
        try:
            return self._route(method, path, payload)
        except ValidationError as exc:
            return 400, {"error": exc.to_dict()}, {}
        except JobQueueFull as exc:
            return (429, {"error": {"message": str(exc)}},
                    {"Retry-After": f"{exc.retry_after:.0f}"})
        except UnknownJob as exc:
            return (404, {"error": {"message":
                                    f"unknown job {exc.job_id!r}"}}, {})
        except Exception as exc:  # last resort: never a raw traceback
            return (500, {"error": {"message":
                                    f"{type(exc).__name__}: {exc}"}}, {})

    def _route(self, method: str, path: str, payload) -> Response:
        path = path.rstrip("/") or "/"
        if path == "/health":
            return self._get_only(method, self.health)
        if path == "/metrics":
            return self._get_only(method, self.metrics)
        if path == "/predict":
            if method != "POST":
                return self._method_not_allowed("POST")
            return 200, self.service.predict_payload(payload), {}
        if path == "/sweep":
            if method != "POST":
                return self._method_not_allowed("POST")
            if self.jobs is None:
                return (503, {"error": {"message":
                                        "sweep jobs are disabled"}}, {})
            from repro.serve.schema import SweepRequest
            request = SweepRequest.from_payload(payload)
            return 202, self.jobs.submit(request), {}
        if path.startswith("/jobs/"):
            if method != "GET":
                return self._method_not_allowed("GET")
            if self.jobs is None:
                return (503, {"error": {"message":
                                        "sweep jobs are disabled"}}, {})
            job_id = path[len("/jobs/"):]
            return 200, self.jobs.status(job_id), {}
        return (404, {"error": {"message": f"no route for {path!r}"}},
                {})

    @staticmethod
    def _get_only(method: str, fn) -> Response:
        if method != "GET":
            return ServeApp._method_not_allowed("GET")
        return 200, fn(), {}

    @staticmethod
    def _method_not_allowed(allowed: str) -> Response:
        return (405, {"error": {"message": f"use {allowed}"}},
                {"Allow": allowed})

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Graceful drain: finish accepted predictions, release jobs."""
        self.service.close()
        if self.jobs is not None:
            self.jobs.shutdown()


class _Handler(BaseHTTPRequestHandler):
    """Thin JSON skin over :meth:`ServeApp.handle`."""

    server_version = "repro-serve/1"
    app: ServeApp  # set by create_server on the subclass

    def _respond(self, status: int, body: dict,
                 headers: Dict[str, str]) -> None:
        data = json.dumps(body, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        for name, value in headers.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(data)

    def _payload(self):
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return None
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ValidationError("body", f"invalid JSON: {exc}")

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        self._respond(*self.app.handle("GET", self.path))

    def do_POST(self) -> None:  # noqa: N802
        try:
            payload = self._payload()
        except ValidationError as exc:
            self._respond(400, {"error": exc.to_dict()}, {})
            return
        self._respond(*self.app.handle("POST", self.path, payload))

    def log_message(self, format: str, *args) -> None:
        pass  # request logging belongs to /metrics, not stderr


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    # The stdlib default listen backlog is 5.  Batched rounds complete
    # every rider at the same instant, so closed-loop clients reconnect
    # in synchronized bursts — with a 5-deep backlog those bursts drop
    # SYNs and the retransmit turns a 20 ms request into a 1 s one.
    request_queue_size = 128


def create_server(app: ServeApp, host: str = "127.0.0.1",
                  port: int = 0) -> ThreadingHTTPServer:
    """A ready-to-run threading server bound to ``host:port``.

    ``port=0`` binds an ephemeral port (tests); read the actual one
    from ``server.server_address[1]``.
    """
    handler = type("BoundHandler", (_Handler,), {"app": app})
    return _Server((host, port), handler)


class ServerThread:
    """Run a server in a background thread with a clean stop.

    The in-process harness tests and ``serve-bench --self-host`` use
    this; the CLI's foreground mode drives the same ``shutdown()`` +
    ``app.close()`` sequence from its signal handler.
    """

    def __init__(self, app: ServeApp, host: str = "127.0.0.1",
                 port: int = 0):
        self.app = app
        self.server = create_server(app, host, port)
        self._thread = threading.Thread(
            target=self.server.serve_forever, name="serve-http",
            daemon=True)

    @property
    def address(self) -> Tuple[str, int]:
        host, port = self.server.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "ServerThread":
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop accepting, drain the batcher, release the job pool."""
        self.server.shutdown()
        self.server.server_close()
        self.app.close()
        self._thread.join(timeout=5.0)
