"""repro.serve: the energy-model "what-if" capacity-planning service.

A transport-agnostic service core (:class:`WhatIfService`) answers
``predict`` requests — *"if my cell serves N users with setup X on
profile Y, what energy saving, drop probability and service-time
quantiles do I get?"* — by running the exact evaluator/capacity code
paths the offline figures use, seeded content-addressably so the same
request always yields the same bytes.  Around it:

- :class:`~repro.serve.batcher.MicroBatcher` — coalesces concurrent
  predictions into batched fleet calls (and dedupes identical ones);
- :class:`~repro.serve.jobs.JobManager` — async population sweeps as
  resumable ``repro.sched`` work directories behind a bounded queue;
- :class:`~repro.serve.http.ServeApp` + a stdlib threading HTTP
  server (``repro serve``), with an optional FastAPI skin
  (:mod:`repro.serve.fastapi_app`) for ASGI deployments;
- :mod:`~repro.serve.bench` — the closed-loop load harness behind
  ``repro serve-bench`` and ``BENCH_8.json``.
"""

from repro.serve.batcher import (BatcherClosed, DEFAULT_BATCH_WINDOW,
                                 DEFAULT_MAX_BATCH, MicroBatcher)
from repro.serve.bench import (DEFAULT_PAYLOADS, ServeBenchError,
                               bench_report, check_health,
                               run_serve_bench)
from repro.serve.fastapi_app import create_fastapi_app, fastapi_available
from repro.serve.http import (ServeApp, ServerThread, create_server)
from repro.serve.jobs import JobManager, JobQueueFull, UnknownJob
from repro.serve.metrics import LATENCY_QUANTILES, ServeMetrics
from repro.serve.schema import (PredictRequest, SweepRequest,
                                ValidationError, known_page_names)
from repro.serve.service import (PREDICT_LAYER, WhatIfService,
                                 predict_eval_seed, predict_run_id)

__all__ = [
    "BatcherClosed",
    "DEFAULT_BATCH_WINDOW",
    "DEFAULT_MAX_BATCH",
    "DEFAULT_PAYLOADS",
    "JobManager",
    "JobQueueFull",
    "LATENCY_QUANTILES",
    "MicroBatcher",
    "PREDICT_LAYER",
    "PredictRequest",
    "ServeApp",
    "ServeBenchError",
    "ServeMetrics",
    "ServerThread",
    "SweepRequest",
    "UnknownJob",
    "ValidationError",
    "WhatIfService",
    "bench_report",
    "check_health",
    "create_fastapi_app",
    "create_server",
    "fastapi_available",
    "known_page_names",
    "predict_eval_seed",
    "predict_run_id",
    "run_serve_bench",
]
