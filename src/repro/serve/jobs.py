"""Async sweep jobs: bounded queue in memory, durable state on disk.

``POST /sweep`` does not run the sweep in the request thread — a big
population sweep takes seconds to minutes.  Instead the request is
turned into a ``repro.sched`` work-directory spec and handed to a small
pool of background worker threads; the response carries a **job ID**
that is simply the spec's content-address fingerprint.

That choice does all the heavy lifting:

- **idempotent**: resubmitting the same sweep resolves to the same
  work directory (``ensure_spec`` joins, never forks), so a client
  retry costs nothing;
- **resumable**: all job state lives in the work directory — done
  markers, claim leases, checksummed shards.  If the server dies
  mid-job, a new server over the same ``--job-dir`` answers
  ``GET /jobs/<id>`` from the directory alone, and resubmitting the
  sweep resumes exactly where the dead worker stopped (the PR 9
  kill/steal machinery, unchanged);
- **pure-read status**: :func:`repro.sched.work_dir_progress` never
  writes, so polling a job cannot perturb it.

Backpressure is explicit: the pending queue is bounded, and a full
queue raises :class:`JobQueueFull`, which the HTTP layer maps to
``429`` with a ``Retry-After`` header.
"""

from __future__ import annotations

import queue
import threading
from pathlib import Path
from typing import Dict, List, Optional

from repro.sched import (WorkDirMismatch, ensure_spec, execute_work_dir,
                         merge_work_dir, work_dir_progress)
from repro.serve.schema import SweepRequest

#: Characters of the spec fingerprint used as the public job ID.
JOB_ID_CHARS = 16


class JobQueueFull(RuntimeError):
    """The pending-job queue is at capacity; retry later."""

    def __init__(self, retry_after: float):
        super().__init__(
            f"job queue is full; retry after {retry_after:.0f}s")
        self.retry_after = retry_after


class UnknownJob(KeyError):
    """No work directory exists for the requested job ID."""

    def __init__(self, job_id: str):
        super().__init__(job_id)
        self.job_id = job_id


class JobManager:
    """Bounded background execution of sweep jobs over one job root."""

    def __init__(self, root, *, max_pending: int = 4, workers: int = 1,
                 retry_after: float = 5.0, poll: float = 0.05,
                 heartbeat_interval: float = 0.5,
                 stale_after: float = 5.0):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.retry_after = float(retry_after)
        self._poll = poll
        self._heartbeat_interval = heartbeat_interval
        self._stale_after = stale_after
        self._queue: "queue.Queue[str]" = queue.Queue(max_pending)
        self._lock = threading.Lock()
        self._errors: Dict[str, str] = {}
        self._stop = threading.Event()
        self._threads: List[threading.Thread] = [
            threading.Thread(target=self._worker, args=(index,),
                             name=f"serve-sweep-{index}", daemon=True)
            for index in range(workers)]
        for thread in self._threads:
            thread.start()

    # -- API -------------------------------------------------------------

    def submit(self, request: SweepRequest) -> dict:
        """Register (or rejoin) a sweep job; returns its status."""
        payload = request.spec()
        job_id = payload["fingerprint"][:JOB_ID_CHARS]
        work_dir = self.root / job_id
        ensure_spec(work_dir, payload)
        progress = work_dir_progress(work_dir)
        if progress["state"] != "complete":
            with self._lock:
                self._errors.pop(job_id, None)
            try:
                self._queue.put_nowait(job_id)
            except queue.Full:
                raise JobQueueFull(self.retry_after) from None
        status = self.status(job_id)
        status["request"] = request.to_dict()
        return status

    def status(self, job_id: str) -> dict:
        """Pure read of one job's state from its work directory."""
        work_dir = self.root / job_id
        try:
            progress = work_dir_progress(work_dir)
        except WorkDirMismatch:
            raise UnknownJob(job_id) from None
        out = {
            "job_id": job_id,
            "state": progress["state"],
            "progress": progress,
        }
        with self._lock:
            error = self._errors.get(job_id)
        if error is not None:
            out["state"] = "failed"
            out["error"] = error
        elif progress["state"] == "complete":
            out["result"] = merge_work_dir(work_dir).to_dict()
        return out

    def shutdown(self, wait: bool = False, timeout: float = 5.0) -> None:
        """Stop accepting queue pulls.

        In-flight jobs are *not* awaited by default: their state is on
        disk and the whole design makes them resumable, so a shutdown
        abandons the threads (daemonised) rather than blocking the
        process exit on a long sweep.
        """
        self._stop.set()
        if wait:
            for thread in self._threads:
                thread.join(timeout)

    # -- workers ---------------------------------------------------------

    def _worker(self, index: int) -> None:
        while not self._stop.is_set():
            try:
                job_id = self._queue.get(timeout=0.2)
            except queue.Empty:
                continue
            try:
                execute_work_dir(
                    self.root / job_id,
                    worker_id=f"serve-{index}",
                    worker_index=index,
                    poll=self._poll,
                    heartbeat_interval=self._heartbeat_interval,
                    stale_after=self._stale_after)
            except Exception as exc:  # surfaced via status()
                with self._lock:
                    self._errors[job_id] = f"{type(exc).__name__}: {exc}"
            finally:
                self._queue.task_done()
