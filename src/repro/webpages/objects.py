"""Web object model.

A page is a DAG of :class:`WebObject` records.  Each object carries the
attributes the browser engines consume:

- ``size_bytes`` — wire size, drives transfer time;
- ``static_references`` — object ids discoverable by *scanning* the source
  text for URLs (HTML ``src``/``href`` attributes, CSS ``url(...)``);
- ``dynamic_references`` — object ids only discoverable by *executing*
  the object (JavaScript XHR / ``document.write``); only scripts have
  them.  This distinction is exactly why the paper says separating the
  JavaScript computation "is the most difficult task" (Section 4.1): the
  energy-aware browser can scan HTML/CSS cheaply but must still run every
  script to learn what it fetches;
- ``complexity`` — multiplier on the object's compute costs (a heavy
  script vs. a one-liner);
- ``dom_nodes`` — how many DOM nodes processing this object contributes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

from repro.units import require_non_negative, require_positive


class ObjectKind(enum.Enum):
    """Content types the engines treat differently (Section 2.2)."""

    HTML = "html"
    CSS = "css"
    JS = "js"
    IMAGE = "image"
    FLASH = "flash"

    @property
    def is_multimedia(self) -> bool:
        """Objects that are decoded, never parsed (images, flash)."""
        return self in (ObjectKind.IMAGE, ObjectKind.FLASH)


@dataclass(frozen=True)
class WebObject:
    """One fetchable resource of a webpage."""

    object_id: str
    kind: ObjectKind
    size_bytes: float
    static_references: Tuple[str, ...] = ()
    dynamic_references: Tuple[str, ...] = ()
    complexity: float = 1.0
    dom_nodes: int = 1

    def __post_init__(self) -> None:
        require_non_negative("size_bytes", self.size_bytes)
        require_positive("complexity", self.complexity)
        if self.dom_nodes < 0:
            raise ValueError("dom_nodes must be non-negative")
        if self.dynamic_references and self.kind is not ObjectKind.JS:
            raise ValueError(
                f"{self.kind} object {self.object_id!r} cannot have dynamic "
                "references; only scripts discover fetches at execution time")
        if self.kind.is_multimedia and self.static_references:
            raise ValueError(
                f"multimedia object {self.object_id!r} cannot reference "
                "other objects")

    @property
    def references(self) -> Tuple[str, ...]:
        """All referenced object ids, static then dynamic."""
        return self.static_references + self.dynamic_references

    @property
    def size_kb(self) -> float:
        return self.size_bytes / 1000.0
