"""Webpage workload substrate.

The paper benchmarks against the Alexa top sites (Table 3), split into a
mobile-version and a full-version benchmark.  Live 2012-era pages are not
available, so this package provides a synthetic equivalent: an object-graph
model of a webpage (HTML documents referencing CSS, JavaScript, images and
flash, with JavaScript able to hide references until executed), a seeded
generator that synthesises such graphs from compact specs, and a corpus of
20 page specs mirroring Table 3 — including the paper's headline page,
``espn.go.com/sports`` at 760 KB.
"""

from repro.webpages.objects import ObjectKind, WebObject
from repro.webpages.page import Webpage, PageValidationError
from repro.webpages.generator import PageSpec, generate_page
from repro.webpages.corpus import (
    BenchmarkPage,
    MOBILE_BENCHMARK,
    FULL_BENCHMARK,
    benchmark_pages,
    load_benchmark_page,
)

__all__ = [
    "ObjectKind",
    "WebObject",
    "Webpage",
    "PageValidationError",
    "PageSpec",
    "generate_page",
    "BenchmarkPage",
    "MOBILE_BENCHMARK",
    "FULL_BENCHMARK",
    "benchmark_pages",
    "load_benchmark_page",
]
