"""The Table 3 benchmark corpus.

Ten mobile-version and ten full-version page specs mirroring the paper's
benchmark (Alexa top sites, December 2009).  Mobile versions are small
(30–120 KB, a handful of objects, little script); full versions are heavy
(300–900 KB, dozens of objects, complex scripts).  The headline page
``espn.go.com/sports`` is pinned near the paper's measured 760 KB.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.runtime.singleflight import SingleFlight
from repro.webpages.generator import PageSpec, generate_page
from repro.webpages.page import Webpage


@dataclass(frozen=True)
class BenchmarkPage:
    """One Table 3 entry: the paper's site name plus our synthetic spec."""

    paper_name: str
    spec: PageSpec


def _mobile(name: str, url: str, seed: int, html_kb: float, css_count: int,
            css_kb: float, js_count: int, js_kb: float, image_count: int,
            image_kb: float, height: int) -> BenchmarkPage:
    spec = PageSpec(
        name=f"m-{name}", url=url, mobile=True, seed=seed,
        html_kb=html_kb, css_count=css_count, css_kb=css_kb,
        js_count=js_count, js_kb=js_kb, js_complexity=0.8,
        js_dynamic_image_fraction=0.25, image_count=image_count,
        image_kb=image_kb, flash_count=0, iframe_count=0,
        css_image_fraction=0.15, page_height=height, page_width=320)
    return BenchmarkPage(paper_name=name, spec=spec)


def _full(name: str, url: str, seed: int, html_kb: float, css_count: int,
          css_kb: float, js_count: int, js_kb: float, image_count: int,
          image_kb: float, flash_count: int, flash_kb: float,
          iframe_count: int, height: int,
          js_complexity: float = 1.3) -> BenchmarkPage:
    spec = PageSpec(
        name=f"f-{name}", url=url, mobile=False, seed=seed,
        html_kb=html_kb, css_count=css_count, css_kb=css_kb,
        js_count=js_count, js_kb=js_kb, js_complexity=js_complexity,
        js_dynamic_image_fraction=0.2, image_count=image_count,
        image_kb=image_kb, flash_count=flash_count, flash_kb=flash_kb,
        iframe_count=iframe_count, iframe_kb=10.0, js_chain=True,
        css_image_fraction=0.25, page_height=height, page_width=1024)
    return BenchmarkPage(paper_name=name, spec=spec)


#: Mobile-version benchmark (Table 3, left column).
MOBILE_BENCHMARK: Tuple[BenchmarkPage, ...] = (
    _mobile("cnn", "http://m.cnn.com", 101, 36, 1, 9, 1, 14, 11, 7, 1800),
    _mobile("ebay", "http://m.ebay.com", 102, 28, 1, 7, 1, 12, 9, 6, 1400),
    _mobile("espn.go.com", "http://m.espn.go.com", 103, 38, 1, 10, 2, 13,
            12, 7, 2000),
    _mobile("amazon", "http://m.amazon.com", 104, 33, 1, 8, 1, 15, 10, 8,
            1700),
    _mobile("msn", "http://m.msn.com", 105, 26, 1, 7, 1, 10, 9, 6, 1300),
    _mobile("myspace", "http://m.myspace.com", 106, 24, 1, 6, 1, 11, 8, 6,
            1200),
    _mobile("bbc.co.uk", "http://m.bbc.co.uk", 107, 30, 1, 8, 1, 12, 10, 6,
            1600),
    _mobile("aol", "http://m.aol.com", 108, 27, 1, 7, 1, 11, 9, 7, 1400),
    _mobile("nytime", "http://m.nytimes.com", 109, 40, 1, 10, 2, 14, 12, 8,
            2200),
    _mobile("youtube", "http://m.youtube.com", 110, 20, 1, 6, 1, 13, 12, 5,
            1500),
)

#: Full-version benchmark (Table 3, right column).
FULL_BENCHMARK: Tuple[BenchmarkPage, ...] = (
    _full("edition.cnn.com/WORLD", "http://edition.cnn.com/WORLD", 201,
          95, 3, 28, 7, 26, 26, 10, 1, 50, 1, 5200),
    _full("www.motors.ebay.com", "http://www.motors.ebay.com", 202,
          80, 3, 24, 6, 24, 24, 11, 1, 45, 1, 4600),
    _full("espn.go.com/sports", "http://espn.go.com/sports", 203,
          100, 3, 25, 6, 22, 32, 13, 1, 50, 0, 6000, js_complexity=1.0),
    _full("amazon full version", "http://www.amazon.com", 204,
          88, 3, 22, 6, 22, 30, 9, 0, 0, 1, 5000),
    _full("home.autos.msn.com", "http://home.autos.msn.com", 205,
          70, 2, 26, 5, 25, 22, 10, 1, 55, 1, 4200),
    _full("www.myspace.com/music", "http://www.myspace.com/music", 206,
          75, 3, 20, 7, 27, 20, 9, 1, 60, 0, 4400),
    _full("bbc.com/travel", "http://www.bbc.com/travel", 207,
          66, 2, 24, 5, 22, 24, 12, 0, 0, 1, 4000),
    _full("www.popeater.com/celebrities",
          "http://www.popeater.com/celebrities", 208,
          72, 3, 22, 6, 25, 26, 11, 1, 50, 0, 4800),
    _full("www.apple.com", "http://www.apple.com", 209,
          60, 2, 30, 5, 28, 18, 14, 0, 0, 0, 3600),
    _full("hotjobs.yahoo.com", "http://hotjobs.yahoo.com", 210,
          78, 3, 23, 6, 23, 22, 10, 1, 48, 1, 4400),
)

#: Single-flight so concurrent request threads warming the same page
#: share one deterministic generation instead of racing the dict.
_PAGE_CACHE = SingleFlight()


def load_benchmark_page(entry: BenchmarkPage) -> Webpage:
    """Generate (and memoise) the synthetic page for a benchmark entry."""
    return _PAGE_CACHE.do(entry.spec.name,
                          lambda: generate_page(entry.spec))


def page_cache_stats() -> Dict[str, int]:
    """Hit/miss/wait counters for the generated-page memo."""
    return _PAGE_CACHE.stats()


def benchmark_pages(mobile: bool) -> List[Webpage]:
    """All generated pages of one benchmark half, in Table 3 order."""
    entries = MOBILE_BENCHMARK if mobile else FULL_BENCHMARK
    return [load_benchmark_page(entry) for entry in entries]


def warm_corpus() -> None:
    """Generate the whole Table 3 corpus into the process-local memo.

    Sweeps and pool workers call this once up front so that no grid
    point (or first-task-per-worker) pays page generation mid-measurement;
    afterwards every ``benchmark_pages``/``find_page`` call is a pure
    cache hit.  Generation is deterministic per spec, so warming never
    changes results — only when the cost is paid.
    """
    for entry in MOBILE_BENCHMARK + FULL_BENCHMARK:
        load_benchmark_page(entry)


def find_page(paper_name: str) -> Webpage:
    """Look up a page by the site name the paper uses (e.g. ``m.cnn.com``
    is ``cnn`` in the mobile column)."""
    for entry in MOBILE_BENCHMARK + FULL_BENCHMARK:
        if entry.paper_name == paper_name:
            return load_benchmark_page(entry)
    raise KeyError(f"no benchmark page named {paper_name!r}")
