"""Synthetic page synthesis.

:func:`generate_page` expands a compact :class:`PageSpec` into a full
object graph with a seeded RNG, so every call with the same spec yields
byte-identical pages.  The structure mirrors how 2012-era pages were
built: a root HTML document pulling in stylesheets, scripts, images and
the odd flash banner; stylesheets pulling background images; scripts
fetching additional content (their references are *dynamic* — invisible
until executed); and optional iframes with their own small documents.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.units import kb, require_non_negative, require_positive
from repro.webpages.objects import ObjectKind, WebObject
from repro.webpages.page import Webpage


@dataclass(frozen=True)
class PageSpec:
    """Compact description of a synthetic page."""

    name: str
    url: str
    mobile: bool
    seed: int
    #: Root HTML size, kilobytes.
    html_kb: float
    #: Stylesheet count and mean size.
    css_count: int = 1
    css_kb: float = 20.0
    #: Script count, mean size, and per-script complexity multiplier.
    js_count: int = 2
    js_kb: float = 25.0
    js_complexity: float = 1.0
    #: Fraction of the page's images that are only fetched by scripts at
    #: execution time (dynamic references).
    js_dynamic_image_fraction: float = 0.15
    #: Chain the back half of the scripts: each dynamically pulls in the
    #: next (ad/widget loaders), so their fetches are discovered late —
    #: 2012-era full pages spread transmissions across the whole load.
    js_chain: bool = False
    #: Image count and mean size.
    image_count: int = 8
    image_kb: float = 12.0
    #: Flash banner count and mean size.
    flash_count: int = 0
    flash_kb: float = 60.0
    #: Embedded iframe documents.
    iframe_count: int = 0
    iframe_kb: float = 8.0
    #: Fraction of images referenced from stylesheets rather than HTML.
    css_image_fraction: float = 0.2
    page_height: int = 1500
    page_width: int = 320

    def __post_init__(self) -> None:
        require_positive("html_kb", self.html_kb)
        for name in ("css_kb", "js_kb", "image_kb", "flash_kb", "iframe_kb"):
            require_non_negative(name, getattr(self, name))
        for name in ("css_count", "js_count", "image_count", "flash_count",
                     "iframe_count"):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 0:
                raise ValueError(f"{name} must be a non-negative int")
        for name in ("js_dynamic_image_fraction", "css_image_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        require_positive("js_complexity", self.js_complexity)

    @property
    def approx_total_kb(self) -> float:
        """Expected page weight (means, before size jitter)."""
        return (self.html_kb
                + self.css_count * self.css_kb
                + self.js_count * self.js_kb
                + self.image_count * self.image_kb
                + self.flash_count * self.flash_kb
                + self.iframe_count * self.iframe_kb)


def _jitter_sizes(rng: np.random.Generator, mean_kb: float,
                  count: int) -> List[float]:
    """Draw ``count`` sizes (bytes) with a lognormal spread around the
    mean, preserving the total in expectation."""
    if count == 0:
        return []
    if mean_kb == 0:
        return [0.0] * count
    sigma = 0.45
    draws = rng.lognormal(mean=-0.5 * sigma ** 2, sigma=sigma, size=count)
    return [kb(mean_kb) * float(d) for d in draws]


def generate_page(spec: PageSpec) -> Webpage:
    """Expand a :class:`PageSpec` into a validated :class:`Webpage`."""
    rng = np.random.default_rng(spec.seed)
    objects: Dict[str, WebObject] = {}

    image_sizes = _jitter_sizes(rng, spec.image_kb, spec.image_count)
    image_ids = [f"{spec.name}/img{i}" for i in range(spec.image_count)]
    for oid, size in zip(image_ids, image_sizes):
        objects[oid] = WebObject(oid, ObjectKind.IMAGE, size)

    flash_ids = [f"{spec.name}/flash{i}" for i in range(spec.flash_count)]
    for oid, size in zip(flash_ids,
                         _jitter_sizes(rng, spec.flash_kb, spec.flash_count)):
        objects[oid] = WebObject(oid, ObjectKind.FLASH, size)

    # Partition images: script-fetched (dynamic), stylesheet backgrounds,
    # and plain <img> tags in the HTML.
    shuffled = list(image_ids)
    rng.shuffle(shuffled)
    n_dynamic = int(round(spec.js_dynamic_image_fraction * len(shuffled)))
    if spec.js_count == 0:
        n_dynamic = 0
    dynamic_images = shuffled[:n_dynamic]
    rest = shuffled[n_dynamic:]
    n_css_images = int(round(spec.css_image_fraction * len(shuffled)))
    if spec.css_count == 0:
        n_css_images = 0
    css_images = rest[:n_css_images]
    html_images = rest[n_css_images:]

    css_ids = [f"{spec.name}/style{i}.css" for i in range(spec.css_count)]
    css_sizes = _jitter_sizes(rng, spec.css_kb, spec.css_count)
    for index, (oid, size) in enumerate(zip(css_ids, css_sizes)):
        refs = tuple(css_images[index::spec.css_count])
        # Stylesheets contribute rules, not DOM nodes.
        objects[oid] = WebObject(oid, ObjectKind.CSS, size,
                                 static_references=refs, dom_nodes=0)

    js_ids = [f"{spec.name}/script{i}.js" for i in range(spec.js_count)]
    js_sizes = _jitter_sizes(rng, spec.js_kb, spec.js_count)
    # With js_chain, the root references only the front half of the
    # scripts; each chained script dynamically loads the next.
    chain_start = (spec.js_count + 1) // 2 \
        if spec.js_chain and spec.js_count >= 2 else spec.js_count
    for index, (oid, size) in enumerate(zip(js_ids, js_sizes)):
        dyn = list(dynamic_images[index::spec.js_count])
        if spec.js_chain and chain_start - 1 <= index < spec.js_count - 1:
            dyn.append(js_ids[index + 1])
        objects[oid] = WebObject(
            oid, ObjectKind.JS, size,
            dynamic_references=tuple(dyn),
            complexity=spec.js_complexity,
            dom_nodes=2 + len(dyn))

    iframe_ids = [f"{spec.name}/frame{i}.html"
                  for i in range(spec.iframe_count)]
    iframe_sizes = _jitter_sizes(rng, spec.iframe_kb, spec.iframe_count)
    for oid, size in zip(iframe_ids, iframe_sizes):
        objects[oid] = WebObject(oid, ObjectKind.HTML, size,
                                 dom_nodes=max(1, int(size / 1000 * 6)))

    root_id = f"{spec.name}/index.html"
    root_size = kb(spec.html_kb)
    root_refs = tuple(css_ids) + tuple(js_ids[:chain_start]) \
        + tuple(html_images) + tuple(flash_ids) + tuple(iframe_ids)
    objects[root_id] = WebObject(
        root_id, ObjectKind.HTML, root_size,
        static_references=root_refs,
        dom_nodes=max(1, int(spec.html_kb * 6)))

    return Webpage(url=spec.url, root_id=root_id, objects=objects,
                   mobile=spec.mobile, page_height=spec.page_height,
                   page_width=spec.page_width)
