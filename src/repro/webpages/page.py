"""The Webpage container and its structural invariants."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from repro.webpages.objects import ObjectKind, WebObject


class PageValidationError(ValueError):
    """Raised when a page's object graph violates an invariant."""


@dataclass(frozen=True)
class Webpage:
    """A webpage: a rooted DAG of web objects.

    Invariants (checked at construction):

    - the root exists and is an HTML document;
    - every reference resolves to an object on the page;
    - the reference graph is acyclic;
    - every object is reachable from the root (nothing the browser could
      never discover).
    """

    url: str
    root_id: str
    objects: Dict[str, WebObject]
    mobile: bool = False
    page_height: int = 1200
    page_width: int = 320

    def __post_init__(self) -> None:
        self._validate()

    # ------------------------------------------------------------------
    def _validate(self) -> None:
        if self.root_id not in self.objects:
            raise PageValidationError(
                f"root {self.root_id!r} missing from page {self.url!r}")
        root = self.objects[self.root_id]
        if root.kind is not ObjectKind.HTML:
            raise PageValidationError(
                f"root of {self.url!r} must be HTML, got {root.kind}")
        for obj in self.objects.values():
            for ref in obj.references:
                if ref not in self.objects:
                    raise PageValidationError(
                        f"object {obj.object_id!r} references unknown "
                        f"{ref!r}")
        self._check_acyclic()
        unreachable = set(self.objects) - set(self.reachable_ids())
        if unreachable:
            raise PageValidationError(
                f"objects unreachable from root on {self.url!r}: "
                f"{sorted(unreachable)}")

    def _check_acyclic(self) -> None:
        WHITE, GREY, BLACK = 0, 1, 2
        colour = {oid: WHITE for oid in self.objects}
        for start in self.objects:
            if colour[start] != WHITE:
                continue
            stack: List[Tuple[str, Iterator[str]]] = [
                (start, iter(self.objects[start].references))]
            colour[start] = GREY
            while stack:
                node, refs = stack[-1]
                advanced = False
                for ref in refs:
                    if colour[ref] == GREY:
                        raise PageValidationError(
                            f"reference cycle through {ref!r} on "
                            f"{self.url!r}")
                    if colour[ref] == WHITE:
                        colour[ref] = GREY
                        stack.append(
                            (ref, iter(self.objects[ref].references)))
                        advanced = True
                        break
                if not advanced:
                    colour[node] = BLACK
                    stack.pop()

    def reachable_ids(self) -> List[str]:
        """Object ids reachable from the root, in BFS discovery order."""
        order: List[str] = []
        seen = {self.root_id}
        frontier = [self.root_id]
        while frontier:
            oid = frontier.pop(0)
            order.append(oid)
            for ref in self.objects[oid].references:
                if ref not in seen:
                    seen.add(ref)
                    frontier.append(ref)
        return order

    # ------------------------------------------------------------------
    @property
    def root(self) -> WebObject:
        return self.objects[self.root_id]

    @property
    def total_bytes(self) -> float:
        """Wire size of the whole page."""
        return sum(obj.size_bytes for obj in self.objects.values())

    @property
    def total_kb(self) -> float:
        return self.total_bytes / 1000.0

    @property
    def object_count(self) -> int:
        return len(self.objects)

    def objects_of_kind(self, kind: ObjectKind) -> List[WebObject]:
        """All objects of one kind, in id order (deterministic)."""
        return sorted((o for o in self.objects.values() if o.kind is kind),
                      key=lambda o: o.object_id)

    def count_of_kind(self, kind: ObjectKind) -> int:
        return sum(1 for o in self.objects.values() if o.kind is kind)

    def bytes_of_kind(self, kind: ObjectKind) -> float:
        return sum(o.size_bytes for o in self.objects.values()
                   if o.kind is kind)

    @property
    def total_dom_nodes(self) -> int:
        """DOM size once every object has been processed."""
        return sum(o.dom_nodes for o in self.objects.values())
