"""Algorithm 2 and the Table-6 baseline policies.

A policy answers one question per pageview: once the page is opened (and
the reading time has exceeded the interest threshold α), should the
radio be forced to IDLE?  Algorithm 2's rule:

    switch  ⇔  Tr > Td  OR  (Tr > Tp AND mode == power)

where Tr is the predicted reading time, Td = T1 + T2 = 20 s (never any
delay penalty) and Tp = 9 s (energy break-even, Fig. 3).  The six cases
of Table 6 map to: :class:`PredictivePolicy` (Predict-9 / Predict-20),
:class:`OraclePolicy` (Accurate-9 / Accurate-20 — the upper bound using
the true reading time from the trace), and :class:`AlwaysOffPolicy`
(the two Always-off rows; the engine choice is made by the evaluator).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.config import PolicyConfig
from repro.prediction.predictor import ReadingTimePredictor


@dataclass(frozen=True)
class PolicyDecision:
    """Outcome of one switching decision."""

    switch_to_idle: bool
    predicted_reading_time: Optional[float]
    reason: str


class SwitchPolicy(abc.ABC):
    """Interface: decide whether to force the radio to IDLE."""

    name = "base"

    @abc.abstractmethod
    def decide(self, features: Sequence[float],
               true_reading_time: float) -> PolicyDecision:
        """Decide for one pageview.

        ``features`` is the Table-1 vector collected while opening the
        page; ``true_reading_time`` is only consulted by the oracle.
        """


class PredictivePolicy(SwitchPolicy):
    """Algorithm 2: predict Tr with GBRT, compare to Td/Tp."""

    def __init__(self, predictor: ReadingTimePredictor,
                 config: Optional[PolicyConfig] = None):
        self._predictor = predictor
        self.config = config or PolicyConfig()
        self.name = f"predict-{int(self._threshold())}"

    def _threshold(self) -> float:
        if self.config.mode == "power":
            return self.config.power_threshold
        return self.config.delay_threshold

    @property
    def predictor(self) -> ReadingTimePredictor:
        """The underlying model (the batched evaluator predicts whole
        feature matrices through it instead of calling :meth:`decide`)."""
        return self._predictor

    def decide(self, features: Sequence[float],
               true_reading_time: float) -> PolicyDecision:
        predicted = self._predictor.predict_one(features)
        config = self.config
        switch = predicted > config.delay_threshold or (
            config.mode == "power"
            and predicted > config.power_threshold)
        reason = (f"Tr={predicted:.1f}s vs "
                  f"Td={config.delay_threshold:.0f}/"
                  f"Tp={config.power_threshold:.0f} ({config.mode})")
        return PolicyDecision(switch_to_idle=switch,
                              predicted_reading_time=predicted,
                              reason=reason)


class OraclePolicy(SwitchPolicy):
    """Accurate-9 / Accurate-20: 100 %-accurate prediction upper bound —
    reads the true reading time straight from the trace (Section 5.6.2).
    """

    def __init__(self, threshold: float):
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.threshold = threshold
        self.name = f"accurate-{int(threshold)}"

    def decide(self, features: Sequence[float],
               true_reading_time: float) -> PolicyDecision:
        switch = true_reading_time > self.threshold
        return PolicyDecision(switch_to_idle=switch,
                              predicted_reading_time=true_reading_time,
                              reason=f"oracle R={true_reading_time:.1f}s "
                                     f"vs {self.threshold:.0f}s")


class AlwaysOffPolicy(SwitchPolicy):
    """Switch to IDLE after every page open, unconditionally."""

    name = "always-off"

    def decide(self, features: Sequence[float],
               true_reading_time: float) -> PolicyDecision:
        return PolicyDecision(switch_to_idle=True,
                              predicted_reading_time=None,
                              reason="always off")


class NeverOffPolicy(SwitchPolicy):
    """Never switch; the radio follows its inactivity timers."""

    name = "never-off"

    def decide(self, features: Sequence[float],
               true_reading_time: float) -> PolicyDecision:
        return PolicyDecision(switch_to_idle=False,
                              predicted_reading_time=None,
                              reason="timers only")
